"""The bridge: CV-X-IF offload endpoint (paper section III-B).

The bridge samples opcode, func5 and the three source-register values of
an offloaded instruction, raises an interrupt for the eCPU, and waits for
the software decode outcome, which it forwards to the host as the
accept/commit (or kill) response.  The host is stalled only for this
handshake; once the instruction proceeds to execution the host continues
its program out-of-order while the kernel runs in the cache.

One instruction is in flight at a time: a second offload arriving while a
decode is pending waits (the bridge registers are single-buffered).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.isa.xmnmc import OffloadRequest
from repro.sim.kernel import Event, Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer


class OffloadOutcome(enum.Enum):
    ACCEPTED = "accepted"  # decoded, scheduled, host may proceed
    KILLED = "killed"  # unknown operation: host receives the kill response


@dataclass
class BridgeCosts:
    """Handshake cycle costs on the host side."""

    sample: int = 3  # CV-X-IF issue + bridge register sampling
    respond: int = 2  # result/commit handshake back over CV-X-IF


class Bridge:
    """Single-buffered offload bridge with interrupt-driven decode."""

    def __init__(
        self,
        sim: Simulator,
        decode: Callable[[OffloadRequest], Generator],
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
        costs: BridgeCosts = BridgeCosts(),
    ) -> None:
        self.sim = sim
        self.decode = decode
        self.stats = stats or StatsRegistry()
        self.tracer = tracer or Tracer(enabled=False)
        self.costs = costs
        self._busy = False
        self._freed: Event = sim.event("bridge.freed")

    @property
    def busy(self) -> bool:
        return self._busy

    def offload(self, request: OffloadRequest) -> Generator:
        """Host-side simulation process: offload one matrix instruction.

        Returns the :class:`OffloadOutcome`.  The host process is blocked
        for the whole handshake — bridge sampling, interrupt latency,
        software decode (including kernel-queue back-pressure) and the
        commit/kill response — then resumes.
        """
        while self._busy:
            self.stats.counter("bridge.contended").add()
            yield self._freed
        self._busy = True
        try:
            yield self.costs.sample
            self.tracer.log(
                self.sim.now, "bridge", "offload",
                func5=request.func5, size=request.size_suffix, instr=request.instr_id,
            )
            decoded = yield from self.decode(request)
            yield self.costs.respond
            outcome = (
                OffloadOutcome.ACCEPTED
                if decoded is not None or request.is_reserve
                else OffloadOutcome.KILLED
            )
            counter = "bridge.accepted" if outcome is OffloadOutcome.ACCEPTED else "bridge.killed"
            self.stats.counter(counter).add()
            self.tracer.log(
                self.sim.now, "bridge", "outcome",
                instr=request.instr_id, outcome=outcome.value,
            )
            return outcome
        finally:
            self._busy = False
            previous = self._freed
            self._freed = self.sim.event("bridge.freed")
            previous.fire()
