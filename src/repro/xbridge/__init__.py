"""The CV-X-IF bridge between host CPU and eCPU (paper section III-B)."""

from repro.xbridge.bridge import Bridge, OffloadOutcome

__all__ = ["Bridge", "OffloadOutcome"]
