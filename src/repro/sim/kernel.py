"""Discrete-event simulation kernel with generator-based processes.

The model of computation:

* Time is an integer cycle count (``Simulator.now``).
* A *process* is a generator.  Each ``yield`` suspends it:

  - ``yield n`` (non-negative int) resumes the process ``n`` cycles later;
  - ``yield event`` resumes it when the :class:`Event` fires (immediately,
    on the same cycle, if it already fired);
  - ``yield proc`` (a :class:`Process`) waits for that process to finish
    and evaluates to its return value.

* Determinism: events scheduled for the same cycle run in FIFO order of
  scheduling, so repeated runs produce identical traces.

This is all the ARCANE system model needs to express cache locking, hazard
stalls and DMA/VPU concurrency faithfully.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (bad yields, deadlock checks)."""


class Event:
    """A one-shot level-triggered event that processes can wait on.

    Once fired the event stays fired: late waiters resume immediately.
    An optional payload set at :meth:`fire` time is delivered as the value
    of the ``yield`` expression.
    """

    __slots__ = ("sim", "name", "fired", "payload", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.fired = False
        self.payload: Any = None
        self._waiters: List["Process"] = []

    def fire(self, payload: Any = None) -> None:
        """Fire the event, waking every waiter on the current cycle."""
        if self.fired:
            return
        self.fired = True
        self.payload = payload
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim._schedule(0, process, payload)

    def reset(self) -> None:
        """Re-arm a fired event so it can be waited on and fired again.

        Only legal when no process is currently parked on it.
        """
        if self._waiters:
            raise SimulationError(
                f"cannot reset event {self.name!r} with {len(self._waiters)} waiters"
            )
        self.fired = False
        self.payload = None

    def _add_waiter(self, process: "Process") -> None:
        if self.fired:
            self.sim._schedule(0, process, self.payload)
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else f"{len(self._waiters)} waiters"
        return f"<Event {self.name!r} {state}>"


class Process:
    """A running generator registered with the simulator.

    ``Process`` objects are awaitable from other processes (``yield proc``)
    and expose :attr:`finished` / :attr:`result` for inspection after the
    run.  Exceptions raised inside a process propagate out of
    :meth:`Simulator.run` — silent failure would hide model bugs.
    """

    __slots__ = ("sim", "name", "generator", "finished", "result", "_done_event")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.generator = generator
        self.finished = False
        self.result: Any = None
        self._done_event = Event(sim, name=f"{self.name}.done")

    @property
    def done_event(self) -> Event:
        """Event fired (with the return value as payload) when this process ends."""
        return self._done_event

    def _step(self, send_value: Any) -> None:
        try:
            yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self._done_event.fire(stop.value)
            return
        self._dispatch_yield(yielded)

    def _dispatch_yield(self, yielded: Any) -> None:
        if isinstance(yielded, bool):
            raise SimulationError(f"process {self.name!r} yielded a bool")
        if isinstance(yielded, int):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}"
                )
            self.sim._schedule(yielded, self, None)
        elif isinstance(yielded, Event):
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            yielded._done_event._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """The event loop: schedules process resumptions on an integer timeline.

    Two fast paths keep long simulations cheap without changing the
    documented FIFO determinism:

    * zero-delay wakeups (``yield 0``, event fires, process starts) go to
      a same-cycle FIFO instead of the time heap.  Entries already in the
      heap for the current cycle were scheduled *earlier* (a zero-delay
      schedule created during cycle ``T`` can only land in the FIFO), so
      draining heap entries at ``now`` first, then the FIFO, reproduces
      the global scheduling order exactly — with no heap traffic for the
      dominant wake-everyone-this-cycle pattern;
    * when exactly one resumption is pending (a single runnable process
      stepping through ``yield n`` after ``yield n`` — the shape of every
      kernel-replay and DMA loop), the next entry is popped without a
      heap sift.
    """

    def __init__(self) -> None:
        self.now = 0
        self._heap: List[Tuple[int, int, Process, Any]] = []
        self._ready: Deque[Tuple[Process, Any]] = deque()
        self._sequence = 0
        self._processes: List[Process] = []

    def event(self, name: str = "") -> Event:
        """Create a fresh event bound to this simulator."""
        return Event(self, name)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a process and schedule its first step now."""
        process = Process(self, generator, name)
        self._processes.append(process)
        self._schedule(0, process, None)
        return process

    def _schedule(self, delay: int, process: Process, send_value: Any) -> None:
        if delay == 0:
            # Same-cycle wakeup: FIFO append, no heap traffic.  Ordering
            # versus heap entries at the current cycle is preserved by the
            # run loop (heap entries for ``now`` always predate FIFO ones).
            self._ready.append((process, send_value))
            return
        heapq.heappush(self._heap, (self.now + delay, self._sequence, process, send_value))
        self._sequence += 1

    def run(self, until: Optional[int] = None, max_events: int = 50_000_000) -> int:
        """Run until the event queue drains (or ``until`` cycles / event cap).

        Returns the final simulation time.  ``max_events`` is a runaway
        guard: real deadlocks drain the queue, but a livelocked model (two
        processes ping-ponging zero-delay events) would otherwise spin
        forever.
        """
        handled = 0
        heap = self._heap
        ready = self._ready
        while True:
            if heap and heap[0][0] == self.now:
                # Same-cycle heap entries were scheduled in earlier cycles,
                # so they come before anything appended to the FIFO during
                # this cycle.
                _, _, process, send_value = heapq.heappop(heap)
            elif ready:
                process, send_value = ready.popleft()
            elif heap:
                time = heap[0][0]
                if until is not None and time > until:
                    self.now = until
                    self._prune_finished()
                    return self.now
                self.now = time
                if len(heap) == 1:
                    # Single-runnable fast path: advance time without a sift.
                    _, _, process, send_value = heap.pop()
                else:
                    _, _, process, send_value = heapq.heappop(heap)
            else:
                break
            process._step(send_value)
            handled += 1
            if handled > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events at cycle {self.now}; "
                    "probable zero-delay livelock"
                )
        if until is not None and until > self.now:
            self.now = until
        self._prune_finished()
        return self.now

    def _prune_finished(self) -> None:
        # Drop finished processes from the registry: a long-lived system
        # (the serving engine runs thousands of programs on one simulator)
        # must not accumulate dead generator wrappers without bound.
        self._processes = [p for p in self._processes if not p.finished]

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: register ``generator``, run to completion, return its result."""
        process = self.process(generator, name)
        self.run()
        if not process.finished:
            raise SimulationError(
                f"process {process.name!r} did not finish (deadlock at cycle {self.now})"
            )
        return process.result

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """Return an event that fires once every event in ``events`` has fired."""
        events = list(events)
        combined = self.event(name)
        if not events:
            combined.fire()
            return combined
        remaining = {"count": len(events)}

        def waiter(event: Event) -> Generator:
            yield event
            remaining["count"] -= 1
            if remaining["count"] == 0:
                combined.fire()

        for event in events:
            self.process(waiter(event), name=f"{name}.wait.{event.name}")
        return combined

    def timeout_call(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule a plain callback ``delay`` cycles from now."""

        def runner() -> Generator:
            yield delay
            callback()

        self.process(runner(), name="timeout_call")
