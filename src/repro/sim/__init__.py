"""Event-driven simulation kernel.

A deliberately small discrete-event engine in the style of SimPy: processes
are Python generators that yield either an integer number of cycles to wait
or an :class:`~repro.sim.kernel.Event` to park on.  The ARCANE system model
(:mod:`repro.core`) uses it to interleave the host CPU, the eCPU runtime,
the DMA engine and the cache controller with cycle-level ordering.
"""

from repro.sim.kernel import Event, Process, Simulator, SimulationError
from repro.sim.stats import Counter, Histogram, StatsRegistry
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "SimulationError",
    "Counter",
    "Histogram",
    "StatsRegistry",
    "TraceEvent",
    "Tracer",
]
