"""Cycle-stamped tracing for simulation debugging and test assertions.

Tests use the tracer to assert *ordering* properties that counters cannot
express — e.g. that a host store to a kernel source blocked until the
allocator finished copying it (the WAR hazard rule of paper §III-A.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: when, who, what, and free-form details."""

    cycle: int
    source: str
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail_text = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.cycle:>10}] {self.source:<12} {self.kind:<20} {detail_text}"


class Tracer:
    """Append-only event log.  Disabled tracers drop events with near-zero cost.

    A bounded tracer (``capacity=N``) stops *storing* past capacity but
    keeps *counting*: :attr:`dropped` says how many events were lost, so
    a truncated trace is never mistaken for a complete one (``dump()``
    appends the drop tally).
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        #: events discarded because the trace was at capacity
        self.dropped = 0

    def log(self, cycle: int, source: str, kind: str, **details: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(cycle, source, kind, details))

    def filter(self, source: Optional[str] = None, kind: Optional[str] = None) -> List[TraceEvent]:
        """Return events matching the given source and/or kind."""
        selected = self.events
        if source is not None:
            selected = [e for e in selected if e.source == source]
        if kind is not None:
            selected = [e for e in selected if e.kind == kind]
        return selected

    def first(self, kind: str) -> Optional[TraceEvent]:
        """First event of the given kind, or None."""
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> Optional[TraceEvent]:
        """Last event of the given kind, or None."""
        for event in reversed(self.events):
            if event.kind == kind:
                return event
        return None

    def dump(self) -> str:
        """Human-readable rendering of the whole trace (notes drops)."""
        lines = [str(event) for event in self.events]
        if self.dropped:
            lines.append(
                f"... {self.dropped} event(s) dropped at capacity {self.capacity}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
