"""Statistics primitives for simulation models.

Components register :class:`Counter` and :class:`Histogram` objects in a
shared :class:`StatsRegistry`; the evaluation layer reads them back by
dotted name (``"llc.hits"``, ``"dma.bytes"``) when building tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """A sample accumulator tracking count / sum / min / max / mean.

    Samples additionally land in log2 buckets (bucket 0 holds samples
    <= 0, bucket ``i`` holds ``2**(i-1) <= sample < 2**i``), so the
    histogram can estimate any percentile without storing samples:
    :meth:`percentile` locates the bucket containing the requested rank
    and interpolates linearly inside its value range, clamped to the
    observed min/max.  The estimate is exact at p=0/p=100 and within one
    power of two elsewhere — enough for p50/p99 latency reporting at
    O(64) memory.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.minimum: Optional[int] = None
        self.maximum: Optional[int] = None
        #: log2 bucket counts; index = max(bit_length, 0) of the sample
        self.buckets: List[int] = []

    def record(self, sample: int) -> None:
        self.count += 1
        self.total += sample
        if self.minimum is None or sample < self.minimum:
            self.minimum = sample
        if self.maximum is None or sample > self.maximum:
            self.maximum = sample
        index = int(sample).bit_length() if sample > 0 else 0
        if index >= len(self.buckets):
            self.buckets.extend([0] * (index + 1 - len(self.buckets)))
        self.buckets[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def bucket_bounds(index: int) -> tuple:
        """Value range ``[low, high]`` (inclusive) covered by a bucket."""
        if index == 0:
            return (0, 0)
        return (1 << (index - 1), (1 << index) - 1)

    def percentile(self, p: float) -> float:
        """Estimate the p-th percentile (p in [0, 100]) from the buckets.

        Walks the cumulative bucket counts to the bucket holding the
        fractional rank ``p/100 * (count - 1)``, then interpolates
        linearly across that bucket's value range, clamped to the
        observed ``minimum``/``maximum``.  p=0 and p=100 return the
        exact observed extremes; every estimate is monotone in ``p``
        and stays within ``[minimum, maximum]``.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        if p == 0.0:
            return float(self.minimum)
        if p == 100.0:
            return float(self.maximum)
        rank = p / 100.0 * (self.count - 1)
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            if bucket_count == 0:
                continue
            if rank < cumulative + bucket_count:
                low, high = self.bucket_bounds(index)
                low = max(low, self.minimum)
                high = min(high, self.maximum)
                if high == low or bucket_count == 1:
                    return float(low)
                fraction = (rank - cumulative) / (bucket_count - 1)
                return low + fraction * (high - low)
            cumulative += bucket_count
        return float(self.maximum)

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None
        self.buckets = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.2f})"


class StatsRegistry:
    """Namespace of counters and histograms shared across one simulation."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def value(self, name: str) -> int:
        """Read a counter's current value (0 if never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counter values, sorted by name."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> List[Histogram]:
        return [self._histograms[name] for name in sorted(self._histograms)]

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
