"""Statistics primitives for simulation models.

Components register :class:`Counter` and :class:`Histogram` objects in a
shared :class:`StatsRegistry`; the evaluation layer reads them back by
dotted name (``"llc.hits"``, ``"dma.bytes"``) when building tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """A sample accumulator tracking count / sum / min / max / mean."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.minimum: Optional[int] = None
        self.maximum: Optional[int] = None

    def record(self, sample: int) -> None:
        self.count += 1
        self.total += sample
        if self.minimum is None or sample < self.minimum:
            self.minimum = sample
        if self.maximum is None or sample > self.maximum:
            self.maximum = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.2f})"


class StatsRegistry:
    """Namespace of counters and histograms shared across one simulation."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def value(self, name: str) -> int:
        """Read a counter's current value (0 if never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counter values, sorted by name."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> List[Histogram]:
        return [self._histograms[name] for name in sorted(self._histograms)]

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
