"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table (the benches print these)."""
    text_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def paper_vs_measured(rows: Iterable[Sequence], title: str) -> str:
    """Standard three-column comparison block used by every bench."""
    return render_table(["metric", "paper", "measured"], rows, title=title)
