"""Calibration constants: provenance and paper anchors.

Every number the simulation cannot derive from first principles is set
here (or in the config defaults it documents), with the paper anchor it
targets.  The benchmark harness prints paper-vs-measured for each anchor;
EXPERIMENTS.md records the outcome.

===========================  ==========================================
Constant                     Provenance
===========================  ==========================================
CV32E40X timing              CV32E40X user manual (1 IPC, 2-cycle taken-
                             branch penalty, iterative divider)
XCVPULP op timing            CV32E40P manual: single-cycle SIMD/MAC,
                             zero-overhead hardware loops
VPU throughput               NM-Carus: ``lanes`` 32-bit lanes, sub-word
                             SIMD packing (4/2/1 elems per lane for
                             b/h/w), small per-instruction startup
``issue_cycles = 24``        eCPU software dispatch loop per vector
                             instruction; tuned so single-instance int8
                             speedups land in the paper's 30-84x decade
``offchip_latency = 80``     external flash/PSRAM burst penalty; sets
                             the allocation-phase share near Figure 3's
                             saturation levels
DecodeCosts (60/180/40/600)  C-RT interrupt entry / xmr bind / library
                             lookup / kernel preamble in eCPU cycles;
                             sized so the preamble phase dominates small
                             inputs (~60 %) and falls below 3 % at large
                             inputs, the trend of Figure 3
Area model coefficients      solved exactly from Table II (see
                             :mod:`repro.eval.area`)
Multicore alpha = 0.052      back-solved from the paper's "theoretical
                             speedup peaks at 75x" for ~15 cores
===========================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Anchor:
    """One paper-reported number the reproduction is checked against."""

    name: str
    paper_value: float
    unit: str
    source: str  # where in the paper
    tolerance_note: str = ""


PAPER_ANCHORS: Tuple[Anchor, ...] = (
    Anchor("speedup_int8_3x3_8lane", 30.0, "x vs CV32E40X",
           "section V-C: 256x256 int8, 3x3 filters, 8-lane"),
    Anchor("speedup_int8_7x7_8lane", 84.0, "x vs CV32E40X",
           "section VI: 256x256x3 int8, 7x7 filter"),
    Anchor("speedup_pulp_int8_3x3", 5.0, "x vs CV32E40X",
           "section V-C: CV32E40PX at 256x256 int8 3x3"),
    Anchor("pulp_peak_speedup", 8.6, "x vs CV32E40X",
           "section V-C: CV32E40PX scaling peak"),
    Anchor("speedup_multi_instance", 120.0, "x vs CV32E40X",
           "section V-C: 4 VPUs x 8 lanes multi-instance mode"),
    Anchor("area_overhead_8lane", 41.3, "% vs X-HEEP",
           "abstract / Table II"),
    Anchor("area_overhead_4lane", 28.3, "% vs X-HEEP", "Table II"),
    Anchor("area_overhead_2lane", 21.7, "% vs X-HEEP", "Table II"),
    Anchor("peak_throughput", 17.0, "GOPS @ 265 MHz",
           "section V-C (= 4 VPUs x 8 lanes x 2 OP x f)"),
    Anchor("overhead_saturation", 20.0, "% non-compute at large inputs",
           "section V-B / Figure 3 (int32 worst case)"),
    Anchor("preamble_small_input", 60.0, "% of total at small inputs",
           "section V-B / Figure 3"),
    Anchor("preamble_large_input", 2.89, "% of total at large inputs",
           "section V-B / Figure 3"),
    Anchor("multicore_theoretical_peak", 75.0, "x vs CV32E40X",
           "section V-C: 15-core CV32E40PX ceiling"),
)


def anchor(name: str) -> Anchor:
    for entry in PAPER_ANCHORS:
        if entry.name == name:
            return entry
    raise KeyError(f"unknown anchor {name!r}")
