"""Data-series generators for the paper's evaluation figures.

Each function returns plain dict/list structures that the benchmark
harness renders as the rows/series of the corresponding paper artifact:

* :func:`fig3_overhead_series` — Figure 3: non-compute phase shares of
  the 3-channel int32 conv layer vs input size and lane count;
* :func:`fig4_speedup_series` — Figure 4: speedup over CV32E40X for
  ARCANE lane configs and the CV32E40PX baseline, across input sizes,
  filter sizes and data types;
* :func:`headline_speedups` — the section V-C / VI headline numbers
  (30x / 84x / multi-instance 120x / 16x vs XCVPULP).

ARCANE cycles come from full system simulations; baseline cycles from
the ISS-fitted models of :mod:`repro.baselines.models`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.baselines.models import pulp_conv_layer_cycles, scalar_conv_layer_cycles
from repro.baselines.scalar_kernels import ConvLayerShape
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem
from repro.runtime.phases import PhaseBreakdown

_DTYPES = {"int8": np.int8, "int16": np.int16, "int32": np.int32}


@dataclass(frozen=True)
class ConvLayerPoint:
    """One measured (configuration, workload) point."""

    size: int
    k: int
    dtype: str
    lanes: int
    multi_vpu: bool
    arcane_cycles: int
    scalar_cycles: int
    pulp_cycles: int
    breakdown: PhaseBreakdown

    @property
    def speedup_vs_scalar(self) -> float:
        return self.scalar_cycles / self.arcane_cycles

    @property
    def speedup_vs_pulp(self) -> float:
        return self.pulp_cycles / self.arcane_cycles

    @property
    def pulp_speedup_vs_scalar(self) -> float:
        return self.scalar_cycles / self.pulp_cycles


def _workload(size: int, k: int, dtype: str, seed: int = 7):
    rng = np.random.default_rng(seed)
    np_dtype = _DTYPES[dtype]
    image = rng.integers(-8, 8, (3 * size, size)).astype(np_dtype)
    filters = rng.integers(-2, 3, (3 * k, k)).astype(np_dtype)
    return image, filters


def measure_conv_layer(
    size: int,
    k: int,
    dtype: str = "int8",
    lanes: int = 4,
    multi_vpu: bool = False,
    config: Optional[ArcaneConfig] = None,
    verify: bool = False,
) -> ConvLayerPoint:
    """Run one conv-layer workload on ARCANE and price the baselines."""
    image, filters = _workload(size, k, dtype)
    config = (config or ArcaneConfig()).with_lanes(lanes).with_multi_vpu(multi_vpu)
    system = ArcaneSystem(config)
    output, report = system.run_conv_layer(image, filters)
    if verify:
        from repro.baselines.reference import ref_conv_layer

        expected = ref_conv_layer(image, filters)
        if not np.array_equal(output, expected):
            raise AssertionError(f"conv layer mismatch at size={size} k={k} {dtype}")
    shape = ConvLayerShape(height=size, width=size, k=k)
    esize = np.dtype(_DTYPES[dtype]).itemsize
    return ConvLayerPoint(
        size=size,
        k=k,
        dtype=dtype,
        lanes=lanes,
        multi_vpu=multi_vpu,
        # Wall-clock latency of the whole offload (correct for multi-VPU
        # sharding, where per-shard phase cycles overlap in time).
        arcane_cycles=report.total_cycles,
        scalar_cycles=scalar_conv_layer_cycles(shape, esize),
        pulp_cycles=pulp_conv_layer_cycles(shape, esize),
        breakdown=report.breakdown,
    )


def fig3_overhead_series(
    sizes: Iterable[int] = (16, 32, 64, 128, 256),
    lane_configs: Iterable[int] = (2, 4, 8),
    dtype: str = "int32",
    k: int = 3,
) -> List[Dict]:
    """Figure 3: phase shares of the int32 conv layer vs size and lanes."""
    rows = []
    for lanes in lane_configs:
        for size in sizes:
            point = measure_conv_layer(size, k, dtype=dtype, lanes=lanes)
            b = point.breakdown
            rows.append(
                {
                    "lanes": lanes,
                    "size": size,
                    "preamble_pct": 100 * b.fraction("preamble"),
                    "allocation_pct": 100 * b.fraction("allocation"),
                    "compute_pct": 100 * b.fraction("compute"),
                    "writeback_pct": 100 * b.fraction("writeback"),
                    "overhead_pct": 100 * b.overhead_fraction(),
                    "total_cycles": b.total,
                }
            )
    return rows


def fig4_speedup_series(
    sizes: Iterable[int] = (16, 32, 64, 128, 256),
    filter_sizes: Iterable[int] = (3, 5, 7),
    dtypes: Iterable[str] = ("int8", "int16", "int32"),
    lane_configs: Iterable[int] = (2, 4, 8),
) -> List[ConvLayerPoint]:
    """Figure 4: the full speedup grid (single-instance ARCANE vs CPUs)."""
    points = []
    for dtype in dtypes:
        for k in filter_sizes:
            for size in sizes:
                if size <= k * 2:
                    continue
                for lanes in lane_configs:
                    points.append(measure_conv_layer(size, k, dtype=dtype, lanes=lanes))
    return points


def headline_speedups(size: int = 256) -> Dict[str, float]:
    """Section V-C / VI headline numbers, measured."""
    p33 = measure_conv_layer(size, 3, dtype="int8", lanes=8)
    p77 = measure_conv_layer(size, 7, dtype="int8", lanes=8)
    multi = measure_conv_layer(size, 3, dtype="int8", lanes=8, multi_vpu=True)
    multi77 = measure_conv_layer(size, 7, dtype="int8", lanes=8, multi_vpu=True)
    return {
        "speedup_int8_3x3_8lane": p33.speedup_vs_scalar,
        "speedup_int8_7x7_8lane": p77.speedup_vs_scalar,
        "speedup_vs_pulp_3x3": p33.speedup_vs_pulp,
        "speedup_vs_pulp_7x7": p77.speedup_vs_pulp,
        "speedup_pulp_int8_3x3": p33.pulp_speedup_vs_scalar,
        "speedup_multi_instance_3x3": multi.speedup_vs_scalar,
        "speedup_multi_instance_7x7": multi77.speedup_vs_scalar,
    }
