"""Aggregate serving metrics: throughput, latency, queueing, availability.

A :class:`ServingReport` condenses one served batch into the numbers a
capacity planner reads.  Both serving modes share the core fields —
requests per second of harness wall-clock, simulated cycles per request,
latency percentiles, the pool's simulated makespan and the derived
requests per simulated megacycle — but they mean slightly different
things per mode:

* **offline** (``ServingEngine.serve``): latency is pure service time,
  and the makespan is the slowest worker's accumulated cycles (requests
  are all present at cycle 0);
* **online** (``ServingEngine.serve_online``): requests arrive over
  simulated time, so end-to-end latency splits into
  ``queue_delay + service`` (reported as separate percentile blocks),
  the makespan is the cycle the last request completes, and
  ``requests_per_megacycle`` over that makespan is the pool's
  *sustained* throughput under the offered load.

Latency percentiles cover **completed** requests (``ok`` +
``timed_out`` + ``corrupted`` — the last ran to completion with a
suspect output); failed and shed requests are excluded (they have no
service timeline) but show up in the **availability** section: success
rate, per-status counts, retry/failover totals, per-class failed-attempt
counts, injected-fault tallies and the chronological worker health
events (quarantine/probation/reinstatement).  When an integrity policy
or data-corruption injection ran, the engine attaches an **integrity**
section (injected flip counts, detected/corrected/undetected, detection
recall, escalation tallies).

``per_worker`` carries each worker's served count, busy cycles,
utilization (busy / makespan — idle gaps between arrivals count against
it in online mode) and its recovery/rebuild counters for the run.
``as_dict`` is JSON-clean; ``bench_serving.py`` persists both modes as
the repo's serving-perf trajectory record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.runtime.phases import PhaseBreakdown

#: Serving modes a report can describe.
MODES = ("offline", "online")


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]); 0.0 for no samples."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def latency_stats(values: Sequence[float]) -> Dict[str, float]:
    """The standard min/mean/p50/p90/p99/max block over a sample list."""
    ordered = sorted(float(v) for v in values)
    return {
        "min": ordered[0] if ordered else 0.0,
        "mean": (sum(ordered) / len(ordered)) if ordered else 0.0,
        "p50": percentile(ordered, 50),
        "p90": percentile(ordered, 90),
        "p99": percentile(ordered, 99),
        "max": ordered[-1] if ordered else 0.0,
    }


@dataclass
class ServingReport:
    """What one served batch measured."""

    n_requests: int
    pool_size: int
    processes: int
    policy: str
    wall_seconds: float
    total_sim_cycles: int
    makespan_cycles: int
    latency_cycles: Dict[str, float]
    per_kind: Dict[str, int]
    per_worker: Dict[int, Dict[str, float]]
    breakdown: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    verified: Optional[bool] = None
    mode: str = "offline"
    #: the process count the caller asked for (``processes`` is the
    #: effective count after the pool-size clamp); None = same as effective
    requested_processes: Optional[int] = None
    #: admission policy the dispatch core ran (fifo/priority/edf/sjf)
    admission: Optional[str] = None
    #: replay-cache activity for the run (per-worker stat deltas,
    #: including cross-worker ``fleet_hits``); attached by the engine
    replay: Optional[Dict] = None
    #: online autotuning activity (policy, schedule-cache stats, per-key
    #: tuned-vs-default cycle deltas and swaps); attached by the engine
    autotune: Optional[Dict] = None
    #: data-integrity accounting (policy, injected corruption counts,
    #: detected/corrected/undetected, recall, escalations); attached by
    #: the engine when a policy or corruption injection was active
    integrity: Optional[Dict] = None
    #: canonical traffic spec string (online mode only)
    traffic: Optional[str] = None
    #: canonical fault spec string (None = no injection)
    faults: Optional[str] = None
    #: queueing split (online mode only): latency == queue_delay + service
    queue_delay_cycles: Optional[Dict[str, float]] = None
    service_cycles: Optional[Dict[str, float]] = None
    #: availability block: success rate, status counts, retries/failovers,
    #: per-class failure counts, injected faults, worker health events
    availability: Optional[Dict] = None
    #: per-request detail (with outputs); rides along, excluded from as_dict
    results: List = field(default_factory=list, repr=False)
    #: rolling-metrics window samples (``observe=True`` online runs);
    #: schema documented on :func:`repro.obs.metrics.build_timeline`
    timeline: Optional[List[Dict]] = None
    #: the run's SpanRecorder (``observe=True``); rides along for trace
    #: export (:func:`repro.obs.export.chrome_trace`), excluded from JSON
    spans: Optional[object] = field(default=None, repr=False)
    #: raw dispatcher event log (online runs); feeds :meth:`events`
    dispatch_events: List = field(default_factory=list, repr=False)

    @property
    def requests_per_second(self) -> float:
        """Harness throughput — wall-clock of serving on a *ready* pool
        (pool construction is excluded in both serial and parallel modes,
        so records are comparable across ``processes`` settings)."""
        return self.n_requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def cycles_per_request(self) -> float:
        return self.total_sim_cycles / self.n_requests if self.n_requests else 0.0

    @property
    def requests_per_megacycle(self) -> float:
        """Modelled-silicon throughput over the simulated makespan — in
        online mode the *sustained* rate under the offered load."""
        if not self.makespan_cycles:
            return 0.0
        return self.n_requests / self.makespan_cycles * 1e6

    @property
    def success_rate(self) -> float:
        """Fraction of requests that completed ``ok`` (1.0 when n == 0)."""
        if self.availability is None:
            return 1.0
        return self.availability.get("success_rate", 1.0)

    def as_dict(self) -> dict:
        record = {
            "mode": self.mode,
            "n_requests": self.n_requests,
            "pool_size": self.pool_size,
            "processes": self.processes,
            "requested_processes": (
                self.processes
                if self.requested_processes is None
                else self.requested_processes
            ),
            "policy": self.policy,
            "admission": self.admission,
            "wall_seconds": round(self.wall_seconds, 6),
            "requests_per_second": round(self.requests_per_second, 3),
            "total_sim_cycles": self.total_sim_cycles,
            "makespan_cycles": self.makespan_cycles,
            "cycles_per_request": round(self.cycles_per_request, 1),
            "requests_per_megacycle": round(self.requests_per_megacycle, 4),
            "latency_cycles": {k: round(v, 1) for k, v in self.latency_cycles.items()},
            "per_kind": dict(self.per_kind),
            "per_worker": {
                str(k): {
                    m: (round(v, 4) if m == "utilization" else v)
                    for m, v in stats.items()
                }
                for k, stats in sorted(self.per_worker.items())
            },
            "phase_cycles": self.breakdown.as_dict(),
            "verified": self.verified,
            "faults": self.faults,
            "availability": self.availability,
        }
        if self.mode == "online":
            record["traffic"] = self.traffic
            record["queue_delay_cycles"] = {
                k: round(v, 1) for k, v in (self.queue_delay_cycles or {}).items()
            }
            record["service_cycles"] = {
                k: round(v, 1) for k, v in (self.service_cycles or {}).items()
            }
        if self.replay is not None:
            record["replay"] = self.replay
        if self.autotune is not None:
            record["autotune"] = self.autotune
        if self.integrity is not None:
            record["integrity"] = self.integrity
        if self.timeline is not None:
            record["timeline"] = self.timeline
        return record

    def events(self) -> List[Dict]:
        """The run's chronological event stream, merged and cycle-sorted.

        Unifies the three logs that used to require hand zip-merging:
        dispatcher lifecycle events (``source="dispatch"``:
        arrival/dispatch/completion), fault events (``source="fault"``:
        fail/retry/shed), and worker health transitions
        (``source="health"``: quarantine/probation/reinstatement).  The
        sort is stable, so same-cycle events keep their per-log order.
        """
        merged: List[Dict] = []
        for event in self.dispatch_events:
            source = "fault" if event.kind in ("fail", "retry", "shed") else "dispatch"
            entry: Dict = {
                "cycle": event.cycle, "source": source,
                "kind": event.kind, "request": event.request_id,
            }
            if event.worker is not None:
                entry["worker"] = event.worker
            merged.append(entry)
        for event in (self.availability or {}).get("worker_events", []):
            merged.append({
                "cycle": event["cycle"], "source": "health",
                "kind": event["event"], "worker": event["worker"],
            })
        merged.sort(key=lambda entry: entry["cycle"])
        return merged

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def summary(self) -> str:
        lat = self.latency_cycles
        lines = [
            f"served {self.n_requests} requests over {self.pool_size} ARCANE "
            f"instance(s), {self.processes} process(es), "
            + (f"traffic={self.traffic}" if self.mode == "online"
               else f"policy={self.policy}")
            + (f", faults={self.faults}" if self.faults else ""),
            f"  wall-clock      : {self.wall_seconds:.2f} s "
            f"({self.requests_per_second:.1f} req/s)",
            f"  simulated       : {self.total_sim_cycles:,} cycles total, "
            f"{self.cycles_per_request:,.0f} cycles/request",
            f"  pool makespan   : {self.makespan_cycles:,} cycles "
            f"({self.requests_per_megacycle:.2f} req/Mcycle"
            + (" sustained)" if self.mode == "online" else ")"),
            f"  latency (cycles): p50={lat.get('p50', 0):,.0f} "
            f"p90={lat.get('p90', 0):,.0f} p99={lat.get('p99', 0):,.0f} "
            f"max={lat.get('max', 0):,.0f}",
        ]
        if self.mode == "online" and self.queue_delay_cycles is not None:
            q = self.queue_delay_cycles
            lines.append(
                f"  queue delay     : p50={q.get('p50', 0):,.0f} "
                f"p90={q.get('p90', 0):,.0f} p99={q.get('p99', 0):,.0f} "
                f"max={q.get('max', 0):,.0f}"
            )
        if self.availability is not None:
            avail = self.availability
            statuses = avail.get("statuses", {})
            corrupted = statuses.get("corrupted", 0)
            lines.append(
                f"  availability    : {avail.get('success_rate', 1.0):.1%} ok "
                f"({statuses.get('failed', 0)} failed, "
                f"{statuses.get('timed_out', 0)} timed out, "
                f"{statuses.get('shed', 0)} shed"
                + (f", {corrupted} corrupted" if corrupted else "")
                + f"; {avail.get('retries', 0)} retries, "
                f"{avail.get('failovers', 0)} failovers)"
            )
            if avail.get("worker_events"):
                events = avail["worker_events"]
                counts: Dict[str, int] = {}
                for event in events:
                    counts[event["event"]] = counts.get(event["event"], 0) + 1
                lines.append(
                    "  worker health   : "
                    + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
                )
        if self.timeline:
            peak_queue = max((s.get("queue_depth", 0) for s in self.timeline), default=0)
            peak_flight = max((s.get("in_flight", 0) for s in self.timeline), default=0)
            interval = self.timeline[0]["end_cycle"] - self.timeline[0]["start_cycle"]
            lines.append(
                f"  timeline        : {len(self.timeline)} windows x "
                f"{interval:,} cycles; peak queue={peak_queue}, "
                f"peak in-flight={peak_flight}"
            )
        if self.per_worker:
            util = ", ".join(
                f"w{worker}={stats.get('utilization', 0.0):.0%}"
                for worker, stats in sorted(self.per_worker.items())
            )
            lines.append(f"  utilization     : {util}")
        lines.append(
            "  per kind        : "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.per_kind.items()))
        )
        if self.integrity is not None:
            integ = self.integrity
            injected = sum(integ.get("injected", {}).values())
            parts = [
                f"policy={integ.get('policy', 'off')}",
                f"injected={injected}",
                f"detected={integ.get('detected', 0)}",
                f"corrected={integ.get('corrected', 0)}",
                f"recovered={integ.get('recovered', 0)}",
            ]
            if "recall" in integ:
                parts.append(f"undetected={integ.get('undetected', 0)}")
                parts.append(f"recall={integ['recall']:.2f}")
            lines.append("  integrity       : " + " ".join(parts))
        if self.verified is not None:
            lines.append(f"  verified        : {'all outputs match golden' if self.verified else 'MISMATCH'}")
        return "\n".join(lines)


def build_serving_report(
    results: Sequence,  # Sequence[RequestResult]
    pool_size: int,
    processes: int,
    policy: str,
    wall_seconds: float,
    verified: Optional[bool] = None,
    mode: str = "offline",
    traffic: Optional[str] = None,
    faults: Optional[str] = None,
    health: Optional[Dict] = None,
    requested_processes: Optional[int] = None,
    admission: Optional[str] = None,
) -> ServingReport:
    """Fold per-request results into one :class:`ServingReport`.

    Offline latency is service time; online latency is end-to-end
    (``completion - arrival``), with the queue-delay and service splits
    reported alongside, and the makespan is the last completion cycle.
    Latency/throughput stats cover completed requests only; failed and
    shed requests are folded into the availability block.  ``health``
    carries the engine's injector/supervisor/worker-counter record.
    """
    if mode not in MODES:
        raise ValueError(f"unknown serving mode {mode!r}; expected one of {MODES}")
    statuses = {"ok": 0, "failed": 0, "timed_out": 0, "shed": 0}
    for result in results:
        statuses[result.status] = statuses.get(result.status, 0) + 1
    completed = [r for r in results if r.status in ("ok", "timed_out", "corrupted")]
    services = [r.sim_cycles for r in completed]
    per_kind: Dict[str, int] = {}
    # seed every pool slot so idle workers report served=0 / 0% utilization
    # instead of silently vanishing from the record
    per_worker: Dict[int, Dict[str, float]] = {
        w: {"served": 0, "busy_cycles": 0, "recoveries": 0, "rebuilds": 0}
        for w in range(pool_size)
    }
    if health is not None:
        for worker, counters in health.get("workers", {}).items():
            stats = per_worker.setdefault(
                worker, {"served": 0, "busy_cycles": 0, "recoveries": 0, "rebuilds": 0}
            )
            stats["recoveries"] = counters.get("recoveries", 0)
            stats["rebuilds"] = counters.get("rebuilds", 0)
    breakdown = PhaseBreakdown()
    for result in results:
        per_kind[result.kind] = per_kind.get(result.kind, 0) + 1
        if result.worker < 0 or result.status not in (
            "ok", "timed_out", "corrupted"
        ):
            continue  # shed/failed results consumed no worker cycles
        worker = per_worker.setdefault(
            result.worker,
            {"served": 0, "busy_cycles": 0, "recoveries": 0, "rebuilds": 0},
        )
        worker["served"] += 1
        worker["busy_cycles"] += result.sim_cycles
        breakdown.merge(result.breakdown)

    queue_delays: Optional[Dict[str, float]] = None
    service_stats: Optional[Dict[str, float]] = None
    if mode == "online":
        missing = [
            r.request_id for r in completed
            if r.latency_cycles is None or r.queue_delay_cycles is None
        ]
        if missing:
            raise ValueError(
                f"online report needs simulated timelines; requests {missing} "
                "have none (were they served offline?)"
            )
        latencies = [r.latency_cycles for r in completed]
        queue_delays = latency_stats([r.queue_delay_cycles for r in completed])
        service_stats = latency_stats(services)
        makespan = max((r.completion_cycle for r in completed), default=0)
    else:
        latencies = services
        makespan = max(
            (int(w["busy_cycles"]) for w in per_worker.values()), default=0
        )
    for stats in per_worker.values():
        stats["utilization"] = (
            stats["busy_cycles"] / makespan if makespan else 0.0
        )

    n = len(results)
    health = health or {}
    availability = {
        "success_rate": round(statuses["ok"] / n, 6) if n else 1.0,
        "statuses": statuses,
        "attempts": sum(r.attempts for r in results),
        "retries": health.get("retries", sum(r.attempts - 1 for r in results)),
        "failovers": health.get("failovers", 0),
        "failed_attempts_by_class": health.get("failed_attempts_by_class", {}),
        "injected_faults": health.get("injected", {}),
        "worker_events": health.get("worker_events", []),
    }
    return ServingReport(
        n_requests=n,
        pool_size=pool_size,
        processes=processes,
        policy=policy,
        wall_seconds=wall_seconds,
        total_sim_cycles=sum(r.sim_cycles for r in results),
        makespan_cycles=makespan,
        latency_cycles=latency_stats(latencies),
        per_kind=per_kind,
        per_worker=per_worker,
        breakdown=breakdown,
        verified=verified,
        mode=mode,
        traffic=traffic,
        faults=faults,
        queue_delay_cycles=queue_delays,
        service_cycles=service_stats,
        availability=availability,
        requested_processes=requested_processes,
        admission=admission,
    )
