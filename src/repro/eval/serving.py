"""Aggregate serving metrics: throughput and latency percentiles.

A :class:`ServingReport` condenses one batch served by the
:class:`~repro.serve.engine.ServingEngine` into the numbers a capacity
planner reads: requests per second of harness wall-clock, simulated
cycles per request (mean and p50/p90/p99 latency), the pool's simulated
makespan (the slowest worker's accumulated cycles — the batch's
simulated wall-clock on real silicon) and the derived requests per
simulated megacycle.  ``as_dict`` is JSON-clean; ``bench_serving.py``
persists it as the repo's serving-perf trajectory record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.runtime.phases import PhaseBreakdown


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]); 0.0 for no samples."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass
class ServingReport:
    """What one served batch measured."""

    n_requests: int
    pool_size: int
    processes: int
    policy: str
    wall_seconds: float
    total_sim_cycles: int
    makespan_cycles: int
    latency_cycles: Dict[str, float]
    per_kind: Dict[str, int]
    per_worker: Dict[int, Dict[str, int]]
    breakdown: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    verified: Optional[bool] = None
    #: per-request detail (with outputs); rides along, excluded from as_dict
    results: List = field(default_factory=list, repr=False)

    @property
    def requests_per_second(self) -> float:
        """Harness throughput — wall-clock of serving on a *ready* pool
        (pool construction is excluded in both serial and parallel modes,
        so records are comparable across ``processes`` settings)."""
        return self.n_requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def cycles_per_request(self) -> float:
        return self.total_sim_cycles / self.n_requests if self.n_requests else 0.0

    @property
    def requests_per_megacycle(self) -> float:
        """Modelled-silicon throughput over the pool's simulated makespan."""
        if not self.makespan_cycles:
            return 0.0
        return self.n_requests / self.makespan_cycles * 1e6

    def as_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "pool_size": self.pool_size,
            "processes": self.processes,
            "policy": self.policy,
            "wall_seconds": round(self.wall_seconds, 6),
            "requests_per_second": round(self.requests_per_second, 3),
            "total_sim_cycles": self.total_sim_cycles,
            "makespan_cycles": self.makespan_cycles,
            "cycles_per_request": round(self.cycles_per_request, 1),
            "requests_per_megacycle": round(self.requests_per_megacycle, 4),
            "latency_cycles": {k: round(v, 1) for k, v in self.latency_cycles.items()},
            "per_kind": dict(self.per_kind),
            "per_worker": {str(k): dict(v) for k, v in sorted(self.per_worker.items())},
            "phase_cycles": self.breakdown.as_dict(),
            "verified": self.verified,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def summary(self) -> str:
        lat = self.latency_cycles
        lines = [
            f"served {self.n_requests} requests over {self.pool_size} ARCANE "
            f"instance(s), {self.processes} process(es), policy={self.policy}",
            f"  wall-clock      : {self.wall_seconds:.2f} s "
            f"({self.requests_per_second:.1f} req/s)",
            f"  simulated       : {self.total_sim_cycles:,} cycles total, "
            f"{self.cycles_per_request:,.0f} cycles/request",
            f"  pool makespan   : {self.makespan_cycles:,} cycles "
            f"({self.requests_per_megacycle:.2f} req/Mcycle)",
            f"  latency (cycles): p50={lat.get('p50', 0):,.0f} "
            f"p90={lat.get('p90', 0):,.0f} p99={lat.get('p99', 0):,.0f} "
            f"max={lat.get('max', 0):,.0f}",
            "  per kind        : "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.per_kind.items())),
        ]
        if self.verified is not None:
            lines.append(f"  verified        : {'all outputs match golden' if self.verified else 'MISMATCH'}")
        return "\n".join(lines)


def build_serving_report(
    results: Sequence,  # Sequence[RequestResult]
    pool_size: int,
    processes: int,
    policy: str,
    wall_seconds: float,
    verified: Optional[bool] = None,
) -> ServingReport:
    """Fold per-request results into one :class:`ServingReport`."""
    latencies: List[int] = sorted(r.sim_cycles for r in results)
    per_kind: Dict[str, int] = {}
    per_worker: Dict[int, Dict[str, int]] = {}
    breakdown = PhaseBreakdown()
    for result in results:
        per_kind[result.kind] = per_kind.get(result.kind, 0) + 1
        worker = per_worker.setdefault(result.worker, {"served": 0, "busy_cycles": 0})
        worker["served"] += 1
        worker["busy_cycles"] += result.sim_cycles
        breakdown.merge(result.breakdown)
    latency_cycles = {
        "min": float(latencies[0]) if latencies else 0.0,
        "mean": (sum(latencies) / len(latencies)) if latencies else 0.0,
        "p50": percentile(latencies, 50),
        "p90": percentile(latencies, 90),
        "p99": percentile(latencies, 99),
        "max": float(latencies[-1]) if latencies else 0.0,
    }
    return ServingReport(
        n_requests=len(results),
        pool_size=pool_size,
        processes=processes,
        policy=policy,
        wall_seconds=wall_seconds,
        total_sim_cycles=sum(latencies),
        makespan_cycles=max(
            (w["busy_cycles"] for w in per_worker.values()), default=0
        ),
        latency_cycles=latency_cycles,
        per_kind=per_kind,
        per_worker=per_worker,
        breakdown=breakdown,
        verified=verified,
    )
