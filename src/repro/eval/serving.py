"""Aggregate serving metrics: throughput, latency, and the queueing split.

A :class:`ServingReport` condenses one served batch into the numbers a
capacity planner reads.  Both serving modes share the core fields —
requests per second of harness wall-clock, simulated cycles per request,
latency percentiles, the pool's simulated makespan and the derived
requests per simulated megacycle — but they mean slightly different
things per mode:

* **offline** (``ServingEngine.serve``): latency is pure service time,
  and the makespan is the slowest worker's accumulated cycles (requests
  are all present at cycle 0);
* **online** (``ServingEngine.serve_online``): requests arrive over
  simulated time, so end-to-end latency splits into
  ``queue_delay + service`` (reported as separate percentile blocks),
  the makespan is the cycle the last request completes, and
  ``requests_per_megacycle`` over that makespan is the pool's
  *sustained* throughput under the offered load.

``per_worker`` carries each worker's served count, busy cycles and
utilization (busy / makespan — idle gaps between arrivals count against
it in online mode).  ``as_dict`` is JSON-clean; ``bench_serving.py``
persists both modes as the repo's serving-perf trajectory record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.runtime.phases import PhaseBreakdown

#: Serving modes a report can describe.
MODES = ("offline", "online")


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]); 0.0 for no samples."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def latency_stats(values: Sequence[float]) -> Dict[str, float]:
    """The standard min/mean/p50/p90/p99/max block over a sample list."""
    ordered = sorted(float(v) for v in values)
    return {
        "min": ordered[0] if ordered else 0.0,
        "mean": (sum(ordered) / len(ordered)) if ordered else 0.0,
        "p50": percentile(ordered, 50),
        "p90": percentile(ordered, 90),
        "p99": percentile(ordered, 99),
        "max": ordered[-1] if ordered else 0.0,
    }


@dataclass
class ServingReport:
    """What one served batch measured."""

    n_requests: int
    pool_size: int
    processes: int
    policy: str
    wall_seconds: float
    total_sim_cycles: int
    makespan_cycles: int
    latency_cycles: Dict[str, float]
    per_kind: Dict[str, int]
    per_worker: Dict[int, Dict[str, float]]
    breakdown: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    verified: Optional[bool] = None
    mode: str = "offline"
    #: canonical traffic spec string (online mode only)
    traffic: Optional[str] = None
    #: queueing split (online mode only): latency == queue_delay + service
    queue_delay_cycles: Optional[Dict[str, float]] = None
    service_cycles: Optional[Dict[str, float]] = None
    #: per-request detail (with outputs); rides along, excluded from as_dict
    results: List = field(default_factory=list, repr=False)

    @property
    def requests_per_second(self) -> float:
        """Harness throughput — wall-clock of serving on a *ready* pool
        (pool construction is excluded in both serial and parallel modes,
        so records are comparable across ``processes`` settings)."""
        return self.n_requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def cycles_per_request(self) -> float:
        return self.total_sim_cycles / self.n_requests if self.n_requests else 0.0

    @property
    def requests_per_megacycle(self) -> float:
        """Modelled-silicon throughput over the simulated makespan — in
        online mode the *sustained* rate under the offered load."""
        if not self.makespan_cycles:
            return 0.0
        return self.n_requests / self.makespan_cycles * 1e6

    def as_dict(self) -> dict:
        record = {
            "mode": self.mode,
            "n_requests": self.n_requests,
            "pool_size": self.pool_size,
            "processes": self.processes,
            "policy": self.policy,
            "wall_seconds": round(self.wall_seconds, 6),
            "requests_per_second": round(self.requests_per_second, 3),
            "total_sim_cycles": self.total_sim_cycles,
            "makespan_cycles": self.makespan_cycles,
            "cycles_per_request": round(self.cycles_per_request, 1),
            "requests_per_megacycle": round(self.requests_per_megacycle, 4),
            "latency_cycles": {k: round(v, 1) for k, v in self.latency_cycles.items()},
            "per_kind": dict(self.per_kind),
            "per_worker": {
                str(k): {
                    m: (round(v, 4) if m == "utilization" else v)
                    for m, v in stats.items()
                }
                for k, stats in sorted(self.per_worker.items())
            },
            "phase_cycles": self.breakdown.as_dict(),
            "verified": self.verified,
        }
        if self.mode == "online":
            record["traffic"] = self.traffic
            record["queue_delay_cycles"] = {
                k: round(v, 1) for k, v in (self.queue_delay_cycles or {}).items()
            }
            record["service_cycles"] = {
                k: round(v, 1) for k, v in (self.service_cycles or {}).items()
            }
        return record

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def summary(self) -> str:
        lat = self.latency_cycles
        lines = [
            f"served {self.n_requests} requests over {self.pool_size} ARCANE "
            f"instance(s), {self.processes} process(es), "
            + (f"traffic={self.traffic}" if self.mode == "online"
               else f"policy={self.policy}"),
            f"  wall-clock      : {self.wall_seconds:.2f} s "
            f"({self.requests_per_second:.1f} req/s)",
            f"  simulated       : {self.total_sim_cycles:,} cycles total, "
            f"{self.cycles_per_request:,.0f} cycles/request",
            f"  pool makespan   : {self.makespan_cycles:,} cycles "
            f"({self.requests_per_megacycle:.2f} req/Mcycle"
            + (" sustained)" if self.mode == "online" else ")"),
            f"  latency (cycles): p50={lat.get('p50', 0):,.0f} "
            f"p90={lat.get('p90', 0):,.0f} p99={lat.get('p99', 0):,.0f} "
            f"max={lat.get('max', 0):,.0f}",
        ]
        if self.mode == "online" and self.queue_delay_cycles is not None:
            q = self.queue_delay_cycles
            lines.append(
                f"  queue delay     : p50={q.get('p50', 0):,.0f} "
                f"p90={q.get('p90', 0):,.0f} p99={q.get('p99', 0):,.0f} "
                f"max={q.get('max', 0):,.0f}"
            )
        if self.per_worker:
            util = ", ".join(
                f"w{worker}={stats.get('utilization', 0.0):.0%}"
                for worker, stats in sorted(self.per_worker.items())
            )
            lines.append(f"  utilization     : {util}")
        lines.append(
            "  per kind        : "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.per_kind.items()))
        )
        if self.verified is not None:
            lines.append(f"  verified        : {'all outputs match golden' if self.verified else 'MISMATCH'}")
        return "\n".join(lines)


def build_serving_report(
    results: Sequence,  # Sequence[RequestResult]
    pool_size: int,
    processes: int,
    policy: str,
    wall_seconds: float,
    verified: Optional[bool] = None,
    mode: str = "offline",
    traffic: Optional[str] = None,
) -> ServingReport:
    """Fold per-request results into one :class:`ServingReport`.

    Offline latency is service time; online latency is end-to-end
    (``completion - arrival``), with the queue-delay and service splits
    reported alongside, and the makespan is the last completion cycle.
    """
    if mode not in MODES:
        raise ValueError(f"unknown serving mode {mode!r}; expected one of {MODES}")
    services = [r.sim_cycles for r in results]
    per_kind: Dict[str, int] = {}
    # seed every pool slot so idle workers report served=0 / 0% utilization
    # instead of silently vanishing from the record
    per_worker: Dict[int, Dict[str, float]] = {
        w: {"served": 0, "busy_cycles": 0} for w in range(pool_size)
    }
    breakdown = PhaseBreakdown()
    for result in results:
        per_kind[result.kind] = per_kind.get(result.kind, 0) + 1
        worker = per_worker.setdefault(result.worker, {"served": 0, "busy_cycles": 0})
        worker["served"] += 1
        worker["busy_cycles"] += result.sim_cycles
        breakdown.merge(result.breakdown)

    queue_delays: Optional[Dict[str, float]] = None
    service_stats: Optional[Dict[str, float]] = None
    if mode == "online":
        missing = [
            r.request_id for r in results
            if r.latency_cycles is None or r.queue_delay_cycles is None
        ]
        if missing:
            raise ValueError(
                f"online report needs simulated timelines; requests {missing} "
                "have none (were they served offline?)"
            )
        latencies = [r.latency_cycles for r in results]
        queue_delays = latency_stats([r.queue_delay_cycles for r in results])
        service_stats = latency_stats(services)
        makespan = max((r.completion_cycle for r in results), default=0)
    else:
        latencies = services
        makespan = max(
            (int(w["busy_cycles"]) for w in per_worker.values()), default=0
        )
    for stats in per_worker.values():
        stats["utilization"] = (
            stats["busy_cycles"] / makespan if makespan else 0.0
        )
    return ServingReport(
        n_requests=len(results),
        pool_size=pool_size,
        processes=processes,
        policy=policy,
        wall_seconds=wall_seconds,
        total_sim_cycles=sum(services),
        makespan_cycles=makespan,
        latency_cycles=latency_stats(latencies),
        per_kind=per_kind,
        per_worker=per_worker,
        breakdown=breakdown,
        verified=verified,
        mode=mode,
        traffic=traffic,
        queue_delay_cycles=queue_delays,
        service_cycles=service_stats,
    )
