"""Evaluation layer: everything behind the paper's tables and figures.

* :mod:`repro.eval.calibration` — every calibrated constant with its
  provenance and the paper anchors it targets;
* :mod:`repro.eval.area` — the component-level area model behind
  Table II and Figure 2;
* :mod:`repro.eval.throughput` — peak-GOPS arithmetic and the BLADE /
  Intel CNC comparison of section V-C;
* :mod:`repro.eval.figures` — data-series generators for Figures 3/4 and
  the headline speedups;
* :mod:`repro.eval.tables` — plain-text table rendering for the
  benchmark harness.
"""

from repro.eval.area import AreaModel, AreaBreakdown
from repro.eval.throughput import ThroughputModel, SOTA_COMPARISONS

__all__ = ["AreaModel", "AreaBreakdown", "ThroughputModel", "SOTA_COMPARISONS"]
