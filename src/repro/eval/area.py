"""Component-level area model: Table II and Figure 2.

Logic synthesis is not reproducible in Python; what *is* reproducible is
the paper's component decomposition.  The model below expresses each
block in kGE (2-input NAND-equivalent gates, the paper's unit) with
coefficients solved exactly from Table II:

* the X-HEEP baseline totals 1640 kGE;
* ARCANE adds a fixed eCPU+eMEM controller block, fixed cache-control
  logic, a fixed per-system vector-subsystem overhead (VPU control,
  reduced memory density from splitting the LLC into VPUs) and a
  per-lane datapath term::

      delta(L) = ecpu_emem + cache_ctl + vec_fixed + lane_kge * n_vpus * L

  Fitting the three Table II deltas (+356 / +465 / +678 kGE for 2/4/8
  lanes) gives ``lane_kge = 13.417`` and ``vec_fixed = 147`` with the
  controller split (5 % of baseline ~= 82 kGE eCPU+eMEM, < 4 % cache
  control ~= 20 kGE) taken from the paper's section V-A narrative.

The 65 nm LP density implied by Table II is 1.439 um^2 per GE
(2.36 mm^2 / 1640 kGE), used to convert back to silicon area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.config import ArcaneConfig

#: um^2 per gate-equivalent at the paper's 65 nm LP node (Table II).
UM2_PER_GE = 2.36e6 / 1_640_000

#: X-HEEP baseline component masses (kGE), decomposed to match the
#: Figure 2 left pie (PadRing 16 %, IMem 37 %, LLC subsystem 43 %
#: including its controller, cv32e40px ~3 %, peripherals the rest).
BASELINE_COMPONENTS_KGE: Dict[str, float] = {
    "pad_ring": 262.0,
    "imem": 610.0,
    "dmem_rams": 550.0,
    "dcache_ctl": 55.0,
    "cv32e40px": 50.0,
    "periph": 113.0,
}

BASELINE_TOTAL_KGE = sum(BASELINE_COMPONENTS_KGE.values())  # 1640

#: ARCANE increment coefficients (kGE), solved from Table II deltas.
ECPU_EMEM_KGE = 82.0  # ~5 % of baseline: CV32E40X eCPU + 16 KiB eMEM
CACHE_CTL_EXTRA_KGE = 20.0  # AT/lock/status logic (< 4 % of system)
VEC_FIXED_KGE = 147.0  # per-system VPU control + density loss
LANE_KGE = (678.0 - 356.0) / (32 - 8)  # 13.417 kGE per 32-bit lane


@dataclass(frozen=True)
class AreaBreakdown:
    """Area of one configuration, by component (kGE)."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_kge(self) -> float:
        return sum(self.components.values())

    @property
    def total_um2(self) -> float:
        return self.total_kge * 1_000 * UM2_PER_GE

    @property
    def total_mm2(self) -> float:
        return self.total_um2 / 1e6

    def share(self, component: str) -> float:
        """Component share of the total (Figure 2 percentages)."""
        return self.components[component] / self.total_kge

    def shares(self) -> Dict[str, float]:
        total = self.total_kge
        return {name: mass / total for name, mass in sorted(self.components.items())}


class AreaModel:
    """Table II / Figure 2 generator."""

    def baseline(self) -> AreaBreakdown:
        """The X-HEEP MCU with a conventional data LLC."""
        return AreaBreakdown(dict(BASELINE_COMPONENTS_KGE))

    def arcane(self, config: ArcaneConfig) -> AreaBreakdown:
        """X-HEEP with ARCANE replacing the data memory subsystem."""
        components = dict(BASELINE_COMPONENTS_KGE)
        components["dcache_ctl"] += CACHE_CTL_EXTRA_KGE
        components["ecpu_emem"] = ECPU_EMEM_KGE * (config.emem_kib / 16.0 + 1.0) / 2.0
        components["vec_subsys"] = VEC_FIXED_KGE + LANE_KGE * config.n_vpus * config.lanes
        # LLC capacity scaling relative to the paper's 128 KiB data memory.
        components["dmem_rams"] *= config.llc_kib / 128.0
        return AreaBreakdown(components)

    def overhead_percent(self, config: ArcaneConfig) -> float:
        """Area overhead vs the baseline (the Table II percentages)."""
        base = self.baseline().total_kge
        return (self.arcane(config).total_kge - base) / base * 100.0

    def table2(self) -> Dict[str, Dict[str, float]]:
        """The full Table II: three lane configs vs baseline."""
        rows: Dict[str, Dict[str, float]] = {}
        for lanes in (2, 4, 8):
            config = ArcaneConfig(lanes=lanes)
            breakdown = self.arcane(config)
            rows[f"ARCANE (4 VPUs, {lanes} lanes)"] = {
                "area_um2": breakdown.total_um2,
                "area_kge": breakdown.total_kge,
                "overhead_pct": self.overhead_percent(config),
            }
        base = self.baseline()
        rows["X-HEEP (4 DMem banks)"] = {
            "area_um2": base.total_um2,
            "area_kge": base.total_kge,
            "overhead_pct": 0.0,
        }
        return rows

    def llc_subsystem_kge(self, config: ArcaneConfig) -> float:
        """The compute-capable LLC subsystem (used for GOPS/mm^2)."""
        breakdown = self.arcane(config)
        return (
            breakdown.components["dmem_rams"]
            + breakdown.components["vec_subsys"]
            + breakdown.components["dcache_ctl"]
            + breakdown.components["ecpu_emem"]
        )
