"""One-shot reproduction report: every artifact, one invocation.

``python -m repro.eval.report [--fast]`` renders Table I/II, Figure 2,
condensed Figure 3/4 series, the headline anchors and the SOTA
comparison to stdout — the quickest way to audit the reproduction
without running the full benchmark harness.

``--fast`` restricts the simulated grid to small inputs (seconds instead
of minutes); the printed tables say which grid was used.
"""

from __future__ import annotations

import argparse
from typing import List

from repro.baselines.multicore import MulticoreModel
from repro.core.config import ArcaneConfig
from repro.eval.area import AreaModel
from repro.eval.calibration import PAPER_ANCHORS
from repro.eval.figures import fig3_overhead_series, headline_speedups, measure_conv_layer
from repro.eval.tables import render_table
from repro.eval.throughput import ThroughputModel


def table2_section() -> str:
    model = AreaModel()
    rows = []
    for lanes in (2, 4, 8):
        config = ArcaneConfig(lanes=lanes)
        breakdown = model.arcane(config)
        rows.append([
            f"ARCANE 4 VPUs x {lanes} lanes",
            f"{breakdown.total_mm2:.2f}",
            f"{breakdown.total_kge:.0f}",
            f"+{model.overhead_percent(config):.1f}%",
        ])
    base = model.baseline()
    rows.append(["X-HEEP baseline", f"{base.total_mm2:.2f}", f"{base.total_kge:.0f}", "-"])
    return render_table(
        ["configuration", "mm2", "kGE", "overhead"], rows,
        title="Table II - synthesis area (65 nm LP model)",
    )


def fig3_section(fast: bool) -> str:
    sizes = (16, 32, 64) if fast else (16, 64, 256)
    series = fig3_overhead_series(sizes=sizes, lane_configs=(2, 8))
    rows = [
        [r["lanes"], r["size"], f"{r['preamble_pct']:.1f}%", f"{r['allocation_pct']:.1f}%",
         f"{r['compute_pct']:.1f}%", f"{r['writeback_pct']:.1f}%"]
        for r in series
    ]
    return render_table(
        ["lanes", "size", "preamble", "alloc", "compute", "writeback"], rows,
        title=f"Figure 3 - phase shares (int32 conv layer, sizes {sizes})",
    )


def fig4_section(fast: bool) -> str:
    sizes = (16, 32, 64) if fast else (16, 64, 256)
    rows = []
    for dtype in ("int8", "int32"):
        for size in sizes:
            point = measure_conv_layer(size, 3, dtype=dtype, lanes=8)
            rows.append([
                dtype, size,
                f"{point.speedup_vs_scalar:.1f}x",
                f"{point.pulp_speedup_vs_scalar:.1f}x",
                f"{point.speedup_vs_pulp:.1f}x",
            ])
    return render_table(
        ["dtype", "size", "ARCANE", "CV32E40PX", "ARCANE/PX"], rows,
        title=f"Figure 4 (condensed) - speedups vs CV32E40X, 3x3, 8 lanes, sizes {sizes}",
    )


def headline_section(fast: bool) -> str:
    if fast:
        return "(headline anchors need the 256x256 grid; rerun without --fast)"
    measured = headline_speedups()
    rows = [
        ["int8 3x3 8-lane", "30x", f"{measured['speedup_int8_3x3_8lane']:.1f}x"],
        ["int8 7x7 8-lane", "84x", f"{measured['speedup_int8_7x7_8lane']:.1f}x"],
        ["multi-instance", "120x", f"{measured['speedup_multi_instance_3x3']:.1f}x"],
        ["vs XCVPULP (7x7)", "16x", f"{measured['speedup_vs_pulp_7x7']:.1f}x"],
    ]
    return render_table(["anchor", "paper", "measured"], rows,
                        title="Headline speedups (section V-C / VI)")


def sota_section() -> str:
    throughput = ThroughputModel()
    table = throughput.versus(ArcaneConfig(lanes=8), clock_mhz=265.0)
    rows = [
        [name, f"{vals['peak_gops']:.1f}", f"{vals['gops_per_mm2']:.1f}"]
        for name, vals in table.items()
    ]
    rows.append(["15-core CV32E40PX (theoretical)",
                 f"peak speedup {MulticoreModel().peak():.0f}x", "-"])
    return render_table(["system", "peak GOPS", "GOPS/mm2"], rows,
                        title="Section V-C - state-of-the-art comparison")


def anchors_section() -> str:
    rows = [[a.name, f"{a.paper_value:g} {a.unit}", a.source] for a in PAPER_ANCHORS]
    return render_table(["anchor", "paper value", "source"], rows,
                        title="Calibration anchors (see repro/eval/calibration.py)")


def build_report(fast: bool = True) -> str:
    sections: List[str] = [
        "ARCANE reproduction report",
        "=" * 72,
        table2_section(),
        fig3_section(fast),
        fig4_section(fast),
        headline_section(fast),
        sota_section(),
        anchors_section(),
    ]
    return "\n\n".join(sections)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="small simulation grid (seconds, skips 256x256 anchors)")
    args = parser.parse_args()
    print(build_report(fast=args.fast))


if __name__ == "__main__":
    main()
