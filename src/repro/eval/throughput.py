"""Peak throughput and the state-of-the-art comparison (paper V-C).

Peak GOPS follows directly from the datapath: each 32-bit lane retires
one MAC per cycle and a MAC counts as two operations (the paper's
footnote 1), so

    peak = n_vpus * lanes * 2 * f_clock

which reproduces the paper's 17.0 GOPS at 265 MHz for 4 VPUs x 8 lanes.
BLADE and Intel CNC numbers are the constants the paper itself compares
against (with BLADE frequency-scaled to the 65 nm node's 330 MHz SRAM
clock); area efficiency for ARCANE uses the LLC-subsystem area, matching
the paper's 9.2 GOPS/mm^2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import ArcaneConfig
from repro.eval.area import UM2_PER_GE, AreaModel


@dataclass(frozen=True)
class SotaEntry:
    """One comparison point from the paper."""

    name: str
    peak_gops: float
    area_um2: float
    note: str

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6

    @property
    def gops_per_mm2(self) -> float:
        return self.peak_gops / self.area_mm2


#: The published/scaled numbers quoted in section V-C.
SOTA_COMPARISONS: Dict[str, SotaEntry] = {
    "blade": SotaEntry(
        "BLADE", peak_gops=5.3, area_um2=580e3,
        note="SRAM bit-line IMC, scaled to 65 nm / 330 MHz; basic ops only",
    ),
    "intel_cnc": SotaEntry(
        "Intel CNC", peak_gops=25.0, area_um2=1920e3,
        note="Intel 4 node; MAC-only near-LLC compute",
    ),
}


class ThroughputModel:
    """ARCANE peak-throughput arithmetic."""

    def __init__(self, area_model: AreaModel = AreaModel()) -> None:
        self.area_model = area_model

    def peak_gops(self, config: ArcaneConfig, clock_mhz: float = None) -> float:
        clock = config.clock_mhz if clock_mhz is None else clock_mhz
        return config.n_vpus * config.lanes * 2 * clock / 1e3

    def area_efficiency(self, config: ArcaneConfig, clock_mhz: float = None) -> float:
        """GOPS per mm^2 of the compute-capable LLC subsystem."""
        llc_kge = self.area_model.llc_subsystem_kge(config)
        llc_mm2 = llc_kge * 1_000 * UM2_PER_GE / 1e6
        return self.peak_gops(config, clock_mhz) / llc_mm2

    def versus(self, config: ArcaneConfig, clock_mhz: float = 265.0) -> Dict[str, Dict[str, float]]:
        """The section V-C comparison table."""
        arcane_gops = self.peak_gops(config, clock_mhz)
        rows: Dict[str, Dict[str, float]] = {
            "ARCANE": {
                "peak_gops": arcane_gops,
                "area_mm2": self.area_model.llc_subsystem_kge(config)
                * 1_000 * UM2_PER_GE / 1e6,
                "gops_per_mm2": self.area_efficiency(config, clock_mhz),
                "ratio_vs_arcane": 1.0,
            }
        }
        for entry in SOTA_COMPARISONS.values():
            rows[entry.name] = {
                "peak_gops": entry.peak_gops,
                "area_mm2": entry.area_mm2,
                "gops_per_mm2": entry.gops_per_mm2,
                "ratio_vs_arcane": entry.peak_gops / arcane_gops,
            }
        return rows
