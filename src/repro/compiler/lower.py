"""Lowering: scheduled IR -> a registered :class:`KernelSpec`.

:func:`compile_kernel` turns a vectorized :class:`Schedule` into the same
two artifacts a handwritten kernel module exports:

* an auto-generated **preamble** — unpacks the instruction word with the
  Table I operand-packing convention, resolves logical matrix registers
  through the :class:`~repro.runtime.matrix.MatrixMap`, checks element
  types, and infers/validates every symbolic dimension from the actual
  operand shapes (:func:`repro.compiler.ir.bind_shapes`);
* a **body generator** driving :class:`~repro.runtime.context.
  KernelContext` — it claims register windows sized by the shared
  VRF-capacity policy (:func:`repro.runtime.kernels.common.k_strip_size`),
  keeps source rows resident in direct-mapped row caches (so a B-matrix
  strip is DMA-loaded once and reused across output rows exactly like the
  handwritten GeMM), batches strip loads under one cache-lock
  acquisition, folds zero coefficients at launch time (``beta == 0``
  skips the C load and becomes ``vclear``), and skips null ``vmacc.vs``
  contributions like the handwritten kernels do.

The result registers into the kernel library by ``func5`` and is
indistinguishable from a handwritten kernel to the decoder/scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.compiler.ir import (
    Access,
    Assign,
    Accum,
    BinOp,
    CompilerError,
    Const,
    Expr,
    KernelProgram,
    Loop,
    RowRef,
    Stmt,
    StripLoop,
    Sym,
    VClearElem,
    VEwise,
    VInit,
    VMacc,
    VReduce,
    VectorStmt,
    accesses,
    bind_shapes,
    eval_expr,
    key,
    syms,
    walk,
)
from repro.compiler.schedule import Schedule
from repro.isa.xmnmc import OffloadRequest
from repro.runtime.context import KernelContext
from repro.runtime.kernel_lib import KernelSpec, PreambleResult
from repro.runtime.kernels.common import k_strip_size, shard_rows, signed16
from repro.runtime.matrix import MatrixBinding, MatrixMap
from repro.runtime.queue import QueuedKernel
from repro.vpu.visa import OP_TRAITS, VectorOpcode


class LoweringError(CompilerError):
    """The scheduled program cannot be mapped onto the micro-program API."""


#: Which opcodes each vector statement's lowering can emit (see
#: ``_Interp._exec_vector``).  Consulted against ``OP_TRAITS`` when
#: planning register windows.
_STMT_OPCODES = {
    VInit: (VectorOpcode.VCLEAR, VectorOpcode.VMV, VectorOpcode.VMUL_VS),
    VEwise: (VectorOpcode.VADD_VV, VectorOpcode.VMUL_VV),
    VMacc: (VectorOpcode.VMACC_VS,),
    VReduce: (VectorOpcode.VREDSUM, VectorOpcode.VADD_VV),
    VClearElem: (VectorOpcode.VCLEAR,),
}


# ---------------------------------------------------------------------------
# compile-time analysis
# ---------------------------------------------------------------------------


@dataclass
class _CacheSpec:
    """Register-window plan for one source operand's resident rows."""

    operand: str
    capacity: Optional[Expr]  # None -> strip-sized (runtime S)
    strip_row: Optional[Expr] = None  # representative row expr (strip operands)

    @property
    def is_strip(self) -> bool:
        return self.capacity is None


@dataclass
class _Plan:
    """Everything the generated body needs, derived once at compile time."""

    program: KernelProgram
    store_loop: Optional[Loop]
    strip: Optional[StripLoop]
    caches: Dict[str, _CacheSpec]
    needs_scratch: bool
    dest_row: Expr
    sharded_var: Optional[str]


def _row_uses(program: KernelProgram) -> Dict[str, List[Expr]]:
    """operand -> row expressions of every vector/scalar access."""
    uses: Dict[str, List[Expr]] = {}

    def note(operand: str, row: Expr) -> None:
        uses.setdefault(operand, []).append(row)

    def note_scalar(expr: Expr) -> None:
        for access in accesses(expr):
            note(access.operand, access.row)

    for stmt in walk(program.body):
        if isinstance(stmt, VInit):
            note_scalar(stmt.coeff)
            if stmt.src is not None:
                note(stmt.src.operand, stmt.src.row)
        elif isinstance(stmt, VEwise):
            note(stmt.a.operand, stmt.a.row)
            note(stmt.b.operand, stmt.b.row)
        elif isinstance(stmt, VMacc):
            note_scalar(stmt.coeff)
            note(stmt.src.operand, stmt.src.row)
        elif isinstance(stmt, VReduce):
            note(stmt.src.operand, stmt.src.row)
    return uses


def _analyze(program: KernelProgram) -> _Plan:
    if program.vector_var is None:
        raise LoweringError(
            f"kernel {program.name!r} is not vectorized; apply "
            "Schedule.vectorize() before lowering"
        )

    # Residual element statements: only the scalar destination-clear form
    # survives vectorization; rewrite it, reject anything else.
    def rewrite_residuals(block: List[Stmt]) -> None:
        for index, stmt in enumerate(block):
            if isinstance(stmt, (Loop, StripLoop)):
                rewrite_residuals(stmt.body)
            elif isinstance(stmt, Assign):
                if isinstance(stmt.value, Const) and stmt.value.value == 0:
                    block[index] = VClearElem(stmt.dest.row, stmt.dest.col)
                else:
                    raise LoweringError(
                        f"element statement {stmt.dest!r} = {stmt.value!r} "
                        "was not vectorized and has no scalar lowering"
                    )
            elif isinstance(stmt, Accum):
                raise LoweringError(
                    f"element accumulation into {stmt.dest!r} was not "
                    "vectorized (is it missing a loop over the vector var?)"
                )

    rewrite_residuals(program.body)

    vector_stmts = [s for s in walk(program.body) if isinstance(s, VectorStmt)]
    if not vector_stmts:
        raise LoweringError(f"kernel {program.name!r} has no vector statements")
    dest_rows = {key(s.dest_row) for s in vector_stmts}
    if len(dest_rows) > 1:
        raise LoweringError(
            f"kernel writes {len(dest_rows)} distinct destination rows per "
            f"iteration ({sorted(dest_rows)}); one accumulator row is supported"
        )
    dest_row = vector_stmts[0].dest_row

    # loop inventory
    strip = next((s for s in walk(program.body) if isinstance(s, StripLoop)), None)
    strip_syms = (
        {strip.outer_var, strip.inner_var, strip.size_sym} if strip else set()
    )
    parallel_loops: List[Loop] = []
    reduction_extents: Dict[str, Expr] = {}
    sharded_var: Optional[str] = None

    def scan(block: Sequence[Stmt]) -> None:
        nonlocal sharded_var
        for stmt in block:
            if isinstance(stmt, Loop):
                if stmt.parallel:
                    parallel_loops.append(stmt)
                    if stmt.sharded:
                        sharded_var = stmt.var
                else:
                    reduction_extents[stmt.var] = stmt.extent
                scan(stmt.body)
            elif isinstance(stmt, StripLoop):
                scan(stmt.body)

    scan(program.body)

    dest_syms = syms(dest_row)
    bad = dest_syms & (set(reduction_extents) | strip_syms)
    if bad:
        raise LoweringError(
            f"destination row {dest_row!r} is indexed by reduction "
            f"variables {sorted(bad)}"
        )
    store_loop = None
    for loop in parallel_loops:  # scan() appends outermost-first
        if loop.var in dest_syms:
            store_loop = loop

    # first write into the accumulator must be an assignment form
    first = vector_stmts[0]
    if isinstance(first, (VMacc, VReduce)):
        raise LoweringError(
            "destination is accumulated before being initialized; start "
            "each output iteration with an assignment (e.g. acc = 0)"
        )

    # row caches
    caches: Dict[str, _CacheSpec] = {}
    for operand, rows in _row_uses(program).items():
        strip_rows = [r for r in rows if syms(r) & strip_syms]
        if strip_rows:
            if len(strip_rows) != len(rows):
                raise LoweringError(
                    f"operand {operand!r} is accessed both inside and "
                    "outside the strip-mined loop; unsupported"
                )
            if len({key(r) for r in strip_rows}) != 1:
                raise LoweringError(
                    f"operand {operand!r} has several distinct strip-row "
                    f"indexings; unsupported"
                )
            caches[operand] = _CacheSpec(operand, None, strip_rows[0])
        else:
            capacity: Expr = Const(1)
            seen = set()
            for row in rows:
                for name in syms(row) & set(reduction_extents):
                    if name not in seen:
                        seen.add(name)
                        capacity = BinOp("*", capacity, reduction_extents[name])
            caches[operand] = _CacheSpec(operand, capacity)

    strip_caches = [c for c in caches.values() if c.is_strip]
    if len(strip_caches) > 1:
        raise LoweringError(
            "strip-mined rows of more than one operand; the strip window "
            "policy supports a single resident-strip operand"
        )
    if strip is not None and not strip_caches:
        raise LoweringError(
            "strip-mined loop does not index any operand rows; remove the "
            "strip_mine() step"
        )

    for stmt in vector_stmts:
        if isinstance(stmt, VEwise):
            # vs2 has no element-offset addressing in the vector ISA
            offset = stmt.b.offset
            if not (isinstance(offset, Const) and offset.value == 0):
                raise LoweringError(
                    f"second element-wise source {stmt.b!r} needs a column "
                    "offset; only vs1 supports gather addressing"
                )

    # A reduction opcode collapses the row into vd[vd_offset]; combining
    # that value into the accumulator takes one scratch register, which
    # must be reserved out of the strip-mining budget.
    needs_scratch = any(
        OP_TRAITS[opcode].is_reduction
        for stmt in vector_stmts
        for opcode in _STMT_OPCODES[type(stmt)]
    )
    return _Plan(
        program, store_loop, strip, caches, needs_scratch, dest_row, sharded_var
    )


# ---------------------------------------------------------------------------
# runtime support
# ---------------------------------------------------------------------------


class _RowCache:
    """Direct-mapped resident-row tracking over one register window."""

    def __init__(self, window, capacity: int) -> None:
        self.window = window
        self.capacity = capacity
        self.resident: Dict[int, int] = {}  # slot -> matrix row

    def slot(self, row: int) -> int:
        return row % self.capacity

    def lookup(self, row: int) -> Optional[int]:
        slot = self.slot(row)
        if self.resident.get(slot) == row:
            return self.window[slot]
        return None

    def mark(self, row: int) -> int:
        slot = self.slot(row)
        self.resident[slot] = row
        return self.window[slot]


class _Interp:
    """Executes the scheduled IR as a micro-program on a KernelContext."""

    def __init__(
        self,
        plan: _Plan,
        kc: KernelContext,
        env: Dict[str, int],
        bindings: Dict[str, MatrixBinding],
        dest: MatrixBinding,
        shard: Optional[Tuple[int, int]],
        vl: int,
    ) -> None:
        self.plan = plan
        self.kc = kc
        self.env = env
        self.bindings = bindings
        self.dest = dest
        self.shard = shard
        self.vl = vl
        self.acc: int = -1
        self.acc_win = None
        self.tmp: int = -1
        self.caches: Dict[str, _RowCache] = {}

    # -- setup ---------------------------------------------------------------

    def claim_windows(self) -> None:
        kc, plan, env = self.kc, self.plan, self.env
        budget = kc.free_regs()
        reserved = 1 + (1 if plan.needs_scratch else 0)
        fixed = {
            name: max(1, eval_expr(spec.capacity, env))
            for name, spec in plan.caches.items()
            if not spec.is_strip
        }
        reserved += sum(fixed.values())
        strip_spec = next((c for c in plan.caches.values() if c.is_strip), None)
        if strip_spec is not None:
            total = eval_expr(plan.strip.total, env)
            size = k_strip_size(total, budget, reserved)
            if plan.strip.max_size is not None:
                # recipe-provided cap on the launch-time strip choice
                size = min(size, plan.strip.max_size)
            env[plan.strip.size_sym] = size
            self.caches[strip_spec.operand] = _RowCache(kc.claim(size), size)
        self.acc_win = kc.claim(1)
        self.acc = self.acc_win[0]
        if plan.needs_scratch:
            self.tmp = kc.claim(1)[0]
        for name, capacity in fixed.items():
            self.caches[name] = _RowCache(kc.claim(capacity), capacity)

    # -- data residency -------------------------------------------------------

    def _ensure_row(self, operand: str, row: int) -> Generator:
        cache = self.caches[operand]
        register = cache.lookup(row)
        if register is None:
            slot = cache.slot(row)
            yield from self.kc.load_rows(
                cache.window, self.bindings[operand], row, 1, reg_start=slot
            )
            register = cache.mark(row)
        return register

    def _ensure_ref(self, ref: RowRef) -> Generator:
        row = eval_expr(ref.row, self.env)
        offset = eval_expr(ref.offset, self.env)
        register = yield from self._ensure_row(ref.operand, row)
        return register, offset

    def _ensure_strip(self, count: int) -> Generator:
        """Batch-load the missing rows of the current strip (one lock)."""
        plan, env = self.plan, self.env
        spec = next(c for c in plan.caches.values() if c.is_strip)
        cache = self.caches[spec.operand]
        binding = self.bindings[spec.operand]
        specs = []
        for index in range(count):
            env[plan.strip.inner_var] = index
            row = eval_expr(spec.strip_row, env)
            if cache.lookup(row) is None:
                specs.append((cache.window, binding, row, cache.slot(row)))
                cache.mark(row)
        if specs:
            yield from self.kc.load_row_set(specs)

    # -- scalar evaluation ----------------------------------------------------

    def _eval_scalar(self, expr: Expr) -> Generator:
        """Evaluate a coefficient, reading matrix elements via the eCPU."""
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Sym):
            return self.env[expr.name]
        if isinstance(expr, Access):
            row = eval_expr(expr.row, self.env)
            col = eval_expr(expr.col, self.env)
            register = yield from self._ensure_row(expr.operand, row)
            value = yield from self.kc.read_element(register, col)
            return value
        if isinstance(expr, BinOp):
            lhs = yield from self._eval_scalar(expr.lhs)
            rhs = yield from self._eval_scalar(expr.rhs)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            if expr.op == "//":
                return lhs // rhs
        raise LoweringError(f"cannot evaluate scalar expression {expr!r}")

    # -- execution -------------------------------------------------------------

    def run(self) -> Generator:
        if (
            self.shard is not None
            and self.shard != (0, 1)
            and self.plan.sharded_var is None
        ):
            # unsharded kernel in multi-instance mode: one shard does the work
            if self.shard[0] != 0:
                return
        self.claim_windows()
        yield from self._exec_block(self.plan.program.body)
        if self.plan.store_loop is None:
            yield from self._store()

    def _store(self) -> Generator:
        row = eval_expr(self.plan.dest_row, self.env)
        yield from self.kc.store_rows(self.acc_win, self.dest, row, 1)

    def _exec_block(self, block: Sequence[Stmt]) -> Generator:
        for stmt in block:
            if isinstance(stmt, Loop):
                yield from self._exec_loop(stmt)
            elif isinstance(stmt, StripLoop):
                yield from self._exec_strip(stmt)
            elif isinstance(stmt, VectorStmt):
                yield from self._exec_vector(stmt)
            else:  # pragma: no cover - analysis rejects other forms
                raise LoweringError(f"unexpected statement {stmt!r}")

    def _exec_loop(self, loop: Loop) -> Generator:
        extent = eval_expr(loop.extent, self.env)
        start, count = 0, extent
        if loop.sharded and self.shard is not None:
            start, count = shard_rows(extent, self.shard)
        for value in range(start, start + count):
            self.env[loop.var] = value
            yield from self._exec_block(loop.body)
            if loop is self.plan.store_loop:
                yield from self._store()

    def _exec_strip(self, strip: StripLoop) -> Generator:
        total = eval_expr(strip.total, self.env)
        size = self.env[strip.size_sym]
        for outer in range((total + size - 1) // size):
            self.env[strip.outer_var] = outer
            count = min(size, total - outer * size)
            yield from self._ensure_strip(count)
            for inner in range(count):
                self.env[strip.inner_var] = inner
                yield from self._exec_block(strip.body)

    def _exec_vector(self, stmt: VectorStmt) -> Generator:
        kc, vl = self.kc, self.vl
        if isinstance(stmt, VInit):
            coeff = yield from self._eval_scalar(stmt.coeff)
            if stmt.src is None or coeff == 0:
                # launch-time constant folding: a zero coefficient clears
                # the accumulator and skips the source row DMA entirely
                yield from kc.vop(VectorOpcode.VCLEAR, vd=self.acc, vl=vl)
                return
            register, offset = yield from self._ensure_ref(stmt.src)
            if coeff == 1:
                yield from kc.vop(
                    VectorOpcode.VMV, vd=self.acc, vs1=register, offset=offset, vl=vl
                )
            else:
                yield from kc.vop(
                    VectorOpcode.VMUL_VS, vd=self.acc, vs1=register,
                    scalar=coeff, offset=offset, vl=vl,
                )
        elif isinstance(stmt, VEwise):
            reg_a, off_a = yield from self._ensure_ref(stmt.a)
            reg_b, _ = yield from self._ensure_ref(stmt.b)
            opcode = VectorOpcode.VADD_VV if stmt.op == "add" else VectorOpcode.VMUL_VV
            yield from kc.vop(
                opcode, vd=self.acc, vs1=reg_a, vs2=reg_b, offset=off_a, vl=vl
            )
        elif isinstance(stmt, VMacc):
            coeff = yield from self._eval_scalar(stmt.coeff)
            if coeff == 0:
                return  # software skips null contributions (like gemm.py)
            register, offset = yield from self._ensure_ref(stmt.src)
            yield from kc.vop(
                VectorOpcode.VMACC_VS, vd=self.acc, vs1=register,
                scalar=coeff, offset=offset, vl=vl,
            )
        elif isinstance(stmt, VReduce):
            register, offset = yield from self._ensure_ref(stmt.src)
            yield from kc.vop(
                VectorOpcode.VREDSUM, vd=self.tmp, vs1=register, offset=offset, vl=vl
            )
            col = eval_expr(stmt.col, self.env)
            yield from kc.vop(
                VectorOpcode.VADD_VV, vd=self.acc, vd_offset=col,
                vs1=self.acc, offset=col, vs2=self.tmp, vl=1,
            )
        elif isinstance(stmt, VClearElem):
            col = eval_expr(stmt.col, self.env)
            yield from kc.vop(VectorOpcode.VCLEAR, vd=self.acc, vd_offset=col, vl=1)
        else:  # pragma: no cover
            raise LoweringError(f"unknown vector statement {stmt!r}")


# ---------------------------------------------------------------------------
# the compiler entry point
# ---------------------------------------------------------------------------


def compile_kernel(
    schedule: Schedule,
    func5: int,
    description: str = "",
) -> KernelSpec:
    """Lower a scheduled kernel to a library-registrable :class:`KernelSpec`.

    Operand packing follows the Table I convention: the (up to two)
    scalar params ride in rs1, sources take (rs3.first, rs3.second,
    rs2.first) in declaration order and the destination register is
    rs2.second — so a compiled GeMM is invoked exactly like ``xmk0``.
    """
    program = schedule.program
    plan = _analyze(program)
    source_names = [op.name for op in program.sources]
    params = list(program.params)

    def preamble(request: OffloadRequest, matrix_map: MatrixMap) -> PreambleResult:
        from repro.vpu.visa import ElementType

        (p0, p1), (s3, dreg), (s1, s2) = request.pairs()
        registers = [s1, s2, s3][: len(source_names)]
        raw_params = [p0, p1][: len(params)]
        env: Dict[str, int] = {
            name: signed16(value) for name, value in zip(params, raw_params)
        }
        etype = ElementType.from_suffix(request.size_suffix)
        sources = [matrix_map.resolve(register) for register in registers]
        dest = matrix_map.resolve(dreg)
        for name, binding in zip(source_names + [program.dest.name],
                                 sources + [dest]):
            if binding.etype is not etype:
                raise ValueError(
                    f"kernel {program.name!r}: operand {name!r} is bound as "
                    f".{binding.etype.suffix} but the instruction is "
                    f".{etype.suffix}"
                )
        actual = {
            name: (binding.rows, binding.cols)
            for name, binding in zip(source_names, sources)
        }
        actual[program.dest.name] = (dest.rows, dest.cols)
        bind_shapes(program, actual, env)
        return dest, sources, env

    def body(
        kc: KernelContext,
        kernel: QueuedKernel,
        shard: Optional[Tuple[int, int]] = None,
    ) -> Generator:
        env = dict(kernel.scalars)
        bindings = dict(zip(source_names, kernel.sources))
        vl = eval_expr(program.vector_extent, env)
        if vl <= 0:
            return
        if vl > kc.max_vl:
            raise ValueError(
                f"kernel {program.name!r}: output rows of {vl} elements "
                f"exceed the {kc.max_vl}-element vector registers"
            )
        interp = _Interp(plan, kc, env, bindings, kernel.dest, shard, vl)
        yield from interp.run()

    return KernelSpec(
        func5=func5,
        name=program.name,
        preamble=preamble,
        body=body,
        description=description or f"compiled kernel {program.name!r}",
    )
