"""A tile-and-vectorize loop-nest IR over logical matrix operands.

The kernel library (paper IV-B.1) makes complex instructions *software*:
every ``xmkN`` is a preamble + micro-program pair registered at runtime.
Hand-writing those micro-programs (``runtime/kernels/*.py``) is the slow
path to new workloads, so this package grows a small kernel compiler in
the spirit of Exo/SYS_ATL: author the algorithm once as a loop nest over
matrix *elements*, schedule it (shard / strip-mine / unroll / vectorize),
and lower it onto the eCPU/VPU micro-program API.

This module is the IR itself:

* :class:`Expr` trees — integer expressions over symbolic dimensions,
  loop variables, scalar parameters and matrix element accesses;
* :class:`Operand` — a logical matrix register with a symbolic shape;
* statements — :class:`Loop` (parallel or reduction), :class:`Assign`
  and :class:`Accum` element statements, plus the *vector* statement
  forms produced by :meth:`repro.compiler.schedule.Schedule.vectorize`;
* :class:`KernelProgram` — a validated kernel definition;
* :func:`bind_shapes` — the runtime shape inference/validation used by
  generated preambles (binds symbolic dims from actual operand shapes,
  solving ``K`` from ``F.cols`` and ``C`` from ``F.rows // K`` style
  equations by fixpoint).

Arithmetic semantics match the datapath: all element math wraps in the
element width, so scheduling transforms that only reorder additions are
always exact (mod-2^n addition is associative and commutative).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union


class CompilerError(ValueError):
    """Base class for kernel-compiler diagnostics."""


class IrError(CompilerError):
    """Malformed kernel program (caught at construction time)."""


class ShapeError(CompilerError):
    """Operand shapes do not satisfy the kernel's symbolic shape spec."""


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expr:
    """Integer expression over symbols, constants and element accesses."""

    def __add__(self, other: "ExprLike") -> "Expr":
        return BinOp("+", self, to_expr(other))

    def __radd__(self, other: "ExprLike") -> "Expr":
        return BinOp("+", to_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "Expr":
        return BinOp("-", self, to_expr(other))

    def __rsub__(self, other: "ExprLike") -> "Expr":
        return BinOp("-", to_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "Expr":
        return BinOp("*", self, to_expr(other))

    def __rmul__(self, other: "ExprLike") -> "Expr":
        return BinOp("*", to_expr(other), self)

    def __floordiv__(self, other: "ExprLike") -> "Expr":
        return BinOp("//", self, to_expr(other))


ExprLike = Union[Expr, int]


@dataclass(frozen=True, eq=False)
class Sym(Expr):
    """A named symbol: dimension, scalar parameter or loop variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Const(Expr):
    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    op: str  # '+', '-', '*', '//'
    lhs: Expr
    rhs: Expr

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


@dataclass(frozen=True, eq=False)
class Access(Expr):
    """One matrix element, ``operand[row, col]``."""

    operand: str
    row: Expr
    col: Expr

    def __repr__(self) -> str:
        return f"{self.operand}[{self.row!r}, {self.col!r}]"


def to_expr(value: ExprLike) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Const(value)
    raise IrError(f"cannot use {value!r} as an IR expression")


def syms(expr: Expr) -> Set[str]:
    """All symbol names referenced by an expression (including accesses)."""
    if isinstance(expr, Sym):
        return {expr.name}
    if isinstance(expr, Const):
        return set()
    if isinstance(expr, BinOp):
        return syms(expr.lhs) | syms(expr.rhs)
    if isinstance(expr, Access):
        return syms(expr.row) | syms(expr.col)
    raise IrError(f"unknown expression node {expr!r}")


def accesses(expr: Expr) -> List[Access]:
    """Element accesses appearing in an expression, in evaluation order."""
    if isinstance(expr, Access):
        return [expr]
    if isinstance(expr, BinOp):
        return accesses(expr.lhs) + accesses(expr.rhs)
    return []


def subst(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    """Structurally copy ``expr``, replacing symbols per ``mapping``."""
    if isinstance(expr, Sym):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, subst(expr.lhs, mapping), subst(expr.rhs, mapping))
    if isinstance(expr, Access):
        return Access(expr.operand, subst(expr.row, mapping), subst(expr.col, mapping))
    raise IrError(f"unknown expression node {expr!r}")


def eval_expr(expr: Expr, env: Dict[str, int]) -> int:
    """Pure integer evaluation; element accesses are not allowed here."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        try:
            return env[expr.name]
        except KeyError:
            raise ShapeError(f"symbol {expr.name!r} is not bound") from None
    if isinstance(expr, BinOp):
        lhs = eval_expr(expr.lhs, env)
        rhs = eval_expr(expr.rhs, env)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "//":
            if rhs == 0:
                raise ShapeError(f"division by zero evaluating {expr!r}")
            return lhs // rhs
        raise IrError(f"unknown operator {expr.op!r}")
    if isinstance(expr, Access):
        raise IrError(f"element access {expr!r} in a shape/index position")
    raise IrError(f"unknown expression node {expr!r}")


def key(expr: Expr) -> str:
    """Canonical structural key (used for equality of index expressions)."""
    return repr(expr)


def _name_of(var: Union[str, Sym]) -> str:
    return var.name if isinstance(var, Sym) else str(var)


# ---------------------------------------------------------------------------
# operands
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Operand:
    """A logical matrix operand with a symbolic (rows, cols) shape.

    Exactly one operand of a kernel has ``out=True``.  The order of the
    *source* operands in :class:`KernelProgram.operands` defines the
    instruction-word packing (see ``lower.py``): sources take the
    rs3.first, rs3.second and rs2.first register fields in order, the
    destination takes rs2.second — the Table I convention.
    """

    name: str
    shape: Tuple[ExprLike, ExprLike]
    out: bool = False

    def __post_init__(self) -> None:
        rows, cols = self.shape
        self.rows: Expr = to_expr(rows)
        self.cols: Expr = to_expr(cols)

    def __getitem__(self, index: Tuple[ExprLike, ExprLike]) -> Access:
        if not isinstance(index, tuple) or len(index) != 2:
            raise IrError(f"operand {self.name!r} must be indexed as [row, col]")
        return Access(self.name, to_expr(index[0]), to_expr(index[1]))

    def __repr__(self) -> str:
        role = "out" if self.out else "in"
        return f"<{self.name}:{role} {self.rows!r}x{self.cols!r}>"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base statement node."""


@dataclass(eq=False)
class Loop(Stmt):
    """``for var in range(extent)`` — ``parallel=True`` marks a loop over
    independent output rows (shardable); ``parallel=False`` a reduction."""

    var: Union[str, Sym]
    extent: ExprLike
    body: List[Stmt]
    parallel: bool = False
    sharded: bool = False  # set by Schedule.shard()

    def __post_init__(self) -> None:
        self.var = _name_of(self.var)
        self.extent = to_expr(self.extent)


@dataclass(eq=False)
class StripLoop(Stmt):
    """A strip-mined reduction loop (produced by ``Schedule.strip_mine``).

    Iterates ``outer_var`` over ``ceil(total / S)`` strips and
    ``inner_var`` over the rows of each strip, where the strip size
    ``S`` (bound to ``size_sym``) is chosen *at kernel launch* from the
    free vector-register budget via the shared
    :func:`repro.runtime.kernels.common.k_strip_size` policy.
    ``max_size`` additionally caps that launch-time choice — the tuning
    knob recipes use to trade resident-strip reuse against lock-window
    length.
    """

    outer_var: str
    inner_var: str
    size_sym: str
    total: Expr
    body: List[Stmt]
    max_size: Optional[int] = None


@dataclass(eq=False)
class Assign(Stmt):
    """``dest = value`` (element statement)."""

    dest: Access
    value: ExprLike

    def __post_init__(self) -> None:
        self.value = to_expr(self.value)


@dataclass(eq=False)
class Accum(Stmt):
    """``dest += value`` (element statement, wrap-around addition)."""

    dest: Access
    value: ExprLike

    def __post_init__(self) -> None:
        self.value = to_expr(self.value)


# -- vector statements (the post-vectorization form) -------------------------


@dataclass(eq=False)
class RowRef:
    """A source-operand row slice: ``operand[row, offset : offset + vl]``."""

    operand: str
    row: Expr
    offset: Expr

    def __repr__(self) -> str:
        return f"{self.operand}[{self.row!r}, {self.offset!r}:+vl]"


class VectorStmt(Stmt):
    """Base of statements operating on whole output rows.

    Every vector statement targets the accumulator register holding the
    destination row ``dest_row`` of the current output iteration.
    """

    dest_row: Expr


@dataclass(eq=False)
class VInit(VectorStmt):
    """``acc[:] = coeff * src`` (``src=None`` splats; only 0 is splattable,
    lowered to ``vclear``; ``coeff==1`` lowers to ``vmv``)."""

    dest_row: Expr
    coeff: Expr
    src: Optional[RowRef]


@dataclass(eq=False)
class VEwise(VectorStmt):
    """``acc[:] = a <op> b`` element-wise over two source rows."""

    dest_row: Expr
    op: str  # 'add' | 'mul'
    a: RowRef
    b: RowRef


@dataclass(eq=False)
class VMacc(VectorStmt):
    """``acc[:] += coeff * src`` — one ``vmacc.vs`` (skipped when the
    runtime coefficient is zero, like the handwritten kernels)."""

    dest_row: Expr
    coeff: Expr
    src: RowRef


@dataclass(eq=False)
class VReduce(VectorStmt):
    """``acc[col] += sum(src row)`` — ``vredsum`` into a scratch register
    then a 1-element accumulate into the accumulator."""

    dest_row: Expr
    col: Expr
    src: RowRef


@dataclass(eq=False)
class VClearElem(VectorStmt):
    """``acc[col] = 0`` — a 1-element ``vclear`` (scalar destination init)."""

    dest_row: Expr
    col: Expr


# ---------------------------------------------------------------------------
# the kernel program
# ---------------------------------------------------------------------------


def walk(stmts: Sequence[Stmt]) -> Iterable[Stmt]:
    """Pre-order traversal of a statement block."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, (Loop, StripLoop)):
            yield from walk(stmt.body)


@dataclass(eq=False)
class KernelProgram:
    """One software-defined complex instruction, pre-scheduling.

    ``params`` are the (at most two) 16-bit scalar immediates carried in
    the instruction's rs1 operand pair, sign-extended like the Table I
    kernels' alpha/beta.
    """

    name: str
    operands: List[Operand]
    body: List[Stmt]
    params: List[str] = field(default_factory=list)
    #: set by Schedule.vectorize()
    vector_var: Optional[str] = None
    vector_extent: Optional[Expr] = None

    def __post_init__(self) -> None:
        self.validate()

    # -- queries -------------------------------------------------------------

    @property
    def dest(self) -> Operand:
        return next(op for op in self.operands if op.out)

    @property
    def sources(self) -> List[Operand]:
        return [op for op in self.operands if not op.out]

    @property
    def dims(self) -> Set[str]:
        names: Set[str] = set()
        for op in self.operands:
            names |= syms(op.rows) | syms(op.cols)
        return names - set(self.params)

    def find_loops(self, var: str) -> List[Loop]:
        return [s for s in walk(self.body) if isinstance(s, Loop) and s.var == var]

    def loop_vars(self) -> List[str]:
        """Every loop variable of the program, outermost first.

        Strip-mined loops contribute their outer/inner pair.  Used by
        scheduling diagnostics so "no loop over 'x'" errors can name
        what *is* schedulable without a read of the IR dump.
        """
        names: List[str] = []
        for stmt in walk(self.body):
            if isinstance(stmt, Loop) and stmt.var not in names:
                names.append(stmt.var)
            elif isinstance(stmt, StripLoop):
                for var in (stmt.outer_var, stmt.inner_var):
                    if var not in names:
                        names.append(var)
        return names

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        if not self.name:
            raise IrError("kernel needs a name")
        outs = [op for op in self.operands if op.out]
        if len(outs) != 1:
            raise IrError(f"kernel {self.name!r} needs exactly one out operand")
        if not 1 <= len(self.sources) <= 3:
            raise IrError(
                f"kernel {self.name!r} has {len(self.sources)} sources; the "
                "xmnmc instruction word packs 1..3 source matrix registers"
            )
        if len(self.params) > 2:
            raise IrError(
                f"kernel {self.name!r} declares {len(self.params)} params; "
                "rs1 carries at most two 16-bit immediates"
            )
        names = [op.name for op in self.operands] + list(self.params)
        if len(set(names)) != len(names):
            raise IrError(f"kernel {self.name!r}: operand/param names collide")
        dim_names = self.dims
        overlap = dim_names & set(op.name for op in self.operands)
        if overlap:
            raise IrError(f"dimension names collide with operands: {sorted(overlap)}")
        self._check_block(self.body, scope=set())

    def _check_block(self, stmts: Sequence[Stmt], scope: Set[str]) -> None:
        known = self.dims | set(self.params)
        operand_names = {op.name for op in self.operands}
        for stmt in stmts:
            if isinstance(stmt, Loop):
                if stmt.var in scope or stmt.var in known or stmt.var in operand_names:
                    raise IrError(f"loop variable {stmt.var!r} shadows another name")
                extent_syms = syms(stmt.extent)
                bad = extent_syms - known
                if bad:
                    raise IrError(
                        f"loop extent {stmt.extent!r} uses non-dimension "
                        f"symbols {sorted(bad)} (loop bounds must be shape-"
                        "or parameter-derived)"
                    )
                self._check_block(stmt.body, scope | {stmt.var})
            elif isinstance(stmt, StripLoop):
                self._check_block(
                    stmt.body, scope | {stmt.outer_var, stmt.inner_var, stmt.size_sym}
                )
            elif isinstance(stmt, (Assign, Accum)):
                self._check_element_stmt(stmt, scope, known)
            elif isinstance(stmt, VectorStmt):
                pass  # produced by Schedule; checked during lowering
            else:
                raise IrError(f"unknown statement {stmt!r}")

    def _check_element_stmt(
        self, stmt: Union[Assign, Accum], scope: Set[str], known: Set[str]
    ) -> None:
        operands = {op.name: op for op in self.operands}
        dest = stmt.dest
        if not isinstance(dest, Access):
            raise IrError(f"statement destination {dest!r} is not an element access")
        if dest.operand not in operands or not operands[dest.operand].out:
            raise IrError(
                f"statement writes {dest.operand!r}, which is not the out operand"
            )
        in_scope = scope | known
        for acc in [dest] + accesses(stmt.value):
            if acc.operand not in operands:
                raise IrError(f"access to undeclared operand {acc.operand!r}")
            if acc is not dest and operands[acc.operand].out:
                raise IrError(
                    f"kernel {self.name!r} reads its destination "
                    f"{acc.operand!r}; destinations are write-only"
                )
            bad = (syms(acc.row) | syms(acc.col)) - in_scope
            if bad:
                raise IrError(f"access {acc!r} uses unbound symbols {sorted(bad)}")
        bad = syms(stmt.value) - in_scope
        if bad:
            raise IrError(f"expression uses unbound symbols {sorted(bad)}")


# ---------------------------------------------------------------------------
# runtime shape binding (used by generated preambles)
# ---------------------------------------------------------------------------


def _try_solve(expr: Expr, actual: int, env: Dict[str, int]) -> bool:
    """Bind or check one shape equation; returns True when resolved."""
    free = {s for s in syms(expr) if s not in env}
    if not free:
        value = eval_expr(expr, env)
        if value != actual:
            raise ShapeError(f"shape mismatch: {expr!r} = {value}, operand has {actual}")
        return True
    if isinstance(expr, Sym):
        env[expr.name] = actual
        return True
    if isinstance(expr, BinOp) and expr.op == "*":
        for unknown, known in ((expr.lhs, expr.rhs), (expr.rhs, expr.lhs)):
            if isinstance(unknown, Sym) and unknown.name in free and not (
                syms(known) - env.keys()
            ):
                factor = eval_expr(known, env)
                if factor <= 0 or actual % factor:
                    raise ShapeError(
                        f"cannot split {actual} rows/cols as {expr!r} "
                        f"with {known!r} = {factor}"
                    )
                env[unknown.name] = actual // factor
                return True
    return False


def _solve_source_dims(
    program: KernelProgram,
    shapes: Dict[str, Tuple[int, int]],
    env: Dict[str, int],
) -> None:
    """Fixpoint-solve dimension symbols from concrete source shapes."""
    pending = [
        (op.name, which, expr, shapes[op.name][index])
        for op in program.sources
        for index, (which, expr) in enumerate((("rows", op.rows), ("cols", op.cols)))
    ]
    progress = True
    while pending and progress:
        progress = False
        remaining = []
        for item in pending:
            name, which, expr, value = item
            try:
                solved = _try_solve(expr, value, env)
            except ShapeError as exc:
                raise ShapeError(f"operand {name!r} {which}: {exc}") from None
            if solved:
                progress = True
            else:
                remaining.append(item)
        pending = remaining
    if pending:
        name, which, expr, _ = pending[0]
        raise ShapeError(
            f"cannot infer dimensions of operand {name!r} from {which} "
            f"expression {expr!r}"
        )


def bind_shapes(
    program: KernelProgram,
    actual: Dict[str, Tuple[int, int]],
    env: Dict[str, int],
) -> Dict[str, int]:
    """Infer dimension symbols from actual operand shapes (fixpoint).

    Source shapes *bind* free dimensions (solving bare symbols and
    ``known * sym`` products); the destination shape is then *checked*
    against the fully derived expressions.  Raises :class:`ShapeError`
    with the offending operand when the shapes are inconsistent.
    """
    _solve_source_dims(program, actual, env)
    dest = program.dest
    rows, cols = actual[dest.name]
    for which, expr, value in (("rows", dest.rows, rows), ("cols", dest.cols, cols)):
        free = syms(expr) - env.keys()
        if free:
            raise ShapeError(
                f"destination {dest.name!r} {which} expression {expr!r} has "
                f"uninferrable symbols {sorted(free)}"
            )
        expected = eval_expr(expr, env)
        if expected != value:
            raise ShapeError(
                f"destination {dest.name!r} is {rows}x{cols}, kernel "
                f"{program.name!r} expects {which} = {expr!r} = {expected}"
            )
    return env


def infer_out_shape(
    program: KernelProgram,
    source_shapes: Sequence[Tuple[int, int]],
    env: Optional[Dict[str, int]] = None,
) -> Tuple[int, int]:
    """Destination shape implied by concrete source shapes, in source order.

    Runs the :func:`bind_shapes` fixpoint over the sources only, then
    evaluates the destination's row/col expressions.
    """
    sources = program.sources
    if len(source_shapes) != len(sources):
        raise ShapeError(
            f"kernel {program.name!r} takes {len(sources)} source operands, "
            f"got {len(source_shapes)} shapes"
        )
    env = dict(env or {})
    shapes = {op.name: tuple(shape) for op, shape in zip(sources, source_shapes)}
    _solve_source_dims(program, shapes, env)
    dest = program.dest
    dims = []
    for which, expr in (("rows", dest.rows), ("cols", dest.cols)):
        free = syms(expr) - env.keys()
        if free:
            raise ShapeError(
                f"destination {dest.name!r} {which} expression {expr!r} has "
                f"uninferrable symbols {sorted(free)}"
            )
        dims.append(eval_expr(expr, env))
    return (dims[0], dims[1])


# ---------------------------------------------------------------------------
# reference interpretation (the schedule-independent oracle)
# ---------------------------------------------------------------------------


def reference_output(
    program: KernelProgram,
    operands: Dict[str, "np.ndarray"],
    params: Optional[Dict[str, int]] = None,
) -> "np.ndarray":
    """Interpret an *unscheduled* program element by element in numpy.

    This is the semantic ground truth every legal recipe must preserve:
    plain ``Loop``/``Assign``/``Accum`` execution over int64 accumulators
    with one final wrap to the destination dtype (mod-2^n arithmetic is a
    ring homomorphism, so wrapping once at the end equals wrapping every
    intermediate like the datapath does).  Scheduled programs (vector
    statements, strip loops) are rejected — schedule first, compare
    against the reference taken *before* scheduling.
    """
    import numpy as np

    env: Dict[str, int] = dict(params or {})
    actual = {
        name: (array.shape[0], array.shape[1]) for name, array in operands.items()
    }
    bind_shapes(program, actual, env)
    arrays = {
        name: np.asarray(array, dtype=np.int64) for name, array in operands.items()
    }
    dest_op = program.dest
    dest = np.zeros(
        (eval_expr(dest_op.rows, env), eval_expr(dest_op.cols, env)), dtype=np.int64
    )
    arrays[dest_op.name] = dest

    def eval_elem(expr: Expr) -> int:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Sym):
            return env[expr.name]
        if isinstance(expr, Access):
            row = eval_elem(expr.row)
            col = eval_elem(expr.col)
            return int(arrays[expr.operand][row, col])
        if isinstance(expr, BinOp):
            lhs = eval_elem(expr.lhs)
            rhs = eval_elem(expr.rhs)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            if expr.op == "//":
                return lhs // rhs
        raise IrError(f"cannot interpret expression {expr!r}")

    def run_block(stmts: Sequence[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Loop):
                extent = eval_expr(stmt.extent, env)
                for value in range(extent):
                    env[stmt.var] = value
                    run_block(stmt.body)
                env.pop(stmt.var, None)
            elif isinstance(stmt, (Assign, Accum)):
                row = eval_elem(stmt.dest.row)
                col = eval_elem(stmt.dest.col)
                value = eval_elem(stmt.value)
                if isinstance(stmt, Accum):
                    value += int(dest[row, col])
                # wrap to signed 64-bit (mod-2^64 keeps every narrower
                # mod-2^n result exact; numpy rejects out-of-range ints)
                value &= (1 << 64) - 1
                if value >= 1 << 63:
                    value -= 1 << 64
                dest[row, col] = value
            else:
                raise IrError(
                    f"reference interpretation needs an unscheduled program; "
                    f"found {type(stmt).__name__}"
                )

    run_block(program.body)
    dtype = next(iter(operands.values())).dtype
    return dest.astype(dtype)
