"""Compiled kernels: new workloads authored in the IR, not by hand.

Every library kernel is two separable pieces — the Exo idiom the
autotuner (:mod:`repro.compiler.tune`) depends on:

* a pure **algorithm**: a builder in :data:`ALGORITHMS` returning a
  fresh, unscheduled :class:`~repro.compiler.ir.KernelProgram` (the
  semantic ground truth, interpretable by
  :func:`~repro.compiler.ir.reference_output`);
* a named **default recipe** in :data:`DEFAULT_RECIPES`: the hand-picked
  :class:`~repro.compiler.schedule.Recipe` the stock library ships with.

:func:`recompile` combines any algorithm with any legal recipe into a
registrable :class:`~repro.runtime.kernel_lib.KernelSpec` — the stock
slot by default, or any other slot (user slots :data:`USER_SLOTS` =
5..15 by convention) for alternate-schedule variants living alongside
the defaults.  The stock library:

==============  ======  ====================================================
Mnemonic        func5   Operation
==============  ======  ====================================================
``cgemm``       16      D = alpha * (A @ B) + beta * C (compiled twin of xmk0)
``dwconv2d``    17      depthwise 'valid' conv: per-channel planes x filters
``fc``          18      fully-connected: out = x @ W + bias (GEMV + bias)
``ewise_add``   19      D = X + Y
``ewise_mul``   20      D = X * Y (uses the ``vmul.vv`` ISA extension)
``rowsum``      21      D[i, 0] = sum_j X[i, j] (``vredsum`` reduction)
==============  ======  ====================================================

``dwconv2d`` stacks channel planes row-wise like ``xmk4``: X is (C*H, W),
F is (C*K, K), D is (C*(H-K+1), W-K+1); with C == 1 it is exactly the
``xmk3`` single-channel convolution.  ``cgemm`` and ``dwconv2d`` use the
same operand packing as their handwritten twins, so host programs are
interchangeable between the two.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from repro.compiler.ir import Accum, Assign, KernelProgram, Loop, Operand, Sym
from repro.compiler.lower import compile_kernel
from repro.compiler.schedule import Recipe, Schedule
from repro.isa.xmnmc import pack_pair
from repro.runtime.kernel_lib import KernelLibrary, KernelSpec

#: Library slots for the compiled kernels (5..15 stay free for users).
FUNC5_CGEMM = 16
FUNC5_DWCONV2D = 17
FUNC5_FC = 18
FUNC5_EWISE_ADD = 19
FUNC5_EWISE_MUL = 20
FUNC5_ROWSUM = 21

#: Slots reserved for user-registered kernels and recompiled variants.
USER_SLOTS = range(5, 16)


# ---------------------------------------------------------------------------
# the algorithms (pure, unscheduled)
# ---------------------------------------------------------------------------


def gemm_program() -> KernelProgram:
    """D = alpha * (A @ B) + beta * C — the parity algorithm vs ``xmk0``."""
    M, K, N = Sym("M"), Sym("K"), Sym("N")
    alpha, beta = Sym("alpha"), Sym("beta")
    d = Operand("d", (M, N), out=True)
    a = Operand("a", (M, K))
    b = Operand("b", (K, N))
    c = Operand("c", (M, N))
    i, j, k = Sym("i"), Sym("j"), Sym("k")
    return KernelProgram(
        "cgemm",
        [d, a, b, c],
        [
            Loop(i, M, [
                Loop(j, N, [Assign(d[i, j], beta * c[i, j])]),
                Loop(k, K, [
                    Loop(j, N, [Accum(d[i, j], alpha * a[i, k] * b[k, j])]),
                ]),
            ], parallel=True),
        ],
        params=["alpha", "beta"],
    )


def dwconv2d_program() -> KernelProgram:
    """Depthwise 2D 'valid' convolution over row-stacked channel planes."""
    C, H, W, K = Sym("C"), Sym("H"), Sym("W"), Sym("K")
    out_h = H - K + 1
    out_w = W - K + 1
    d = Operand("d", (C * out_h, out_w), out=True)
    x = Operand("x", (C * H, W))
    f = Operand("f", (C * K, K))
    c, i, dr, dc, j = Sym("c"), Sym("i"), Sym("dr"), Sym("dc"), Sym("j")
    return KernelProgram(
        "dwconv2d",
        [d, x, f],
        [
            Loop(c, C, [
                Loop(i, out_h, [
                    Loop(j, out_w, [Assign(d[c * out_h + i, j], 0)]),
                    Loop(dr, K, [
                        Loop(dc, K, [
                            Loop(j, out_w, [
                                Accum(
                                    d[c * out_h + i, j],
                                    f[c * K + dr, dc] * x[c * H + i + dr, j + dc],
                                ),
                            ]),
                        ]),
                    ]),
                ], parallel=True),
            ], parallel=True),
        ],
    )


def fc_program() -> KernelProgram:
    """Fully-connected layer: out = x @ W + bias (GEMV + bias)."""
    K, N = Sym("K"), Sym("N")
    d = Operand("d", (1, N), out=True)
    x = Operand("x", (1, K))
    w = Operand("w", (K, N))
    bias = Operand("bias", (1, N))
    j, k = Sym("j"), Sym("k")
    return KernelProgram(
        "fc",
        [d, x, w, bias],
        [
            Loop(j, N, [Assign(d[0, j], bias[0, j])]),
            Loop(k, K, [
                Loop(j, N, [Accum(d[0, j], x[0, k] * w[k, j])]),
            ]),
        ],
    )


def _ewise_program(name: str, op: str) -> KernelProgram:
    M, N = Sym("M"), Sym("N")
    d = Operand("d", (M, N), out=True)
    x = Operand("x", (M, N))
    y = Operand("y", (M, N))
    i, j = Sym("i"), Sym("j")
    value = x[i, j] + y[i, j] if op == "add" else x[i, j] * y[i, j]
    return KernelProgram(
        name,
        [d, x, y],
        [Loop(i, M, [Loop(j, N, [Assign(d[i, j], value)])], parallel=True)],
    )


def ewise_add_program() -> KernelProgram:
    """Element-wise addition: D = X + Y."""
    return _ewise_program("ewise_add", "add")


def ewise_mul_program() -> KernelProgram:
    """Element-wise product: D = X * Y (the ``vmul.vv`` ISA extension)."""
    return _ewise_program("ewise_mul", "mul")


def rowsum_program() -> KernelProgram:
    """Row-sum reduction: D[i, 0] = sum_j X[i, j]."""
    M, N = Sym("M"), Sym("N")
    d = Operand("d", (M, 1), out=True)
    x = Operand("x", (M, N))
    i, j = Sym("i"), Sym("j")
    return KernelProgram(
        "rowsum",
        [d, x],
        [
            Loop(i, M, [
                Assign(d[i, 0], 0),
                Loop(j, N, [Accum(d[i, 0], x[i, j])]),
            ], parallel=True),
        ],
    )


#: name -> pure algorithm builder (fresh unscheduled program per call).
ALGORITHMS: Dict[str, Callable[[], KernelProgram]] = {
    "cgemm": gemm_program,
    "dwconv2d": dwconv2d_program,
    "fc": fc_program,
    "ewise_add": ewise_add_program,
    "ewise_mul": ewise_mul_program,
    "rowsum": rowsum_program,
}

#: name -> the hand-picked schedule the stock library ships with.
DEFAULT_RECIPES: Dict[str, Recipe] = {
    "cgemm": Recipe([("shard", "i"), ("strip_mine", "k"), ("vectorize", "j")]),
    "dwconv2d": Recipe([("shard", "c"), ("vectorize", "j")]),
    "fc": Recipe([("strip_mine", "k"), ("vectorize", "j")]),
    "ewise_add": Recipe([("shard", "i"), ("vectorize", "j")]),
    "ewise_mul": Recipe([("shard", "i"), ("vectorize", "j")]),
    "rowsum": Recipe([("shard", "i"), ("vectorize", "j")]),
}

#: name -> stock library slot.
DEFAULT_FUNC5: Dict[str, int] = {
    "cgemm": FUNC5_CGEMM,
    "dwconv2d": FUNC5_DWCONV2D,
    "fc": FUNC5_FC,
    "ewise_add": FUNC5_EWISE_ADD,
    "ewise_mul": FUNC5_EWISE_MUL,
    "rowsum": FUNC5_ROWSUM,
}

#: stock slot -> kernel name (e.g. for mapping requests back to algorithms).
NAME_BY_FUNC5: Dict[int, str] = {func5: name for name, func5 in DEFAULT_FUNC5.items()}


def algorithm(name: str) -> KernelProgram:
    """A fresh unscheduled program for one library kernel, by name."""
    try:
        return ALGORITHMS[name]()
    except KeyError:
        raise ValueError(
            f"unknown library kernel {name!r}; available: "
            + ", ".join(sorted(ALGORITHMS))
        ) from None


def default_recipe(name: str) -> Recipe:
    """The stock schedule for one library kernel, by name."""
    if name not in DEFAULT_RECIPES:
        raise ValueError(
            f"unknown library kernel {name!r}; available: "
            + ", ".join(sorted(DEFAULT_RECIPES))
        )
    return DEFAULT_RECIPES[name]


def recompile(
    name: str,
    recipe: Union[Recipe, Sequence, str, None] = None,
    func5: Optional[int] = None,
    description: str = "",
) -> KernelSpec:
    """Compile one library algorithm under a (possibly alternate) recipe.

    ``recipe=None`` uses the kernel's default; ``func5=None`` targets the
    stock slot (register with ``replace=True`` to swap the variant in —
    the library's generation bump invalidates stale replay recordings).
    Pass a slot from :data:`USER_SLOTS` (5..15) to install the variant
    *alongside* the stock kernel instead.
    """
    program = algorithm(name)
    chosen = default_recipe(name) if recipe is None else Recipe.coerce(recipe)
    schedule = Schedule(program).apply(chosen)
    slot = DEFAULT_FUNC5[name] if func5 is None else func5
    return compile_kernel(
        schedule, slot,
        description or f"compiled {name} [{chosen.describe()}]",
    )


# -- stock spec builders (algorithm + default recipe, overridable) -----------


def make_gemm_spec(func5: int = FUNC5_CGEMM, recipe=None) -> KernelSpec:
    """Compiled GeMM — the parity benchmark against handwritten ``xmk0``."""
    return recompile(
        "cgemm", recipe, func5, "compiled D = alpha * (A @ B) + beta * C"
    )


def make_dwconv2d_spec(func5: int = FUNC5_DWCONV2D, recipe=None) -> KernelSpec:
    """Compiled depthwise 2D convolution over row-stacked channel planes."""
    return recompile(
        "dwconv2d", recipe, func5, "compiled depthwise 'valid' 2D convolution"
    )


def make_fc_spec(func5: int = FUNC5_FC, recipe=None) -> KernelSpec:
    """Compiled fully-connected layer: out = x @ W + bias (GEMV + bias)."""
    return recompile("fc", recipe, func5, "compiled fully-connected (GEMV + bias)")


def make_ewise_add_spec(func5: int = FUNC5_EWISE_ADD, recipe=None) -> KernelSpec:
    return recompile("ewise_add", recipe, func5, "compiled element-wise add")


def make_ewise_mul_spec(func5: int = FUNC5_EWISE_MUL, recipe=None) -> KernelSpec:
    return recompile("ewise_mul", recipe, func5, "compiled element-wise mul")


def make_rowsum_spec(func5: int = FUNC5_ROWSUM, recipe=None) -> KernelSpec:
    """Compiled row-sum reduction: D[i, 0] = sum_j X[i, j]."""
    return recompile("rowsum", recipe, func5, "compiled row-sum reduction")


def compiled_specs() -> Tuple[KernelSpec, ...]:
    """Freshly compiled instances of every library kernel."""
    return (
        make_gemm_spec(),
        make_dwconv2d_spec(),
        make_fc_spec(),
        make_ewise_add_spec(),
        make_ewise_mul_spec(),
        make_rowsum_spec(),
    )


def install_compiled(library: KernelLibrary) -> Tuple[KernelSpec, ...]:
    """Compile and register the whole compiled-kernel library."""
    specs = compiled_specs()
    for spec in specs:
        library.register(spec)
    return specs


def offload_compiled(
    prog,
    func5: int,
    suffix: str,
    dest: int,
    sources: Sequence[int],
    params: Sequence[int] = (),
) -> None:
    """Queue a compiled-kernel offload on a :class:`HostProgram`.

    Packs the instruction word with the convention ``compile_kernel``
    generates preambles for: params in rs1, sources in (rs3.first,
    rs3.second, rs2.first), destination in rs2.second.
    """
    if len(params) > 2:
        raise ValueError(f"{len(params)} params given; rs1 packs at most two")
    if len(sources) > 3:
        raise ValueError(
            f"{len(sources)} sources given; the instruction word packs at most three"
        )
    params = list(params) + [0] * (2 - len(params))
    regs = list(sources) + [0] * (3 - len(sources))
    prog.xmk(
        func5, suffix,
        rs1=pack_pair(params[0] & 0xFFFF, params[1] & 0xFFFF),
        rs2=pack_pair(regs[2], dest),
        rs3=pack_pair(regs[0], regs[1]),
    )
