"""Compiled kernels: new workloads authored in the IR, not by hand.

Each builder writes the algorithm as a plain loop nest over matrix
elements, schedules it (shard / strip-mine / vectorize) and lowers it to
a :class:`~repro.runtime.kernel_lib.KernelSpec`.  The specs install into
the runtime kernel library above the five handwritten Table I slots,
proving the paper's software-ISA-extensibility claim at compiler scale:

==============  ======  ====================================================
Mnemonic        func5   Operation
==============  ======  ====================================================
``cgemm``       16      D = alpha * (A @ B) + beta * C (compiled twin of xmk0)
``dwconv2d``    17      depthwise 'valid' conv: per-channel planes x filters
``fc``          18      fully-connected: out = x @ W + bias (GEMV + bias)
``ewise_add``   19      D = X + Y
``ewise_mul``   20      D = X * Y (uses the ``vmul.vv`` ISA extension)
``rowsum``      21      D[i, 0] = sum_j X[i, j] (``vredsum`` reduction)
==============  ======  ====================================================

``dwconv2d`` stacks channel planes row-wise like ``xmk4``: X is (C*H, W),
F is (C*K, K), D is (C*(H-K+1), W-K+1); with C == 1 it is exactly the
``xmk3`` single-channel convolution.  ``cgemm`` and ``dwconv2d`` use the
same operand packing as their handwritten twins, so host programs are
interchangeable between the two.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.compiler.ir import Accum, Assign, KernelProgram, Loop, Operand, Sym
from repro.compiler.lower import compile_kernel
from repro.compiler.schedule import Schedule
from repro.isa.xmnmc import pack_pair
from repro.runtime.kernel_lib import KernelLibrary, KernelSpec

#: Library slots for the compiled kernels (5..15 stay free for users).
FUNC5_CGEMM = 16
FUNC5_DWCONV2D = 17
FUNC5_FC = 18
FUNC5_EWISE_ADD = 19
FUNC5_EWISE_MUL = 20
FUNC5_ROWSUM = 21


def make_gemm_spec(func5: int = FUNC5_CGEMM) -> KernelSpec:
    """Compiled GeMM — the parity benchmark against handwritten ``xmk0``."""
    M, K, N = Sym("M"), Sym("K"), Sym("N")
    alpha, beta = Sym("alpha"), Sym("beta")
    d = Operand("d", (M, N), out=True)
    a = Operand("a", (M, K))
    b = Operand("b", (K, N))
    c = Operand("c", (M, N))
    i, j, k = Sym("i"), Sym("j"), Sym("k")
    program = KernelProgram(
        "cgemm",
        [d, a, b, c],
        [
            Loop(i, M, [
                Loop(j, N, [Assign(d[i, j], beta * c[i, j])]),
                Loop(k, K, [
                    Loop(j, N, [Accum(d[i, j], alpha * a[i, k] * b[k, j])]),
                ]),
            ], parallel=True),
        ],
        params=["alpha", "beta"],
    )
    schedule = Schedule(program).shard("i").strip_mine("k").vectorize("j")
    return compile_kernel(
        schedule, func5, "compiled D = alpha * (A @ B) + beta * C"
    )


def make_dwconv2d_spec(func5: int = FUNC5_DWCONV2D) -> KernelSpec:
    """Compiled depthwise 2D convolution over row-stacked channel planes."""
    C, H, W, K = Sym("C"), Sym("H"), Sym("W"), Sym("K")
    out_h = H - K + 1
    out_w = W - K + 1
    d = Operand("d", (C * out_h, out_w), out=True)
    x = Operand("x", (C * H, W))
    f = Operand("f", (C * K, K))
    c, i, dr, dc, j = Sym("c"), Sym("i"), Sym("dr"), Sym("dc"), Sym("j")
    program = KernelProgram(
        "dwconv2d",
        [d, x, f],
        [
            Loop(c, C, [
                Loop(i, out_h, [
                    Loop(j, out_w, [Assign(d[c * out_h + i, j], 0)]),
                    Loop(dr, K, [
                        Loop(dc, K, [
                            Loop(j, out_w, [
                                Accum(
                                    d[c * out_h + i, j],
                                    f[c * K + dr, dc] * x[c * H + i + dr, j + dc],
                                ),
                            ]),
                        ]),
                    ]),
                ], parallel=True),
            ], parallel=True),
        ],
    )
    schedule = Schedule(program).shard("c").vectorize("j")
    return compile_kernel(
        schedule, func5, "compiled depthwise 'valid' 2D convolution"
    )


def make_fc_spec(func5: int = FUNC5_FC) -> KernelSpec:
    """Compiled fully-connected layer: out = x @ W + bias (GEMV + bias)."""
    K, N = Sym("K"), Sym("N")
    d = Operand("d", (1, N), out=True)
    x = Operand("x", (1, K))
    w = Operand("w", (K, N))
    bias = Operand("bias", (1, N))
    j, k = Sym("j"), Sym("k")
    program = KernelProgram(
        "fc",
        [d, x, w, bias],
        [
            Loop(j, N, [Assign(d[0, j], bias[0, j])]),
            Loop(k, K, [
                Loop(j, N, [Accum(d[0, j], x[0, k] * w[k, j])]),
            ]),
        ],
    )
    schedule = Schedule(program).strip_mine("k").vectorize("j")
    return compile_kernel(schedule, func5, "compiled fully-connected (GEMV + bias)")


def _make_ewise_spec(name: str, func5: int, op: str) -> KernelSpec:
    M, N = Sym("M"), Sym("N")
    d = Operand("d", (M, N), out=True)
    x = Operand("x", (M, N))
    y = Operand("y", (M, N))
    i, j = Sym("i"), Sym("j")
    value = x[i, j] + y[i, j] if op == "add" else x[i, j] * y[i, j]
    program = KernelProgram(
        name,
        [d, x, y],
        [Loop(i, M, [Loop(j, N, [Assign(d[i, j], value)])], parallel=True)],
    )
    schedule = Schedule(program).shard("i").vectorize("j")
    return compile_kernel(schedule, func5, f"compiled element-wise {op}")


def make_ewise_add_spec(func5: int = FUNC5_EWISE_ADD) -> KernelSpec:
    return _make_ewise_spec("ewise_add", func5, "add")


def make_ewise_mul_spec(func5: int = FUNC5_EWISE_MUL) -> KernelSpec:
    return _make_ewise_spec("ewise_mul", func5, "mul")


def make_rowsum_spec(func5: int = FUNC5_ROWSUM) -> KernelSpec:
    """Compiled row-sum reduction: D[i, 0] = sum_j X[i, j]."""
    M, N = Sym("M"), Sym("N")
    d = Operand("d", (M, 1), out=True)
    x = Operand("x", (M, N))
    i, j = Sym("i"), Sym("j")
    program = KernelProgram(
        "rowsum",
        [d, x],
        [
            Loop(i, M, [
                Assign(d[i, 0], 0),
                Loop(j, N, [Accum(d[i, 0], x[i, j])]),
            ], parallel=True),
        ],
    )
    schedule = Schedule(program).shard("i").vectorize("j")
    return compile_kernel(schedule, func5, "compiled row-sum reduction")


def compiled_specs() -> Tuple[KernelSpec, ...]:
    """Freshly compiled instances of every library kernel."""
    return (
        make_gemm_spec(),
        make_dwconv2d_spec(),
        make_fc_spec(),
        make_ewise_add_spec(),
        make_ewise_mul_spec(),
        make_rowsum_spec(),
    )


def install_compiled(library: KernelLibrary) -> Tuple[KernelSpec, ...]:
    """Compile and register the whole compiled-kernel library."""
    specs = compiled_specs()
    for spec in specs:
        library.register(spec)
    return specs


def offload_compiled(
    prog,
    func5: int,
    suffix: str,
    dest: int,
    sources: Sequence[int],
    params: Sequence[int] = (),
) -> None:
    """Queue a compiled-kernel offload on a :class:`HostProgram`.

    Packs the instruction word with the convention ``compile_kernel``
    generates preambles for: params in rs1, sources in (rs3.first,
    rs3.second, rs2.first), destination in rs2.second.
    """
    if len(params) > 2:
        raise ValueError(f"{len(params)} params given; rs1 packs at most two")
    if len(sources) > 3:
        raise ValueError(
            f"{len(sources)} sources given; the instruction word packs at most three"
        )
    params = list(params) + [0] * (2 - len(params))
    regs = list(sources) + [0] * (3 - len(sources))
    prog.xmk(
        func5, suffix,
        rs1=pack_pair(params[0] & 0xFFFF, params[1] & 0xFFFF),
        rs2=pack_pair(regs[2], dest),
        rs3=pack_pair(regs[0], regs[1]),
    )
