"""The kernel compiler: loop-nest IR -> scheduled -> eCPU micro-programs.

Authoring pipeline (see ``examples/compiled_kernel.py``)::

    program  = KernelProgram(...)            # loop nest over matrix elements
    schedule = (Schedule(program)
                .shard("i")                  # multi-VPU row partitioning
                .strip_mine("k")             # tile K against VRF capacity
                .vectorize("j"))             # innermost loop -> vector ISA
    spec     = compile_kernel(schedule, func5=9)
    system.llc.runtime.library.register(spec)

The compiled :class:`~repro.runtime.kernel_lib.KernelSpec` is a drop-in
peer of the handwritten Table I kernels: same preamble contract, same
:class:`~repro.runtime.context.KernelContext` micro-program API, same
hazard guarding — new complex instructions without touching simulator,
runtime or hardware model.
"""

from repro.compiler.ir import (
    Access,
    Accum,
    Assign,
    CompilerError,
    Const,
    Expr,
    IrError,
    KernelProgram,
    Loop,
    Operand,
    ShapeError,
    Sym,
    bind_shapes,
)
from repro.compiler.lower import LoweringError, compile_kernel
from repro.compiler.schedule import Schedule, ScheduleError
from repro.compiler.library import (
    FUNC5_CGEMM,
    FUNC5_DWCONV2D,
    FUNC5_EWISE_ADD,
    FUNC5_EWISE_MUL,
    FUNC5_FC,
    FUNC5_ROWSUM,
    compiled_specs,
    install_compiled,
    make_dwconv2d_spec,
    make_ewise_add_spec,
    make_ewise_mul_spec,
    make_fc_spec,
    make_gemm_spec,
    make_rowsum_spec,
    offload_compiled,
)

__all__ = [
    "Access",
    "Accum",
    "Assign",
    "CompilerError",
    "Const",
    "Expr",
    "IrError",
    "KernelProgram",
    "Loop",
    "LoweringError",
    "Operand",
    "Schedule",
    "ScheduleError",
    "ShapeError",
    "Sym",
    "bind_shapes",
    "compile_kernel",
    "compiled_specs",
    "install_compiled",
    "offload_compiled",
    "FUNC5_CGEMM",
    "FUNC5_DWCONV2D",
    "FUNC5_FC",
    "FUNC5_EWISE_ADD",
    "FUNC5_EWISE_MUL",
    "FUNC5_ROWSUM",
    "make_gemm_spec",
    "make_dwconv2d_spec",
    "make_fc_spec",
    "make_ewise_add_spec",
    "make_ewise_mul_spec",
    "make_rowsum_spec",
]
