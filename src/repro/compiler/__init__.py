"""The kernel compiler: loop-nest IR -> scheduled -> eCPU micro-programs.

Authoring pipeline (see ``examples/compiled_kernel.py``)::

    program  = KernelProgram(...)            # loop nest over matrix elements
    schedule = (Schedule(program)
                .shard("i")                  # multi-VPU row partitioning
                .strip_mine("k")             # tile K against VRF capacity
                .vectorize("j"))             # innermost loop -> vector ISA
    spec     = compile_kernel(schedule, func5=9)
    system.llc.runtime.library.register(spec)

Schedules are **data**: the same chain is a serializable
:class:`~repro.compiler.schedule.Recipe` (``Schedule(p).apply(recipe)``),
every library builder splits into a pure algorithm plus a named default
recipe (:func:`~repro.compiler.library.recompile` combines any pair),
and :mod:`repro.compiler.tune` searches the legal-recipe space for the
cheapest schedule per (kernel, geometry, config), memoized in a
JSON-persistable :class:`~repro.compiler.tune.ScheduleCache`.

The compiled :class:`~repro.runtime.kernel_lib.KernelSpec` is a drop-in
peer of the handwritten Table I kernels: same preamble contract, same
:class:`~repro.runtime.context.KernelContext` micro-program API, same
hazard guarding — new complex instructions without touching simulator,
runtime or hardware model.
"""

from repro.compiler.ir import (
    Access,
    Accum,
    Assign,
    CompilerError,
    Const,
    Expr,
    IrError,
    KernelProgram,
    Loop,
    Operand,
    ShapeError,
    Sym,
    bind_shapes,
    infer_out_shape,
    reference_output,
)
from repro.compiler.lower import LoweringError, compile_kernel
from repro.compiler.schedule import Recipe, Schedule, ScheduleError
from repro.compiler.library import (
    ALGORITHMS,
    DEFAULT_FUNC5,
    DEFAULT_RECIPES,
    FUNC5_CGEMM,
    FUNC5_DWCONV2D,
    FUNC5_EWISE_ADD,
    FUNC5_EWISE_MUL,
    FUNC5_FC,
    FUNC5_ROWSUM,
    NAME_BY_FUNC5,
    USER_SLOTS,
    algorithm,
    compiled_specs,
    default_recipe,
    install_compiled,
    make_dwconv2d_spec,
    make_ewise_add_spec,
    make_ewise_mul_spec,
    make_fc_spec,
    make_gemm_spec,
    make_rowsum_spec,
    offload_compiled,
    recompile,
)
from repro.compiler.tune import (
    ScheduleCache,
    TunedSchedule,
    TuneResult,
    Tuner,
    config_fingerprint,
    geometry_key,
)

__all__ = [
    "Access",
    "Accum",
    "Assign",
    "CompilerError",
    "Const",
    "Expr",
    "IrError",
    "KernelProgram",
    "Loop",
    "LoweringError",
    "Operand",
    "Recipe",
    "Schedule",
    "ScheduleCache",
    "ScheduleError",
    "ShapeError",
    "Sym",
    "TuneResult",
    "TunedSchedule",
    "Tuner",
    "algorithm",
    "bind_shapes",
    "compile_kernel",
    "compiled_specs",
    "config_fingerprint",
    "default_recipe",
    "geometry_key",
    "infer_out_shape",
    "install_compiled",
    "offload_compiled",
    "recompile",
    "reference_output",
    "ALGORITHMS",
    "DEFAULT_FUNC5",
    "DEFAULT_RECIPES",
    "FUNC5_CGEMM",
    "FUNC5_DWCONV2D",
    "FUNC5_FC",
    "FUNC5_EWISE_ADD",
    "FUNC5_EWISE_MUL",
    "FUNC5_ROWSUM",
    "NAME_BY_FUNC5",
    "USER_SLOTS",
    "make_gemm_spec",
    "make_dwconv2d_spec",
    "make_fc_spec",
    "make_ewise_add_spec",
    "make_ewise_mul_spec",
    "make_rowsum_spec",
]
