"""Composable scheduling transforms over the kernel IR.

A :class:`Schedule` wraps a deep copy of a :class:`~repro.compiler.ir.
KernelProgram` and rewrites its loop nest, Exo-style::

    sched = (Schedule(program)
             .shard("i")        # partition output rows across VPUs
             .strip_mine("k")   # tile the reduction against VRF capacity
             .vectorize("j"))   # innermost loop -> vector instructions

Each transform is *checked*: an illegal application (vectorizing a
non-innermost loop, strip-mining a parallel loop, unrolling a symbolic
extent, ...) raises :class:`ScheduleError` at schedule-construction time,
not at kernel runtime.  All transforms only re-associate wrap-around
additions or change data residency, so they never change results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.compiler.ir import (
    Access,
    Accum,
    Assign,
    BinOp,
    CompilerError,
    Const,
    Expr,
    KernelProgram,
    Loop,
    RowRef,
    Stmt,
    StripLoop,
    Sym,
    VClearElem,
    VEwise,
    VInit,
    VMacc,
    VReduce,
    VectorStmt,
    key,
    subst,
    syms,
    walk,
)


class ScheduleError(CompilerError):
    """An illegal scheduling transform."""


# ---------------------------------------------------------------------------
# statement cloning / substitution
# ---------------------------------------------------------------------------


def _subst_row(ref: Optional[RowRef], mapping: Dict[str, Expr]) -> Optional[RowRef]:
    if ref is None:
        return None
    return RowRef(ref.operand, subst(ref.row, mapping), subst(ref.offset, mapping))


def subst_stmt(stmt: Stmt, mapping: Dict[str, Expr]) -> Stmt:
    """Structurally copy a statement, substituting symbols in every
    expression position (used by clone, unroll and strip-mine)."""
    if isinstance(stmt, Loop):
        new = Loop(
            stmt.var,
            subst(stmt.extent, mapping),
            [subst_stmt(s, mapping) for s in stmt.body],
            parallel=stmt.parallel,
        )
        new.sharded = stmt.sharded
        return new
    if isinstance(stmt, StripLoop):
        return StripLoop(
            stmt.outer_var,
            stmt.inner_var,
            stmt.size_sym,
            subst(stmt.total, mapping),
            [subst_stmt(s, mapping) for s in stmt.body],
        )
    if isinstance(stmt, Assign):
        return Assign(subst(stmt.dest, mapping), subst(stmt.value, mapping))
    if isinstance(stmt, Accum):
        return Accum(subst(stmt.dest, mapping), subst(stmt.value, mapping))
    if isinstance(stmt, VInit):
        return VInit(
            subst(stmt.dest_row, mapping),
            subst(stmt.coeff, mapping),
            _subst_row(stmt.src, mapping),
        )
    if isinstance(stmt, VEwise):
        return VEwise(
            subst(stmt.dest_row, mapping), stmt.op,
            _subst_row(stmt.a, mapping), _subst_row(stmt.b, mapping),
        )
    if isinstance(stmt, VMacc):
        return VMacc(
            subst(stmt.dest_row, mapping),
            subst(stmt.coeff, mapping),
            _subst_row(stmt.src, mapping),
        )
    if isinstance(stmt, VReduce):
        return VReduce(
            subst(stmt.dest_row, mapping), subst(stmt.col, mapping),
            _subst_row(stmt.src, mapping),
        )
    if isinstance(stmt, VClearElem):
        return VClearElem(subst(stmt.dest_row, mapping), subst(stmt.col, mapping))
    raise ScheduleError(f"cannot clone unknown statement {stmt!r}")


def clone_block(stmts: Sequence[Stmt]) -> List[Stmt]:
    return [subst_stmt(s, {}) for s in stmts]


# ---------------------------------------------------------------------------
# the schedule
# ---------------------------------------------------------------------------


class Schedule:
    """A kernel program plus an applied chain of loop transforms."""

    def __init__(self, program: KernelProgram) -> None:
        self.program = KernelProgram(
            name=program.name,
            operands=program.operands,
            body=clone_block(program.body),
            params=list(program.params),
            vector_var=program.vector_var,
            vector_extent=program.vector_extent,
        )

    # -- helpers -------------------------------------------------------------

    def _used_names(self) -> set:
        """Every symbol the runtime env can hold: dims, params, operand
        names, loop variables and strip symbols.  Generated names must
        avoid all of them or a transform would silently shadow a value."""
        program = self.program
        used = set(program.params) | program.dims
        used |= {op.name for op in program.operands}
        for stmt in walk(program.body):
            if isinstance(stmt, Loop):
                used.add(stmt.var)
            elif isinstance(stmt, StripLoop):
                used |= {stmt.outer_var, stmt.inner_var, stmt.size_sym}
        return used

    @staticmethod
    def _fresh(base: str, used: set) -> str:
        name, counter = base, 0
        while name in used:
            counter += 1
            name = f"{base}{counter}"
        used.add(name)
        return name

    def _the_loop(self, var: str) -> Loop:
        loops = self.program.find_loops(var)
        if not loops:
            raise ScheduleError(
                f"kernel {self.program.name!r} has no loop over {var!r}"
            )
        if len(loops) > 1:
            raise ScheduleError(
                f"loop variable {var!r} labels {len(loops)} loops; this "
                "transform needs a unique target"
            )
        return loops[0]

    def _replace_in_block(
        self, block: List[Stmt], target: Stmt, replacement: List[Stmt]
    ) -> bool:
        for index, stmt in enumerate(block):
            if stmt is target:
                block[index : index + 1] = replacement
                return True
            if isinstance(stmt, (Loop, StripLoop)):
                if self._replace_in_block(stmt.body, target, replacement):
                    return True
        return False

    # -- transforms ----------------------------------------------------------

    def shard(self, var: str) -> "Schedule":
        """Mark the loop over ``var`` for multi-VPU row sharding.

        The loop must be parallel (independent output rows) and at the
        top level of the kernel: shards partition its range with the same
        :func:`~repro.runtime.kernels.common.shard_rows` policy the
        handwritten kernels use.
        """
        loop = self._the_loop(var)
        if not loop.parallel:
            raise ScheduleError(
                f"cannot shard reduction loop {var!r}: iterations are not "
                "independent output rows"
            )
        if not any(s is loop for s in self.program.body):
            raise ScheduleError(
                f"cannot shard {var!r}: only an outermost loop partitions "
                "cleanly across VPUs"
            )
        if any(isinstance(s, Loop) and s.sharded for s in walk(self.program.body)):
            raise ScheduleError("kernel already has a sharded loop")
        loop.sharded = True
        return self

    def strip_mine(self, var: str) -> "Schedule":
        """Tile the reduction loop over ``var`` against VRF capacity.

        The loop becomes a strips/rows pair whose strip size is picked at
        kernel launch from the free-register budget (shared ``k_strip_size``
        policy), so source rows indexed by ``var`` are DMA-loaded strip by
        strip instead of element by element.
        """
        loop = self._the_loop(var)
        if loop.parallel:
            raise ScheduleError(
                f"cannot strip-mine parallel loop {var!r}: strip-mining "
                "tiles a reduction against register capacity"
            )
        if any(isinstance(s, StripLoop) for s in walk(self.program.body)):
            raise ScheduleError("kernel already has a strip-mined loop")
        used = self._used_names()
        outer = self._fresh(f"{var}_o", used)
        inner = self._fresh(f"{var}_i", used)
        size = self._fresh(f"_strip_{var}", used)
        mapping = {var: BinOp("+", BinOp("*", Sym(outer), Sym(size)), Sym(inner))}
        strip = StripLoop(
            outer, inner, size, loop.extent,
            [subst_stmt(s, mapping) for s in loop.body],
        )
        self._replace_in_block(self.program.body, loop, [strip])
        return self

    def unroll(self, var: str, factor: Optional[int] = None) -> "Schedule":
        """Unroll a constant-extent loop (fully, or by ``factor``)."""
        loop = self._the_loop(var)
        if not isinstance(loop.extent, Const):
            raise ScheduleError(
                f"cannot unroll loop {var!r}: extent {loop.extent!r} is not "
                "a compile-time constant"
            )
        extent = loop.extent.value
        factor = extent if factor is None else factor
        if factor <= 0 or extent % factor:
            raise ScheduleError(
                f"unroll factor {factor} does not divide extent {extent}"
            )
        if loop.sharded and factor == extent:
            raise ScheduleError(
                f"cannot fully unroll sharded loop {var!r}: the shard "
                "partition needs a surviving loop"
            )
        if factor == extent:
            replacement = [
                subst_stmt(s, {var: Const(u)})
                for u in range(extent)
                for s in loop.body
            ]
        else:
            outer = self._fresh(f"{var}_u", self._used_names())
            unrolled = Loop(
                outer, Const(extent // factor),
                [
                    subst_stmt(
                        s,
                        {var: BinOp("+", BinOp("*", Sym(outer), Const(factor)),
                                    Const(u))},
                    )
                    for u in range(factor)
                    for s in loop.body
                ],
                parallel=loop.parallel,
            )
            unrolled.sharded = loop.sharded  # shard now partitions blocks
            replacement = [unrolled]
        self._replace_in_block(self.program.body, loop, replacement)
        return self

    def vectorize(self, var: str) -> "Schedule":
        """Map every innermost loop over ``var`` onto vector instructions.

        Legality: the loops must be innermost; ``var`` may only appear in
        *column* positions, as ``var`` or ``var + offset`` with a
        ``var``-free offset; the destination column must be exactly
        ``var``; and every loop over ``var`` must share one extent (the
        runtime vector length).
        """
        program = self.program
        if program.vector_var is not None:
            raise ScheduleError(f"kernel is already vectorized over {program.vector_var!r}")
        loops = program.find_loops(var)
        if not loops:
            raise ScheduleError(f"kernel has no loop over {var!r}")
        extents = {key(loop.extent) for loop in loops}
        if len(extents) > 1:
            raise ScheduleError(
                f"loops over {var!r} have differing extents {sorted(extents)}; "
                "one vector length is required"
            )
        for loop in loops:
            for inner in walk(loop.body):
                if isinstance(inner, (Loop, StripLoop)):
                    raise ScheduleError(
                        f"cannot vectorize {var!r}: loop contains a nested "
                        f"loop (vectorize applies to innermost loops only)"
                    )
            replacement = [
                self._vectorize_stmt(stmt, var) for stmt in loop.body
            ]
            self._replace_in_block(program.body, loop, replacement)
        # var must be fully consumed
        for stmt in walk(program.body):
            if isinstance(stmt, (Assign, Accum)):
                if var in syms(stmt.value) | syms(stmt.dest):
                    raise ScheduleError(
                        f"{var!r} appears outside its loops in {stmt!r}"
                    )
        program.vector_var = var
        program.vector_extent = loops[0].extent
        return self

    # -- the vectorizer ------------------------------------------------------

    def _row_ref(self, access: Access, var: str) -> RowRef:
        if var in syms(access.row):
            raise ScheduleError(
                f"cannot vectorize over {var!r}: it indexes the *rows* of "
                f"{access.operand!r} in {access!r} (rows are the DMA axis)"
            )
        col = access.col
        if key(col) == var:
            offset: Expr = Const(0)
        elif (
            isinstance(col, BinOp) and col.op == "+"
            and (key(col.lhs) == var) != (key(col.rhs) == var)
        ):
            offset = col.rhs if key(col.lhs) == var else col.lhs
            if var in syms(offset):
                raise ScheduleError(f"column index {col!r} is not affine in {var!r}")
        else:
            raise ScheduleError(
                f"column index {col!r} of {access!r} must be {var!r} or "
                f"{var!r} + offset"
            )
        return RowRef(access.operand, access.row, offset)

    def _split_product(self, value: Expr, var: str):
        """Flatten a product into (var-free coefficient, var-carrying factors)."""
        factors: List[Expr] = []

        def flatten(expr: Expr) -> None:
            if isinstance(expr, BinOp) and expr.op == "*":
                flatten(expr.lhs)
                flatten(expr.rhs)
            else:
                factors.append(expr)

        flatten(value)
        carrying = [f for f in factors if var in syms(f)]
        coeff_factors = [f for f in factors if var not in syms(f)]
        coeff: Expr = Const(1)
        for factor in coeff_factors:
            coeff = factor if key(coeff) == "1" else BinOp("*", coeff, factor)
        return coeff, carrying

    def _vectorize_stmt(self, stmt: Stmt, var: str) -> VectorStmt:
        if not isinstance(stmt, (Assign, Accum)):
            raise ScheduleError(f"cannot vectorize statement {stmt!r}")
        dest = stmt.dest
        if var in syms(dest.row):
            raise ScheduleError(
                f"{var!r} indexes destination rows in {dest!r}; vectorize a "
                "column loop instead"
            )
        dest_row = dest.row
        value = stmt.value

        if var not in syms(dest.col):
            # scalar destination: only the reduction pattern reads var
            if isinstance(stmt, Accum) and isinstance(value, Access) and var in syms(
                value
            ):
                return VReduce(dest_row, dest.col, self._row_ref(value, var))
            if isinstance(stmt, Assign) and isinstance(value, Const) and value.value == 0:
                return VClearElem(dest_row, dest.col)
            raise ScheduleError(
                f"unsupported scalar-destination statement under {var!r}: {stmt!r}"
            )

        if key(dest.col) != var:
            raise ScheduleError(
                f"destination column {dest.col!r} must be exactly {var!r}"
            )

        if isinstance(stmt, Accum):
            coeff, carrying = self._split_product(value, var)
            if len(carrying) == 1 and isinstance(carrying[0], Access):
                return VMacc(dest_row, coeff, self._row_ref(carrying[0], var))
            raise ScheduleError(
                f"accumulation {value!r} does not match the supported "
                f"coefficient * row form (vmacc.vs)"
            )

        # Assign forms
        if var not in syms(value):
            if isinstance(value, Const) and value.value == 0:
                return VInit(dest_row, Const(0), None)
            raise ScheduleError(
                f"cannot splat {value!r} across a row (only 0 has a vector "
                "instruction)"
            )
        if isinstance(value, BinOp) and value.op == "+":
            lhs, rhs = value.lhs, value.rhs
            if (
                isinstance(lhs, Access) and isinstance(rhs, Access)
                and var in syms(lhs) and var in syms(rhs)
            ):
                return VEwise(
                    dest_row, "add", self._row_ref(lhs, var), self._row_ref(rhs, var)
                )
        coeff, carrying = self._split_product(value, var)
        if len(carrying) == 1 and isinstance(carrying[0], Access):
            return VInit(dest_row, coeff, self._row_ref(carrying[0], var))
        if (
            len(carrying) == 2
            and all(isinstance(f, Access) for f in carrying)
            and key(coeff) == "1"
        ):
            return VEwise(
                dest_row, "mul",
                self._row_ref(carrying[0], var), self._row_ref(carrying[1], var),
            )
        raise ScheduleError(
            f"assignment {value!r} does not match a supported vector pattern "
            "(row, coeff * row, row + row, row * row, or 0)"
        )
