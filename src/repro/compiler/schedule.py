"""Composable scheduling transforms over the kernel IR — schedules as data.

A :class:`Schedule` wraps a deep copy of a :class:`~repro.compiler.ir.
KernelProgram` and rewrites its loop nest, Exo-style::

    sched = (Schedule(program)
             .shard("i")        # partition output rows across VPUs
             .strip_mine("k")   # tile the reduction against VRF capacity
             .vectorize("j"))   # innermost loop -> vector instructions

Each transform is *checked*: an illegal application (vectorizing a
non-innermost loop, strip-mining a parallel loop, unrolling a symbolic
extent, ...) raises :class:`ScheduleError` at schedule-construction time,
not at kernel runtime.  All transforms only re-associate wrap-around
additions or change data residency, so they never change results.

Beyond the chained-call style, a schedule is also first-class *data*: a
:class:`Recipe` is an ordered list of transform steps like
``("shard", "i")`` / ``("strip_mine", "k", 4)`` / ``("vectorize", "j")``
that round-trips through JSON, applies to any compatible program via
:meth:`Schedule.apply`, and can be *enumerated*:
:meth:`Schedule.legal_moves` lists every step that would apply cleanly
to the current program (optionally constrained by an
:class:`~repro.core.config.ArcaneConfig`'s lanes / vector-register
limits), which is the search space the autotuner in
:mod:`repro.compiler.tune` walks.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.compiler.ir import (
    Access,
    Accum,
    Assign,
    BinOp,
    CompilerError,
    Const,
    accesses,
    Expr,
    KernelProgram,
    Loop,
    RowRef,
    Stmt,
    StripLoop,
    Sym,
    VClearElem,
    VEwise,
    VInit,
    VMacc,
    VReduce,
    VectorStmt,
    key,
    subst,
    syms,
    walk,
)


class ScheduleError(CompilerError):
    """An illegal scheduling transform."""


# ---------------------------------------------------------------------------
# recipes: schedules as serializable data
# ---------------------------------------------------------------------------

#: Transform ops a recipe step may name.
TRANSFORM_OPS = ("shard", "strip_mine", "unroll", "vectorize")

#: A normalized recipe step: ``(op, var)`` or ``(op, var, arg)``.
Step = Tuple


def _normalize_step(step) -> Step:
    """Coerce one step to canonical tuple form, validating its grammar."""
    if isinstance(step, str):
        raise ScheduleError(
            f"recipe step {step!r} is not an (op, var[, arg]) sequence"
        )
    try:
        fields = tuple(step)
    except TypeError:
        raise ScheduleError(
            f"recipe step {step!r} is not an (op, var[, arg]) sequence"
        ) from None
    if not 2 <= len(fields) <= 3:
        raise ScheduleError(
            f"recipe step {step!r} needs 2 or 3 fields: (op, var[, arg])"
        )
    op, var = fields[0], fields[1]
    if op not in TRANSFORM_OPS:
        raise ScheduleError(
            f"unknown recipe op {op!r}; expected one of {TRANSFORM_OPS}"
        )
    if not isinstance(var, str) or not var:
        raise ScheduleError(f"recipe step {step!r} needs a loop-variable name")
    if len(fields) == 2 or fields[2] is None:
        return (op, var)
    arg = fields[2]
    if op not in ("strip_mine", "unroll"):
        raise ScheduleError(
            f"recipe op {op!r} takes no argument, got step {step!r}"
        )
    if isinstance(arg, bool) or not isinstance(arg, int) or arg < 1:
        raise ScheduleError(
            f"recipe step {step!r}: the argument must be a positive integer"
        )
    return (op, var, arg)


class Recipe:
    """An ordered, serializable chain of scheduling transform steps.

    Steps are ``(op, var)`` or ``(op, var, arg)`` tuples where ``op`` is
    one of :data:`TRANSFORM_OPS`; the optional integer argument is the
    unroll factor (``unroll``; omitted = full) or the launch-time strip
    size cap (``strip_mine``).  Recipes are immutable value objects:
    they hash and compare by their normalized steps, so they key caches,
    and they round-trip losslessly through JSON
    (:meth:`to_json` / :meth:`from_json`).
    """

    __slots__ = ("steps",)

    def __init__(self, steps: Iterable = ()) -> None:
        object.__setattr__(
            self, "steps", tuple(_normalize_step(step) for step in steps)
        )

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Recipe is immutable")

    @classmethod
    def coerce(cls, spec: Union["Recipe", Iterable, str, None]) -> "Recipe":
        """None | steps | JSON string | Recipe -> Recipe."""
        if spec is None:
            return cls()
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            return cls.from_json(spec)
        return cls(spec)

    def then(self, op: str, var: str, arg: Optional[int] = None) -> "Recipe":
        """A new recipe with one more step appended."""
        step = (op, var) if arg is None else (op, var, arg)
        return Recipe(self.steps + (step,))

    # -- serialization -------------------------------------------------------

    def as_steps(self) -> List[List]:
        """JSON-clean nested-list form (for embedding in larger records)."""
        return [list(step) for step in self.steps]

    @classmethod
    def from_steps(cls, steps: Iterable) -> "Recipe":
        return cls(steps)

    def to_json(self) -> str:
        return json.dumps(self.as_steps())

    @classmethod
    def from_json(cls, text: str) -> "Recipe":
        try:
            steps = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScheduleError(f"recipe JSON does not parse: {exc}") from None
        if not isinstance(steps, list):
            raise ScheduleError(
                f"recipe JSON must be a list of steps, got {type(steps).__name__}"
            )
        return cls(steps)

    # -- value-object protocol -----------------------------------------------

    def describe(self) -> str:
        """Human-readable one-liner: ``shard(i) . strip_mine(k, 4) . ...``"""
        if not self.steps:
            return "(unscheduled)"
        return " . ".join(
            f"{step[0]}({', '.join(str(f) for f in step[1:])})"
            for step in self.steps
        )

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __bool__(self) -> bool:
        return bool(self.steps)

    def __eq__(self, other) -> bool:
        return isinstance(other, Recipe) and self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __repr__(self) -> str:
        return f"Recipe({list(self.steps)!r})"


# ---------------------------------------------------------------------------
# statement cloning / substitution
# ---------------------------------------------------------------------------


def _subst_row(ref: Optional[RowRef], mapping: Dict[str, Expr]) -> Optional[RowRef]:
    if ref is None:
        return None
    return RowRef(ref.operand, subst(ref.row, mapping), subst(ref.offset, mapping))


def subst_stmt(stmt: Stmt, mapping: Dict[str, Expr]) -> Stmt:
    """Structurally copy a statement, substituting symbols in every
    expression position (used by clone, unroll and strip-mine)."""
    if isinstance(stmt, Loop):
        new = Loop(
            stmt.var,
            subst(stmt.extent, mapping),
            [subst_stmt(s, mapping) for s in stmt.body],
            parallel=stmt.parallel,
        )
        new.sharded = stmt.sharded
        return new
    if isinstance(stmt, StripLoop):
        return StripLoop(
            stmt.outer_var,
            stmt.inner_var,
            stmt.size_sym,
            subst(stmt.total, mapping),
            [subst_stmt(s, mapping) for s in stmt.body],
            stmt.max_size,
        )
    if isinstance(stmt, Assign):
        return Assign(subst(stmt.dest, mapping), subst(stmt.value, mapping))
    if isinstance(stmt, Accum):
        return Accum(subst(stmt.dest, mapping), subst(stmt.value, mapping))
    if isinstance(stmt, VInit):
        return VInit(
            subst(stmt.dest_row, mapping),
            subst(stmt.coeff, mapping),
            _subst_row(stmt.src, mapping),
        )
    if isinstance(stmt, VEwise):
        return VEwise(
            subst(stmt.dest_row, mapping), stmt.op,
            _subst_row(stmt.a, mapping), _subst_row(stmt.b, mapping),
        )
    if isinstance(stmt, VMacc):
        return VMacc(
            subst(stmt.dest_row, mapping),
            subst(stmt.coeff, mapping),
            _subst_row(stmt.src, mapping),
        )
    if isinstance(stmt, VReduce):
        return VReduce(
            subst(stmt.dest_row, mapping), subst(stmt.col, mapping),
            _subst_row(stmt.src, mapping),
        )
    if isinstance(stmt, VClearElem):
        return VClearElem(subst(stmt.dest_row, mapping), subst(stmt.col, mapping))
    raise ScheduleError(f"cannot clone unknown statement {stmt!r}")


def clone_block(stmts: Sequence[Stmt]) -> List[Stmt]:
    return [subst_stmt(s, {}) for s in stmts]


# ---------------------------------------------------------------------------
# the schedule
# ---------------------------------------------------------------------------


class Schedule:
    """A kernel program plus an applied chain of loop transforms.

    Every transform records the step it applied, so ``schedule.recipe``
    is always the :class:`Recipe` that reproduces this schedule from the
    original program — the chained-call style and the data style are the
    same thing.
    """

    def __init__(self, program: KernelProgram) -> None:
        self.program = KernelProgram(
            name=program.name,
            operands=program.operands,
            body=clone_block(program.body),
            params=list(program.params),
            vector_var=program.vector_var,
            vector_extent=program.vector_extent,
        )
        self.applied: List[Step] = []

    @property
    def recipe(self) -> Recipe:
        """The recipe of every transform applied to this schedule so far."""
        return Recipe(self.applied)

    # -- helpers -------------------------------------------------------------

    def _used_names(self) -> set:
        """Every symbol the runtime env can hold: dims, params, operand
        names, loop variables and strip symbols.  Generated names must
        avoid all of them or a transform would silently shadow a value."""
        program = self.program
        used = set(program.params) | program.dims
        used |= {op.name for op in program.operands}
        for stmt in walk(program.body):
            if isinstance(stmt, Loop):
                used.add(stmt.var)
            elif isinstance(stmt, StripLoop):
                used |= {stmt.outer_var, stmt.inner_var, stmt.size_sym}
        return used

    @staticmethod
    def _fresh(base: str, used: set) -> str:
        name, counter = base, 0
        while name in used:
            counter += 1
            name = f"{base}{counter}"
        used.add(name)
        return name

    def _available_vars(self) -> str:
        names = self.program.loop_vars()
        if not names:
            return "(the program has no loops)"
        return "available loop variables: " + ", ".join(repr(n) for n in names)

    def _the_loop(self, var: str) -> Loop:
        loops = self.program.find_loops(var)
        if not loops:
            raise ScheduleError(
                f"kernel {self.program.name!r} has no loop over {var!r}; "
                + self._available_vars()
            )
        if len(loops) > 1:
            raise ScheduleError(
                f"loop variable {var!r} labels {len(loops)} loops; this "
                "transform needs a unique target"
            )
        return loops[0]

    def _replace_in_block(
        self, block: List[Stmt], target: Stmt, replacement: List[Stmt]
    ) -> bool:
        for index, stmt in enumerate(block):
            if stmt is target:
                block[index : index + 1] = replacement
                return True
            if isinstance(stmt, (Loop, StripLoop)):
                if self._replace_in_block(stmt.body, target, replacement):
                    return True
        return False

    # -- transforms ----------------------------------------------------------

    def shard(self, var: str) -> "Schedule":
        """Mark the loop over ``var`` for multi-VPU row sharding.

        The loop must be parallel (independent output rows) and at the
        top level of the kernel: shards partition its range with the same
        :func:`~repro.runtime.kernels.common.shard_rows` policy the
        handwritten kernels use.
        """
        loop = self._the_loop(var)
        if not loop.parallel:
            raise ScheduleError(
                f"cannot shard reduction loop {var!r}: iterations are not "
                "independent output rows"
            )
        if not any(s is loop for s in self.program.body):
            raise ScheduleError(
                f"cannot shard {var!r}: only an outermost loop partitions "
                "cleanly across VPUs"
            )
        if any(isinstance(s, Loop) and s.sharded for s in walk(self.program.body)):
            raise ScheduleError("kernel already has a sharded loop")
        loop.sharded = True
        self.applied.append(("shard", var))
        return self

    def strip_mine(self, var: str, size: Optional[int] = None) -> "Schedule":
        """Tile the reduction loop over ``var`` against VRF capacity.

        The loop becomes a strips/rows pair whose strip size is picked at
        kernel launch from the free-register budget (shared ``k_strip_size``
        policy), so source rows indexed by ``var`` are DMA-loaded strip by
        strip instead of element by element.  ``size`` optionally *caps*
        that launch-time choice — smaller strips shorten each cache-lock
        window at the cost of more DMA batches, which is the knob the
        autotuner sweeps.
        """
        loop = self._the_loop(var)
        if loop.parallel:
            raise ScheduleError(
                f"cannot strip-mine parallel loop {var!r}: strip-mining "
                "tiles a reduction against register capacity"
            )
        if any(isinstance(s, StripLoop) for s in walk(self.program.body)):
            raise ScheduleError("kernel already has a strip-mined loop")
        if size is not None and (not isinstance(size, int) or size < 1):
            raise ScheduleError(
                f"strip size cap must be a positive integer, got {size!r}"
            )
        used = self._used_names()
        outer = self._fresh(f"{var}_o", used)
        inner = self._fresh(f"{var}_i", used)
        size_sym = self._fresh(f"_strip_{var}", used)
        mapping = {var: BinOp("+", BinOp("*", Sym(outer), Sym(size_sym)), Sym(inner))}
        strip = StripLoop(
            outer, inner, size_sym, loop.extent,
            [subst_stmt(s, mapping) for s in loop.body],
            size,
        )
        self._replace_in_block(self.program.body, loop, [strip])
        self.applied.append(
            ("strip_mine", var) if size is None else ("strip_mine", var, size)
        )
        return self

    def unroll(self, var: str, factor: Optional[int] = None) -> "Schedule":
        """Unroll a constant-extent loop (fully, or by ``factor``)."""
        loop = self._the_loop(var)
        if not isinstance(loop.extent, Const):
            raise ScheduleError(
                f"cannot unroll loop {var!r}: extent {loop.extent!r} is not "
                "a compile-time constant"
            )
        extent = loop.extent.value
        factor = extent if factor is None else factor
        if factor <= 0 or extent % factor:
            raise ScheduleError(
                f"unroll factor {factor} does not divide extent {extent}"
            )
        if loop.sharded and factor == extent:
            raise ScheduleError(
                f"cannot fully unroll sharded loop {var!r}: the shard "
                "partition needs a surviving loop"
            )
        if factor == extent:
            replacement = [
                subst_stmt(s, {var: Const(u)})
                for u in range(extent)
                for s in loop.body
            ]
        else:
            outer = self._fresh(f"{var}_u", self._used_names())
            unrolled = Loop(
                outer, Const(extent // factor),
                [
                    subst_stmt(
                        s,
                        {var: BinOp("+", BinOp("*", Sym(outer), Const(factor)),
                                    Const(u))},
                    )
                    for u in range(factor)
                    for s in loop.body
                ],
                parallel=loop.parallel,
            )
            unrolled.sharded = loop.sharded  # shard now partitions blocks
            replacement = [unrolled]
        self._replace_in_block(self.program.body, loop, replacement)
        self.applied.append(
            ("unroll", var) if factor == extent else ("unroll", var, factor)
        )
        return self

    def vectorize(self, var: str) -> "Schedule":
        """Map every innermost loop over ``var`` onto vector instructions.

        Legality: the loops must be innermost; ``var`` may only appear in
        *column* positions, as ``var`` or ``var + offset`` with a
        ``var``-free offset; the destination column must be exactly
        ``var``; and every loop over ``var`` must share one extent (the
        runtime vector length).
        """
        program = self.program
        if program.vector_var is not None:
            raise ScheduleError(f"kernel is already vectorized over {program.vector_var!r}")
        loops = program.find_loops(var)
        if not loops:
            raise ScheduleError(
                f"kernel {program.name!r} has no loop over {var!r}; "
                + self._available_vars()
            )
        extents = {key(loop.extent) for loop in loops}
        if len(extents) > 1:
            raise ScheduleError(
                f"loops over {var!r} have differing extents {sorted(extents)}; "
                "one vector length is required"
            )
        for loop in loops:
            for inner in walk(loop.body):
                if isinstance(inner, (Loop, StripLoop)):
                    raise ScheduleError(
                        f"cannot vectorize {var!r}: loop contains a nested "
                        f"loop (vectorize applies to innermost loops only)"
                    )
            replacement = [
                self._vectorize_stmt(stmt, var) for stmt in loop.body
            ]
            self._replace_in_block(program.body, loop, replacement)
        # var must be fully consumed
        for stmt in walk(program.body):
            if isinstance(stmt, (Assign, Accum)):
                if var in syms(stmt.value) | syms(stmt.dest):
                    raise ScheduleError(
                        f"{var!r} appears outside its loops in {stmt!r}"
                    )
        program.vector_var = var
        program.vector_extent = loops[0].extent
        self.applied.append(("vectorize", var))
        return self

    # -- schedules as data ----------------------------------------------------

    def apply(self, recipe: Union[Recipe, Iterable, str, None]) -> "Schedule":
        """Apply every step of ``recipe`` (steps, JSON or Recipe) in order."""
        for step in Recipe.coerce(recipe):
            op, var = step[0], step[1]
            arg = step[2] if len(step) > 2 else None
            if op == "shard":
                self.shard(var)
            elif op == "strip_mine":
                self.strip_mine(var, arg)
            elif op == "unroll":
                self.unroll(var, arg)
            else:  # vectorize (Recipe normalized the op already)
                self.vectorize(var)
        return self

    def legal_moves(
        self,
        config=None,
        etype_bytes: int = 2,
        max_unroll: int = 8,
    ) -> List[Step]:
        """Every single transform step that applies cleanly right now.

        Each returned step is guaranteed to succeed as the next
        ``apply`` on this schedule (soundness comes from trial
        application against a throwaway copy, so the legality rules
        can never drift from the transforms themselves).  With an
        :class:`~repro.core.config.ArcaneConfig` the enumeration is
        additionally constrained by the machine:

        * ``vectorize`` candidates whose constant extent exceeds the
          vector length (``line_bytes // etype_bytes`` elements) are
          dropped;
        * ``strip_mine`` gains capped variants — power-of-two strip
          size caps below the per-VPU register-file capacity — which
          is the resident-strip-vs-lock-window tuning axis.

        ``strip_mine`` is only offered for loops that index exactly one
        operand's *rows* — the strip window policy keeps a single
        resident-strip operand, so any other strip choice is rejected at
        lowering anyway (mirroring that check here keeps search budgets
        spent on candidates that can actually compile).

        ``unroll`` variants enumerate the divisors of constant loop
        extents up to ``max_unroll`` (full unroll only for small
        extents, keeping generated bodies bounded).
        """
        program = self.program
        already_sharded = any(
            isinstance(s, Loop) and s.sharded for s in walk(program.body)
        )
        has_strip = any(isinstance(s, StripLoop) for s in walk(program.body))
        max_vl: Optional[int] = None
        strip_caps: List[Optional[int]] = [None]
        if config is not None:
            max_vl = max(1, config.line_bytes // max(1, etype_bytes))
            cap = 2
            while cap < config.vregs_per_vpu and len(strip_caps) < 4:
                strip_caps.append(cap)
                cap *= 2

        # operands whose row index references each loop var (the strip
        # window policy supports exactly one resident-strip operand)
        row_indexers: Dict[str, set] = {}
        for stmt in walk(program.body):
            if not isinstance(stmt, (Assign, Accum)):
                continue
            for access in [stmt.dest] + accesses(stmt.value):
                for name in syms(access.row):
                    row_indexers.setdefault(name, set()).add(access.operand)

        candidates: List[Step] = []
        seen: set = set()
        for stmt in walk(program.body):
            if not isinstance(stmt, Loop) or stmt.var in seen:
                continue
            seen.add(stmt.var)
            var = stmt.var
            unique = len(program.find_loops(var)) == 1
            if unique and stmt.parallel and not already_sharded:
                candidates.append(("shard", var))
            strippable = len(row_indexers.get(var, ())) == 1
            if unique and not stmt.parallel and not has_strip and strippable:
                for cap in strip_caps:
                    candidates.append(
                        ("strip_mine", var) if cap is None
                        else ("strip_mine", var, cap)
                    )
            if unique and isinstance(stmt.extent, Const):
                extent = stmt.extent.value
                factors = [
                    f for f in range(2, min(extent, max_unroll + 1))
                    if extent % f == 0
                ]
                if 1 < extent <= max_unroll:
                    candidates.append(("unroll", var))
                candidates.extend(("unroll", var, f) for f in factors)
            if program.vector_var is None:
                if max_vl is not None and isinstance(stmt.extent, Const) and (
                    stmt.extent.value > max_vl
                ):
                    continue  # rows would not fit one vector register
                candidates.append(("vectorize", var))

        moves: List[Step] = []
        for step in candidates:
            trial = Schedule(program)
            try:
                trial.apply((step,))
            except CompilerError:
                continue
            moves.append(step)
        return moves

    # -- the vectorizer ------------------------------------------------------

    def _row_ref(self, access: Access, var: str) -> RowRef:
        if var in syms(access.row):
            raise ScheduleError(
                f"cannot vectorize over {var!r}: it indexes the *rows* of "
                f"{access.operand!r} in {access!r} (rows are the DMA axis)"
            )
        col = access.col
        if key(col) == var:
            offset: Expr = Const(0)
        elif (
            isinstance(col, BinOp) and col.op == "+"
            and (key(col.lhs) == var) != (key(col.rhs) == var)
        ):
            offset = col.rhs if key(col.lhs) == var else col.lhs
            if var in syms(offset):
                raise ScheduleError(f"column index {col!r} is not affine in {var!r}")
        else:
            raise ScheduleError(
                f"column index {col!r} of {access!r} must be {var!r} or "
                f"{var!r} + offset"
            )
        return RowRef(access.operand, access.row, offset)

    def _split_product(self, value: Expr, var: str):
        """Flatten a product into (var-free coefficient, var-carrying factors)."""
        factors: List[Expr] = []

        def flatten(expr: Expr) -> None:
            if isinstance(expr, BinOp) and expr.op == "*":
                flatten(expr.lhs)
                flatten(expr.rhs)
            else:
                factors.append(expr)

        flatten(value)
        carrying = [f for f in factors if var in syms(f)]
        coeff_factors = [f for f in factors if var not in syms(f)]
        coeff: Expr = Const(1)
        for factor in coeff_factors:
            coeff = factor if key(coeff) == "1" else BinOp("*", coeff, factor)
        return coeff, carrying

    def _vectorize_stmt(self, stmt: Stmt, var: str) -> VectorStmt:
        if not isinstance(stmt, (Assign, Accum)):
            raise ScheduleError(f"cannot vectorize statement {stmt!r}")
        dest = stmt.dest
        if var in syms(dest.row):
            raise ScheduleError(
                f"{var!r} indexes destination rows in {dest!r}; vectorize a "
                "column loop instead"
            )
        dest_row = dest.row
        value = stmt.value

        if var not in syms(dest.col):
            # scalar destination: only the reduction pattern reads var
            if isinstance(stmt, Accum) and isinstance(value, Access) and var in syms(
                value
            ):
                return VReduce(dest_row, dest.col, self._row_ref(value, var))
            if isinstance(stmt, Assign) and isinstance(value, Const) and value.value == 0:
                return VClearElem(dest_row, dest.col)
            raise ScheduleError(
                f"unsupported scalar-destination statement under {var!r}: {stmt!r}"
            )

        if key(dest.col) != var:
            raise ScheduleError(
                f"destination column {dest.col!r} must be exactly {var!r}"
            )

        if isinstance(stmt, Accum):
            coeff, carrying = self._split_product(value, var)
            if len(carrying) == 1 and isinstance(carrying[0], Access):
                return VMacc(dest_row, coeff, self._row_ref(carrying[0], var))
            raise ScheduleError(
                f"accumulation {value!r} does not match the supported "
                f"coefficient * row form (vmacc.vs)"
            )

        # Assign forms
        if var not in syms(value):
            if isinstance(value, Const) and value.value == 0:
                return VInit(dest_row, Const(0), None)
            raise ScheduleError(
                f"cannot splat {value!r} across a row (only 0 has a vector "
                "instruction)"
            )
        if isinstance(value, BinOp) and value.op == "+":
            lhs, rhs = value.lhs, value.rhs
            if (
                isinstance(lhs, Access) and isinstance(rhs, Access)
                and var in syms(lhs) and var in syms(rhs)
            ):
                return VEwise(
                    dest_row, "add", self._row_ref(lhs, var), self._row_ref(rhs, var)
                )
        coeff, carrying = self._split_product(value, var)
        if len(carrying) == 1 and isinstance(carrying[0], Access):
            return VInit(dest_row, coeff, self._row_ref(carrying[0], var))
        if (
            len(carrying) == 2
            and all(isinstance(f, Access) for f in carrying)
            and key(coeff) == "1"
        ):
            return VEwise(
                dest_row, "mul",
                self._row_ref(carrying[0], var), self._row_ref(carrying[1], var),
            )
        raise ScheduleError(
            f"assignment {value!r} does not match a supported vector pattern "
            "(row, coeff * row, row + row, row * row, or 0)"
        )
