"""Autotuning: budgeted search over legal-recipe space + schedule cache.

Because schedules are data (:class:`~repro.compiler.schedule.Recipe`),
finding a good one is a search problem, not an authoring problem.  The
:class:`Tuner` runs a budgeted beam search over the legal-move space of
one library algorithm for one concrete operand geometry: every candidate
recipe is compiled into the tuning slot of a pooled
:class:`~repro.core.system.ArcaneSystem`, run on the actual operands,
checked bit-exact against the default schedule's output, and costed by
**simulated cycle count** — the same number every benchmark reports, so
tuned wins are real wins.  The default recipe is always in the candidate
set, so the winner can never be worse than stock.

Winners are memoized in a :class:`ScheduleCache` keyed like the replay
cache — kernel name + operand geometry + an
:class:`~repro.core.config.ArcaneConfig` fingerprint — and the cache is
JSON-persistable so tuning survives across processes.  Serving
(:class:`~repro.serve.engine.ServingEngine`) retunes hot keys online and
swaps winners in via library re-registration; admission control
(:func:`~repro.serve.dispatch.estimate_service_cycles`) consults the
cache's measured cycles before falling back to its trip-count heuristic.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.ir import CompilerError, infer_out_shape
from repro.compiler.library import algorithm, default_recipe, offload_compiled, recompile
from repro.compiler.schedule import Recipe, Step
from repro.core.config import ArcaneConfig

#: User slot the tuner's pooled system measures candidates in (top of the
#: 5..15 user range, far from the stock library slots).
TUNE_SLOT = 15


def config_fingerprint(config: ArcaneConfig) -> str:
    """Short stable digest of every architectural parameter.

    Mirrors the replay-cache keying idiom: two configs agree on the
    fingerprint iff they agree on every field, so cached schedules never
    leak across machine shapes.
    """
    fields = sorted(dataclasses.asdict(config).items())
    blob = ";".join(f"{name}={value!r}" for name, value in fields)
    return hashlib.blake2b(blob.encode(), digest_size=8).hexdigest()


def geometry_key(
    source_shapes: Sequence[Tuple[int, int]],
    dtype,
    params: Sequence[int] = (),
) -> str:
    """Canonical string for one operand geometry (shapes + dtype + params)."""
    shapes = "+".join(f"{int(r)}x{int(c)}" for r, c in source_shapes)
    suffix = np.dtype(dtype).name
    extra = ",".join(str(int(p)) for p in params)
    return f"{shapes}:{suffix}" + (f"|{extra}" if extra else "")


@dataclass(frozen=True)
class TunedSchedule:
    """One schedule-cache entry: the winning recipe and its evidence."""

    recipe: Recipe
    cycles: int
    default_cycles: int
    evaluated: int

    @property
    def speedup(self) -> float:
        return self.default_cycles / self.cycles if self.cycles else 1.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "recipe": self.recipe.as_steps(),
            "cycles": self.cycles,
            "default_cycles": self.default_cycles,
            "evaluated": self.evaluated,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "TunedSchedule":
        return cls(
            recipe=Recipe.coerce(record["recipe"]),
            cycles=int(record["cycles"]),
            default_cycles=int(record["default_cycles"]),
            evaluated=int(record["evaluated"]),
        )


class ScheduleCache:
    """Memo of tuned schedules, keyed kernel | geometry | config fingerprint.

    The same keying discipline as the replay cache: a hit is only valid
    for the exact kernel, operand geometry, and architecture it was
    measured on.  JSON round-trips via :meth:`save` / :meth:`load` so a
    tuning session's winners outlive the process.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, TunedSchedule] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(kernel: str, geometry: str, config: ArcaneConfig) -> str:
        return f"{kernel}|{geometry}|{config_fingerprint(config)}"

    def get(
        self, kernel: str, geometry: str, config: ArcaneConfig
    ) -> Optional[TunedSchedule]:
        entry = self._entries.get(self.key_for(kernel, geometry, config))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(
        self, kernel: str, geometry: str, config: ArcaneConfig, entry: TunedSchedule
    ) -> None:
        self._entries[self.key_for(kernel, geometry, config)] = entry

    def measured_cycles(
        self, kernel: str, geometry: str, config: ArcaneConfig
    ) -> Optional[int]:
        """Measured cycles of the tuned winner, or None when untuned."""
        entry = self._entries.get(self.key_for(kernel, geometry, config))
        return None if entry is None else entry.cycles

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses}

    def as_dict(self) -> Dict[str, object]:
        return {key: entry.as_dict() for key, entry in sorted(self._entries.items())}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleCache":
        cache = cls()
        for key, record in json.loads(text).items():
            cache._entries[str(key)] = TunedSchedule.from_dict(record)
        return cache

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "ScheduleCache":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


@dataclass
class TuneResult:
    """Outcome of one tuning run (or cache hit) for one (kernel, geometry)."""

    kernel: str
    geometry: str
    config_fingerprint: str
    default_recipe: Recipe
    default_cycles: int
    best_recipe: Recipe
    best_cycles: int
    evaluated: int
    budget: int
    from_cache: bool = False

    @property
    def improved(self) -> bool:
        return self.best_cycles < self.default_cycles

    @property
    def speedup(self) -> float:
        return self.default_cycles / self.best_cycles if self.best_cycles else 1.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "geometry": self.geometry,
            "config_fingerprint": self.config_fingerprint,
            "default_recipe": self.default_recipe.as_steps(),
            "default_cycles": self.default_cycles,
            "best_recipe": self.best_recipe.as_steps(),
            "best_cycles": self.best_cycles,
            "speedup": round(self.speedup, 4),
            "evaluated": self.evaluated,
            "budget": self.budget,
            "from_cache": self.from_cache,
        }


class Tuner:
    """Budgeted beam search over the legal-recipe space of library kernels.

    One pooled :class:`ArcaneSystem` (built lazily from ``config``)
    measures every candidate: the recipe is compiled into
    :data:`TUNE_SLOT`, re-registered with ``replace=True``, run on the
    concrete operands, and scored by simulated total cycles.  Outputs
    must match the default schedule's output bit-exactly or the
    candidate is discarded.  ``budget`` caps total simulator runs per
    :meth:`tune` call; ``beam_width`` recipes survive each search level.
    """

    def __init__(
        self,
        config: ArcaneConfig,
        budget: int = 24,
        beam_width: int = 3,
        cache: Optional[ScheduleCache] = None,
    ) -> None:
        if budget < 1:
            raise ValueError(f"search budget must be >= 1, got {budget}")
        if beam_width < 1:
            raise ValueError(f"beam width must be >= 1, got {beam_width}")
        self.config = config
        self.budget = budget
        self.beam_width = beam_width
        self.cache = cache if cache is not None else ScheduleCache()
        self._system = None

    # -- measurement -------------------------------------------------------

    def _get_system(self):
        if self._system is None:
            from repro.core.system import ArcaneSystem

            self._system = ArcaneSystem(self.config)
        return self._system

    def _measure(
        self,
        name: str,
        steps: Tuple[Step, ...],
        sources: Sequence[np.ndarray],
        out_shape: Tuple[int, int],
        params: Sequence[int],
        dtype,
    ) -> Tuple[np.ndarray, int]:
        """Run one candidate recipe on the pooled system; (output, cycles)."""
        spec = recompile(name, Recipe(steps), func5=TUNE_SLOT)
        system = self._get_system()
        system.reset_heap()
        system.llc.runtime.library.register(spec, replace=True)
        handles = [system.place_matrix(np.ascontiguousarray(s)) for s in sources]
        out = system.alloc_matrix(out_shape, dtype)
        with system.program() as prog:
            for register, handle in enumerate(handles):
                prog.xmr(register, handle)
            prog.xmr(len(handles), out)
            offload_compiled(
                prog, TUNE_SLOT, out.etype.suffix, dest=len(handles),
                sources=list(range(len(handles))), params=list(params),
            )
        return system.read_matrix(out), system.last_report.total_cycles

    # -- search ------------------------------------------------------------

    def tune(
        self,
        name: str,
        sources: Sequence[np.ndarray],
        params: Sequence[int] = (),
        force: bool = False,
    ) -> TuneResult:
        """Find the cheapest legal recipe for one kernel on one geometry.

        Returns the cached winner when one exists (``force=True``
        re-searches and overwrites).  The search seeds its frontier with
        the empty recipe and the default recipe, then greedily extends
        the ``beam_width`` cheapest frontiers with their legal moves
        until the budget runs out or no extension helps.
        """
        dtype = np.asarray(sources[0]).dtype
        geometry = geometry_key([np.asarray(s).shape for s in sources], dtype, params)
        program = algorithm(name)
        out_shape = infer_out_shape(program, [np.asarray(s).shape for s in sources])
        default = default_recipe(name)
        fingerprint = config_fingerprint(self.config)

        if not force:
            cached = self.cache.get(name, geometry, self.config)
            if cached is not None:
                return TuneResult(
                    kernel=name, geometry=geometry,
                    config_fingerprint=fingerprint,
                    default_recipe=default,
                    default_cycles=cached.default_cycles,
                    best_recipe=cached.recipe, best_cycles=cached.cycles,
                    evaluated=cached.evaluated, budget=self.budget,
                    from_cache=True,
                )

        etype_bytes = np.dtype(dtype).itemsize
        measured: Dict[Tuple[Step, ...], Optional[int]] = {}
        golden: Dict[str, np.ndarray] = {}
        evaluated = 0

        def evaluate(steps: Tuple[Step, ...]) -> Optional[int]:
            """Cycles for one recipe, or None (illegal / wrong / over budget)."""
            nonlocal evaluated
            if steps in measured:
                return measured[steps]
            if evaluated >= self.budget:
                return None
            try:
                output, cycles = self._measure(
                    name, steps, sources, out_shape, params, dtype
                )
            except CompilerError:
                measured[steps] = None
                return None
            except RuntimeError:
                # infeasible at runtime (e.g. unstripped reduction blows the
                # VRF); the pooled system may be wedged mid-run — rebuild it
                self._system = None
                measured[steps] = None
                return None
            evaluated += 1
            if "ref" not in golden:
                # first successful run (the default recipe) is the oracle
                golden["ref"] = output
            elif not np.array_equal(output, golden["ref"]):
                measured[steps] = None
                return None
            measured[steps] = cycles
            return cycles

        default_steps = tuple(default)
        default_cycles = evaluate(default_steps)
        if default_cycles is None:
            raise CompilerError(
                f"default recipe for {name!r} failed to compile or run: "
                f"{default.describe()}"
            )

        best_steps, best_cycles = default_steps, default_cycles
        seen = {default_steps, ()}
        frontier: List[Tuple[Step, ...]] = [()]
        empty_cycles = evaluate(())
        if empty_cycles is not None and empty_cycles < best_cycles:
            best_steps, best_cycles = (), empty_cycles

        while frontier and evaluated < self.budget:
            scored: List[Tuple[int, int, Tuple[Step, ...]]] = []
            unscored: List[Tuple[Step, ...]] = []
            for steps in frontier:
                base = self._schedule_for(program, steps)
                if base is None:
                    continue
                for move in base.legal_moves(
                    config=self.config, etype_bytes=etype_bytes
                ):
                    extended = steps + (move,)
                    if extended in seen:
                        continue
                    seen.add(extended)
                    cycles = evaluate(extended)
                    if cycles is None:
                        # legal schedule state that doesn't lower (yet) —
                        # e.g. unvectorized; keep it expandable
                        unscored.append(extended)
                    else:
                        scored.append((cycles, len(extended), extended))
                    if evaluated >= self.budget:
                        break
                if evaluated >= self.budget:
                    break
            if not scored and not unscored:
                break
            scored.sort(key=lambda item: (item[0], item[1], repr(item[2])))
            if scored and scored[0][0] < best_cycles:
                best_cycles, best_steps = scored[0][0], scored[0][2]
            frontier = [steps for _, _, steps in scored[: self.beam_width]]
            frontier += unscored[: self.beam_width]

        entry = TunedSchedule(
            recipe=Recipe(best_steps), cycles=best_cycles,
            default_cycles=default_cycles, evaluated=evaluated,
        )
        self.cache.put(name, geometry, self.config, entry)
        return TuneResult(
            kernel=name, geometry=geometry, config_fingerprint=fingerprint,
            default_recipe=default, default_cycles=default_cycles,
            best_recipe=entry.recipe, best_cycles=best_cycles,
            evaluated=evaluated, budget=self.budget,
        )

    @staticmethod
    def _schedule_for(program, steps: Tuple[Step, ...]):
        """A Schedule with ``steps`` applied (Schedule copies the program)."""
        from repro.compiler.schedule import Schedule

        trial = Schedule(program)
        try:
            trial.apply(steps)
        except CompilerError:
            return None
        return trial
