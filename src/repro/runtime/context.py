"""The micro-program API kernels are written against.

A kernel body is a generator that receives a :class:`KernelContext` bound
to the VPU the scheduler selected.  The context exposes:

* register-window management (``claim`` / ``release``);
* DMA in/out through the Matrix Allocator (charged to the *allocation*
  and *writeback* phase buckets of Figure 3);
* vector-instruction dispatch (charged to *compute*, with the pipelined
  ``max(issue, execute)`` cost of the eCPU/VPU pair);
* scalar element reads (the eCPU fetching a filter coefficient out of a
  vector register to use as a ``.vs`` scalar operand).

Keeping phase accounting inside the context means kernels cannot forget
to charge a phase — every effect they can cause is a context call.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.runtime.allocator import MatrixAllocator, RegisterWindow
from repro.runtime.matrix import MatrixBinding
from repro.runtime.phases import PhaseBreakdown
from repro.vpu.dispatcher import Dispatcher
from repro.vpu.visa import ElementType, VectorOp, VectorOpcode


class KernelContext:
    """Execution context handed to a kernel body by the scheduler."""

    #: eCPU cycles to read one element out of a vector register via the
    #: memory-mapped window (load + address computation in the C-RT).
    SCALAR_READ_CYCLES = 4

    def __init__(
        self,
        vpu_index: int,
        etype: ElementType,
        allocator: MatrixAllocator,
        dispatcher: Dispatcher,
        phases: PhaseBreakdown,
    ) -> None:
        self.vpu_index = vpu_index
        self.etype = etype
        self.allocator = allocator
        self.dispatcher = dispatcher
        self.phases = phases
        self._windows: List[RegisterWindow] = []

    # -- register windows ---------------------------------------------------

    @property
    def vpu(self):
        return self.dispatcher.vpu(self.vpu_index)

    @property
    def max_vl(self) -> int:
        return self.vpu.vrf.max_vl(self.etype)

    def free_regs(self) -> int:
        return self.allocator.free_regs(self.vpu_index)

    def claim(self, count: int) -> RegisterWindow:
        window = self.allocator.claim(self.vpu_index, count)
        self._windows.append(window)
        return window

    def release_all(self) -> None:
        """Return every window claimed through this context (scheduler epilogue)."""
        for window in self._windows:
            if window.vregs:
                self.allocator.release(window)
        self._windows.clear()

    # -- data movement --------------------------------------------------------

    def load_rows(
        self,
        window: RegisterWindow,
        matrix: MatrixBinding,
        row_start: int,
        n_rows: int,
        reg_start: int = 0,
    ) -> Generator:
        cycles = yield from self.allocator.load_rows(
            window, matrix, row_start, n_rows, reg_start
        )
        self.phases.add("allocation", cycles)
        return cycles

    def load_packed(
        self,
        window: RegisterWindow,
        matrix: MatrixBinding,
        reg_index: int = 0,
    ) -> Generator:
        cycles = yield from self.allocator.load_packed(window, matrix, reg_index)
        self.phases.add("allocation", cycles)
        return cycles

    def load_row_set(self, specs) -> Generator:
        """Synchronous batched row load (one lock acquisition)."""
        cycles = yield from self.allocator.load_row_set(specs)
        self.phases.add("allocation", cycles)
        return cycles

    def prefetch_row_set(self, specs):
        """Start a double-buffered row load running concurrently with compute.

        Returns a handle to pass to :meth:`wait_prefetch`.  Only the
        *exposed* wait time (DMA cycles not hidden under compute) is
        charged to the allocation phase — this is the wall-clock
        attribution behind Figure 3's allocation share.
        """
        sim = self.allocator.sim
        generator = self.allocator.load_row_set(specs)
        return sim.process(generator, name=f"prefetch.vpu{self.vpu_index}")

    def wait_prefetch(self, handle) -> Generator:
        """Join an outstanding prefetch; charge only the exposed wait."""
        if handle is None:
            return 0
        sim = self.allocator.sim
        started = sim.now
        if not handle.finished:
            yield handle
        exposed = sim.now - started
        self.phases.add("allocation", exposed)
        return exposed

    def store_rows(
        self,
        window: RegisterWindow,
        matrix: MatrixBinding,
        row_start: int,
        n_rows: int,
        reg_start: int = 0,
        n_cols: Optional[int] = None,
    ) -> Generator:
        cycles = yield from self.allocator.store_rows(
            window, matrix, row_start, n_rows, reg_start, n_cols
        )
        self.phases.add("writeback", cycles)
        return cycles

    # -- compute ---------------------------------------------------------------

    def vop(
        self,
        opcode: VectorOpcode,
        vd: int,
        vs1: int = 0,
        vs2: int = 0,
        vl: int = 0,
        scalar: int = 0,
        offset: int = 0,
        stride: int = 1,
        vd_offset: int = 0,
        etype: Optional[ElementType] = None,
    ) -> Generator:
        """Dispatch one vector instruction; yields its pipelined cost."""
        op = VectorOp(
            opcode=opcode,
            etype=etype or self.etype,
            vd=vd,
            vs1=vs1,
            vs2=vs2,
            vl=vl,
            scalar=scalar,
            offset=offset,
            stride=stride,
            vd_offset=vd_offset,
        )
        return self._issue(op)

    def _issue(self, op: VectorOp) -> Generator:
        """Issue one built :class:`VectorOp` (replay-recording hook point)."""
        cost = self.dispatcher.dispatch(self.vpu_index, op)
        self.phases.add("compute", cost)
        yield cost
        return cost

    def read_element(self, vreg: int, index: int, etype: Optional[ElementType] = None) -> Generator:
        """eCPU reads one element from a vector register (returns its value)."""
        etype = etype or self.etype
        value = int(self.vpu.vrf.view(vreg, etype)[index])
        self.phases.add("compute", self.SCALAR_READ_CYCLES)
        yield self.SCALAR_READ_CYCLES
        return value
