"""The Kernel Decoder — interrupt-context software decode (paper IV-B.1).

The bridge raises an interrupt for every offloaded instruction; the
decoder runs in the handler and:

* for ``xmr``: binds (address, shape) to a logical matrix register in the
  matrix map — *no data is loaded* (deferred allocation), renaming the
  register transparently when its old binding is still in use;
* for ``xmkN``: looks up the kernel library by func5 (O(1)); unknown
  operations are rejected (the bridge reports 'kill' to the host).
  Recognised kernels run their preamble, have their operand regions
  recorded in the Address Table (WAR/RAW/WAW guards) and are pushed to
  the kernel queue.

Cycle costs model the C-RT handler: interrupt entry, table lookups,
preamble bookkeeping.  The host is stalled for exactly this handshake
(decode outcome), then continues out-of-order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.cache.address_table import AddressTable, OperandKind
from repro.isa.xmnmc import FUNC5_XMR, OffloadRequest
from repro.runtime.kernel_lib import KernelLibrary
from repro.runtime.matrix import MatrixMap
from repro.runtime.queue import KernelQueue, QueuedKernel
from repro.sim.kernel import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer
from repro.vpu.visa import ElementType


@dataclass(frozen=True)
class DecodeCosts:
    """C-RT handler cycle costs (eCPU instructions, calibrated constants)."""

    interrupt_entry: int = 150  # trap + context save + bridge register reads
    xmr_bind: int = 800  # matrix map update + hazard/renaming check
    kernel_lookup: int = 100  # O(1) library access + argument unpack
    kernel_preamble: int = 3000  # operand resolution + AT registration + enqueue
    reject: int = 40  # unknown func5 -> kill response


class KernelDecoder:
    """Software decoder for offloaded xmnmc instructions."""

    def __init__(
        self,
        sim: Simulator,
        matrix_map: MatrixMap,
        library: KernelLibrary,
        queue: KernelQueue,
        address_table: AddressTable,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
        costs: DecodeCosts = DecodeCosts(),
    ) -> None:
        self.sim = sim
        self.matrix_map = matrix_map
        self.library = library
        self.queue = queue
        self.at = address_table
        self.stats = stats or StatsRegistry()
        self.tracer = tracer or Tracer(enabled=False)
        self.costs = costs
        self._c_renames = self.stats.counter("decoder.renames")
        self._c_xmr = self.stats.counter("decoder.xmr")
        self._c_accepted = self.stats.counter("decoder.accepted")
        self._c_rejected = self.stats.counter("decoder.rejected")
        self._next_kernel_id = 0
        # eCPU decode cycles not yet attributed to a kernel: xmr decode is
        # part of the *preamble* of the kernel that consumes the reserved
        # matrices (paper V-B: "multiple xmr instructions define kernel
        # operands in the preamble phase").
        self._pending_preamble_cycles = 0

    def decode(self, request: OffloadRequest) -> Generator:
        """Simulation process: decode one offload.

        Returns the accepted :class:`QueuedKernel` (already enqueued), or
        None when the instruction was an ``xmr`` or was rejected.
        """
        yield self.costs.interrupt_entry
        self._pending_preamble_cycles += self.costs.interrupt_entry
        if request.func5 == FUNC5_XMR:
            result = yield from self._decode_xmr(request)
            return result
        result = yield from self._decode_kernel(request)
        return result

    def _decode_xmr(self, request: OffloadRequest) -> Generator:
        (addr_hi, addr_lo), (stride, md), (cols, rows) = request.pairs()
        address = (addr_hi << 16) | addr_lo
        etype = ElementType.from_suffix(request.size_suffix)
        renames_before = self.matrix_map.rename_count
        self.matrix_map.bind(md, address, rows, cols, stride, etype)
        if self.matrix_map.rename_count > renames_before:
            self._c_renames.add()
        self._c_xmr.add()
        self.tracer.log(
            self.sim.now, "decoder", "xmr",
            md=md, addr=address, rows=rows, cols=cols, etype=etype.suffix,
        )
        yield self.costs.xmr_bind
        self._pending_preamble_cycles += self.costs.xmr_bind
        return None

    def _decode_kernel(self, request: OffloadRequest) -> Generator:
        yield self.costs.kernel_lookup
        self._pending_preamble_cycles += self.costs.kernel_lookup
        spec = self.library.lookup(request.func5)
        if spec is None:
            self._c_rejected.add()
            self.tracer.log(self.sim.now, "decoder", "reject", func5=request.func5)
            yield self.costs.reject
            self._pending_preamble_cycles = 0
            return None

        dest, sources, scalars = spec.preamble(request, self.matrix_map)
        etype = ElementType.from_suffix(request.size_suffix)
        preamble_cycles = self._pending_preamble_cycles + self.costs.kernel_preamble
        self._pending_preamble_cycles = 0
        kernel = QueuedKernel(
            kernel_id=self._next_kernel_id,
            func5=request.func5,
            name=spec.name,
            etype=etype,
            dest=dest,
            sources=sources,
            scalars=scalars,
            done=self.sim.event(f"kernel{self._next_kernel_id}.done"),
            preamble_cycles=preamble_cycles,
        )
        self._next_kernel_id += 1

        # Guard the operand regions before the host can race them
        # (paper IV-B.1: record start/end in the AT from the decoder).
        for source in sources:
            source.pending_uses += 1
            self.at.register(
                source.address, source.end_address, OperandKind.SOURCE, source.binding_id
            )
        if dest is not None:
            dest.pending_uses += 1
            self.at.register(
                dest.address, dest.end_address, OperandKind.DEST, dest.binding_id
            )

        yield self.costs.kernel_preamble
        yield from self.queue.push_wait(kernel)
        self._c_accepted.add()
        self.tracer.log(
            self.sim.now, "decoder", "accept",
            kernel=kernel.kernel_id, name=spec.name, func5=request.func5,
        )
        return kernel
