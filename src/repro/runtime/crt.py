"""C-RT top level: wiring of decoder, scheduler, allocator and queue.

The runtime mirrors the paper's description (section IV-B): a
single-threaded preemptive runtime with statically allocated structures
(kernel queue, matrix map) sized at configuration time, a producer-
consumer kernel queue between the interrupt-context decoder and the
main-loop scheduler, and a deep-sleep mode when no operations are
pending (modelled as an idle-cycle counter for the power discussion).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.cache.address_table import AddressTable
from repro.cache.controller import LlcController
from repro.mem.bus import BusModel
from repro.runtime.allocator import MatrixAllocator
from repro.runtime.decoder import DecodeCosts, KernelDecoder
from repro.runtime.kernel_lib import KernelLibrary
from repro.runtime.matrix import MatrixMap
from repro.runtime.phases import PhaseBreakdown
from repro.runtime.queue import KernelQueue, QueuedKernel
from repro.runtime.replay import ReplayCache, fastpath_enabled
from repro.runtime.scheduler import KernelScheduler
from repro.sim.kernel import Process, Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer
from repro.vpu.dispatcher import Dispatcher
from repro.isa.xmnmc import OffloadRequest


class CacheRuntime:
    """The complete C-RT instance running on the eCPU."""

    def __init__(
        self,
        sim: Simulator,
        controller: LlcController,
        dispatcher: Dispatcher,
        bus: BusModel,
        n_matrix_registers: int = 8,
        queue_capacity: int = 8,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
        decode_costs: DecodeCosts = DecodeCosts(),
        multi_vpu: bool = False,
        vpu_policy: str = "fewest_dirty",
        fastpath: bool = True,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.stats = stats or StatsRegistry()
        self.tracer = tracer or Tracer(enabled=False)
        self.matrix_map = MatrixMap(n_matrix_registers)
        self.library = KernelLibrary()
        self.queue = KernelQueue(queue_capacity, sim)
        self.allocator = MatrixAllocator(
            sim, controller, [vpu for vpu in dispatcher.vpus], bus, self.stats
        )
        self.decoder = KernelDecoder(
            sim, self.matrix_map, self.library, self.queue, controller.at,
            self.stats, self.tracer, decode_costs,
        )
        #: the kernel replay cache (None when the fast path is disabled via
        #: config, ``ARCANE_NO_FASTPATH=1`` or per-op tracing)
        self.replay_cache = (
            ReplayCache(self.library)
            if fastpath_enabled(fastpath) and not self.tracer.enabled
            else None
        )
        self.scheduler = KernelScheduler(
            sim, self.queue, self.library, dispatcher, self.allocator, controller,
            self.stats, self.tracer, multi_vpu=multi_vpu, vpu_policy=vpu_policy,
            replay_cache=self.replay_cache,
        )
        self._scheduler_process: Optional[Process] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Launch the scheduler main loop as a simulation process."""
        if self._scheduler_process is not None:
            return
        self.scheduler.rearm()
        self._scheduler_process = self.sim.process(
            self.scheduler.run_forever(), name="crt.scheduler"
        )

    def stop(self) -> Optional[Process]:
        """Ask the scheduler loop to exit; returns its process (or None).

        The stop event wakes a scheduler parked on an empty queue, so the
        loop exits on the current cycle without another kernel arriving.
        A later :meth:`start` relaunches it.
        """
        if self._scheduler_process is None:
            return None
        self.scheduler.stop()
        process, self._scheduler_process = self._scheduler_process, None
        return process

    def install_default_kernels(self) -> None:
        """Register the five Table I kernels in their paper slots."""
        from repro.runtime.kernels import install_all

        install_all(self.library)

    # -- bridge-facing decode entry point ---------------------------------------

    def decode(self, request: OffloadRequest) -> Generator:
        """Interrupt handler body invoked by the bridge."""
        result = yield from self.decoder.decode(request)
        return result

    # -- synchronization helpers --------------------------------------------------

    def pending_kernels(self) -> List[QueuedKernel]:
        return self.queue.peek_all()

    def busy_reasons(self) -> List[str]:
        """Why the runtime is not idle (empty when all work has completed).

        The single source of truth for the idle predicate: queued kernels,
        claimed VPUs, and the pop→claim scheduling window all count as
        busy.  Used by :meth:`drain` and by every lifecycle operation that
        must not run over live operands (heap reset/free).
        """
        reasons = []
        pending = self.queue.peek_all()
        if pending:
            reasons.append(f"{len(pending)} queued kernel(s)")
        busy = [
            v for v in range(self.scheduler.dispatcher.n_vpus)
            if self.scheduler.dispatcher.owner(v) is not None
        ]
        if busy:
            reasons.append(f"VPUs busy: {busy}")
        if self.scheduler.inflight is not None:
            reasons.append("a kernel is mid-schedule")
        return reasons

    def is_idle(self) -> bool:
        return not self.busy_reasons()

    def drain(self) -> Generator:
        """Simulation process: wait until every queued kernel has completed."""
        while True:
            if self.is_idle():
                return
            pending = self.queue.peek_all()
            if pending and pending[0].done is not None:
                yield pending[0].done
            else:
                yield 50  # poll while a kernel is mid-flight

    @property
    def breakdowns(self) -> dict:
        """Per-kernel :class:`PhaseBreakdown` by kernel id."""
        return self.scheduler.breakdowns

    def total_breakdown(self) -> PhaseBreakdown:
        merged = PhaseBreakdown()
        for breakdown in self.scheduler.breakdowns.values():
            merged.merge(breakdown)
        return merged
