"""Per-kernel execution-phase cycle accounting (paper Figure 3).

The xmnmc abstraction costs cycles in four places: software decoding
(preamble), operand allocation DMA, the compute phase proper, and the
result write-back DMA.  Figure 3 of the paper plots exactly this
breakdown, so every kernel execution in the system model fills in a
:class:`PhaseBreakdown` that the benchmark harness reads back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

PHASES = ("preamble", "allocation", "compute", "writeback")


@dataclass
class PhaseBreakdown:
    """Cycle totals by phase for one kernel (or an aggregate of kernels)."""

    cycles: Dict[str, int] = field(default_factory=lambda: {p: 0 for p in PHASES})

    def add(self, phase: str, amount: int) -> None:
        if phase not in self.cycles:
            raise KeyError(f"unknown phase {phase!r}; expected one of {PHASES}")
        if amount < 0:
            raise ValueError(f"cannot add negative cycles ({amount}) to {phase}")
        self.cycles[phase] += amount

    @property
    def total(self) -> int:
        return sum(self.cycles.values())

    @property
    def non_compute(self) -> int:
        return self.total - self.cycles["compute"]

    def fraction(self, phase: str) -> float:
        """Share of the total spent in ``phase`` (0.0 when nothing ran)."""
        total = self.total
        return self.cycles[phase] / total if total else 0.0

    def overhead_fraction(self) -> float:
        """Non-compute share of the total — the paper's 'overhead'."""
        total = self.total
        return self.non_compute / total if total else 0.0

    def merge(self, other: "PhaseBreakdown") -> "PhaseBreakdown":
        for phase, amount in other.cycles.items():
            self.cycles[phase] += amount
        return self

    def as_dict(self) -> Dict[str, int]:
        return dict(self.cycles)

    def __str__(self) -> str:
        parts = ", ".join(f"{p}={self.cycles[p]}" for p in PHASES)
        return f"PhaseBreakdown({parts}, total={self.total})"
