"""Per-kernel execution-phase cycle accounting (paper Figure 3).

The xmnmc abstraction costs cycles in four places: software decoding
(preamble), operand allocation DMA, the compute phase proper, and the
result write-back DMA.  Figure 3 of the paper plots exactly this
breakdown, so every kernel execution in the system model fills in a
:class:`PhaseBreakdown` that the benchmark harness reads back.

The four canonical phases are always present.  Kernel bodies may record
*additional* phases (a compiled kernel's prologue, a user kernel's
reduction pass, ...); these auto-register on first :meth:`add` so no
cycle is ever silently dropped when breakdowns are merged or sharded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

PHASES = ("preamble", "allocation", "compute", "writeback")


@dataclass
class PhaseBreakdown:
    """Cycle totals by phase for one kernel (or an aggregate of kernels)."""

    cycles: Dict[str, int] = field(default_factory=lambda: {p: 0 for p in PHASES})

    def add(self, phase: str, amount: int) -> None:
        if not phase or not isinstance(phase, str):
            raise KeyError(f"phase name must be a non-empty string, got {phase!r}")
        if amount < 0:
            raise ValueError(f"cannot add negative cycles ({amount}) to {phase}")
        self.cycles[phase] = self.cycles.get(phase, 0) + amount

    @property
    def total(self) -> int:
        return sum(self.cycles.values())

    @property
    def non_compute(self) -> int:
        return self.total - self.cycles.get("compute", 0)

    def fraction(self, phase: str) -> float:
        """Share of the total spent in ``phase`` (0.0 when nothing ran)."""
        total = self.total
        return self.cycles.get(phase, 0) / total if total else 0.0

    def overhead_fraction(self) -> float:
        """Non-compute share of the total — the paper's 'overhead'."""
        total = self.total
        return self.non_compute / total if total else 0.0

    def merge(self, other: "PhaseBreakdown") -> "PhaseBreakdown":
        for phase, amount in other.cycles.items():
            self.cycles[phase] = self.cycles.get(phase, 0) + amount
        return self

    def phase_names(self) -> tuple:
        """Canonical phases first, then custom phases in insertion order."""
        extras = tuple(p for p in self.cycles if p not in PHASES)
        return PHASES + extras

    def as_dict(self) -> Dict[str, int]:
        return dict(self.cycles)

    def __str__(self) -> str:
        parts = ", ".join(f"{p}={self.cycles[p]}" for p in self.phase_names())
        return f"PhaseBreakdown({parts}, total={self.total})"
