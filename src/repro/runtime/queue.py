"""The statically allocated kernel queue (paper IV-B).

C-RT follows a producer-consumer model around a fixed-capacity queue:
the Kernel Decoder (interrupt context) produces entries, the Kernel
Scheduler consumes them.  Static sizing gives predictable memory use;
a full queue back-pressures the decoder, which in turn stalls the host's
offload handshake.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runtime.matrix import MatrixBinding
from repro.sim.kernel import Event, Simulator
from repro.vpu.visa import ElementType


@dataclass
class QueuedKernel:
    """One scheduled matrix operation waiting for (or in) execution."""

    kernel_id: int
    func5: int
    name: str
    etype: ElementType
    dest: Optional[MatrixBinding]
    sources: List[MatrixBinding]
    scalars: Dict[str, int] = field(default_factory=dict)
    done: Optional[Event] = field(default=None, repr=False)
    #: eCPU cycles spent decoding this kernel and its preceding xmr
    #: reservations (attributed to the preamble phase of Figure 3).
    preamble_cycles: int = 0

    def bindings(self) -> List[MatrixBinding]:
        out = list(self.sources)
        if self.dest is not None:
            out.append(self.dest)
        return out


class KernelQueue:
    """Fixed-capacity FIFO with simulation-event back-pressure."""

    def __init__(self, capacity: int, sim: Optional[Simulator] = None) -> None:
        if capacity <= 0:
            raise ValueError("kernel queue capacity must be positive")
        self.capacity = capacity
        self.sim = sim
        self._items: List[QueuedKernel] = []
        self._pushed: Optional[Event] = sim.event("kq.pushed") if sim else None
        self._popped: Optional[Event] = sim.event("kq.popped") if sim else None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def pushed_event(self) -> Event:
        """The event that fires on the next :meth:`push` (fresh per push)."""
        if self._pushed is None:
            raise RuntimeError("queue was built without a simulator")
        return self._pushed

    def kick(self) -> None:
        """Fire the push event without pushing (spurious wakeup).

        Parked consumers wake and re-check their condition — how
        :meth:`KernelScheduler.stop` reaches a scheduler parked on an
        empty queue without enqueueing a sentinel kernel.
        """
        self._fire("_pushed")

    def _fire(self, attr: str) -> None:
        event: Optional[Event] = getattr(self, attr)
        if event is not None:
            setattr(self, attr, self.sim.event(event.name))
            event.fire()

    def push(self, item: QueuedKernel) -> None:
        if self.full:
            raise OverflowError(f"kernel queue full ({self.capacity})")
        self._items.append(item)
        self._fire("_pushed")

    def pop(self) -> QueuedKernel:
        if not self._items:
            raise IndexError("kernel queue empty")
        item = self._items.pop(0)
        self._fire("_popped")
        return item

    def push_wait(self, item: QueuedKernel):
        """Simulation process: wait for space, then push."""
        while self.full:
            yield self._popped
        self.push(item)

    def pop_wait(self):
        """Simulation process: wait for an item, then pop and return it."""
        while self.empty:
            yield self._pushed
        return self.pop()

    def peek_all(self) -> List[QueuedKernel]:
        """Snapshot of queued kernels (scheduler look-ahead)."""
        return list(self._items)
