"""The Cache Runtime (C-RT) — the software stack on the eCPU (paper IV-B).

C-RT is a single-threaded, preemptive runtime with static allocation.
Its three core modules, mirrored one-to-one here:

* **Kernel Decoder** (:mod:`repro.runtime.decoder`) — interrupt-driven
  software decoding of offloaded matrix instructions, operand region
  registration in the Address Table, logical-matrix renaming for
  reservation hazards;
* **Kernel Scheduler** (:mod:`repro.runtime.scheduler`) — VPU selection
  (fewest dirty cache lines first), kernel execution, operand release;
* **Matrix Allocator** (:mod:`repro.runtime.allocator`) — lock-protected
  2D DMA programming that moves operands between the memory system and
  VPU vector registers in the kernel's layout.

Kernels themselves (:mod:`repro.runtime.kernels`) are micro-programs
expressed against the :class:`~repro.runtime.context.KernelContext` API,
compiled down to the custom vector ISA of :mod:`repro.vpu.visa`.
"""

from repro.runtime.matrix import MatrixBinding, MatrixMap
from repro.runtime.queue import KernelQueue, QueuedKernel
from repro.runtime.kernel_lib import KernelLibrary, KernelSpec
from repro.runtime.context import KernelContext
from repro.runtime.crt import CacheRuntime

__all__ = [
    "MatrixBinding",
    "MatrixMap",
    "KernelQueue",
    "QueuedKernel",
    "KernelLibrary",
    "KernelSpec",
    "KernelContext",
    "CacheRuntime",
]
