"""The user-configurable kernel library (paper IV-B.1).

Kernels are looked up by ``func5`` with O(1) access.  Each entry couples:

* a *preamble* — runs in the decoder's interrupt context; it resolves
  logical matrix registers to bindings, validates shapes and returns the
  operand lists the Address Table must guard;
* a *body* — the micro-program generator executed by the scheduler on a
  VPU through the :class:`~repro.runtime.context.KernelContext` API.

Because the library is a runtime-registered table, new complex
instructions can be added without touching the simulator — the paper's
"software-based ISA extensibility" (see ``examples/custom_kernel.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.isa.xmnmc import MAX_KERNEL_FUNC5, OffloadRequest
from repro.runtime.matrix import MatrixBinding, MatrixMap

#: Preamble result: (dest binding or None, source bindings, scalar params).
PreambleResult = Tuple[Optional[MatrixBinding], List[MatrixBinding], Dict[str, int]]
Preamble = Callable[[OffloadRequest, MatrixMap], PreambleResult]
#: Body: generator executed in the scheduler (KernelContext, QueuedKernel).
Body = Callable[..., Generator]


@dataclass(frozen=True)
class KernelSpec:
    """One software-defined complex instruction."""

    func5: int
    name: str
    preamble: Preamble
    body: Body
    description: str = ""


class KernelLibrary:
    """func5 -> kernel dispatch table with user registration."""

    def __init__(self) -> None:
        self._by_func5: Dict[int, KernelSpec] = {}
        #: bumped on every (re)registration; the kernel replay cache keys
        #: its recordings to this so reprogramming a slot invalidates any
        #: recorded micro-program streams of the old body.
        self.generation = 0

    def register(self, spec: KernelSpec, replace: bool = False) -> None:
        """Install a kernel in slot ``spec.func5``.

        ``replace=True`` allows updating an existing slot, mirroring the
        paper's reprogrammable software decoder.
        """
        if not 0 <= spec.func5 <= MAX_KERNEL_FUNC5:
            raise ValueError(
                f"cannot register kernel {spec.name!r}: func5 {spec.func5} "
                f"outside [0, {MAX_KERNEL_FUNC5}] (slot 31 is the xmr opcode)"
            )
        if spec.func5 in self._by_func5 and not replace:
            raise ValueError(
                f"cannot register kernel {spec.name!r}: slot {spec.func5} "
                f"already holds {self._by_func5[spec.func5].name!r} "
                f"(pass replace=True to reprogram the slot)"
            )
        self._by_func5[spec.func5] = spec
        self.generation += 1

    def lookup(self, func5: int) -> Optional[KernelSpec]:
        """O(1) lookup by func5; None for unrecognised operations."""
        return self._by_func5.get(func5)

    def names(self) -> Dict[int, str]:
        return {func5: spec.name for func5, spec in sorted(self._by_func5.items())}

    def __len__(self) -> int:
        return len(self._by_func5)

    def __contains__(self, func5: int) -> bool:
        return func5 in self._by_func5
