"""``xmk4`` — the 3-channel 2D convolutional layer (paper Table I, IV-A.2).

The paper's flagship software-defined instruction, "inspired by ImageNet":
a fused 2D convolution over three input channels, ReLU activation and
2x2/stride-2 max pooling, supporting matrices of arbitrary dimensions.

Data layout: the input binding stacks the three channel planes row-wise
(``3H x W``), the filter binding stacks the three ``K x K`` channel
filters (``3K x K``).  The destination holds the pooled output
(``floor((H-K+1-2)/2)+1`` squared rows/cols).

Micro-program per conv row: 3 * K**2 ``vmacc.vs`` over a rolling window
of K input rows per channel (every input row is DMA-loaded exactly once);
each pair of conv rows is reduced to one pooled output row with five
strided max/ReLU vector instructions.  Supports multi-VPU sharding over
pooled output rows.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.isa.xmnmc import OffloadRequest
from repro.runtime.context import KernelContext
from repro.runtime.kernel_lib import KernelSpec, PreambleResult
from repro.runtime.kernels.common import (
    check_shape,
    conv_output_shape,
    pool_output_shape,
    resolve,
    shard_rows,
)
from repro.runtime.matrix import MatrixMap
from repro.runtime.queue import QueuedKernel
from repro.vpu.visa import VectorOpcode

N_CHANNELS = 3
POOL_WINDOW = 2
POOL_STRIDE = 2


def conv_layer_shapes(in_rows: int, in_cols: int, filter_rows: int, filter_cols: int):
    """Derive (H, K, conv_shape, pooled_shape) and validate the stacking."""
    if in_rows % N_CHANNELS:
        raise ValueError(
            f"3-channel input must stack {N_CHANNELS} planes row-wise; "
            f"{in_rows} rows is not a multiple of {N_CHANNELS}"
        )
    if filter_rows % N_CHANNELS:
        raise ValueError(f"filter rows {filter_rows} not a multiple of {N_CHANNELS}")
    height = in_rows // N_CHANNELS
    k = filter_rows // N_CHANNELS
    if k != filter_cols:
        raise ValueError(f"per-channel filter must be square, got {k}x{filter_cols}")
    conv_shape = conv_output_shape(height, in_cols, k)
    pooled_shape = pool_output_shape(conv_shape[0], conv_shape[1], POOL_WINDOW, POOL_STRIDE)
    return height, k, conv_shape, pooled_shape


def conv_layer_preamble(request: OffloadRequest, matrix_map: MatrixMap) -> PreambleResult:
    _, (_, md), (ms1, ms2) = request.pairs()
    x = resolve(matrix_map, ms1)
    f = resolve(matrix_map, ms2)
    d = resolve(matrix_map, md)
    height, k, _, pooled_shape = conv_layer_shapes(x.rows, x.cols, f.rows, f.cols)
    check_shape(d, pooled_shape[0], pooled_shape[1], "destination")
    return d, [x, f], {"k": k, "height": height}


def conv_layer_body(
    kc: KernelContext,
    kernel: QueuedKernel,
    shard: Optional[Tuple[int, int]] = None,
) -> Generator:
    x, f = kernel.sources
    d = kernel.dest
    k = kernel.scalars["k"]
    height = kernel.scalars["height"]
    width = x.cols
    conv_rows, conv_cols = conv_output_shape(height, width, k)
    pooled_rows, pooled_cols = pool_output_shape(
        conv_rows, conv_cols, POOL_WINDOW, POOL_STRIDE
    )
    pool_start, pool_count = shard_rows(pooled_rows, shard or (0, 1))
    if pool_count == 0:
        return

    # Register file layout: one rolling (K+1)-row window per channel (the
    # +1 slot receives the double-buffered DMA prefetch of the next row
    # while rows i..i+K-1 feed the MACs), the stacked filter packed into
    # one register (or one per channel when a single register cannot hold
    # 3*K*K elements), POOL_WINDOW conv-row buffers and one pooled
    # accumulator.
    depth = k + 1
    channel_wins = [kc.claim(depth) for _ in range(N_CHANNELS)]
    whole_filter_fits = f.rows * f.cols <= kc.max_vl
    if whole_filter_fits:
        flt_win = kc.claim(1)
        yield from kc.load_packed(flt_win, f)
        flt_regs = [flt_win[0]] * N_CHANNELS
        flt_offsets = [channel * k * k for channel in range(N_CHANNELS)]
    else:
        flt_win = kc.claim(N_CHANNELS)
        from repro.runtime.matrix import MatrixBinding

        for channel in range(N_CHANNELS):
            plane = MatrixBinding(
                address=f.row_address(channel * k), rows=k, cols=f.cols,
                stride=f.stride, etype=f.etype,
            )
            yield from kc.load_packed(flt_win, plane, reg_index=channel)
        flt_regs = [flt_win[channel] for channel in range(N_CHANNELS)]
        flt_offsets = [0] * N_CHANNELS
    conv_bufs = kc.claim(POOL_WINDOW)
    pool_win = kc.claim(1)

    conv_first = pool_start * POOL_STRIDE
    conv_last = (pool_start + pool_count - 1) * POOL_STRIDE + POOL_WINDOW  # exclusive

    # Initial synchronous fill of the first K rows of every channel, then
    # steady state: prefetch row i+k of all channels while computing row i.
    yield from kc.load_row_set(
        [
            (channel_wins[channel], x, channel * height + r, r % depth)
            for r in range(conv_first, conv_first + k)
            for channel in range(N_CHANNELS)
        ]
    )

    pending = None
    for i in range(conv_first, conv_last):
        yield from kc.wait_prefetch(pending)
        pending = None
        next_row = i + k
        if i + 1 < conv_last and next_row < height:
            pending = kc.prefetch_row_set(
                [
                    (channel_wins[channel], x, channel * height + next_row,
                     next_row % depth)
                    for channel in range(N_CHANNELS)
                ]
            )

        acc = conv_bufs[i % POOL_WINDOW]
        yield from kc.vop(VectorOpcode.VCLEAR, vd=acc, vl=conv_cols)
        for channel in range(N_CHANNELS):
            for dr in range(k):
                source = channel_wins[channel][(i + dr) % depth]
                for dc in range(k):
                    tap = yield from kc.read_element(
                        flt_regs[channel], flt_offsets[channel] + dr * k + dc
                    )
                    if tap == 0:
                        continue
                    yield from kc.vop(
                        VectorOpcode.VMACC_VS,
                        vd=acc,
                        vs1=source,
                        scalar=tap,
                        vl=conv_cols,
                        offset=dc,
                    )

        if (i - conv_first) % POOL_STRIDE == POOL_WINDOW - 1:
            pooled_index = i // POOL_STRIDE
            yield from _pool_and_store(
                kc, kernel, conv_bufs, pool_win, pooled_index, pooled_cols
            )
    yield from kc.wait_prefetch(pending)


def _pool_and_store(
    kc: KernelContext, kernel: QueuedKernel, conv_bufs, pool_win, pooled_index: int,
    pooled_cols: int,
) -> Generator:
    """Reduce POOL_WINDOW conv rows to one pooled+ReLU'd output row."""
    first = True
    for dr in range(POOL_WINDOW):
        for dc in range(POOL_WINDOW):
            opcode = VectorOpcode.VMV if first else VectorOpcode.VMAX_VV
            yield from kc.vop(
                opcode,
                vd=pool_win[0],
                vs1=conv_bufs[dr],
                vl=pooled_cols,
                offset=dc,
                stride=POOL_STRIDE,
            )
            first = False
    yield from kc.vop(
        VectorOpcode.VMAX_VS, vd=pool_win[0], vs1=pool_win[0], scalar=0, vl=pooled_cols
    )
    yield from kc.store_rows(pool_win, kernel.dest, pooled_index, 1)


CONV_LAYER_SPEC = KernelSpec(
    func5=4,
    name="conv_layer",
    preamble=conv_layer_preamble,
    body=conv_layer_body,
    description="fused 3-channel conv + ReLU + 2x2/2 max pool",
)
