"""``xmk1`` — LeakyReLU activation (paper Table I).

``D = max(X, 0) + (min(X, 0) >> alpha)`` — the integer formulation of
leaky ReLU where the negative slope is a power of two (``2**-alpha``),
standard practice in integer-only edge inference.  ``alpha = 0`` makes
the negative side pass through (identity); large alpha approaches plain
ReLU.  Operand packing: rs1 = (alpha, -), rs2 = (-, md), rs3 = (ms1, -).
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.isa.xmnmc import OffloadRequest
from repro.runtime.context import KernelContext
from repro.runtime.kernel_lib import KernelSpec, PreambleResult
from repro.runtime.kernels.common import check_shape, resolve, shard_rows
from repro.runtime.matrix import MatrixMap
from repro.runtime.queue import QueuedKernel
from repro.vpu.visa import VectorOpcode


def leaky_relu_preamble(request: OffloadRequest, matrix_map: MatrixMap) -> PreambleResult:
    (alpha, _), (_, md), (ms1, _) = request.pairs()
    x = resolve(matrix_map, ms1)
    d = resolve(matrix_map, md)
    check_shape(d, x.rows, x.cols, "destination")
    if not 0 <= alpha <= 31:
        raise ValueError(f"LeakyReLU shift alpha={alpha} outside [0, 31]")
    return d, [x], {"alpha": alpha}


def leaky_relu_body(
    kc: KernelContext,
    kernel: QueuedKernel,
    shard: Optional[Tuple[int, int]] = None,
) -> Generator:
    (x,) = kernel.sources
    d = kernel.dest
    alpha = kernel.scalars["alpha"]
    row_start, n_rows = shard_rows(x.rows, shard or (0, 1))
    if n_rows == 0:
        return

    src_win = kc.claim(1)
    pos_win = kc.claim(1)
    neg_win = kc.claim(1)
    for i in range(row_start, row_start + n_rows):
        yield from kc.load_rows(src_win, x, i, 1)
        yield from kc.vop(
            VectorOpcode.VMAX_VS, vd=pos_win[0], vs1=src_win[0], scalar=0, vl=x.cols
        )
        yield from kc.vop(
            VectorOpcode.VMIN_VS, vd=neg_win[0], vs1=src_win[0], scalar=0, vl=x.cols
        )
        yield from kc.vop(
            VectorOpcode.VSRA_VS, vd=neg_win[0], vs1=neg_win[0], scalar=alpha, vl=x.cols
        )
        yield from kc.vop(
            VectorOpcode.VADD_VV, vd=pos_win[0], vs1=pos_win[0], vs2=neg_win[0], vl=x.cols
        )
        yield from kc.store_rows(pos_win, d, i, 1)


LEAKY_RELU_SPEC = KernelSpec(
    func5=1,
    name="leaky_relu",
    preamble=leaky_relu_preamble,
    body=leaky_relu_body,
    description="D = max(X, 0) + (min(X, 0) >> alpha)",
)
