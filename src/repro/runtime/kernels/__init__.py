"""The five complex matrix kernels of paper Table I.

==========  ======  ==============================================
Mnemonic    func5   Operation
==========  ======  ==============================================
``xmk0``    0       GeMM:      D = alpha * (A @ B) + beta * C
``xmk1``    1       LeakyReLU: D = max(X, 0) + (min(X, 0) >> alpha)
``xmk2``    2       MaxPool:   2D max pooling, window/stride params
``xmk3``    3       2D Conv:   valid convolution, single channel
``xmk4``    4       3-channel 2D Conv Layer: conv + ReLU + 2x2 pool
==========  ======  ==============================================

Each module exports a :class:`~repro.runtime.kernel_lib.KernelSpec`;
:func:`install_all` registers them in a library in their paper slots.
"""

from repro.runtime.kernel_lib import KernelLibrary
from repro.runtime.kernels.gemm import GEMM_SPEC
from repro.runtime.kernels.leaky_relu import LEAKY_RELU_SPEC
from repro.runtime.kernels.maxpool import MAXPOOL_SPEC
from repro.runtime.kernels.conv2d import CONV2D_SPEC
from repro.runtime.kernels.conv_layer import CONV_LAYER_SPEC

ALL_SPECS = (GEMM_SPEC, LEAKY_RELU_SPEC, MAXPOOL_SPEC, CONV2D_SPEC, CONV_LAYER_SPEC)


def install_all(library: KernelLibrary) -> None:
    """Register the default Table I kernels (slots 0..4)."""
    for spec in ALL_SPECS:
        library.register(spec)


__all__ = [
    "ALL_SPECS",
    "install_all",
    "GEMM_SPEC",
    "LEAKY_RELU_SPEC",
    "MAXPOOL_SPEC",
    "CONV2D_SPEC",
    "CONV_LAYER_SPEC",
]
