"""``xmk3`` — single-channel 2D convolution (paper Table I).

``D[i, j] = sum_{dr, dc} X[i+dr, j+dc] * F[dr, dc]`` ('valid' padding;
cross-correlation orientation, the convention of inference frameworks).
Operand packing: rs2 = (-, md), rs3 = (ms1, ms2) with X = ms1, F = ms2.

Micro-program: the filter is packed into a single vector register; the
eCPU reads each tap as a scalar and issues one ``vmacc.vs`` per tap over
a whole output row — ``K**2`` vector MACs per row.  Input rows live in a
rolling window of K registers, so each input row is DMA-loaded exactly
once.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.isa.xmnmc import OffloadRequest
from repro.runtime.context import KernelContext
from repro.runtime.kernel_lib import KernelSpec, PreambleResult
from repro.runtime.kernels.common import check_shape, conv_output_shape, resolve, shard_rows
from repro.runtime.matrix import MatrixMap
from repro.runtime.queue import QueuedKernel
from repro.vpu.visa import VectorOpcode


def conv2d_preamble(request: OffloadRequest, matrix_map: MatrixMap) -> PreambleResult:
    _, (_, md), (ms1, ms2) = request.pairs()
    x = resolve(matrix_map, ms1)
    f = resolve(matrix_map, ms2)
    d = resolve(matrix_map, md)
    if f.rows != f.cols:
        raise ValueError(f"conv filter must be square, got {f.rows}x{f.cols}")
    out_rows, out_cols = conv_output_shape(x.rows, x.cols, f.rows)
    check_shape(d, out_rows, out_cols, "destination")
    return d, [x, f], {"k": f.rows}


def conv2d_body(
    kc: KernelContext,
    kernel: QueuedKernel,
    shard: Optional[Tuple[int, int]] = None,
) -> Generator:
    x, f = kernel.sources
    d = kernel.dest
    k = kernel.scalars["k"]
    out_rows, out_cols = conv_output_shape(x.rows, x.cols, k)
    row_start, n_rows = shard_rows(out_rows, shard or (0, 1))
    if n_rows == 0:
        return

    # Rolling window of k+1 registers per the double-buffering scheme: row
    # r lives in slot r % (k+1); while rows i..i+k-1 feed the MACs, the DMA
    # prefetches row i+k into the one unused slot, hiding allocation time
    # under compute (paper V-C: "optimized DMA transfers").
    depth = k + 1
    flt_win = kc.claim(1)
    in_win = kc.claim(depth)
    acc_win = kc.claim(1)
    yield from kc.load_packed(flt_win, f)
    yield from kc.load_row_set(
        [(in_win, x, r, r % depth) for r in range(row_start, row_start + k)]
    )

    pending = None
    for i in range(row_start, row_start + n_rows):
        yield from kc.wait_prefetch(pending)
        pending = None
        next_row = i + k
        if i + 1 < row_start + n_rows and next_row < x.rows:
            pending = kc.prefetch_row_set([(in_win, x, next_row, next_row % depth)])
        yield from kc.vop(VectorOpcode.VCLEAR, vd=acc_win[0], vl=out_cols)
        for dr in range(k):
            source = in_win[(i + dr) % depth]
            for dc in range(k):
                tap = yield from kc.read_element(flt_win[0], dr * k + dc)
                if tap == 0:
                    continue  # the software decoder skips null taps
                yield from kc.vop(
                    VectorOpcode.VMACC_VS,
                    vd=acc_win[0],
                    vs1=source,
                    scalar=tap,
                    vl=out_cols,
                    offset=dc,
                )
        yield from kc.store_rows(acc_win, d, i, 1)
    yield from kc.wait_prefetch(pending)


CONV2D_SPEC = KernelSpec(
    func5=3,
    name="conv2d",
    preamble=conv2d_preamble,
    body=conv2d_body,
    description="single-channel 'valid' 2D convolution",
)
