"""``xmk2`` — 2D max pooling (paper Table I).

Operand packing: rs1 = (stride, win_size), rs2 = (-, md), rs3 = (ms1, -).
Output shape follows floor semantics with no padding.

Micro-program: one output row per pooling window of input rows.  The
strided-gather addressing of ``vmv``/``vmax.vv`` extracts every
``stride``-th element, so a whole output row is produced with
``window**2`` vector instructions regardless of width.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.isa.xmnmc import OffloadRequest
from repro.runtime.context import KernelContext
from repro.runtime.kernel_lib import KernelSpec, PreambleResult
from repro.runtime.kernels.common import check_shape, pool_output_shape, resolve, shard_rows
from repro.runtime.matrix import MatrixMap
from repro.runtime.queue import QueuedKernel
from repro.vpu.visa import VectorOpcode


def maxpool_preamble(request: OffloadRequest, matrix_map: MatrixMap) -> PreambleResult:
    (stride, window), (_, md), (ms1, _) = request.pairs()
    x = resolve(matrix_map, ms1)
    d = resolve(matrix_map, md)
    if window < 1 or stride < 1:
        raise ValueError(f"maxpool window={window}, stride={stride} must be >= 1")
    out_rows, out_cols = pool_output_shape(x.rows, x.cols, window, stride)
    check_shape(d, out_rows, out_cols, "destination")
    return d, [x], {"stride": stride, "window": window}


def maxpool_body(
    kc: KernelContext,
    kernel: QueuedKernel,
    shard: Optional[Tuple[int, int]] = None,
) -> Generator:
    (x,) = kernel.sources
    d = kernel.dest
    stride = kernel.scalars["stride"]
    window = kernel.scalars["window"]
    out_rows, out_cols = pool_output_shape(x.rows, x.cols, window, stride)
    row_start, n_rows = shard_rows(out_rows, shard or (0, 1))
    if n_rows == 0:
        return

    in_win = kc.claim(window)
    acc_win = kc.claim(1)
    for j in range(row_start, row_start + n_rows):
        yield from kc.load_rows(in_win, x, j * stride, window)
        first = True
        for dr in range(window):
            for dc in range(window):
                opcode = VectorOpcode.VMV if first else VectorOpcode.VMAX_VV
                yield from kc.vop(
                    opcode,
                    vd=acc_win[0],
                    vs1=in_win[dr],
                    vl=out_cols,
                    offset=dc,
                    stride=stride,
                )
                first = False
        yield from kc.store_rows(acc_win, d, j, 1)


MAXPOOL_SPEC = KernelSpec(
    func5=2,
    name="maxpool",
    preamble=maxpool_preamble,
    body=maxpool_body,
    description="2D max pooling with window/stride parameters",
)
