"""Shared helpers for kernel preambles and micro-program bodies."""

from __future__ import annotations

from typing import Tuple

from repro.isa.xmnmc import OffloadRequest
from repro.runtime.matrix import MatrixBinding, MatrixMap
from repro.utils.bitops import sign_extend


def signed16(value: int) -> int:
    """Interpret a 16-bit operand field as signed (alpha/beta scalars)."""
    return sign_extend(value, 16)


def resolve(matrix_map: MatrixMap, register: int) -> MatrixBinding:
    """Resolve a logical matrix register field to its current binding."""
    return matrix_map.resolve(register)


def check_shape(binding: MatrixBinding, rows: int, cols: int, role: str) -> None:
    """Validate a destination/source shape against kernel expectations."""
    if binding.rows != rows or binding.cols != cols:
        raise ValueError(
            f"{role} matrix m{binding.register} is "
            f"{binding.rows}x{binding.cols}, kernel expects {rows}x{cols}"
        )


def conv_output_shape(in_rows: int, in_cols: int, k: int) -> Tuple[int, int]:
    """'Valid' convolution output shape."""
    if k > in_rows or k > in_cols:
        raise ValueError(f"filter {k}x{k} larger than input {in_rows}x{in_cols}")
    return in_rows - k + 1, in_cols - k + 1


def pool_output_shape(rows: int, cols: int, window: int, stride: int) -> Tuple[int, int]:
    """Max-pool output shape (floor semantics, no padding)."""
    if window > rows or window > cols:
        raise ValueError(f"pool window {window} larger than input {rows}x{cols}")
    return (rows - window) // stride + 1, (cols - window) // stride + 1


def k_strip_size(k_total: int, free_regs: int, reserved: int) -> int:
    """VRF-capacity strip-mining policy for reduction (K) dimensions.

    A kernel that keeps one operand resident as a window of K rows
    strip-mines K when the vector register file cannot hold it: the
    strip gets every free register except the ``reserved`` ones the
    kernel needs for its other operands (row buffers, accumulators).
    Shared by the handwritten kernels and the kernel compiler so both
    make the same capacity decision.
    """
    if reserved < 0:
        raise ValueError("reserved register count must be non-negative")
    return max(1, min(k_total, free_regs - reserved))


def shard_rows(total_rows: int, shard: Tuple[int, int]) -> Tuple[int, int]:
    """Contiguous row partition for multi-VPU sharding.

    Returns (first_row, n_rows) for shard ``(index, count)``.
    """
    index, count = shard
    base = total_rows // count
    extra = total_rows % count
    start = index * base + min(index, extra)
    n_rows = base + (1 if index < extra else 0)
    return start, n_rows
