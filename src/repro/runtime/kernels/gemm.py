"""``xmk0`` — General Matrix Multiplication (paper Table I).

Computes ``D = alpha * (A @ B) + beta * C`` with element-width wrap-around
arithmetic.  Operand packing (Table I): rs1 = (alpha, beta),
rs2 = (ms3, md), rs3 = (ms1, ms2), i.e. A = ms1, B = ms2, C = ms3.

Micro-program structure: the output is produced row by row.  B is kept
resident in a register window (strip-mined over K when it does not fit);
for every output row the eCPU reads A's elements as scalars and issues
one ``vmacc.vs`` per (i, k) pair — the classic outer-product-by-rows
formulation that NM-Carus's vector-scalar MAC is built for.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.isa.xmnmc import OffloadRequest
from repro.runtime.context import KernelContext
from repro.runtime.kernel_lib import KernelSpec, PreambleResult
from repro.runtime.kernels.common import k_strip_size, resolve, shard_rows, signed16
from repro.runtime.matrix import MatrixMap
from repro.runtime.queue import QueuedKernel
from repro.vpu.visa import VectorOpcode


def gemm_preamble(request: OffloadRequest, matrix_map: MatrixMap) -> PreambleResult:
    (alpha, beta), (ms3, md), (ms1, ms2) = request.pairs()
    a = resolve(matrix_map, ms1)
    b = resolve(matrix_map, ms2)
    c = resolve(matrix_map, ms3)
    d = resolve(matrix_map, md)
    if a.cols != b.rows:
        raise ValueError(f"GeMM inner dims differ: A is {a.rows}x{a.cols}, B is {b.rows}x{b.cols}")
    if (d.rows, d.cols) != (a.rows, b.cols):
        raise ValueError(
            f"GeMM destination is {d.rows}x{d.cols}, expected {a.rows}x{b.cols}"
        )
    if (c.rows, c.cols) != (d.rows, d.cols):
        raise ValueError(f"GeMM addend C is {c.rows}x{c.cols}, expected {d.rows}x{d.cols}")
    scalars = {"alpha": signed16(alpha), "beta": signed16(beta)}
    return d, [a, b, c], scalars


def gemm_body(
    kc: KernelContext,
    kernel: QueuedKernel,
    shard: Optional[Tuple[int, int]] = None,
) -> Generator:
    a, b, c = kernel.sources
    d = kernel.dest
    alpha = kernel.scalars["alpha"]
    beta = kernel.scalars["beta"]
    n = b.cols
    k_total = a.cols

    row_start, n_rows = shard_rows(a.rows, shard or (0, 1))
    if n_rows == 0:
        return

    # Register budget: B strip + A row + accumulator + C row staging.
    b_strip = k_strip_size(k_total, kc.free_regs(), reserved=3)
    b_win = kc.claim(b_strip)
    a_win = kc.claim(1)
    acc_win = kc.claim(1)
    c_win = kc.claim(1)

    for i in range(row_start, row_start + n_rows):
        yield from kc.load_rows(a_win, a, i, 1)
        if beta == 0:
            yield from kc.vop(VectorOpcode.VCLEAR, vd=acc_win[0], vl=n)
        else:
            yield from kc.load_rows(c_win, c, i, 1)
            yield from kc.vop(
                VectorOpcode.VMUL_VS, vd=acc_win[0], vs1=c_win[0], scalar=beta, vl=n
            )
        for k_base in range(0, k_total, b_strip):
            k_count = min(b_strip, k_total - k_base)
            # B rows are re-streamed per output row only when strip-mined;
            # when B fits, rows are loaded once (i == row_start).
            if k_total > b_strip or i == row_start:
                yield from kc.load_rows(b_win, b, k_base, k_count)
            for k in range(k_count):
                a_ik = yield from kc.read_element(a_win[0], k_base + k)
                if a_ik == 0 and alpha != 0:
                    continue  # software skips null contributions
                yield from kc.vop(
                    VectorOpcode.VMACC_VS,
                    vd=acc_win[0],
                    vs1=b_win[k],
                    scalar=alpha * a_ik,
                    vl=n,
                )
        yield from kc.store_rows(acc_win, d, i, 1)


GEMM_SPEC = KernelSpec(
    func5=0,
    name="gemm",
    preamble=gemm_preamble,
    body=gemm_body,
    description="D = alpha * (A @ B) + beta * C",
)
