"""Logical matrix registers, bindings and the renaming matrix map.

``xmr`` binds a memory region and shape to a logical matrix register
(``m0``, ``m1``, ...) *without* loading data — allocation is deferred
until a kernel needs the operand (paper IV-A.1).  The C-RT matrix map
holds one binding per logical register.

Renaming (paper IV-B.1): when an ``xmr`` overwrites a logical register
whose old binding is still referenced by a queued/running kernel, the
decoder does not stall; kernels capture *binding objects*, not register
names, so re-binding a register is race-free by construction.  The map
counts these events so tests can assert the hazard was actually exercised.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.vpu.visa import ElementType

_binding_ids = itertools.count()


@dataclass
class MatrixBinding:
    """One (possibly renamed) physical matrix descriptor.

    Attributes:
        address: base address of the matrix in system memory.
        rows / cols: shape in elements.
        stride: row-to-row distance in *elements* (>= cols; 1 in the
            paper's Listing 1 means densely packed, i.e. stride == cols —
            we normalise that at bind time).
        etype: element width.
        pending_uses: kernels queued/running that read or write this
            binding; the decoder uses it to detect reservation hazards.
    """

    address: int
    rows: int
    cols: int
    stride: int
    etype: ElementType
    register: int = -1
    binding_id: int = field(default_factory=lambda: next(_binding_ids))
    pending_uses: int = 0

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"matrix shape {self.rows}x{self.cols} must be positive")
        if self.stride < self.cols:
            raise ValueError(f"stride {self.stride} smaller than cols {self.cols}")

    @property
    def row_bytes(self) -> int:
        return self.cols * self.etype.nbytes

    @property
    def stride_bytes(self) -> int:
        return self.stride * self.etype.nbytes

    @property
    def total_bytes(self) -> int:
        return self.rows * self.row_bytes

    @property
    def end_address(self) -> int:
        """One past the last byte the matrix region can touch."""
        return self.address + (self.rows - 1) * self.stride_bytes + self.row_bytes

    def row_address(self, row: int) -> int:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} outside matrix of {self.rows} rows")
        return self.address + row * self.stride_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<m{self.register}#{self.binding_id} {self.rows}x{self.cols}"
            f".{self.etype.suffix} @{self.address:#x}>"
        )


class MatrixMap:
    """The C-RT's statically sized map of logical matrix registers."""

    def __init__(self, n_registers: int) -> None:
        if n_registers <= 0:
            raise ValueError("need at least one logical matrix register")
        self.n_registers = n_registers
        self._bindings: Dict[int, MatrixBinding] = {}
        self.rename_count = 0

    def bind(
        self,
        register: int,
        address: int,
        rows: int,
        cols: int,
        stride: int,
        etype: ElementType,
    ) -> MatrixBinding:
        """Bind a logical register; renames transparently if the old binding
        is still in use (the decoder's hazard checker, paper IV-B.1)."""
        if not 0 <= register < self.n_registers:
            raise IndexError(
                f"matrix register m{register} outside 0..{self.n_registers - 1}"
            )
        if stride <= 1:
            stride = cols  # Listing 1 convention: stride 1 == densely packed
        old = self._bindings.get(register)
        if old is not None and old.pending_uses > 0:
            self.rename_count += 1
        binding = MatrixBinding(
            address=address, rows=rows, cols=cols, stride=stride,
            etype=etype, register=register,
        )
        self._bindings[register] = binding
        return binding

    def resolve(self, register: int) -> MatrixBinding:
        """Current binding of a logical register; raises if unbound."""
        binding = self._bindings.get(register)
        if binding is None:
            raise KeyError(f"matrix register m{register} is not bound (missing xmr?)")
        return binding

    def is_bound(self, register: int) -> bool:
        return register in self._bindings

    def clear(self) -> None:
        self._bindings.clear()
