"""The kernel replay cache — the serving-path fast lane.

Serving workloads launch the *same* ``(kernel, shape, operand data)``
thousands of times (one pooled worker replays identical requests
back-to-back), yet the stock scheduler re-runs the kernel body's Python
tile-loop generator on every launch: thousands of generator suspensions,
``VectorOp`` constructions and per-row bookkeeping just to re-derive a
micro-program stream that is fully determined by the launch key.  This
module separates the *schedule* from its *execution* (the Exo/SYS_ATL
record-once-replay-cheaply idea applied to a simulator): the first launch
records the stream of :class:`~repro.runtime.context.KernelContext`
effects, and later launches replay that stream in a tight loop with a
single simulator suspension.

Bit-exactness contract
----------------------

Replays reproduce the slow path exactly — results, ``RunReport`` cycle
counts, phase breakdowns and stats counters — because nothing about a
replay is *assumed* from the recording where live state could differ:

* functional effects (DMA row reads/writes, vector-op execution, register
  claims) are re-executed against live memory, cache and VRF state
  through the same primitives the slow path uses;
* per-row DMA cycle costs are *recomputed* from the live cache-hit state
  of each row, not taken from the recording;
* the LLC-lock serialization of loads, stores and double-buffered
  prefetches is replayed with a closed-form timeline (a prefetch holds
  the lock until its last row, later locked sections start no earlier
  than that, and ``wait_prefetch`` charges only the exposed cycles) —
  the same arrival times the event loop would produce;
* recordings are keyed on a digest of the *source operand bytes*, so the
  data-dependent parts of a stream (``read_element`` coefficients that
  gate zero-skipping, scalar operands) can never be replayed against
  different data; every replayed ``read_element`` additionally
  re-reads the live value and verifies it matches the recording.

Recordings reference operands by *position* (source index / destination)
and rows by index, never by absolute address, so ``free_matrix()`` /
``reset_heap()`` recycling heap addresses between launches cannot stale a
recording — the canonical serving flow (reset between requests) replays
at full speed.  What *does* invalidate recordings:

* reprogramming a library slot (``KernelLibrary.generation`` mismatch);
* a different VPU selection, operand geometry, scalar set or source-data
  digest (all part of the key — a miss, not a wrong replay);
* an environment the timeline model cannot promise to reproduce (LLC
  lock held or host access in flight at launch, a different VRF
  free-list state, multi-VPU sharding, tracing) — the launch silently
  takes the slow path ("bypassed").

Kernel bodies interact with the machinery only through the closed
:class:`KernelContext` API; a body that mutated simulator state behind
the context's back would record an incomplete stream, which the
phase-accounting cross-check in :meth:`Recording.finalize` turns into a
poisoned (never replayed) recording rather than a wrong replay.

Concurrency envelope
--------------------

A replayed body is atomic: all effects land at its start cycle, then one
suspension covers its duration.  Host accesses to the kernel's *operand
regions* cannot tell the difference — they are hazard-blocked by the
Address Table until operand release in both paths.  Host traffic to
**unrelated addresses that begins mid-kernel** is outside the replay
guarantee: in the slow path it would interleave with (and stall on) the
body's locked DMA sections, while a replay has already applied them.
``can_replay`` rejects launches with the LLC lock held or a host access
in flight, which covers every launch-time race; serving workloads — the
fast path's purpose — issue only offloads while kernels execute, so no
such traffic exists there.  Debugging a workload that does mix them:
``ARCANE_NO_FASTPATH=1``.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.runtime.context import KernelContext
from repro.runtime.matrix import MatrixBinding
from repro.runtime.queue import QueuedKernel
from repro.vpu.visa import VectorOp

#: Step opcodes of the recorded effect stream.
STEP_CLAIM, STEP_LOAD, STEP_STORE, STEP_VOP, STEP_READ, STEP_PREFETCH, STEP_WAIT = (
    range(7)
)


class ReplayDivergence(RuntimeError):
    """A replayed stream observed different data than it recorded.

    Unreachable through the public API on a healthy machine (the launch
    key digests every operand's bytes, destination included).  It *is*
    reachable under injected silent data corruption: a recording made
    while a fault was corrupting mid-kernel state carries poisoned
    expected values, and a later clean replay of it trips this check.
    The scheduler treats it as a poisoning signal — the recording is
    invalidated locally and retracted from the fleet cache — and the
    serving worker converts it into a retryable ``corrupted`` failure.
    """


def fastpath_enabled(flag: bool) -> bool:
    """Resolve the effective fast-path switch (``ARCANE_NO_FASTPATH=1``
    overrides any constructor/config request to enable it)."""
    return flag and os.environ.get("ARCANE_NO_FASTPATH", "") in ("", "0")


class Recording:
    """One kernel launch's recorded effect stream plus replay guards."""

    __slots__ = (
        "steps",
        "replayable",
        "reason",
        "free_regs",
        "vpu_index",
        "outstanding",
        "phase_check",
    )

    def __init__(self, vpu_index: int, free_regs: List[int]) -> None:
        self.steps: List[tuple] = []
        self.replayable = True
        self.reason = ""
        #: exact VRF free-list at recording start; replay requires equality
        #: (claim order and strip-mining budgets both derive from it).
        self.free_regs = list(free_regs)
        self.vpu_index = vpu_index
        self.outstanding: set = set()
        #: phase cycles attributable to recorded steps, cross-checked
        #: against the actual breakdown delta in :meth:`finalize`.
        self.phase_check: Dict[str, int] = {}

    def poison(self, reason: str) -> None:
        """Mark the recording as slow-path-only (kept to avoid re-recording)."""
        if self.replayable:
            self.replayable = False
            self.reason = reason
            self.steps.clear()

    def note_phase(self, phase: str, cycles: int) -> None:
        self.phase_check[phase] = self.phase_check.get(phase, 0) + cycles

    def finalize(self, phase_delta: Dict[str, int]) -> bool:
        """Validate the completed recording; returns its replayability.

        ``phase_delta`` is what the kernel body actually added to its
        :class:`PhaseBreakdown`; any cycles not accounted for by recorded
        steps mean the body produced effects the recorder did not see
        (e.g. direct ``phases.add`` calls), so the recording is poisoned
        instead of ever replaying incompletely.
        """
        if self.outstanding:
            self.poison("prefetch started but never waited on")
        checked = {k: v for k, v in self.phase_check.items() if v}
        actual = {k: v for k, v in phase_delta.items() if v}
        if self.replayable and checked != actual:
            self.poison(
                f"phase accounting mismatch (recorded {checked}, body added "
                f"{actual}); the body bypassed the KernelContext API"
            )
        return self.replayable


class RecordingContext(KernelContext):
    """A :class:`KernelContext` that mirrors every effect into a recording.

    Timing, stats and functional behaviour are untouched — each call
    delegates to the stock implementation and appends one step, so the
    recording launch is indistinguishable from a plain slow-path launch.
    """

    def __init__(
        self,
        vpu_index: int,
        etype,
        allocator,
        dispatcher,
        phases,
        kernel: QueuedKernel,
        recording: Recording,
    ) -> None:
        super().__init__(vpu_index, etype, allocator, dispatcher, phases)
        self._kernel = kernel
        self._rec = recording
        self._handle_ords: Dict[int, int] = {}
        self._next_handle = 0

    # -- operand references ------------------------------------------------

    def _ref(self, matrix: MatrixBinding) -> Optional[tuple]:
        """Positional reference of ``matrix`` among the kernel's operands.

        Derived bindings (a sub-plane view a body builds over an operand,
        like conv_layer's per-channel filter planes) are recorded as a
        base-relative rebase so a replay against relocated operands
        reconstructs them at the new address.
        """
        kernel = self._kernel
        for index, source in enumerate(kernel.sources):
            if source is matrix:
                return ("s", index)
        if matrix is kernel.dest:
            return ("d",)
        bases: List[Tuple[tuple, MatrixBinding]] = [
            (("s", i), s) for i, s in enumerate(kernel.sources)
        ]
        if kernel.dest is not None:
            bases.append((("d",), kernel.dest))
        for base_ref, base in bases:
            if (
                base.address <= matrix.address
                and matrix.end_address <= base.end_address
                and base.etype is matrix.etype
            ):
                return (
                    "rel",
                    base_ref,
                    matrix.address - base.address,
                    matrix.rows,
                    matrix.cols,
                    matrix.stride,
                )
        self._rec.poison(f"binding {matrix!r} is not derived from a kernel operand")
        return None

    # -- recorded context calls --------------------------------------------

    def claim(self, count: int):
        window = super().claim(count)
        if self._rec.replayable:
            self._rec.steps.append((STEP_CLAIM, count))
        return window

    def load_rows(self, window, matrix, row_start, n_rows, reg_start=0) -> Generator:
        cycles = yield from super().load_rows(window, matrix, row_start, n_rows, reg_start)
        if n_rows > 0 and self._rec.replayable:
            ref = self._ref(matrix)
            if ref is not None:
                items = tuple(
                    (ref, window[reg_start + i], row_start + i, 0)
                    for i in range(n_rows)
                )
                self._rec.steps.append((STEP_LOAD, items))
                self._rec.note_phase("allocation", cycles)
        return cycles

    def load_packed(self, window, matrix, reg_index=0) -> Generator:
        cycles = yield from super().load_packed(window, matrix, reg_index)
        if self._rec.replayable:
            ref = self._ref(matrix)
            if ref is not None:
                register = window[reg_index]
                items = tuple(
                    (ref, register, row, row * matrix.cols)
                    for row in range(matrix.rows)
                )
                self._rec.steps.append((STEP_LOAD, items))
                self._rec.note_phase("allocation", cycles)
        return cycles

    def _row_set_items(self, specs) -> Optional[tuple]:
        items = []
        for window, matrix, row, reg in specs:
            ref = self._ref(matrix)
            if ref is None:
                return None
            items.append((ref, window[reg], row, 0))
        return tuple(items)

    def load_row_set(self, specs) -> Generator:
        cycles = yield from super().load_row_set(specs)
        if specs and self._rec.replayable:
            items = self._row_set_items(specs)
            if items is not None:
                self._rec.steps.append((STEP_LOAD, items))
                self._rec.note_phase("allocation", cycles)
        return cycles

    def prefetch_row_set(self, specs):
        handle = super().prefetch_row_set(specs)
        if self._rec.replayable:
            items = self._row_set_items(specs)
            if items is not None:
                ordinal = self._next_handle
                self._next_handle += 1
                self._handle_ords[id(handle)] = ordinal
                self._rec.outstanding.add(ordinal)
                self._rec.steps.append((STEP_PREFETCH, ordinal, items))
        return handle

    def wait_prefetch(self, handle) -> Generator:
        exposed = yield from super().wait_prefetch(handle)
        if handle is not None and self._rec.replayable:
            ordinal = self._handle_ords.pop(id(handle), None)
            if ordinal is None:
                self._rec.poison("wait_prefetch on a handle this kernel did not start")
            else:
                self._rec.outstanding.discard(ordinal)
                self._rec.steps.append((STEP_WAIT, ordinal))
                self._rec.note_phase("allocation", exposed)
        return exposed

    def store_rows(
        self, window, matrix, row_start, n_rows, reg_start=0, n_cols=None
    ) -> Generator:
        cycles = yield from super().store_rows(
            window, matrix, row_start, n_rows, reg_start, n_cols
        )
        if n_rows > 0 and self._rec.replayable:
            ref = self._ref(matrix)
            if ref is not None:
                items = tuple(
                    (window[reg_start + i], row_start + i) for i in range(n_rows)
                )
                self._rec.steps.append(
                    (STEP_STORE, ref, items, matrix.cols if n_cols is None else n_cols)
                )
                self._rec.note_phase("writeback", cycles)
        return cycles

    def _issue(self, op: VectorOp) -> Generator:
        cost = yield from super()._issue(op)
        if self._rec.replayable:
            self._rec.steps.append((STEP_VOP, op))
            self._rec.note_phase("compute", cost)
        return cost

    def read_element(self, vreg, index, etype=None) -> Generator:
        value = yield from super().read_element(vreg, index, etype)
        if self._rec.replayable:
            self._rec.steps.append(
                (STEP_READ, vreg, index, etype or self.etype, value)
            )
            self._rec.note_phase("compute", self.SCALAR_READ_CYCLES)
        return value


def _resolve_ref(ref: tuple, kernel: QueuedKernel) -> MatrixBinding:
    if ref[0] == "s":
        return kernel.sources[ref[1]]
    if ref[0] == "d":
        return kernel.dest
    _, base_ref, delta, rows, cols, stride = ref
    base = _resolve_ref(base_ref, kernel)
    return MatrixBinding(
        address=base.address + delta, rows=rows, cols=cols, stride=stride,
        etype=base.etype,
    )


#: compiled-segment marker for a fused run of VOP/READ compute steps
_SEG_OPS = -1


def _compile_vop(op: VectorOp, vrf) -> Optional[callable]:
    """Pre-bind one recorded vector op to a zero-lookup closure.

    Mirrors :meth:`Vpu.execute` functionally, with every view, slice,
    scalar cast and trait resolved at compile time; only the numpy work
    remains per call.  Returns None for ``vl == 0`` timing-only ops.
    """
    from repro.vpu.visa import VectorOpcode

    vl = op.vl
    if vl == 0:
        return None
    opcode = op.opcode
    etype = op.etype
    dtype = etype.np_dtype
    dst_view = vrf.view(op.vd, etype)
    dst = dst_view[op.vd_offset : op.vd_offset + vl]
    if len(dst) != vl:  # pragma: no cover - the recording launch validated this
        raise ValueError(
            f"vl={vl} at vd_offset={op.vd_offset} overflows register {op.vd}"
        )
    if opcode is VectorOpcode.VCLEAR:
        def clear() -> None:
            dst[:] = 0
        return clear

    view = vrf.view(op.vs1, etype)
    offset = op.offset
    if op.stride == 1:
        src = view[offset : offset + vl]
        if len(src) != vl:  # pragma: no cover - validated at record time
            raise ValueError(f"vl={vl} at offset={offset} overflows register {op.vs1}")
    else:
        last = offset + op.stride * (vl - 1)
        if last >= len(view):  # pragma: no cover - validated at record time
            raise ValueError(
                f"strided access (off={offset}, stride={op.stride}, vl={vl}) "
                f"overflows source register {op.vs1}"
            )
        src = view[offset : last + 1 : op.stride]
    scalar = int(op.scalar)
    int64 = np.int64
    # Arithmetic note: the slow path computes in int64 and truncates into
    # the element dtype.  Truncation mod 2**w is a ring homomorphism, so
    # add/mul/macc chains computed directly in the (wrapping) element
    # dtype — with the scalar pre-wrapped — produce bit-identical values
    # while running one same-width ufunc instead of three widening ones.
    wrapped = int64(scalar).astype(dtype)

    if opcode is VectorOpcode.VMACC_VS:
        buffer = np.empty(vl, dtype)
        def macc() -> None:
            np.multiply(src, wrapped, out=buffer)
            np.add(dst, buffer, out=dst)
        return macc
    if opcode is VectorOpcode.VMV:
        if op.vs1 == op.vd:
            def move_aliased() -> None:
                dst[:] = src.copy()
            return move_aliased
        def move() -> None:
            dst[:] = src
        return move
    if opcode in (VectorOpcode.VADD_VV, VectorOpcode.VMUL_VV):
        other = vrf.view(op.vs2, etype)[:vl]
        ufunc = np.add if opcode is VectorOpcode.VADD_VV else np.multiply
        def ewise() -> None:
            ufunc(src, other, out=dst)
        return ewise
    if opcode is VectorOpcode.VMUL_VS:
        def mul_vs() -> None:
            np.multiply(src, wrapped, out=dst)
        return mul_vs
    if opcode is VectorOpcode.VADD_VS:
        def add_vs() -> None:
            np.add(src, wrapped, out=dst)
        return add_vs
    if opcode is VectorOpcode.VMAX_VV:
        def max_vv() -> None:
            np.maximum(dst, src, out=dst)
        return max_vv
    if opcode in (VectorOpcode.VMAX_VS, VectorOpcode.VMIN_VS):
        np_scalar = dtype(op.scalar)  # slow path semantics: raises on overflow
        ufunc = np.maximum if opcode is VectorOpcode.VMAX_VS else np.minimum
        def minmax_vs() -> None:
            ufunc(src, np_scalar, out=dst)
        return minmax_vs
    if opcode is VectorOpcode.VSRA_VS:
        def sra() -> None:
            np.right_shift(src, scalar, out=dst)
        return sra
    if opcode is VectorOpcode.VREDSUM:
        vd_offset = op.vd_offset
        def redsum() -> None:
            dst_view[vd_offset] = src.astype(int64).sum().astype(dtype)
        return redsum
    raise NotImplementedError(opcode)  # pragma: no cover - enum is closed


def _compile_steps(recording: Recording, kernel: QueuedKernel, scheduler, vpu_index: int) -> list:
    """Fuse runs of compute steps into pre-bound closure segments.

    Cycle costs and counter increments of VOP/READ runs are static (they
    depend only on the op fields and the VPU geometry), so each run
    collapses to one segment ``(_SEG_OPS, closures, t_cycles, n_ops,
    vpu_cycles, elems, issue_bound, dispatch_cycles)`` applied in O(ops)
    numpy calls and O(1) counter updates.  DMA/claim steps pass through
    untouched — their costs depend on live cache state.
    """
    vpu = scheduler.dispatcher.vpus[vpu_index]
    vrf = vpu.vrf
    issue_cycles = scheduler.dispatcher.issue_cycles
    scalar_read = KernelContext.SCALAR_READ_CYCLES
    name = kernel.name
    segments: list = []
    closures: list = []
    t_cycles = n_ops = vpu_cycles = elems = issue_bound = dispatch_cycles = 0

    def flush() -> None:
        nonlocal closures, t_cycles, n_ops, vpu_cycles, elems, issue_bound
        nonlocal dispatch_cycles
        if t_cycles or closures:
            segments.append(
                (_SEG_OPS, tuple(closures), t_cycles, n_ops, vpu_cycles, elems,
                 issue_bound, dispatch_cycles)
            )
        closures = []
        t_cycles = n_ops = vpu_cycles = elems = issue_bound = dispatch_cycles = 0

    for step in recording.steps:
        kind = step[0]
        if kind == STEP_VOP:
            op = step[1]
            fn = _compile_vop(op, vrf)
            if fn is not None:
                closures.append(fn)
            op_cycles = vpu.op_cycles(op)
            cost = op_cycles if op_cycles > issue_cycles else issue_cycles
            t_cycles += cost
            dispatch_cycles += cost
            n_ops += 1
            vpu_cycles += op_cycles
            elems += op.vl
            if issue_cycles >= op_cycles:
                issue_bound += 1
        elif kind == STEP_READ:
            _, vreg, index, etype, expected = step
            read_view = vrf.view(vreg, etype)

            def check(read_view=read_view, vreg=vreg, index=index,
                      expected=expected) -> None:
                if read_view[index] != expected:
                    raise ReplayDivergence(
                        f"kernel {name!r} replay read v{vreg}[{index}] != "
                        "recorded value; replay-cache key invariant broken"
                    )
            closures.append(check)
            t_cycles += scalar_read
        else:
            flush()
            segments.append(step)
    flush()
    return segments


def replay_kernel(
    recording: Recording,
    kernel: QueuedKernel,
    context: KernelContext,
    scheduler,
    compiled: Optional[list] = None,
) -> Generator:
    """Simulation process: replay a recorded kernel in one suspension.

    Functional effects are applied in LLC-lock acquisition order (exactly
    the order the event loop serializes them in), cycle costs of DMA rows
    are recomputed from live cache state, and the whole body advances the
    simulator with a single ``yield`` of its total duration.
    """
    allocator = scheduler.allocator
    controller = scheduler.controller
    dispatcher = scheduler.dispatcher
    vpu_index = context.vpu_index
    vrf = allocator.vpus[vpu_index].vrf
    lock_overhead = allocator.lock_overhead_cycles
    ct = controller.ct
    lookup = ct.lookup
    tag_map = ct._tag_map
    line_bytes = ct.line_bytes
    memory = controller.memory
    mem_data = memory.data
    mem_base = memory.base
    mem_end = memory.base + memory.size
    transfer_cycles = allocator.bus.transfer_cycles
    route_read = controller.route_read
    route_write = controller.route_write
    frombuffer = np.frombuffer

    t = 0  # body-relative cycle offset
    lock_free = 0  # when the LLC lock is next free (prefetches hold it)
    pending: Dict[int, int] = {}  # prefetch ordinal -> completion offset
    compute = alloc_cycles = wb_cycles = 0
    bindings: Dict[tuple, MatrixBinding] = {}
    row_costs: Dict[Tuple[int, bool], int] = {}  # (row_bytes, cached) -> cycles

    def binding_of(ref: tuple) -> MatrixBinding:
        binding = bindings.get(ref)
        if binding is None:
            binding = _resolve_ref(ref, kernel)
            bindings[ref] = binding
        return binding

    def row_cost(row_bytes: int, cached: bool) -> int:
        cost = row_costs.get((row_bytes, cached))
        if cost is None:
            cost = transfer_cycles(row_bytes, offchip=not cached)
            row_costs[(row_bytes, cached)] = cost
        return cost

    def apply_rows(items: tuple) -> int:
        total = 0
        for ref, reg, row, offset in items:
            matrix = binding_of(ref)
            address = matrix.row_address(row)
            row_bytes = matrix.row_bytes
            # Cycle cost uses the slow path's exact criterion: is the
            # *first* byte's line resident (allocator.load_rows).
            total += row_cost(row_bytes, lookup(address) is not None)
            # Functionally, any cached line overlaying the row forces the
            # routed read; the common serving case (cold cache, sources
            # straight from memory) copies memory -> VRF as one numpy
            # slice assignment with no bytes round-trip.
            tag = address - (address % line_bytes)
            end = address + row_bytes
            overlaid = False
            while tag < end:
                line = tag_map.get(tag)
                if line is not None and line.valid:
                    overlaid = True
                    break
                tag += line_bytes
            etype = matrix.etype
            if not overlaid and address >= mem_base and end <= mem_end:
                values = mem_data[address - mem_base : end - mem_base].view(
                    etype.np_dtype
                )
            else:
                values = frombuffer(
                    route_read(address, row_bytes), dtype=etype.np_dtype
                )
            vrf.write(reg, values, offset)
        return total

    if compiled is None:
        # compiled segments bind a specific system's VRF; the per-key
        # store on ReplayCache keeps them out of the (shareable,
        # picklable) recording — see :meth:`ReplayCache.compiled_for`
        compiled = _compile_steps(recording, kernel, scheduler, vpu_index)

    for step in compiled:
        kind = step[0]
        if kind == _SEG_OPS:
            (_, closures, t_cycles, n_ops, vpu_cycles, elems, issue_bound,
             disp_cycles) = step
            for fn in closures:
                fn()
            t += t_cycles
            compute += t_cycles
            if n_ops:
                vpu = dispatcher.vpus[vpu_index]
                vpu._c_ops.value += n_ops
                vpu._c_cycles.value += vpu_cycles
                vpu._c_elems.value += elems
                dispatcher._c_ops.value += n_ops
                dispatcher._c_cycles.value += disp_cycles
                dispatcher._c_issue_bound.value += issue_bound
        elif kind == STEP_LOAD:
            items = step[1]
            start = t if t >= lock_free else lock_free
            total = apply_rows(items)
            t = start + lock_overhead + total
            lock_free = t
            alloc_cycles += total
            controller._c_lock_acquired.value += 1
            allocator._c_rows_loaded.value += len(items)
            allocator._c_load_cycles.value += total
        elif kind == STEP_STORE:
            _, ref, items, n_cols = step
            matrix = binding_of(ref)
            etype = matrix.etype
            row_bytes = n_cols * etype.nbytes
            start = t if t >= lock_free else lock_free
            total = 0
            for reg, row in items:
                address = matrix.row_address(row)
                total += row_cost(row_bytes, lookup(address) is not None)
                route_write(address, vrf.view(reg, etype)[:n_cols].tobytes())
            t = start + lock_overhead + total
            lock_free = t
            wb_cycles += total
            controller._c_lock_acquired.value += 1
            allocator._c_rows_stored.value += len(items)
            allocator._c_store_cycles.value += total
        elif kind == STEP_PREFETCH:
            _, ordinal, items = step
            if items:
                start = t if t >= lock_free else lock_free
                total = apply_rows(items)
                end = start + lock_overhead + total
                lock_free = end
                controller._c_lock_acquired.value += 1
                allocator._c_rows_loaded.value += len(items)
                allocator._c_load_cycles.value += total
            else:
                end = t
            pending[ordinal] = end
        elif kind == STEP_WAIT:
            end = pending.pop(step[1])
            if end > t:
                alloc_cycles += end - t
                t = end
        else:  # STEP_CLAIM — free-list equality guarantees identical regs
            context.claim(step[1])

    phases = context.phases
    if alloc_cycles:
        phases.add("allocation", alloc_cycles)
    if compute:
        phases.add("compute", compute)
    if wb_cycles:
        phases.add("writeback", wb_cycles)
    yield t


class ReplayCache:
    """Bounded cache of kernel recordings, keyed on the full launch key.

    With a ``fleet`` store attached (:class:`repro.serve.fleet.
    FleetReplayCache`), a local miss falls back to recordings published
    by *other* workers' caches, and locally recorded replayable
    recordings are published for the rest of the pool — one worker's
    first launch warms the fleet.  Recordings are position-independent
    and replays re-execute against live state, so a fleet hit is
    bit-exact with recording locally; the fleet assumes identically
    configured workers (same config and compiled-library install, hence
    the same library generation and launch-time VRF free lists).
    """

    def __init__(self, library, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("replay cache capacity must be positive")
        self.library = library
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, Recording]" = OrderedDict()
        self._generation = library.generation
        #: optional cross-worker recording store (set by SystemWorker)
        self.fleet = None
        #: per-key compiled segment streams (closures binding *this*
        #: system's VRF — never shared or pickled with the recording)
        self._compiled: Dict[tuple, list] = {}
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "recorded": 0, "bypassed": 0,
            "invalidated": 0, "fleet_hits": 0,
        }
        #: observability hook: when a list, every launch appends
        #: ``(kernel_id, outcome)`` with outcome hit/miss/bypassed.  None
        #: (the default) keeps the hot path at one truthiness check.
        self.launch_log: Optional[List[Tuple[int, str]]] = None
        #: integrity hook: when a list, every key this cache stored or
        #: replayed during the current attempt is appended, so a failed
        #: integrity check can invalidate/retract exactly the recordings
        #: the corrupt run may have poisoned.  None (default) = off.
        self.touched: Optional[List[tuple]] = None
        #: escalation switch: while True the scheduler bypasses the fast
        #: path entirely (no lookup, no recording) — used to re-execute a
        #: corrupted request from first principles.
        self.suspended = False

    def note_launch(self, kernel_id: int, outcome: str) -> None:
        """Record one launch's replay outcome when a log is attached."""
        if self.launch_log is not None:
            self.launch_log.append((kernel_id, outcome))

    def __len__(self) -> int:
        return len(self._entries)

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def key_for(kernel: QueuedKernel, vpu_index: int, controller) -> tuple:
        """Launch key: identity + geometry + scalars + operand-data digest.

        The digest reads the operand bytes through the controller (cache
        overlay over memory) — exactly the bytes the kernel's DMA loads
        would observe — so any data difference is a cache miss, never a
        wrong replay.  The *destination's* initial bytes are digested
        too: a body is free to load and branch on its output region
        (read-modify-write kernels), and only the data actually loaded
        during execution is otherwise guarded.  Addresses are
        deliberately absent: recordings are position-independent, which
        is what lets the serving loop's ``reset_heap()``-then-reallocate
        lifecycle keep hitting.
        """
        digest = hashlib.blake2b(digest_size=16)
        operands = list(kernel.sources)
        if kernel.dest is not None:
            operands.append(kernel.dest)
        for binding in operands:
            digest.update(
                controller.peek(binding.address, binding.end_address - binding.address)
            )
        geometry = tuple(
            (b.rows, b.cols, b.stride, b.etype.suffix) for b in kernel.sources
        )
        dest = kernel.dest
        dest_geometry = (
            (dest.rows, dest.cols, dest.stride, dest.etype.suffix)
            if dest is not None
            else None
        )
        return (
            kernel.func5,
            kernel.name,
            kernel.etype.suffix,
            vpu_index,
            tuple(sorted(kernel.scalars.items())),
            geometry,
            dest_geometry,
            digest.digest(),
        )

    # -- storage ------------------------------------------------------------

    def _sync_generation(self) -> None:
        # Reprogramming any library slot drops every recording: a body
        # registered under an old generation must never replay again.
        if self._generation != self.library.generation:
            self.clear()
            self._generation = self.library.generation

    def lookup(self, key: tuple) -> Optional[Recording]:
        self._sync_generation()
        recording = self._entries.get(key)
        if recording is not None:
            # LRU refresh: a stream of one-off keys (every distinct
            # operand payload records) must not evict the hot recordings
            # the cache exists for.
            self._entries.move_to_end(key)
            return recording
        if self.fleet is not None:
            recording = self.fleet.get(key)
            if recording is not None:
                # adopt into the local LRU (future launches hit without
                # the fleet); adopted recordings are never re-published
                self._entries[key] = recording
                self._trim()
                self.stats["fleet_hits"] += 1
        return recording

    def store(self, key: tuple, recording: Recording) -> None:
        self._sync_generation()
        self._entries[key] = recording
        self._trim()
        if self.fleet is not None and recording.replayable:
            self.fleet.publish(key, recording)

    def _trim(self) -> None:
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._compiled.pop(evicted, None)

    def compiled_for(
        self, key: tuple, recording: Recording, kernel, scheduler, vpu_index: int
    ) -> list:
        """This system's compiled segments for ``key`` (built on first use)."""
        segments = self._compiled.get(key)
        if segments is None:
            segments = _compile_steps(recording, kernel, scheduler, vpu_index)
            self._compiled[key] = segments
        return segments

    def clear(self) -> None:
        self.stats["invalidated"] += len(self._entries)
        self._entries.clear()
        self._compiled.clear()

    def invalidate(self, key: tuple) -> None:
        """Drop one recording locally and retract it from the fleet.

        The poisoning defense: a recording whose replay diverged — or that
        was touched by a run whose integrity check failed — must not be
        served again, here or on any other worker.
        """
        if self._entries.pop(key, None) is not None:
            self.stats["invalidated"] += 1
        self._compiled.pop(key, None)
        if self.fleet is not None:
            self.fleet.retract(key)

    # -- replay preconditions ------------------------------------------------

    def can_replay(self, recording: Recording, scheduler, vpu_index: int) -> bool:
        """Cheap, side-effect-free environment check before a replay.

        The closed-form timeline assumes the body is the only LLC-lock /
        host-path actor for its duration and that register claims pop the
        same VRF free list; anything else takes the slow path.
        """
        if not recording.replayable or recording.vpu_index != vpu_index:
            return False
        controller = scheduler.controller
        if controller.lock_holder is not None or controller._host_inflight > 0:
            return False
        return scheduler.allocator._free[vpu_index] == recording.free_regs
