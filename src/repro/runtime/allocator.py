"""The Matrix Allocator (paper IV-B.3).

Moves matrix operands between the memory system and VPU vector registers
using lock-protected 2D DMA transfers routed through the LLC controller:

* ``load_rows`` copies matrix rows into consecutive vector registers of
  the selected VPU — the "temporary copies in the VPU cache lines
  arranged according to the kernel layout" of paper III-A.2;
* ``store_rows`` consolidates computed rows back into the matrix's
  memory region; the controller's fetch-on-write policy lands the data
  in cache lines marked dirty, so host reads observe it immediately;
* vector registers are claimed/released per kernel through a simple
  per-VPU free-list, and claimed lines are flagged ``BUSY_COMPUTE`` so
  the replacement policy never evicts them.

Every transfer first acquires the LLC lock (stalling until in-flight
host operations finish) and releases it afterwards, exactly like the
paper's allocator.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

import numpy as np

from repro.cache.controller import LlcController
from repro.mem.bus import BusModel
from repro.runtime.matrix import MatrixBinding
from repro.sim.kernel import Simulator
from repro.sim.stats import StatsRegistry
from repro.vpu.vpu import Vpu


class RegisterWindow:
    """A set of vector registers claimed on one VPU for a kernel operand."""

    def __init__(self, vpu_index: int, vregs: List[int]) -> None:
        self.vpu_index = vpu_index
        self.vregs = vregs

    def __len__(self) -> int:
        return len(self.vregs)

    def __getitem__(self, index: int) -> int:
        return self.vregs[index]


class MatrixAllocator:
    """Lock-protected DMA mover between memory system and VPU registers."""

    def __init__(
        self,
        sim: Simulator,
        controller: LlcController,
        vpus: Sequence[Vpu],
        bus: BusModel,
        stats: Optional[StatsRegistry] = None,
        lock_overhead_cycles: int = 8,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.vpus = list(vpus)
        self.bus = bus
        self.stats = stats or StatsRegistry()
        self.lock_overhead_cycles = lock_overhead_cycles
        ct = controller.ct
        self._free: Dict[int, List[int]] = {
            v: list(range(ct.vregs_per_vpu)) for v in range(ct.n_vpus)
        }
        # counter handles resolved once: these run per operand row moved
        self._c_rows_loaded = self.stats.counter("alloc.rows_loaded")
        self._c_load_cycles = self.stats.counter("alloc.load_cycles")
        self._c_rows_stored = self.stats.counter("alloc.rows_stored")
        self._c_store_cycles = self.stats.counter("alloc.store_cycles")
        self._c_regs_claimed = self.stats.counter("alloc.regs_claimed")
        self._c_regs_released = self.stats.counter("alloc.regs_released")
        self._c_evicted_dirty = self.stats.counter("alloc.evicted_dirty")
        # Fault-injection hook (repro.integrity.inject): when armed it may
        # return a corrupted copy of a row payload moved by the allocator's
        # DMA transfers.  None when no fault plan is armed, so the per-row
        # hot path pays one attribute check.
        self.corruption = None

    # -- vector register management ------------------------------------------

    def free_regs(self, vpu_index: int) -> int:
        return len(self._free[vpu_index])

    def claim(self, vpu_index: int, count: int) -> RegisterWindow:
        """Claim ``count`` vector registers on a VPU for kernel use.

        The backing cache lines leave the address-mapped cache: dirty
        victims are written back functionally (the cycle cost is charged
        by the caller's DMA accounting at load time).
        """
        free = self._free[vpu_index]
        if count > len(free):
            raise RuntimeError(
                f"VPU {vpu_index} has {len(free)} free vregs, kernel needs {count}"
            )
        taken = [free.pop(0) for _ in range(count)]
        ct = self.controller.ct
        for reg in taken:
            line = ct.vpu_lines(vpu_index)[reg]
            if line.valid and line.dirty:
                self.controller._memory_write_line(line.tag, line.data.tobytes())
                self._c_evicted_dirty.add()
            ct.claim_for_compute(line)
        self._c_regs_claimed.add(count)
        return RegisterWindow(vpu_index, taken)

    def release(self, window: RegisterWindow) -> None:
        ct = self.controller.ct
        for reg in window.vregs:
            line = ct.vpu_lines(window.vpu_index)[reg]
            ct.release_from_compute(line)
        self._free[window.vpu_index].extend(window.vregs)
        self._free[window.vpu_index].sort()
        self._c_regs_released.add(len(window.vregs))
        window.vregs = []

    # -- locking --------------------------------------------------------------

    def _locked_section(self) -> Generator:
        yield from self.controller.acquire_lock("ecpu")
        yield self.lock_overhead_cycles

    # -- data movement ------------------------------------------------------------

    def load_rows(
        self,
        window: RegisterWindow,
        matrix: MatrixBinding,
        row_start: int,
        n_rows: int,
        reg_start: int = 0,
    ) -> Generator:
        """Copy ``n_rows`` matrix rows into the window's registers.

        Row ``row_start + i`` lands in register ``window[reg_start + i]``
        starting at element 0.  Returns total DMA cycles (also yielded).
        Rows resident in the cache stream at on-chip speed; missing rows
        pay the off-chip latency — this is what makes allocation overhead
        shrink when producers left their output in the LLC.
        """
        if n_rows == 0:
            return 0
        yield from self._locked_section()
        vpu = self.vpus[window.vpu_index]
        total = 0
        try:
            for i in range(n_rows):
                address = matrix.row_address(row_start + i)
                cached = self.controller.ct.lookup(address) is not None
                cycles = self.bus.transfer_cycles(matrix.row_bytes, offchip=not cached)
                payload = self.controller.route_read(address, matrix.row_bytes)
                if self.corruption is not None:
                    payload = self.corruption.on_dma_row(payload)
                register = window[reg_start + i]
                row = np.frombuffer(payload, dtype=matrix.etype.np_dtype)
                vpu.vrf.write(register, row)
                total += cycles
                yield cycles
        finally:
            self.controller.release_lock("ecpu")
        self._c_rows_loaded.add(n_rows)
        self._c_load_cycles.add(total)
        return total

    def load_row_set(self, specs) -> Generator:
        """Load a batch of single rows under one lock acquisition.

        ``specs`` is a list of ``(window, matrix, row, reg)`` tuples — the
        conv kernels use it to fetch the next input row of every channel
        in one DMA programming step.  Designed to run either inline
        (``yield from``) or as a detached *prefetch* process that overlaps
        the DMA with VPU compute (double buffering — the paper's
        "optimized DMA transfers reducing allocation times").
        """
        if not specs:
            return 0
        yield from self._locked_section()
        total = 0
        try:
            for window, matrix, row, reg in specs:
                address = matrix.row_address(row)
                cached = self.controller.ct.lookup(address) is not None
                cycles = self.bus.transfer_cycles(matrix.row_bytes, offchip=not cached)
                payload = self.controller.route_read(address, matrix.row_bytes)
                if self.corruption is not None:
                    payload = self.corruption.on_dma_row(payload)
                values = np.frombuffer(payload, dtype=matrix.etype.np_dtype)
                self.vpus[window.vpu_index].vrf.write(window[reg], values)
                total += cycles
                yield cycles
        finally:
            self.controller.release_lock("ecpu")
        self._c_rows_loaded.add(len(specs))
        self._c_load_cycles.add(total)
        return total

    def load_packed(
        self,
        window: RegisterWindow,
        matrix: MatrixBinding,
        reg_index: int = 0,
    ) -> Generator:
        """Pack a whole (small) matrix into a single vector register.

        The 2D DMA advances the destination by ``cols`` elements per row,
        so the matrix lands row-major and element ``r * cols + c`` can be
        fetched by the eCPU as a ``.vs`` scalar operand (how the conv
        kernels keep their filter taps resident in one register).
        """
        vpu = self.vpus[window.vpu_index]
        if matrix.rows * matrix.cols > vpu.vrf.max_vl(matrix.etype):
            raise ValueError(
                f"matrix {matrix.rows}x{matrix.cols} does not fit in one "
                f"vector register ({vpu.vrf.max_vl(matrix.etype)} elements)"
            )
        yield from self._locked_section()
        total = 0
        try:
            register = window[reg_index]
            for row in range(matrix.rows):
                address = matrix.row_address(row)
                cached = self.controller.ct.lookup(address) is not None
                cycles = self.bus.transfer_cycles(matrix.row_bytes, offchip=not cached)
                payload = self.controller.route_read(address, matrix.row_bytes)
                if self.corruption is not None:
                    payload = self.corruption.on_dma_row(payload)
                values = np.frombuffer(payload, dtype=matrix.etype.np_dtype)
                vpu.vrf.write(register, values, offset=row * matrix.cols)
                total += cycles
                yield cycles
        finally:
            self.controller.release_lock("ecpu")
        self._c_rows_loaded.add(matrix.rows)
        self._c_load_cycles.add(total)
        return total

    def store_rows(
        self,
        window: RegisterWindow,
        matrix: MatrixBinding,
        row_start: int,
        n_rows: int,
        reg_start: int = 0,
        n_cols: Optional[int] = None,
    ) -> Generator:
        """Copy registers back into the matrix region (kernel write-back)."""
        if n_rows == 0:
            return 0
        n_cols = matrix.cols if n_cols is None else n_cols
        row_bytes = n_cols * matrix.etype.nbytes
        yield from self._locked_section()
        vpu = self.vpus[window.vpu_index]
        total = 0
        try:
            for i in range(n_rows):
                address = matrix.row_address(row_start + i)
                register = window[reg_start + i]
                row = vpu.vrf.view(register, matrix.etype)[:n_cols]
                # Fetch-on-write: destination lands in the cache; a miss on
                # the covering line pays the fill (paper III-A.4).
                cached = self.controller.ct.lookup(address) is not None
                cycles = self.bus.transfer_cycles(row_bytes, offchip=not cached)
                payload = row.tobytes()
                if self.corruption is not None:
                    payload = self.corruption.on_dma_row(payload)
                self.controller.route_write(address, payload)
                total += cycles
                yield cycles
        finally:
            self.controller.release_lock("ecpu")
        self._c_rows_stored.add(n_rows)
        self._c_store_cycles.add(total)
        return total
