"""The Kernel Scheduler (paper IV-B.2).

Runs as the C-RT main loop on the eCPU: pops scheduled kernels off the
queue, selects a VPU — preferring the one with the *fewest dirty cache
lines*, so claiming its registers for compute causes the least write-back
traffic — executes the kernel body, then releases operands:

* source regions are released (unblocking WAR-stalled host stores);
* the destination region is released after write-back completes
  (unblocking RAW/RAW-stalled host accesses);
* claimed vector registers return to the free pool and their lines to
  the cache.

A ``multi_vpu`` kernel body may be sharded across every free VPU; the
scheduler then runs one context per VPU concurrently and joins them —
the paper's "multi-instance mode" (section V-C).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.cache.controller import LlcController
from repro.runtime.allocator import MatrixAllocator
from repro.runtime.context import KernelContext
from repro.runtime.kernel_lib import KernelLibrary, KernelSpec
from repro.runtime.phases import PhaseBreakdown
from repro.runtime.queue import KernelQueue, QueuedKernel
from repro.runtime.replay import (
    Recording,
    RecordingContext,
    ReplayCache,
    ReplayDivergence,
    replay_kernel,
)
from repro.sim.kernel import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer
from repro.vpu.dispatcher import Dispatcher


class KernelScheduler:
    """C-RT main loop: VPU selection, kernel execution, operand release."""

    #: eCPU cycles for one scheduling decision (queue pop + policy + setup).
    SCHEDULE_CYCLES = 400

    def __init__(
        self,
        sim: Simulator,
        queue: KernelQueue,
        library: KernelLibrary,
        dispatcher: Dispatcher,
        allocator: MatrixAllocator,
        controller: LlcController,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
        multi_vpu: bool = False,
        vpu_policy: str = "fewest_dirty",
        replay_cache: Optional[ReplayCache] = None,
    ) -> None:
        self.sim = sim
        self.queue = queue
        self.library = library
        self.dispatcher = dispatcher
        self.allocator = allocator
        self.controller = controller
        self.stats = stats or StatsRegistry()
        self.tracer = tracer or Tracer(enabled=False)
        self.multi_vpu = multi_vpu
        self.vpu_policy = vpu_policy
        #: the kernel replay cache (None = fast path disabled).  Replay is
        #: incompatible with per-op tracing and with multi-VPU sharding,
        #: so those launches always take the slow path.
        self.replay_cache = replay_cache
        #: fault-injection hook (repro.integrity.inject): called once per
        #: kernel launch with the kernel's operand bindings so an armed
        #: plan can flip a bit in LLC-resident operand bytes.  None when
        #: no plan is armed (one attribute check on the hot path).
        self.corruption = None
        self.completed: List[QueuedKernel] = []
        self._c_kernels = self.stats.counter("scheduler.kernels")
        self.breakdowns: Dict[int, PhaseBreakdown] = {}
        self._stop = False
        self._epoch = 0
        self._inflight: Optional[QueuedKernel] = None

    # -- VPU selection policies (ablation bench compares them) ---------------

    def select_vpu(self) -> int:
        free = self.dispatcher.free_vpus()
        if not free:
            raise RuntimeError("no free VPU (scheduler runs kernels to completion)")
        if self.vpu_policy == "fewest_dirty":
            return min(free, key=lambda v: (self.controller.ct.dirty_line_count(v), v))
        if self.vpu_policy == "round_robin":
            return free[len(self.completed) % len(free)]
        if self.vpu_policy == "first_free":
            return free[0]
        raise ValueError(f"unknown VPU policy {self.vpu_policy!r}")

    # -- execution -----------------------------------------------------------------

    def run_forever(self) -> Generator:
        """Simulation process: serve the queue until :meth:`stop` is called.

        While the queue is empty the loop parks on the queue's push
        event; :meth:`stop` kicks that event, so a parked scheduler
        wakes and exits without another kernel having to arrive.  The
        park leaves no residue — push-event waiters drain on every fire,
        so a long-lived serving loop allocates nothing per idle period.

        Each launch captures the current epoch: a loop superseded by
        :meth:`rearm` (stop immediately followed by a relaunch, before
        the simulation advanced enough for the old loop to observe the
        stop) exits at its next wakeup instead of serving the queue
        alongside its replacement.
        """
        epoch = self._epoch
        while not self._stop and epoch == self._epoch:
            if self.queue.empty:
                yield self.queue.pushed_event
                continue
            kernel = self.queue.pop()
            yield from self.execute(kernel)

    def stop(self) -> None:
        """Request a clean exit; wakes the loop if it is parked on the queue."""
        self._stop = True
        self.queue.kick()

    def rearm(self) -> None:
        """Prepare a relaunch: clear the stop flag, retire older loops."""
        self._stop = False
        self._epoch += 1

    @property
    def inflight(self) -> Optional[QueuedKernel]:
        """The kernel currently being scheduled/executed (None when idle).

        Covers the window between queue pop and VPU claim, where a kernel
        is visible neither in the queue nor on a dispatcher owner —
        drain/reset logic must not mistake that window for idleness.
        """
        return self._inflight

    def execute(self, kernel: QueuedKernel) -> Generator:
        """Run one kernel to completion (simulation process)."""
        spec = self.library.lookup(kernel.func5)
        if spec is None:
            raise RuntimeError(f"kernel {kernel.func5} vanished from the library")
        self._inflight = kernel
        try:
            phases = PhaseBreakdown()
            phases.add("preamble", kernel.preamble_cycles + self.SCHEDULE_CYCLES)
            yield self.SCHEDULE_CYCLES
            if self.corruption is not None:
                # fires before the replay key is computed, so a flipped
                # operand byte keys its own (corrupt) recording instead of
                # poisoning the clean one
                self.corruption.on_kernel(kernel, self.controller)

            if self.multi_vpu and len(self.dispatcher.free_vpus()) > 1:
                yield from self._execute_multi(kernel, spec.body, phases)
            else:
                vpu_index = self.select_vpu()
                if self.replay_cache is not None \
                        and not self.replay_cache.suspended \
                        and not self.tracer.enabled:
                    yield from self._execute_replayable(kernel, spec, vpu_index, phases)
                else:
                    yield from self._execute_single(kernel, spec.body, vpu_index, phases)
        finally:
            # guard against a superseded loop's last kernel clearing a
            # replacement loop's in-flight marker (stop + immediate restart)
            if self._inflight is kernel:
                self._inflight = None

        self._release_operands(kernel)
        self.breakdowns[kernel.kernel_id] = phases
        self.completed.append(kernel)
        if kernel.done is not None:
            kernel.done.fire(phases)
        self._c_kernels.add()
        self.tracer.log(
            self.sim.now, "scheduler", "kernel_done",
            kernel=kernel.kernel_id, name=kernel.name, cycles=phases.total,
        )

    def _execute_replayable(
        self, kernel: QueuedKernel, spec: KernelSpec, vpu_index: int,
        phases: PhaseBreakdown,
    ) -> Generator:
        """Fast-path dispatch: replay a recording, or record this launch."""
        cache = self.replay_cache
        key = cache.key_for(kernel, vpu_index, self.controller)
        recording = cache.lookup(key)
        if recording is not None:
            if cache.can_replay(recording, self, vpu_index):
                cache.stats["hits"] += 1
                cache.note_launch(kernel.kernel_id, "hit")
                if cache.touched is not None:
                    cache.touched.append(key)
                yield from self._execute_recorded(
                    recording, kernel, vpu_index, phases, key
                )
            else:
                cache.stats["bypassed"] += 1
                cache.note_launch(kernel.kernel_id, "bypassed")
                yield from self._execute_single(kernel, spec.body, vpu_index, phases)
            return
        cache.stats["misses"] += 1
        cache.note_launch(kernel.kernel_id, "miss")
        recording = Recording(vpu_index, self.allocator._free[vpu_index])
        before = dict(phases.cycles)
        yield from self._execute_single(
            kernel, spec.body, vpu_index, phases, recording=recording
        )
        delta = {
            name: cycles - before.get(name, 0) for name, cycles in phases.cycles.items()
        }
        if recording.finalize(delta):
            cache.stats["recorded"] += 1
        if cache.touched is not None:
            cache.touched.append(key)
        cache.store(key, recording)

    def _execute_recorded(
        self, recording: Recording, kernel: QueuedKernel, vpu_index: int,
        phases: PhaseBreakdown, key: tuple,
    ) -> Generator:
        cache = self.replay_cache
        compiled = cache.compiled_for(key, recording, kernel, self, vpu_index)
        self.dispatcher.claim(vpu_index, kernel.kernel_id)
        context = KernelContext(
            vpu_index, kernel.etype, self.allocator, self.dispatcher, phases
        )
        try:
            yield from replay_kernel(recording, kernel, context, self, compiled)
        except ReplayDivergence:
            # the recording no longer matches the machine — most likely a
            # corrupted (poisoned) recording; drop it locally and retract
            # it from the fleet cache before the error propagates
            cache.invalidate(key)
            raise
        finally:
            context.release_all()
            self.dispatcher.release(vpu_index)

    def _execute_single(
        self, kernel: QueuedKernel, body: Callable, vpu_index: int,
        phases: PhaseBreakdown, recording: Optional[Recording] = None,
    ) -> Generator:
        self.dispatcher.claim(vpu_index, kernel.kernel_id)
        if recording is None:
            context = KernelContext(
                vpu_index, kernel.etype, self.allocator, self.dispatcher, phases
            )
        else:
            context = RecordingContext(
                vpu_index, kernel.etype, self.allocator, self.dispatcher, phases,
                kernel, recording,
            )
        self.tracer.log(
            self.sim.now, "scheduler", "kernel_start",
            kernel=kernel.kernel_id, name=kernel.name, vpu=vpu_index,
        )
        try:
            yield from body(context, kernel)
        finally:
            context.release_all()
            self.dispatcher.release(vpu_index)

    def _execute_multi(
        self, kernel: QueuedKernel, body: Callable, phases: PhaseBreakdown
    ) -> Generator:
        """Shard the kernel across all free VPUs and join.

        Each shard receives ``shard=(index, count)``; bodies that support
        sharding partition their output rows accordingly.  Per-shard phase
        cycles land in per-shard breakdowns; the merged breakdown keeps the
        *maximum* compute time (shards run concurrently) and the *sum* of
        DMA phases (the bus is shared).
        """
        vpus = self.dispatcher.free_vpus()
        shard_phases = [PhaseBreakdown() for _ in vpus]
        processes = []
        for i, vpu_index in enumerate(vpus):
            self.dispatcher.claim(vpu_index, kernel.kernel_id)
            context = KernelContext(
                vpu_index, kernel.etype, self.allocator, self.dispatcher, shard_phases[i]
            )
            generator = self._shard_wrapper(body, context, kernel, i, len(vpus))
            processes.append(
                self.sim.process(generator, name=f"kernel{kernel.kernel_id}.shard{i}")
            )
        yield self.sim.all_of([p.done_event for p in processes], name="shards_done")
        for vpu_index in vpus:
            self.dispatcher.release(vpu_index)
        merged = self._merge_shard_phases(shard_phases)
        phases.merge(merged)

    def _shard_wrapper(
        self, body: Callable, context: KernelContext, kernel: QueuedKernel,
        shard_index: int, shard_count: int,
    ) -> Generator:
        try:
            yield from body(context, kernel, shard=(shard_index, shard_count))
        finally:
            context.release_all()

    @staticmethod
    def _merge_shard_phases(shards: List[PhaseBreakdown]) -> PhaseBreakdown:
        """Join per-shard breakdowns over the union of recorded phase names.

        Shards run concurrently, so "compute" keeps the slowest shard's
        time; every other phase (DMA and eCPU work contending for the
        shared bus / eCPU) is summed.  Custom phases recorded by kernel
        bodies merge by the same sum rule instead of being dropped.
        """
        merged = PhaseBreakdown()
        names = list(merged.cycles)
        for shard in shards:
            names.extend(p for p in shard.cycles if p not in names)
        for phase in names:
            values = [shard.cycles.get(phase, 0) for shard in shards]
            if phase == "compute":
                merged.add(phase, max(values, default=0))
            else:
                merged.add(phase, sum(values))
        return merged

    def _release_operands(self, kernel: QueuedKernel) -> None:
        """Free AT entries and drop binding references (hazard release)."""
        at = self.allocator.controller.at
        for binding in kernel.sources:
            binding.pending_uses -= 1
            at.release(binding.binding_id)
            self.controller.clear_roles_for_region(binding.address, binding.end_address)
        if kernel.dest is not None:
            kernel.dest.pending_uses -= 1
            at.release(kernel.dest.binding_id)
            self.controller.clear_roles_for_region(
                kernel.dest.address, kernel.dest.end_address
            )
