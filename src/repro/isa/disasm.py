"""Disassembler: render decoded instructions back to readable text.

Primarily a debugging aid for ISS traces and a round-trip check for the
assembler tests (assemble -> decode -> disassemble -> compare shapes).
"""

from __future__ import annotations

from repro.isa.decode import decode
from repro.isa.instruction import Instruction

_ABI_NAMES = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
]

_LOADS = {"lb", "lh", "lw", "lbu", "lhu"}
_STORES = {"sb", "sh", "sw"}
_BRANCHES = {"beq", "bne", "blt", "bge", "bltu", "bgeu"}
_OP_IMM = {"addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai"}
_R_TYPE = {
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
}


def reg_name(index: int) -> str:
    """ABI name for register ``index``."""
    return _ABI_NAMES[index]


def format_instruction(instr: Instruction, pc: int = 0) -> str:
    """Render one decoded instruction as assembly-like text."""
    m = instr.mnemonic
    ops = instr.operands
    if m in _LOADS:
        return f"{m} {reg_name(instr.rd)}, {instr.imm}({reg_name(instr.rs1)})"
    if m in _STORES:
        return f"{m} {reg_name(instr.rs2)}, {instr.imm}({reg_name(instr.rs1)})"
    if m in _BRANCHES:
        return f"{m} {reg_name(instr.rs1)}, {reg_name(instr.rs2)}, {pc + instr.imm:#x}"
    if m in _OP_IMM:
        return f"{m} {reg_name(instr.rd)}, {reg_name(instr.rs1)}, {instr.imm}"
    if m in _R_TYPE:
        return f"{m} {reg_name(instr.rd)}, {reg_name(instr.rs1)}, {reg_name(instr.rs2)}"
    if m in ("lui", "auipc"):
        return f"{m} {reg_name(instr.rd)}, {instr.imm:#x}"
    if m == "jal":
        return f"jal {reg_name(instr.rd)}, {pc + instr.imm:#x}"
    if m == "jalr":
        return f"jalr {reg_name(instr.rd)}, {instr.imm}({reg_name(instr.rs1)})"
    if m.startswith("csr"):
        return f"{m} {reg_name(instr.rd)}, {ops.get('csr', 0):#x}, {instr.rs1}"
    if m.startswith("cv.l") or m.startswith("cv.s"):
        data_reg = instr.rd if m.startswith("cv.l") else instr.rs2
        return f"{m} {reg_name(data_reg)}, {instr.imm}({reg_name(instr.rs1)}!)"
    if m.startswith(("cv.start", "cv.end", "cv.count", "cv.setup")):
        return f"{m} {ops.get('loop', 0)}, ..."
    if m.startswith("pv.") or m.startswith("cv."):
        return f"{m} {reg_name(instr.rd)}, {reg_name(instr.rs1)}, {reg_name(instr.rs2)}"
    if m.startswith(("xmr", "xmk")):
        return (
            f"{m} {reg_name(instr.rs1)}, {reg_name(instr.rs2)}, {reg_name(instr.rs3)}"
            f"  # func5={ops.get('func5')}"
        )
    return m


def disassemble(word: int, pc: int = 0) -> str:
    """Decode and render the instruction word at ``pc``."""
    return format_instruction(decode(word, pc), pc)
