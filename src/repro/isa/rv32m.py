"""RV32M standard multiply/divide extension (funct7 = 0b0000001 in OP space)."""

from __future__ import annotations

from typing import Optional

from repro.isa import fields
from repro.isa.instruction import Instruction

FUNCT7_MULDIV = 0b0000001

_MULDIV = {
    0b000: "mul",
    0b001: "mulh",
    0b010: "mulhsu",
    0b011: "mulhu",
    0b100: "div",
    0b101: "divu",
    0b110: "rem",
    0b111: "remu",
}

MNEMONICS = sorted(_MULDIV.values())


def decode_m(word: int) -> Optional[Instruction]:
    """Decode an RV32M instruction, or None if the word is not RV32M."""
    if fields.decode_opcode(word) != fields.OPCODE_OP:
        return None
    ops = fields.decode_r(word)
    if ops.pop("funct7") != FUNCT7_MULDIV:
        return None
    mnemonic = _MULDIV.get(ops.pop("funct3"))
    if mnemonic is None:
        return None
    return Instruction(mnemonic, word, extension="m", operands=ops)
