"""Unified instruction decoder for all ISA extensions in this repo.

Dispatch order mirrors hardware: the two low bits select compressed vs
standard length; standard words try the base ISA, then M, then the custom
extension spaces (XCVPULP in Custom-0/1/3, xmnmc in Custom-2).
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.rv32c import decode_compressed
from repro.isa.rv32i import decode_base
from repro.isa.rv32m import decode_m
from repro.isa.xcvpulp import decode_xcvpulp
from repro.isa.xmnmc import decode_xmnmc


class DecodeError(ValueError):
    """Raised for illegal or unsupported encodings."""

    def __init__(self, word: int, pc: int = 0) -> None:
        super().__init__(f"illegal instruction {word:#010x} at pc={pc:#010x}")
        self.word = word
        self.pc = pc


def decode(word: int, pc: int = 0) -> Instruction:
    """Decode the instruction starting with the 32-bit fetch word ``word``.

    For compressed instructions only the low 16 bits are meaningful.
    Raises :class:`DecodeError` on illegal encodings.
    """
    if word & 0b11 != 0b11:
        instruction = decode_compressed(word & 0xFFFF)
        if instruction is None:
            raise DecodeError(word & 0xFFFF, pc)
        return instruction

    word &= 0xFFFFFFFF
    for decoder in (decode_m, decode_base, decode_xcvpulp, decode_xmnmc):
        instruction = decoder(word)
        if instruction is not None:
            return instruction
    raise DecodeError(word, pc)
