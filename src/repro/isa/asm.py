"""A two-pass RISC-V assembler for RV32IM + XCVPULP + xmnmc.

Baseline kernels (scalar and packed-SIMD convolutions, GeMM, pooling) are
written in assembly text and assembled to machine code that the ISS
executes.  Supported syntax:

* labels (``loop:``), comments (``#`` and ``//``), ABI register names;
* memory operands ``imm(rs1)`` and the XCVPULP post-increment ``imm(rs1!)``;
* pseudo-instructions: ``li``, ``la``, ``mv``, ``not``, ``neg``, ``j``,
  ``jr``, ``ret``, ``call``, ``nop``, ``seqz``/``snez``, ``beqz``/``bnez``/
  ``blez``/``bgez``/``bltz``/``bgtz``, ``bgt``/``ble``/``bgtu``/``bleu``;
* directives: ``.word``, ``.half``, ``.byte``, ``.zero``, ``.align``,
  ``.space``, ``.globl`` (accepted, ignored);
* hardware-loop mnemonics take a loop index then operands, e.g.
  ``cv.setup 0, t0, loop_end``.

The assembler is deliberately strict: unknown mnemonics, out-of-range
immediates and undefined symbols raise :class:`AssemblerError` with the
offending line number.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa import fields, xcvpulp, xmnmc
from repro.utils.bitops import mask, sign_extend

ABI_REGISTERS = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24, "s9": 25,
    "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}


class AssemblerError(ValueError):
    """Assembly failure, annotated with the 1-based source line number."""

    def __init__(self, message: str, line_number: int = 0) -> None:
        prefix = f"line {line_number}: " if line_number else ""
        super().__init__(prefix + message)
        self.line_number = line_number


@dataclass
class Program:
    """Assembled output: raw bytes plus the symbol table."""

    base: int
    data: bytearray
    symbols: Dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.data)

    def words(self) -> List[int]:
        """The program as little-endian 32-bit words (zero-padded)."""
        padded = bytes(self.data) + b"\x00" * (-len(self.data) % 4)
        return [int.from_bytes(padded[i : i + 4], "little") for i in range(0, len(padded), 4)]


def parse_register(token: str, line_number: int = 0) -> int:
    """Parse ``x7`` / ABI-name register tokens."""
    token = token.strip().lower()
    if token in ABI_REGISTERS:
        return ABI_REGISTERS[token]
    if re.fullmatch(r"x([0-9]|[12][0-9]|3[01])", token):
        return int(token[1:])
    raise AssemblerError(f"unknown register {token!r}", line_number)


_MEM_OPERAND = re.compile(r"^(?P<imm>[^()]*)\(\s*(?P<reg>[a-zA-Z0-9]+)\s*(?P<post>!?)\s*\)$")


@dataclass
class _Line:
    number: int
    mnemonic: str
    operands: List[str]
    address: int = 0


class _Assembler:
    def __init__(self, text: str, base: int) -> None:
        self.base = base
        self.symbols: Dict[str, int] = {}
        self.lines: List[_Line] = []
        self._parse(text)

    # -- pass 1: tokenize, lay out addresses, collect labels --------------

    def _parse(self, text: str) -> None:
        address = self.base
        for number, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].split("//", 1)[0].strip()
            while line:
                label_match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*:", line)
                if label_match:
                    label = label_match.group(1)
                    if label in self.symbols:
                        raise AssemblerError(f"duplicate label {label!r}", number)
                    self.symbols[label] = address
                    line = line[label_match.end():].strip()
                    continue
                break
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operand_text = parts[1] if len(parts) > 1 else ""
            operands = [op.strip() for op in operand_text.split(",")] if operand_text else []
            entry = _Line(number, mnemonic, operands, address)
            self.lines.append(entry)
            address += self._line_size(entry, address)

    def _line_size(self, line: _Line, address: int) -> int:
        m = line.mnemonic
        if m == ".word":
            return 4 * len(line.operands)
        if m == ".half":
            return 2 * len(line.operands)
        if m == ".byte":
            return len(line.operands)
        if m in (".zero", ".space"):
            return self._int_or_fail(line.operands[0], line.number)
        if m == ".align":
            alignment = 1 << self._int_or_fail(line.operands[0], line.number)
            return (-address) % alignment
        if m in (".globl", ".global", ".text", ".data", ".section"):
            return 0
        if m == "li":
            value = self._int_or_fail(line.operands[1], line.number)
            return 4 if -2048 <= value <= 2047 else 8
        if m == "li32":
            return 8
        if m == "la":
            return 8
        if m == "call":
            return 4
        return 4  # every real instruction is a 32-bit encoding

    # -- pass 2: encode ----------------------------------------------------

    def assemble(self) -> Program:
        data = bytearray()
        for line in self.lines:
            expected = line.address - self.base
            if len(data) != expected:
                raise AssemblerError(
                    f"internal layout mismatch at line {line.number}", line.number
                )
            data.extend(self._encode_line(line))
        return Program(self.base, data, dict(self.symbols))

    def _encode_line(self, line: _Line) -> bytes:
        m = line.mnemonic
        if m.startswith("."):
            return self._encode_directive(line)
        try:
            words = self._encode_instruction(line)
        except AssemblerError:
            raise
        except (ValueError, IndexError) as error:
            raise AssemblerError(str(error), line.number) from error
        out = bytearray()
        for word in words:
            out.extend(word.to_bytes(4, "little"))
        return bytes(out)

    def _encode_directive(self, line: _Line) -> bytes:
        m = line.mnemonic
        if m == ".word":
            out = bytearray()
            for op in line.operands:
                out.extend((self._value(op, line) & mask(32)).to_bytes(4, "little"))
            return bytes(out)
        if m == ".half":
            out = bytearray()
            for op in line.operands:
                out.extend((self._value(op, line) & mask(16)).to_bytes(2, "little"))
            return bytes(out)
        if m == ".byte":
            return bytes(self._value(op, line) & 0xFF for op in line.operands)
        if m in (".zero", ".space"):
            return bytes(self._int_or_fail(line.operands[0], line.number))
        if m == ".align":
            alignment = 1 << self._int_or_fail(line.operands[0], line.number)
            return bytes((-(line.address)) % alignment)
        if m in (".globl", ".global", ".text", ".data", ".section"):
            return b""
        raise AssemblerError(f"unknown directive {m!r}", line.number)

    def _value(self, token: str, line: _Line) -> int:
        token = token.strip()
        if token in self.symbols:
            return self.symbols[token]
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblerError(f"undefined symbol {token!r}", line.number) from None

    def _int_or_fail(self, token: str, line_number: int) -> int:
        try:
            return int(token.strip(), 0)
        except ValueError:
            raise AssemblerError(f"expected integer, got {token!r}", line_number) from None

    def _branch_offset(self, token: str, line: _Line) -> int:
        return self._value(token, line) - line.address

    def _mem_operand(self, token: str, line: _Line) -> Tuple[int, int, bool]:
        match = _MEM_OPERAND.match(token.strip())
        if not match:
            raise AssemblerError(f"bad memory operand {token!r}", line.number)
        imm_text = match.group("imm").strip() or "0"
        imm = self._value(imm_text, line)
        reg = parse_register(match.group("reg"), line.number)
        return imm, reg, match.group("post") == "!"

    def _encode_instruction(self, line: _Line) -> List[int]:
        m, ops = line.mnemonic, line.operands
        n = line.number
        reg = lambda i: parse_register(ops[i], n)  # noqa: E731 - local shorthand

        # ---- pseudo-instructions ------------------------------------
        if m == "nop":
            return [fields.encode_i(fields.OPCODE_OP_IMM, 0, 0, 0, 0)]
        if m == "li":
            return self._encode_li(reg(0), self._int_or_fail(ops[1], n))
        if m == "li32":
            # Fixed-size li (always lui+addi): generated kernels use it so
            # code size/timing stay shape-independent for the cycle models.
            return self._encode_la(reg(0), self._int_or_fail(ops[1], n) & 0xFFFFFFFF)
        if m == "la":
            target = self._value(ops[1], line)
            return self._encode_la(reg(0), target)
        if m == "mv":
            return [fields.encode_i(fields.OPCODE_OP_IMM, reg(0), 0, reg(1), 0)]
        if m == "not":
            return [fields.encode_i(fields.OPCODE_OP_IMM, reg(0), 0b100, reg(1), -1)]
        if m == "neg":
            return [fields.encode_r(fields.OPCODE_OP, reg(0), 0, 0, reg(1), 0b0100000)]
        if m == "seqz":
            return [fields.encode_i(fields.OPCODE_OP_IMM, reg(0), 0b011, reg(1), 1)]
        if m == "snez":
            return [fields.encode_r(fields.OPCODE_OP, reg(0), 0b011, 0, reg(1), 0)]
        if m == "j":
            return [fields.encode_j(fields.OPCODE_JAL, 0, self._branch_offset(ops[0], line))]
        if m == "jal" and len(ops) == 1:
            return [fields.encode_j(fields.OPCODE_JAL, 1, self._branch_offset(ops[0], line))]
        if m == "call":
            return [fields.encode_j(fields.OPCODE_JAL, 1, self._branch_offset(ops[0], line))]
        if m == "jr":
            return [fields.encode_i(fields.OPCODE_JALR, 0, 0, reg(0), 0)]
        if m == "ret":
            return [fields.encode_i(fields.OPCODE_JALR, 0, 0, 1, 0)]
        if m in ("beqz", "bnez", "blez", "bgez", "bltz", "bgtz"):
            offset = self._branch_offset(ops[1], line)
            r = reg(0)
            table = {
                "beqz": ("beq", r, 0), "bnez": ("bne", r, 0),
                "bltz": ("blt", r, 0), "bgez": ("bge", r, 0),
                "blez": ("bge", 0, r), "bgtz": ("blt", 0, r),
            }
            real, rs1, rs2 = table[m]
            return [self._encode_branch(real, rs1, rs2, offset)]
        if m in ("bgt", "ble", "bgtu", "bleu"):
            offset = self._branch_offset(ops[2], line)
            swap = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}
            return [self._encode_branch(swap[m], reg(1), reg(0), offset)]

        # ---- RV32I ----------------------------------------------------
        if m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            offset = self._branch_offset(ops[2], line)
            return [self._encode_branch(m, reg(0), reg(1), offset)]
        if m == "jal":
            return [fields.encode_j(fields.OPCODE_JAL, reg(0), self._branch_offset(ops[1], line))]
        if m == "jalr":
            if len(ops) == 2 and "(" in ops[1]:
                imm, rs1, _ = self._mem_operand(ops[1], line)
                return [fields.encode_i(fields.OPCODE_JALR, reg(0), 0, rs1, imm)]
            imm = self._value(ops[2], line) if len(ops) > 2 else 0
            return [fields.encode_i(fields.OPCODE_JALR, reg(0), 0, reg(1), imm)]
        if m == "lui":
            return [fields.encode_u(fields.OPCODE_LUI, reg(0), self._value(ops[1], line) & mask(20))]
        if m == "auipc":
            return [fields.encode_u(fields.OPCODE_AUIPC, reg(0), self._value(ops[1], line) & mask(20))]
        if m in ("lb", "lh", "lw", "lbu", "lhu"):
            funct3 = {"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}[m]
            imm, rs1, post = self._mem_operand(ops[1], line)
            if post:
                raise AssemblerError(f"{m} does not support post-increment", n)
            return [fields.encode_i(fields.OPCODE_LOAD, reg(0), funct3, rs1, imm)]
        if m in ("sb", "sh", "sw"):
            funct3 = {"sb": 0, "sh": 1, "sw": 2}[m]
            imm, rs1, post = self._mem_operand(ops[1], line)
            if post:
                raise AssemblerError(f"{m} does not support post-increment", n)
            return [fields.encode_s(fields.OPCODE_STORE, funct3, rs1, reg(0), imm)]
        if m in ("addi", "slti", "sltiu", "xori", "ori", "andi"):
            funct3 = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}[m]
            return [
                fields.encode_i(fields.OPCODE_OP_IMM, reg(0), funct3, reg(1), self._value(ops[2], line))
            ]
        if m in ("slli", "srli", "srai"):
            funct3 = 0b001 if m == "slli" else 0b101
            funct7 = 0b0100000 if m == "srai" else 0
            shamt = self._value(ops[2], line)
            return [fields.encode_i_shift(fields.OPCODE_OP_IMM, reg(0), funct3, reg(1), shamt, funct7)]
        _R_OPS = {
            "add": (0b000, 0), "sub": (0b000, 0b0100000), "sll": (0b001, 0),
            "slt": (0b010, 0), "sltu": (0b011, 0), "xor": (0b100, 0),
            "srl": (0b101, 0), "sra": (0b101, 0b0100000), "or": (0b110, 0),
            "and": (0b111, 0),
        }
        if m in _R_OPS:
            funct3, funct7 = _R_OPS[m]
            return [fields.encode_r(fields.OPCODE_OP, reg(0), funct3, reg(1), reg(2), funct7)]
        _M_OPS = {
            "mul": 0b000, "mulh": 0b001, "mulhsu": 0b010, "mulhu": 0b011,
            "div": 0b100, "divu": 0b101, "rem": 0b110, "remu": 0b111,
        }
        if m in _M_OPS:
            return [fields.encode_r(fields.OPCODE_OP, reg(0), _M_OPS[m], reg(1), reg(2), 0b0000001)]
        if m == "ecall":
            return [0x00000073]
        if m == "ebreak":
            return [0x00100073]
        if m == "fence":
            return [0x0000000F]
        if m == "wfi":
            return [0x10500073]
        if m == "mret":
            return [0x30200073]
        _CSR_OPS = {"csrrw": 1, "csrrs": 2, "csrrc": 3, "csrrwi": 5, "csrrsi": 6, "csrrci": 7}
        if m in _CSR_OPS:
            csr = self._value(ops[1], line)
            src = self._value(ops[2], line) if m.endswith("i") else parse_register(ops[2], n)
            word = (csr << 20) | (src << 15) | (_CSR_OPS[m] << 12) | (reg(0) << 7) | fields.OPCODE_SYSTEM
            return [word]

        # ---- XCVPULP ---------------------------------------------------
        if m in ("cv.lb", "cv.lh", "cv.lw", "cv.lbu", "cv.lhu"):
            imm, rs1, post = self._mem_operand(ops[1], line)
            if not post:
                raise AssemblerError(f"{m} requires post-increment syntax imm(rs1!)", n)
            funct3 = xcvpulp.postinc_funct3(m)
            return [fields.encode_i(fields.OPCODE_CUSTOM_0, reg(0), funct3, rs1, imm)]
        if m in ("cv.sb", "cv.sh", "cv.sw"):
            imm, rs1, post = self._mem_operand(ops[1], line)
            if not post:
                raise AssemblerError(f"{m} requires post-increment syntax imm(rs1!)", n)
            funct3 = xcvpulp.postinc_funct3(m)
            return [fields.encode_s(fields.OPCODE_CUSTOM_0, funct3, rs1, reg(0), imm)]
        if m in ("cv.starti", "cv.endi"):
            loop = self._int_or_fail(ops[0], n) & 1
            offset = self._branch_offset(ops[1], line)
            if offset % 2:
                raise AssemblerError("hardware-loop target offset must be even", n)
            funct3 = xcvpulp.hwloop_funct3(m)
            return [fields.encode_i(fields.OPCODE_CUSTOM_1, loop, funct3, 0, offset // 2)]
        if m == "cv.counti":
            loop = self._int_or_fail(ops[0], n) & 1
            count = self._value(ops[1], line)
            return [fields.encode_i(fields.OPCODE_CUSTOM_1, loop, 0b010, 0, count)]
        if m == "cv.count":
            loop = self._int_or_fail(ops[0], n) & 1
            return [fields.encode_i(fields.OPCODE_CUSTOM_1, loop, 0b011, parse_register(ops[1], n), 0)]
        if m == "cv.setup":
            loop = self._int_or_fail(ops[0], n) & 1
            count_reg = parse_register(ops[1], n)
            offset = self._branch_offset(ops[2], line)
            if offset % 2:
                raise AssemblerError("hardware-loop target offset must be even", n)
            return [fields.encode_i(fields.OPCODE_CUSTOM_1, loop, 0b100, count_reg, offset // 2)]
        if m in ("cv.mac", "cv.msu", "cv.min", "cv.max", "cv.minu", "cv.maxu", "cv.clip"):
            funct7 = xcvpulp.scalar_dsp_funct7(m)
            return [fields.encode_r(fields.OPCODE_CUSTOM_1, reg(0), 0b110, reg(1), reg(2), funct7)]
        if m == "cv.abs":
            funct7 = xcvpulp.scalar_dsp_funct7(m)
            return [fields.encode_r(fields.OPCODE_CUSTOM_1, reg(0), 0b110, reg(1), 0, funct7)]
        if m.startswith("pv."):
            base, _, suffix = m.rpartition(".")
            if suffix not in ("b", "h"):
                raise AssemblerError(f"packed-SIMD mnemonic {m!r} needs .b or .h suffix", n)
            funct3 = 0 if suffix == "b" else 1
            funct7 = xcvpulp.simd_funct7(base)
            rs2 = reg(2) if len(ops) > 2 else 0
            return [fields.encode_r(fields.OPCODE_CUSTOM_3, reg(0), funct3, reg(1), rs2, funct7)]

        # ---- xmnmc -----------------------------------------------------
        match = re.fullmatch(r"(xmr|xmk(\d+))\.([whb])", m)
        if match:
            size = match.group(3)
            if match.group(1) == "xmr":
                return [xmnmc.encode_xmr(size, reg(0), reg(1), reg(2))]
            return [xmnmc.encode_xmk(int(match.group(2)), size, reg(0), reg(1), reg(2))]

        raise AssemblerError(f"unknown mnemonic {m!r}", n)

    def _encode_branch(self, mnemonic: str, rs1: int, rs2: int, offset: int) -> int:
        funct3 = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}[mnemonic]
        return fields.encode_b(fields.OPCODE_BRANCH, funct3, rs1, rs2, offset)

    def _encode_li(self, rd: int, value: int) -> List[int]:
        value = sign_extend(value & mask(32), 32)
        if -2048 <= value <= 2047:
            return [fields.encode_i(fields.OPCODE_OP_IMM, rd, 0, 0, value)]
        upper = (value + 0x800) >> 12
        lower = value - (upper << 12)
        return [
            fields.encode_u(fields.OPCODE_LUI, rd, upper & mask(20)),
            fields.encode_i(fields.OPCODE_OP_IMM, rd, 0, rd, lower),
        ]

    def _encode_la(self, rd: int, target: int) -> List[int]:
        upper = (target + 0x800) >> 12
        lower = target - (upper << 12)
        return [
            fields.encode_u(fields.OPCODE_LUI, rd, upper & mask(20)),
            fields.encode_i(fields.OPCODE_OP_IMM, rd, 0, rd, sign_extend(lower & mask(12), 12)),
        ]


def assemble(text: str, base: int = 0) -> Program:
    """Assemble ``text`` into a :class:`Program` loaded at address ``base``."""
    return _Assembler(text, base).assemble()
