"""RV32I base integer ISA: decoding tables and mnemonic catalogue.

The decoder maps a 32-bit word in a base opcode space to an
:class:`~repro.isa.instruction.Instruction`.  Encoding for the assembler
lives in :mod:`repro.isa.asm`, built on :mod:`repro.isa.fields`.
"""

from __future__ import annotations

from typing import Optional

from repro.isa import fields
from repro.isa.instruction import Instruction

# funct3 -> mnemonic for each opcode family.
_LOADS = {0b000: "lb", 0b001: "lh", 0b010: "lw", 0b100: "lbu", 0b101: "lhu"}
_STORES = {0b000: "sb", 0b001: "sh", 0b010: "sw"}
_BRANCHES = {
    0b000: "beq",
    0b001: "bne",
    0b100: "blt",
    0b101: "bge",
    0b110: "bltu",
    0b111: "bgeu",
}
_OP_IMM = {
    0b000: "addi",
    0b010: "slti",
    0b011: "sltiu",
    0b100: "xori",
    0b110: "ori",
    0b111: "andi",
}
_OP = {
    (0b000, 0b0000000): "add",
    (0b000, 0b0100000): "sub",
    (0b001, 0b0000000): "sll",
    (0b010, 0b0000000): "slt",
    (0b011, 0b0000000): "sltu",
    (0b100, 0b0000000): "xor",
    (0b101, 0b0000000): "srl",
    (0b101, 0b0100000): "sra",
    (0b110, 0b0000000): "or",
    (0b111, 0b0000000): "and",
}

MNEMONICS = sorted(
    set(_LOADS.values())
    | set(_STORES.values())
    | set(_BRANCHES.values())
    | set(_OP_IMM.values())
    | set(_OP.values())
    | {"lui", "auipc", "jal", "jalr", "slli", "srli", "srai", "fence", "ecall", "ebreak"}
)


def decode_base(word: int) -> Optional[Instruction]:
    """Decode an RV32I instruction, or return None if the word is not RV32I."""
    opcode = fields.decode_opcode(word)

    if opcode == fields.OPCODE_LUI:
        ops = fields.decode_u(word)
        return Instruction("lui", word, operands=ops)
    if opcode == fields.OPCODE_AUIPC:
        ops = fields.decode_u(word)
        return Instruction("auipc", word, operands=ops)
    if opcode == fields.OPCODE_JAL:
        ops = fields.decode_j(word)
        return Instruction("jal", word, operands=ops)
    if opcode == fields.OPCODE_JALR:
        ops = fields.decode_i(word)
        if ops.pop("funct3") != 0:
            return None
        return Instruction("jalr", word, operands=ops)
    if opcode == fields.OPCODE_BRANCH:
        ops = fields.decode_b(word)
        mnemonic = _BRANCHES.get(ops.pop("funct3"))
        if mnemonic is None:
            return None
        return Instruction(mnemonic, word, operands=ops)
    if opcode == fields.OPCODE_LOAD:
        ops = fields.decode_i(word)
        mnemonic = _LOADS.get(ops.pop("funct3"))
        if mnemonic is None:
            return None
        return Instruction(mnemonic, word, operands=ops)
    if opcode == fields.OPCODE_STORE:
        ops = fields.decode_s(word)
        mnemonic = _STORES.get(ops.pop("funct3"))
        if mnemonic is None:
            return None
        return Instruction(mnemonic, word, operands=ops)
    if opcode == fields.OPCODE_OP_IMM:
        return _decode_op_imm(word)
    if opcode == fields.OPCODE_OP:
        ops = fields.decode_r(word)
        key = (ops.pop("funct3"), ops.pop("funct7"))
        mnemonic = _OP.get(key)
        if mnemonic is None:
            return None
        return Instruction(mnemonic, word, operands=ops)
    if opcode == fields.OPCODE_MISC_MEM:
        return Instruction("fence", word, operands={})
    if opcode == fields.OPCODE_SYSTEM:
        return _decode_system(word)
    return None


def _decode_op_imm(word: int) -> Optional[Instruction]:
    ops = fields.decode_i(word)
    funct3 = ops.pop("funct3")
    if funct3 == 0b001:  # slli
        funct7 = fields.bits(word, 31, 25)
        if funct7 != 0:
            return None
        return Instruction(
            "slli", word, operands={"rd": ops["rd"], "rs1": ops["rs1"], "imm": ops["imm"] & 0x1F}
        )
    if funct3 == 0b101:  # srli / srai
        funct7 = fields.bits(word, 31, 25)
        shamt = fields.bits(word, 24, 20)
        base = {"rd": ops["rd"], "rs1": ops["rs1"], "imm": shamt}
        if funct7 == 0b0000000:
            return Instruction("srli", word, operands=base)
        if funct7 == 0b0100000:
            return Instruction("srai", word, operands=base)
        return None
    mnemonic = _OP_IMM.get(funct3)
    if mnemonic is None:
        return None
    return Instruction(mnemonic, word, operands=ops)


# CSR funct3 values (Zicsr, needed for eCPU interrupt handling).
_CSR_OPS = {
    0b001: "csrrw",
    0b010: "csrrs",
    0b011: "csrrc",
    0b101: "csrrwi",
    0b110: "csrrsi",
    0b111: "csrrci",
}


def _decode_system(word: int) -> Optional[Instruction]:
    funct3 = fields.bits(word, 14, 12)
    if funct3 == 0:
        imm12 = fields.bits(word, 31, 20)
        if imm12 == 0:
            return Instruction("ecall", word, operands={})
        if imm12 == 1:
            return Instruction("ebreak", word, operands={})
        if imm12 == 0x302:
            return Instruction("mret", word, operands={})
        if imm12 == 0x105:
            return Instruction("wfi", word, operands={})
        return None
    mnemonic = _CSR_OPS.get(funct3)
    if mnemonic is None:
        return None
    operands = {
        "rd": fields.bits(word, 11, 7),
        "rs1": fields.bits(word, 19, 15),  # register index or zimm for *i forms
        "csr": fields.bits(word, 31, 20),
    }
    return Instruction(mnemonic, word, operands=operands)
