"""XCVPULP custom extension subset (CV32E40PX baseline of the paper).

The paper's strongest CPU baseline is the CV32E40PX, a CV32E40P-derived
core with the XCVPULP DSP extensions: hardware loops, post-increment
memory accesses, scalar MAC/clip and 8/16-bit packed-SIMD arithmetic
including dot products.  Those are exactly the features that buy the
paper's reported 5-8.6x speedup over plain RV32IMC on convolutions, so we
implement the subset a convolution kernel needs.

Encoding note (documented substitution): the official XCVPULP encodings
spread across several major opcodes with non-trivial sub-fields.  Since
this repo is both the producer (assembler) and consumer (ISS) of machine
code, we re-house the subset in the Custom-0 (0x0b, post-increment
memory), Custom-1 (0x2b, hardware loops + scalar DSP) and Custom-3 (0x7b,
packed SIMD) spaces with regular R/I-type layouts.  Semantics and timing
follow the CORE-V specification; only the bit layout differs.
"""

from __future__ import annotations

from typing import Optional

from repro.isa import fields
from repro.isa.instruction import Instruction

# --- Custom-0 (0x0b): post-increment loads/stores ------------------------
# I-type for loads (rd, imm(rs1!)), S-type for stores (rs2, imm(rs1!)).
_POSTINC_LOADS = {0b000: "cv.lb", 0b001: "cv.lh", 0b010: "cv.lw", 0b100: "cv.lbu", 0b101: "cv.lhu"}
_POSTINC_STORES = {0b000: "cv.sb", 0b001: "cv.sh", 0b010: "cv.sw"}
# bit 30 of the word distinguishes store forms (S-type immediate split).
_STORE_FLAG_BIT = 14  # funct3 bit2 reused: loads use funct3<6, stores use funct3|0b100? no —

# Simpler: loads are I-type with funct3 in _POSTINC_LOADS; stores are
# S-type with funct3 in {0,1,2} and are distinguished by a dedicated
# funct marker in imm[11:9]... To stay unambiguous we give stores their
# own funct3 values 0b110 (sb), 0b111 (sh) and 0b011 (sw).
_POSTINC_STORE_F3 = {0b110: "cv.sb", 0b111: "cv.sh", 0b011: "cv.sw"}

# --- Custom-1 (0x2b): hardware loops + scalar DSP ------------------------
# Hardware loops are I-type: funct3 selects the operation, rd selects the
# loop index (0 or 1).
HWLOOP_F3 = {
    0b000: "cv.starti",  # loop start = pc + imm*2
    0b001: "cv.endi",  # loop end = pc + imm*2
    0b010: "cv.counti",  # loop count = uimm
    0b011: "cv.count",  # loop count = rs1
    0b100: "cv.setup",  # count = rs1, end = pc + imm*2, start = next pc
    0b101: "cv.setupi",  # count = imm[11:5], end = pc + imm[4:0]*2
}
# Scalar DSP in Custom-1 R-type, funct3=0b110, funct7 selects:
_SCALAR_DSP_F7 = {
    0b0000000: "cv.mac",  # rd += rs1 * rs2 (signed 32-bit)
    0b0000001: "cv.msu",  # rd -= rs1 * rs2
    0b0000010: "cv.min",
    0b0000011: "cv.max",
    0b0000100: "cv.abs",
    0b0000101: "cv.clip",  # clip rs1 to +-2^(rs2-1)
    0b0000110: "cv.minu",
    0b0000111: "cv.maxu",
}

# --- Custom-3 (0x7b): packed SIMD -----------------------------------------
# R-type; funct3 = 0 for .b (four int8 lanes), 1 for .h (two int16 lanes);
# funct7 selects the operation.  .sc (scalar-replicated) variants take the
# scalar in rs2.
_SIMD_F7 = {
    0b0000000: "pv.add",
    0b0000001: "pv.sub",
    0b0000010: "pv.avg",
    0b0000011: "pv.min",
    0b0000100: "pv.max",
    0b0000101: "pv.and",
    0b0000110: "pv.or",
    0b0000111: "pv.xor",
    0b0001000: "pv.dotsp",  # rd  = sum(rs1[i] * rs2[i]), signed lanes
    0b0001001: "pv.dotup",  # unsigned lanes
    0b0001010: "pv.sdotsp",  # rd += sum(rs1[i] * rs2[i])  (the conv workhorse)
    0b0001011: "pv.sdotup",
    0b0001100: "pv.extract",  # rd = sext(rs1[lane rs2])
    0b0001101: "pv.insert",  # rd[lane rs2] = rs1 (read-modify-write rd)
    0b0001110: "pv.add.sc",
    0b0001111: "pv.sub.sc",
    0b0010000: "pv.max.sc",
    0b0010001: "pv.min.sc",
    0b0010010: "pv.shuffle2",
}

MNEMONICS = sorted(
    set(_POSTINC_LOADS.values())
    | set(_POSTINC_STORE_F3.values())
    | set(HWLOOP_F3.values())
    | set(_SCALAR_DSP_F7.values())
    | {f"{m}.{s}" for m in _SIMD_F7.values() for s in ("b", "h")}
)


def simd_funct7(base_mnemonic: str) -> int:
    """Reverse lookup: ``"pv.add"`` -> funct7 (used by the assembler)."""
    for funct7, name in _SIMD_F7.items():
        if name == base_mnemonic:
            return funct7
    raise KeyError(base_mnemonic)


def scalar_dsp_funct7(mnemonic: str) -> int:
    for funct7, name in _SCALAR_DSP_F7.items():
        if name == mnemonic:
            return funct7
    raise KeyError(mnemonic)


def hwloop_funct3(mnemonic: str) -> int:
    for funct3, name in HWLOOP_F3.items():
        if name == mnemonic:
            return funct3
    raise KeyError(mnemonic)


def postinc_funct3(mnemonic: str) -> int:
    for funct3, name in _POSTINC_LOADS.items():
        if name == mnemonic:
            return funct3
    for funct3, name in _POSTINC_STORE_F3.items():
        if name == mnemonic:
            return funct3
    raise KeyError(mnemonic)


def decode_xcvpulp(word: int) -> Optional[Instruction]:
    """Decode an XCVPULP-subset instruction, or None."""
    opcode = fields.decode_opcode(word)

    if opcode == fields.OPCODE_CUSTOM_0:
        ops = fields.decode_i(word)
        funct3 = ops.pop("funct3")
        mnemonic = _POSTINC_LOADS.get(funct3)
        if mnemonic is not None:
            return Instruction(mnemonic, word, extension="xcvpulp", operands=ops)
        mnemonic = _POSTINC_STORE_F3.get(funct3)
        if mnemonic is not None:
            store_ops = fields.decode_s(word)
            store_ops.pop("funct3")
            return Instruction(mnemonic, word, extension="xcvpulp", operands=store_ops)
        return None

    if opcode == fields.OPCODE_CUSTOM_1:
        funct3 = fields.bits(word, 14, 12)
        if funct3 in HWLOOP_F3:
            ops = fields.decode_i(word)
            ops.pop("funct3")
            ops["loop"] = ops.pop("rd") & 1
            return Instruction(HWLOOP_F3[funct3], word, extension="xcvpulp", operands=ops)
        if funct3 == 0b110:
            ops = fields.decode_r(word)
            ops.pop("funct3")
            mnemonic = _SCALAR_DSP_F7.get(ops.pop("funct7"))
            if mnemonic is None:
                return None
            return Instruction(mnemonic, word, extension="xcvpulp", operands=ops)
        return None

    if opcode == fields.OPCODE_CUSTOM_3:
        ops = fields.decode_r(word)
        funct3 = ops.pop("funct3")
        if funct3 not in (0, 1):
            return None
        suffix = "b" if funct3 == 0 else "h"
        base = _SIMD_F7.get(ops.pop("funct7"))
        if base is None:
            return None
        return Instruction(f"{base}.{suffix}", word, extension="xcvpulp", operands=ops)

    return None
