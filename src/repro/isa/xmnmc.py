"""The `xmnmc` software-defined in-cache matrix ISA (paper section IV-A).

Encoding (Custom-2 major opcode ``0x5b``, paper Table I):

* ``func5`` occupies bits [11:7] (the rd field is free — matrix
  instructions write no integer register).  ``func5 == 31`` encodes
  ``xmr`` (matrix reserve); ``func5 == N`` for N in [0, 30] encodes the
  software-decoded kernel ``xmkN``.
* ``funct3`` encodes the element width suffix: 0 = ``.b`` (int8),
  1 = ``.h`` (int16), 2 = ``.w`` (int32).
* ``rs1``/``rs2``/``rs3`` name the three source registers whose *values*
  carry the packed 16-bit operand pairs of Table I:

  ===========  ==========  ==========  ==========  ==========  ==========  ==========
  Mnemonic     hi(rs1)     lo(rs1)     hi(rs2)     lo(rs2)     hi(rs3)     lo(rs3)
  ===========  ==========  ==========  ==========  ==========  ==========  ==========
  xmr          hi(&A)      lo(&A)      A.stride    md          A.cols      A.rows
  xmk0 GeMM    alpha       beta        ms3         md          ms1         ms2
  xmk1 ReLU    alpha       --          --          md          ms1         --
  xmk2 MaxP    stride      win_size    --          md          ms1         --
  xmk3 Conv    --          --          --          md          ms1         ms2
  xmk4 ConvL   --          --          --          md          ms1         ms2
  ===========  ==========  ==========  ==========  ==========  ==========  ==========

The *register values* are produced by the helper pack/unpack functions
below, shared between the host-side intrinsics (:mod:`repro.core.api`) and
the C-RT kernel decoder (:mod:`repro.runtime.decoder`), mirroring how the
bridge samples opcode, func5 and the three operand registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa import fields
from repro.isa.instruction import Instruction
from repro.utils.bitops import bits

MAJOR_OPCODE = fields.OPCODE_CUSTOM_2  # 0x5b
FUNC5_XMR = 31
MAX_KERNEL_FUNC5 = 30

#: funct3 encodings for the element-size suffix.
SIZE_SUFFIXES = {"b": 0, "h": 1, "w": 2}
SIZE_BYTES = {"b": 1, "h": 2, "w": 4}
SUFFIX_BY_FUNCT3 = {v: k for k, v in SIZE_SUFFIXES.items()}


def pack_pair(hi: int, lo: int) -> int:
    """Pack two 16-bit values into one 32-bit register value."""
    if not 0 <= hi <= 0xFFFF:
        raise ValueError(f"hi field {hi} does not fit in 16 bits")
    if not 0 <= lo <= 0xFFFF:
        raise ValueError(f"lo field {lo} does not fit in 16 bits")
    return (hi << 16) | lo


def unpack_pair(value: int) -> Tuple[int, int]:
    """Split a 32-bit register value into its (hi, lo) 16-bit fields."""
    return (value >> 16) & 0xFFFF, value & 0xFFFF


def encode_xmr(size: str, rs1: int, rs2: int, rs3: int) -> int:
    """Encode ``xmr.[w|h|b]`` with operand registers rs1/rs2/rs3."""
    return _encode(FUNC5_XMR, size, rs1, rs2, rs3)


def encode_xmk(n: int, size: str, rs1: int, rs2: int, rs3: int) -> int:
    """Encode ``xmkN.[w|h|b]`` for kernel slot ``n`` in [0, 30]."""
    if not 0 <= n <= MAX_KERNEL_FUNC5:
        raise ValueError(f"kernel index {n} outside [0, {MAX_KERNEL_FUNC5}]")
    return _encode(n, size, rs1, rs2, rs3)


def _encode(func5: int, size: str, rs1: int, rs2: int, rs3: int) -> int:
    try:
        funct3 = SIZE_SUFFIXES[size]
    except KeyError:
        raise ValueError(f"size suffix {size!r} must be one of w/h/b") from None
    return fields.encode_r4(
        MAJOR_OPCODE, rd=func5, funct3=funct3, rs1=rs1, rs2=rs2, rs3=rs3, funct2=0
    )


def decode_xmnmc(word: int) -> Optional[Instruction]:
    """Decode a Custom-2 matrix instruction, or None."""
    if fields.decode_opcode(word) != MAJOR_OPCODE:
        return None
    func5 = bits(word, 11, 7)
    funct3 = bits(word, 14, 12)
    suffix = SUFFIX_BY_FUNCT3.get(funct3)
    if suffix is None:
        return None
    ops = fields.decode_r4(word)
    operands = {
        "rs1": ops["rs1"],
        "rs2": ops["rs2"],
        "rs3": ops["rs3"],
        "func5": func5,
        "size": funct3,
    }
    if func5 == FUNC5_XMR:
        mnemonic = f"xmr.{suffix}"
    else:
        mnemonic = f"xmk{func5}.{suffix}"
    return Instruction(mnemonic, word, extension="xmnmc", operands=operands)


@dataclass(frozen=True)
class OffloadRequest:
    """What the CV-X-IF bridge samples from an offloaded matrix instruction.

    This is the unit of transfer between the host CPU and the eCPU:
    the decoded static fields (func5, element size) plus the dynamic
    values of the three source registers at issue time.
    """

    func5: int
    size_suffix: str  # "b" / "h" / "w"
    rs1_value: int
    rs2_value: int
    rs3_value: int
    instr_id: int = 0  # host-assigned sequence number for commit/kill

    @property
    def is_reserve(self) -> bool:
        return self.func5 == FUNC5_XMR

    @property
    def element_bytes(self) -> int:
        return SIZE_BYTES[self.size_suffix]

    def pairs(self) -> Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]:
        """The three (hi, lo) 16-bit operand pairs of Table I."""
        return (
            unpack_pair(self.rs1_value),
            unpack_pair(self.rs2_value),
            unpack_pair(self.rs3_value),
        )


def request_from_instruction(
    instruction: Instruction, rs1_value: int, rs2_value: int, rs3_value: int, instr_id: int = 0
) -> OffloadRequest:
    """Build the bridge-level offload request for a decoded xmnmc instruction."""
    if instruction.extension != "xmnmc":
        raise ValueError(f"{instruction.mnemonic} is not an xmnmc instruction")
    suffix = SUFFIX_BY_FUNCT3[instruction.operand("size")]
    return OffloadRequest(
        func5=instruction.operand("func5"),
        size_suffix=suffix,
        rs1_value=rs1_value & 0xFFFFFFFF,
        rs2_value=rs2_value & 0xFFFFFFFF,
        rs3_value=rs3_value & 0xFFFFFFFF,
        instr_id=instr_id,
    )
