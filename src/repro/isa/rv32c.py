"""RV32C compressed extension: expansion of 16-bit encodings.

The CV32E40X fetches compressed instructions natively; for the ISS we
expand each 16-bit encoding to its 32-bit equivalent and tag the resulting
:class:`Instruction` with ``length=2`` so the PC advances correctly and
fetch statistics stay honest.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instruction import Instruction
from repro.utils.bitops import bit, bits, sign_extend


def _rvc_reg(compressed: int) -> int:
    """Map a 3-bit compressed register specifier to x8..x15."""
    return compressed + 8


def decode_compressed(halfword: int) -> Optional[Instruction]:
    """Decode one 16-bit RVC encoding into its expanded instruction.

    Returns None for reserved or unsupported encodings (the ISS raises an
    illegal-instruction error in that case).
    """
    halfword &= 0xFFFF
    quadrant = halfword & 0b11
    funct3 = bits(halfword, 15, 13)

    if halfword == 0:
        return None  # defined illegal instruction

    if quadrant == 0b00:
        return _decode_q0(halfword, funct3)
    if quadrant == 0b01:
        return _decode_q1(halfword, funct3)
    if quadrant == 0b10:
        return _decode_q2(halfword, funct3)
    return None


def _make(mnemonic: str, raw: int, extension: str = "c", **operands: int) -> Instruction:
    return Instruction(mnemonic, raw, length=2, extension=extension, operands=operands)


def _decode_q0(halfword: int, funct3: int) -> Optional[Instruction]:
    if funct3 == 0b000:  # c.addi4spn -> addi rd', x2, nzuimm
        imm = (
            (bits(halfword, 10, 7) << 6)
            | (bits(halfword, 12, 11) << 4)
            | (bit(halfword, 5) << 3)
            | (bit(halfword, 6) << 2)
        )
        if imm == 0:
            return None
        return _make("addi", halfword, rd=_rvc_reg(bits(halfword, 4, 2)), rs1=2, imm=imm)
    if funct3 == 0b010:  # c.lw -> lw rd', offset(rs1')
        imm = (bit(halfword, 5) << 6) | (bits(halfword, 12, 10) << 3) | (bit(halfword, 6) << 2)
        return _make(
            "lw",
            halfword,
            rd=_rvc_reg(bits(halfword, 4, 2)),
            rs1=_rvc_reg(bits(halfword, 9, 7)),
            imm=imm,
        )
    if funct3 == 0b110:  # c.sw -> sw rs2', offset(rs1')
        imm = (bit(halfword, 5) << 6) | (bits(halfword, 12, 10) << 3) | (bit(halfword, 6) << 2)
        return _make(
            "sw",
            halfword,
            rs1=_rvc_reg(bits(halfword, 9, 7)),
            rs2=_rvc_reg(bits(halfword, 4, 2)),
            imm=imm,
        )
    return None


def _decode_q1(halfword: int, funct3: int) -> Optional[Instruction]:
    rd = bits(halfword, 11, 7)
    imm6 = sign_extend((bit(halfword, 12) << 5) | bits(halfword, 6, 2), 6)

    if funct3 == 0b000:  # c.nop / c.addi
        return _make("addi", halfword, rd=rd, rs1=rd, imm=imm6)
    if funct3 == 0b001:  # c.jal (RV32) -> jal x1, offset
        return _make("jal", halfword, rd=1, imm=_cj_imm(halfword))
    if funct3 == 0b010:  # c.li -> addi rd, x0, imm
        return _make("addi", halfword, rd=rd, rs1=0, imm=imm6)
    if funct3 == 0b011:
        if rd == 2:  # c.addi16sp
            imm = sign_extend(
                (bit(halfword, 12) << 9)
                | (bits(halfword, 4, 3) << 7)
                | (bit(halfword, 5) << 6)
                | (bit(halfword, 2) << 5)
                | (bit(halfword, 6) << 4),
                10,
            )
            if imm == 0:
                return None
            return _make("addi", halfword, rd=2, rs1=2, imm=imm)
        if imm6 == 0:
            return None
        return _make("lui", halfword, rd=rd, imm=imm6 & 0xFFFFF)  # c.lui
    if funct3 == 0b100:
        return _decode_q1_alu(halfword)
    if funct3 == 0b101:  # c.j -> jal x0, offset
        return _make("jal", halfword, rd=0, imm=_cj_imm(halfword))
    if funct3 in (0b110, 0b111):  # c.beqz / c.bnez
        imm = sign_extend(
            (bit(halfword, 12) << 8)
            | (bits(halfword, 6, 5) << 6)
            | (bit(halfword, 2) << 5)
            | (bits(halfword, 11, 10) << 3)
            | (bits(halfword, 4, 3) << 1),
            9,
        )
        mnemonic = "beq" if funct3 == 0b110 else "bne"
        return _make(mnemonic, halfword, rs1=_rvc_reg(bits(halfword, 9, 7)), rs2=0, imm=imm)
    return None


def _decode_q1_alu(halfword: int) -> Optional[Instruction]:
    rd = _rvc_reg(bits(halfword, 9, 7))
    op2 = bits(halfword, 11, 10)
    if op2 == 0b00:  # c.srli
        shamt = (bit(halfword, 12) << 5) | bits(halfword, 6, 2)
        return _make("srli", halfword, rd=rd, rs1=rd, imm=shamt & 0x1F)
    if op2 == 0b01:  # c.srai
        shamt = (bit(halfword, 12) << 5) | bits(halfword, 6, 2)
        return _make("srai", halfword, rd=rd, rs1=rd, imm=shamt & 0x1F)
    if op2 == 0b10:  # c.andi
        imm = sign_extend((bit(halfword, 12) << 5) | bits(halfword, 6, 2), 6)
        return _make("andi", halfword, rd=rd, rs1=rd, imm=imm)
    # op2 == 0b11: register-register ops
    if bit(halfword, 12):
        return None  # c.subw/c.addw are RV64 only
    rs2 = _rvc_reg(bits(halfword, 4, 2))
    mnemonic = {0b00: "sub", 0b01: "xor", 0b10: "or", 0b11: "and"}[bits(halfword, 6, 5)]
    return _make(mnemonic, halfword, rd=rd, rs1=rd, rs2=rs2)


def _decode_q2(halfword: int, funct3: int) -> Optional[Instruction]:
    rd = bits(halfword, 11, 7)
    if funct3 == 0b000:  # c.slli
        shamt = (bit(halfword, 12) << 5) | bits(halfword, 6, 2)
        return _make("slli", halfword, rd=rd, rs1=rd, imm=shamt & 0x1F)
    if funct3 == 0b010:  # c.lwsp
        imm = (bits(halfword, 3, 2) << 6) | (bit(halfword, 12) << 5) | (bits(halfword, 6, 4) << 2)
        if rd == 0:
            return None
        return _make("lw", halfword, rd=rd, rs1=2, imm=imm)
    if funct3 == 0b100:
        rs2 = bits(halfword, 6, 2)
        if bit(halfword, 12) == 0:
            if rs2 == 0:  # c.jr
                if rd == 0:
                    return None
                return _make("jalr", halfword, rd=0, rs1=rd, imm=0)
            return _make("add", halfword, rd=rd, rs1=0, rs2=rs2)  # c.mv
        if rs2 == 0:
            if rd == 0:  # c.ebreak
                return _make("ebreak", halfword)
            return _make("jalr", halfword, rd=1, rs1=rd, imm=0)  # c.jalr
        return _make("add", halfword, rd=rd, rs1=rd, rs2=rs2)  # c.add
    if funct3 == 0b110:  # c.swsp
        imm = (bits(halfword, 8, 7) << 6) | (bits(halfword, 12, 9) << 2)
        return _make("sw", halfword, rs1=2, rs2=bits(halfword, 6, 2), imm=imm)
    return None


def _cj_imm(halfword: int) -> int:
    """The scrambled 11-bit CJ-format jump offset."""
    return sign_extend(
        (bit(halfword, 12) << 11)
        | (bit(halfword, 8) << 10)
        | (bits(halfword, 10, 9) << 8)
        | (bit(halfword, 6) << 7)
        | (bit(halfword, 7) << 6)
        | (bit(halfword, 2) << 5)
        | (bit(halfword, 11) << 4)
        | (bits(halfword, 5, 3) << 1),
        12,
    )
