"""RISC-V instruction set infrastructure.

Sub-modules:

* :mod:`repro.isa.fields` — the six base encoding formats (R/I/S/B/U/J).
* :mod:`repro.isa.rv32i`, :mod:`repro.isa.rv32m`, :mod:`repro.isa.rv32c` —
  the base ISA plus the M and C standard extensions used by both the host
  CPU (CV32E40X, RV32IMC) and the embedded cache controller CPU.
* :mod:`repro.isa.xcvpulp` — the subset of the CORE-V XCVPULP custom
  extension (hardware loops, post-increment memory ops, packed SIMD)
  implemented by the CV32E40PX baseline in the paper's Figure 4.
* :mod:`repro.isa.xmnmc` — the paper's software-defined in-cache matrix
  extension (`xmr`, `xmk0..xmk30`) in the Custom-2 opcode space (0x5b).
* :mod:`repro.isa.asm` / :mod:`repro.isa.disasm` — a two-pass assembler
  and a disassembler used to author and inspect baseline kernels.
"""

from repro.isa.decode import DecodeError, decode
from repro.isa.instruction import Instruction
from repro.isa.asm import AssemblerError, assemble
from repro.isa.disasm import disassemble

__all__ = [
    "DecodeError",
    "decode",
    "Instruction",
    "AssemblerError",
    "assemble",
    "disassemble",
]
