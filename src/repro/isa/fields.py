"""Encoders and decoders for the six RV32 base instruction formats.

Encoding functions take register indices and (signed) immediates and
return a 32-bit word; decoding functions extract operand dictionaries.
Immediates out of range raise ``ValueError`` at encode time so assembler
bugs surface immediately instead of producing silently-wrong machine code.
"""

from __future__ import annotations

from typing import Dict

from repro.utils.bitops import bit, bits, mask, sign_extend

OPCODE_LOAD = 0x03
OPCODE_MISC_MEM = 0x0F
OPCODE_OP_IMM = 0x13
OPCODE_AUIPC = 0x17
OPCODE_STORE = 0x23
OPCODE_OP = 0x33
OPCODE_LUI = 0x37
OPCODE_BRANCH = 0x63
OPCODE_JALR = 0x67
OPCODE_JAL = 0x6F
OPCODE_SYSTEM = 0x73
OPCODE_CUSTOM_0 = 0x0B
OPCODE_CUSTOM_1 = 0x2B
OPCODE_CUSTOM_2 = 0x5B  # xmnmc lives here (paper section IV-A)
OPCODE_CUSTOM_3 = 0x7B


def _check_reg(value: int, name: str) -> int:
    if not 0 <= value <= 31:
        raise ValueError(f"{name}={value} is not a valid register index")
    return value


def _check_simm(value: int, width: int, name: str = "imm") -> int:
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    if not lo <= value <= hi:
        raise ValueError(f"{name}={value} does not fit in signed {width} bits")
    return value & mask(width)


def _check_uimm(value: int, width: int, name: str = "imm") -> int:
    if not 0 <= value <= mask(width):
        raise ValueError(f"{name}={value} does not fit in unsigned {width} bits")
    return value


def encode_r(opcode: int, rd: int, funct3: int, rs1: int, rs2: int, funct7: int) -> int:
    """R-type: register-register ALU operations."""
    return (
        (funct7 << 25)
        | (_check_reg(rs2, "rs2") << 20)
        | (_check_reg(rs1, "rs1") << 15)
        | (funct3 << 12)
        | (_check_reg(rd, "rd") << 7)
        | opcode
    )


def encode_i(opcode: int, rd: int, funct3: int, rs1: int, imm: int) -> int:
    """I-type: immediates, loads, jalr."""
    return (
        (_check_simm(imm, 12) << 20)
        | (_check_reg(rs1, "rs1") << 15)
        | (funct3 << 12)
        | (_check_reg(rd, "rd") << 7)
        | opcode
    )


def encode_i_shift(opcode: int, rd: int, funct3: int, rs1: int, shamt: int, funct7: int) -> int:
    """I-type shift: 5-bit shamt with funct7 selector (slli/srli/srai)."""
    return (
        (funct7 << 25)
        | (_check_uimm(shamt, 5, "shamt") << 20)
        | (_check_reg(rs1, "rs1") << 15)
        | (funct3 << 12)
        | (_check_reg(rd, "rd") << 7)
        | opcode
    )


def encode_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """S-type: stores."""
    imm = _check_simm(imm, 12)
    return (
        (bits(imm, 11, 5) << 25)
        | (_check_reg(rs2, "rs2") << 20)
        | (_check_reg(rs1, "rs1") << 15)
        | (funct3 << 12)
        | (bits(imm, 4, 0) << 7)
        | opcode
    )


def encode_b(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """B-type: conditional branches (imm is a byte offset, must be even)."""
    if imm % 2:
        raise ValueError(f"branch offset {imm} is odd")
    imm = _check_simm(imm, 13)
    return (
        (bit(imm, 12) << 31)
        | (bits(imm, 10, 5) << 25)
        | (_check_reg(rs2, "rs2") << 20)
        | (_check_reg(rs1, "rs1") << 15)
        | (funct3 << 12)
        | (bits(imm, 4, 1) << 8)
        | (bit(imm, 11) << 7)
        | opcode
    )


def encode_u(opcode: int, rd: int, imm: int) -> int:
    """U-type: lui/auipc (imm is the already-shifted 20-bit upper value)."""
    return (_check_uimm(imm, 20) << 12) | (_check_reg(rd, "rd") << 7) | opcode


def encode_j(opcode: int, rd: int, imm: int) -> int:
    """J-type: jal (imm is a byte offset, must be even)."""
    if imm % 2:
        raise ValueError(f"jump offset {imm} is odd")
    imm = _check_simm(imm, 21)
    return (
        (bit(imm, 20) << 31)
        | (bits(imm, 10, 1) << 21)
        | (bit(imm, 11) << 20)
        | (bits(imm, 19, 12) << 12)
        | (_check_reg(rd, "rd") << 7)
        | opcode
    )


def encode_r4(opcode: int, rd: int, funct3: int, rs1: int, rs2: int, rs3: int, funct2: int) -> int:
    """R4-type: three-source operations (used by xmnmc kernel instructions)."""
    return (
        (_check_reg(rs3, "rs3") << 27)
        | (funct2 << 25)
        | (_check_reg(rs2, "rs2") << 20)
        | (_check_reg(rs1, "rs1") << 15)
        | (funct3 << 12)
        | (_check_reg(rd, "rd") << 7)
        | opcode
    )


def decode_opcode(word: int) -> int:
    return bits(word, 6, 0)


def decode_r(word: int) -> Dict[str, int]:
    return {
        "rd": bits(word, 11, 7),
        "funct3": bits(word, 14, 12),
        "rs1": bits(word, 19, 15),
        "rs2": bits(word, 24, 20),
        "funct7": bits(word, 31, 25),
    }


def decode_i(word: int) -> Dict[str, int]:
    return {
        "rd": bits(word, 11, 7),
        "funct3": bits(word, 14, 12),
        "rs1": bits(word, 19, 15),
        "imm": sign_extend(bits(word, 31, 20), 12),
    }


def decode_s(word: int) -> Dict[str, int]:
    imm = (bits(word, 31, 25) << 5) | bits(word, 11, 7)
    return {
        "funct3": bits(word, 14, 12),
        "rs1": bits(word, 19, 15),
        "rs2": bits(word, 24, 20),
        "imm": sign_extend(imm, 12),
    }


def decode_b(word: int) -> Dict[str, int]:
    imm = (
        (bit(word, 31) << 12)
        | (bit(word, 7) << 11)
        | (bits(word, 30, 25) << 5)
        | (bits(word, 11, 8) << 1)
    )
    return {
        "funct3": bits(word, 14, 12),
        "rs1": bits(word, 19, 15),
        "rs2": bits(word, 24, 20),
        "imm": sign_extend(imm, 13),
    }


def decode_u(word: int) -> Dict[str, int]:
    return {"rd": bits(word, 11, 7), "imm": bits(word, 31, 12)}


def decode_j(word: int) -> Dict[str, int]:
    imm = (
        (bit(word, 31) << 20)
        | (bits(word, 19, 12) << 12)
        | (bit(word, 20) << 11)
        | (bits(word, 30, 21) << 1)
    )
    return {"rd": bits(word, 11, 7), "imm": sign_extend(imm, 21)}


def decode_r4(word: int) -> Dict[str, int]:
    return {
        "rd": bits(word, 11, 7),
        "funct3": bits(word, 14, 12),
        "rs1": bits(word, 19, 15),
        "rs2": bits(word, 24, 20),
        "funct2": bits(word, 26, 25),
        "rs3": bits(word, 31, 27),
    }
