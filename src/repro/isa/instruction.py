"""The decoded-instruction record shared by the decoder, ISS and disassembler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class Instruction:
    """A decoded RISC-V instruction.

    Attributes:
        mnemonic: canonical lower-case mnemonic, e.g. ``"addi"``.
        raw: the raw 32-bit (or 16-bit for compressed) encoding.
        length: 4 for standard encodings, 2 for compressed.
        extension: which ISA extension defined it (``"i"``, ``"m"``,
            ``"c"``, ``"xcvpulp"``, ``"xmnmc"``).
        operands: decoded operand fields — register indices under
            ``rd``/``rs1``/``rs2``/``rs3``, immediates under ``imm`` (already
            sign-extended where the format requires it), and
            extension-specific fields (``func5`` for xmnmc, etc.).
    """

    mnemonic: str
    raw: int
    length: int = 4
    extension: str = "i"
    operands: Dict[str, int] = field(default_factory=dict)

    @property
    def rd(self) -> int:
        return self.operands.get("rd", 0)

    @property
    def rs1(self) -> int:
        return self.operands.get("rs1", 0)

    @property
    def rs2(self) -> int:
        return self.operands.get("rs2", 0)

    @property
    def rs3(self) -> int:
        return self.operands.get("rs3", 0)

    @property
    def imm(self) -> int:
        return self.operands.get("imm", 0)

    def operand(self, name: str, default: Optional[int] = None) -> int:
        value = self.operands.get(name, default)
        if value is None:
            raise KeyError(f"{self.mnemonic} has no operand {name!r}")
        return value

    def __str__(self) -> str:
        pieces = ", ".join(f"{k}={v}" for k, v in self.operands.items())
        return f"{self.mnemonic} {pieces}"
