"""The Address Table (AT) — kernel-operand hazard tracking (paper III-A.3).

Each entry records the start/end addresses of a registered matrix operand
plus a validity flag and a busy status.  The eCPU's kernel decoder
registers operand regions when a kernel is scheduled; the LLC controller
consults the table on host accesses that touch flagged lines (or on any
miss) and stalls accesses that would violate the hazard rules:

* WAR — host stores to a *source* region are blocked until allocation
  (the temporary copy into VPU lines) completes;
* RAW / WAW — host loads *and* stores to a *destination* region are
  blocked until kernel write-back completes.

Entries expose a simulation event that fires when the region is released,
so stalled host accesses can park on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.kernel import Event, Simulator


class OperandKind(enum.Enum):
    SOURCE = "source"
    DEST = "dest"


class HazardKind(enum.Enum):
    """Which hazard a blocked access ran into (for tracing/tests)."""

    WAR = "war"  # store to busy source
    RAW = "raw"  # load from pending destination
    WAW = "waw"  # store to pending destination


@dataclass
class AtEntry:
    """One Address Table entry."""

    start: int
    end: int  # exclusive
    kind: OperandKind
    matrix_id: int
    valid: bool = True
    busy: bool = True
    released: Optional[Event] = field(default=None, repr=False)

    def covers(self, address: int, length: int = 1) -> bool:
        return self.valid and address < self.end and address + length > self.start


class AddressTable:
    """Fixed-capacity table of operand regions with hazard queries."""

    def __init__(self, capacity: int, sim: Optional[Simulator] = None) -> None:
        if capacity <= 0:
            raise ValueError("AT capacity must be positive")
        self.capacity = capacity
        self.sim = sim
        self.entries: List[AtEntry] = []

    def register(self, start: int, end: int, kind: OperandKind, matrix_id: int) -> AtEntry:
        """Add an operand region; raises when the table is full.

        A full AT in hardware would stall the kernel decoder; the C-RT
        model surfaces it as an error because the paper sizes the table to
        the (configurable) number of logical matrix registers.
        """
        self._garbage_collect()
        if len(self.entries) >= self.capacity:
            raise RuntimeError(f"address table full ({self.capacity} entries)")
        released = self.sim.event(f"at.release.m{matrix_id}") if self.sim else None
        entry = AtEntry(start, end, kind, matrix_id, released=released)
        self.entries.append(entry)
        return entry

    def _garbage_collect(self) -> None:
        self.entries = [e for e in self.entries if e.valid]

    def lookup(self, address: int, length: int = 1) -> Optional[AtEntry]:
        """First valid entry covering the byte range, or None."""
        for entry in self.entries:
            if entry.covers(address, length):
                return entry
        return None

    def hazard_for(self, address: int, length: int, is_write: bool) -> Optional[HazardKind]:
        """Classify the hazard (if any) for a host access to this range."""
        entry = self.lookup(address, length)
        if entry is None or not entry.busy:
            return None
        if entry.kind is OperandKind.SOURCE:
            # Reads of a source are always safe; writes would corrupt the
            # operand before/while the allocator copies it (WAR).
            return HazardKind.WAR if is_write else None
        return HazardKind.WAW if is_write else HazardKind.RAW

    def blocking_entry(self, address: int, length: int, is_write: bool) -> Optional[AtEntry]:
        """The entry that blocks this access, or None when it may proceed."""
        if self.hazard_for(address, length, is_write) is None:
            return None
        return self.lookup(address, length)

    def release(self, matrix_id: int, kind: Optional[OperandKind] = None) -> int:
        """Mark entries of ``matrix_id`` free and fire their release events.

        Returns the number of entries released.
        """
        count = 0
        for entry in self.entries:
            if entry.matrix_id != matrix_id or not entry.valid:
                continue
            if kind is not None and entry.kind is not kind:
                continue
            entry.busy = False
            entry.valid = False
            if entry.released is not None:
                entry.released.fire()
            count += 1
        return count

    def release_source_block(self, matrix_id: int) -> int:
        """Unblock WAR-stalled stores once allocation of a source finishes."""
        return self.release(matrix_id, OperandKind.SOURCE)

    def busy_entries(self) -> List[AtEntry]:
        return [entry for entry in self.entries if entry.valid and entry.busy]
