"""The ARCANE last-level cache (paper section III-A).

A fully-associative cache whose data array doubles as the vector register
files of the near-memory VPUs.  The total number of lines equals the
aggregate vector register capacity (``n_vpus * vregs_per_vpu``) and the
line length matches the maximum vector length, so a cache line *is* a
vector register.

Components:

* :mod:`repro.cache.line` — per-line state (tag/valid/dirty + the
  compute-role flags of paper section III-A.2/3);
* :mod:`repro.cache.lru` — counter-based approximate LRU replacement;
* :mod:`repro.cache.cache_table` — the CT: tag lookup + line storage;
* :mod:`repro.cache.address_table` — the AT tracking kernel operand
  regions for hazard detection;
* :mod:`repro.cache.controller` — the LLC controller mediating host
  accesses, the eCPU lock, refills/write-backs and hazard stalls.
"""

from repro.cache.line import CacheLine, LineRole
from repro.cache.lru import ApproxLru
from repro.cache.cache_table import CacheTable
from repro.cache.address_table import AddressTable, AtEntry, OperandKind
from repro.cache.controller import LlcController

__all__ = [
    "CacheLine",
    "LineRole",
    "ApproxLru",
    "CacheTable",
    "AddressTable",
    "AtEntry",
    "OperandKind",
    "LlcController",
]
