"""Counter-based approximate LRU replacement (paper section III-A.1).

True LRU over hundreds of fully-associative lines is expensive in
hardware; ARCANE approximates it with per-line aging counters.  The model
here mirrors a standard aging scheme:

* on an access, the touched line's counter resets to zero;
* all other (valid, non-compute) counters increment, saturating at
  ``2**counter_bits - 1``;
* the victim is the line with the highest counter (ties broken by lowest
  index, which keeps the model deterministic).

Because counters saturate, lines untouched for a long time become
indistinguishable — exactly the "approximate" in approximate LRU, and the
behaviour the property-based tests pin down.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.cache.line import CacheLine


class ApproxLru:
    """Aging-counter replacement policy over a set of cache lines."""

    def __init__(self, counter_bits: int = 8) -> None:
        if counter_bits < 1:
            raise ValueError("counter_bits must be >= 1")
        self.max_counter = (1 << counter_bits) - 1

    def touch(self, accessed: CacheLine, all_lines: Iterable[CacheLine]) -> None:
        """Record an access: reset the accessed line, age the others."""
        for line in all_lines:
            if line is accessed:
                line.lru_counter = 0
            elif line.lru_counter < self.max_counter:
                line.lru_counter += 1

    def select_victim(self, candidates: List[CacheLine]) -> Optional[CacheLine]:
        """Pick the replacement victim among ``candidates``.

        Invalid lines win immediately (no data to lose); otherwise the
        oldest (highest counter) valid line is chosen.  Compute-busy lines
        must already be excluded by the caller.  Returns None when the
        candidate list is empty.
        """
        victim: Optional[CacheLine] = None
        for line in candidates:
            if not line.valid:
                return line
            if victim is None or line.lru_counter > victim.lru_counter:
                victim = line
        return victim
