"""Per-cache-line state.

Each line carries the conventional tag/valid/dirty state plus the
ARCANE-specific *role* flags from paper section III-A:

* ``SOURCE`` / ``DEST`` — the line holds data belonging to a registered
  kernel operand region; accesses must consult the Address Table.
* ``BUSY_COMPUTE`` — the line is currently owned by a VPU as part of an
  active kernel's operand layout and is excluded from normal caching.

The line's storage is a numpy ``uint8`` view into the shared LLC data
array, the same buffer the VPU sees as one vector register.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np


class LineRole(enum.Enum):
    """Compute-related role of a cache line (CT status bits)."""

    NONE = "none"
    SOURCE = "source"
    DEST = "dest"
    BUSY_COMPUTE = "busy_compute"


class CacheLine:
    """One fully-associative cache line / vector register."""

    __slots__ = (
        "index", "data", "tag", "valid", "dirty", "role", "lru_counter", "stuck",
    )

    def __init__(self, index: int, data: np.ndarray) -> None:
        self.index = index
        self.data = data  # uint8 view, len == line_bytes
        self.tag: Optional[int] = None  # line-aligned base address, None = unmapped
        self.valid = False
        self.dirty = False
        self.role = LineRole.NONE
        self.lru_counter = 0
        # Injected stuck-at fault (repro.integrity.inject): a frozen uint8
        # snapshot the line keeps serving on reads regardless of later
        # writes, modelling failed storage.  None = healthy line.
        self.stuck: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def is_compute(self) -> bool:
        return self.role is LineRole.BUSY_COMPUTE

    def invalidate(self) -> None:
        """Drop the cached mapping (does not clear data — hardware doesn't)."""
        self.tag = None
        self.valid = False
        self.dirty = False
        self.role = LineRole.NONE

    def claim_for_compute(self) -> None:
        """Take the line out of the address-mapped cache for kernel use."""
        self.tag = None
        self.valid = False
        self.dirty = False
        self.role = LineRole.BUSY_COMPUTE

    def release_from_compute(self) -> None:
        """Return the line to the free pool after kernel write-back."""
        if self.role is not LineRole.BUSY_COMPUTE:
            raise RuntimeError(f"line {self.index} is not in compute state")
        self.role = LineRole.NONE
        self.tag = None
        self.valid = False
        self.dirty = False

    def read_bytes(self, offset: int, length: int) -> bytes:
        if self.stuck is not None:
            return self.stuck[offset : offset + length].tobytes()
        return self.data[offset : offset + length].tobytes()

    def write_bytes(self, offset: int, payload: bytes) -> None:
        self.data[offset : offset + len(payload)] = np.frombuffer(
            bytes(payload), dtype=np.uint8
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f"{self.tag:#x}" if self.tag is not None else "-"
        flags = ("V" if self.valid else "") + ("D" if self.dirty else "")
        return f"<Line {self.index} tag={tag} {flags} role={self.role.value}>"
