"""The LLC controller: arbitration, hazards, refills and routing.

This is the heart of ARCANE's "cache that doubles as a coprocessor"
(paper sections III-A.2 through III-A.4).  It mediates between three
masters:

* the **host CPU** issuing loads/stores through the system bus;
* the **eCPU / C-RT** which acquires a lock around allocation and
  write-back phases so DMA into VPU lines cannot race host accesses;
* the **DMA engine**, whose rows are routed through the controller so
  each row is served from the cache on a hit or external memory on a
  miss, with line statuses updated on the fly.

Host accesses are simulation processes: they park on events while the
eCPU holds the lock or while the Address Table reports a WAR/RAW/WAW
hazard, and resume the cycle the blocking condition clears — reproducing
the paper's stall-until-resolved behaviour observably.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.cache.address_table import AddressTable, HazardKind, OperandKind
from repro.cache.cache_table import CacheTable
from repro.cache.line import CacheLine, LineRole
from repro.mem.bus import BusModel
from repro.mem.memory import MainMemory
from repro.sim.kernel import Event, Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer


class LlcController:
    """ARCANE LLC controller model."""

    HIT_CYCLES = 1  # paper: cache hits are resolved in a single cycle

    def __init__(
        self,
        sim: Simulator,
        cache_table: CacheTable,
        address_table: AddressTable,
        memory: MainMemory,
        bus: BusModel,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.ct = cache_table
        self.at = address_table
        self.memory = memory
        self.bus = bus
        self.stats = stats or StatsRegistry()
        self.tracer = tracer or Tracer(enabled=False)
        self.lock_holder: Optional[str] = None
        self._host_inflight = 0
        self._state_change: Event = sim.event("llc.state_change")
        # Hot-path counter handles, resolved once: the access/refill loops
        # must not build f-string names per operation.
        self._c_hits = self.stats.counter("llc.hits")
        self._c_misses = self.stats.counter("llc.misses")
        self._c_refills = self.stats.counter("llc.refills")
        self._c_writebacks = self.stats.counter("llc.writebacks")
        self._c_lock_acquired = self.stats.counter("llc.lock_acquired")
        self._c_host_lock_stalls = self.stats.counter("llc.host_lock_stalls")
        self._c_hazard_stalls = {
            kind: self.stats.counter(f"llc.hazard_{kind.value}_stalls")
            for kind in HazardKind
        }

    # ------------------------------------------------------------------
    # state-change notification: waiters wake and re-check conditions
    # ------------------------------------------------------------------

    def _notify(self) -> None:
        previous = self._state_change
        self._state_change = self.sim.event("llc.state_change")
        previous.fire()

    # ------------------------------------------------------------------
    # lock (paper III-A.2): memory-mapped register written by the eCPU
    # ------------------------------------------------------------------

    def acquire_lock(self, owner: str = "ecpu") -> Generator:
        """eCPU-side lock acquisition process.

        Not granted while a host operation is in flight: the C-RT stalls
        until the memory operation concludes (paper III-A.2).
        """
        while self.lock_holder is not None or self._host_inflight > 0:
            yield self._state_change
        self.lock_holder = owner
        self._c_lock_acquired.add()
        self.tracer.log(self.sim.now, "llc", "lock_acquired", owner=owner)

    def release_lock(self, owner: str = "ecpu") -> None:
        if self.lock_holder != owner:
            raise RuntimeError(f"{owner!r} does not hold the LLC lock")
        self.lock_holder = None
        self.tracer.log(self.sim.now, "llc", "lock_released", owner=owner)
        self._notify()

    @property
    def locked(self) -> bool:
        return self.lock_holder is not None

    # ------------------------------------------------------------------
    # host access path
    # ------------------------------------------------------------------

    def host_read(self, address: int, size: int) -> Generator:
        """Simulation process: host load. Returns the loaded value."""
        return self._host_access(address, size, is_write=False, value=None)

    def host_write(self, address: int, value: int, size: int) -> Generator:
        """Simulation process: host store."""
        return self._host_access(address, size, is_write=True, value=value)

    def _host_access(
        self, address: int, size: int, is_write: bool, value: Optional[int]
    ) -> Generator:
        if size not in (1, 2, 4):
            raise ValueError(f"unsupported access size {size}")
        if address % size:
            raise ValueError(f"misaligned {size}-byte access at {address:#x}")

        # 1. the eCPU lock blocks all host traffic.
        while self.lock_holder is not None:
            self._c_host_lock_stalls.add()
            self.tracer.log(self.sim.now, "host", "stall_lock", addr=address)
            yield self._state_change

        # 2. hazard check against the Address Table.  Hit lines flagged
        #    source/dest and all misses consult the AT (paper III-A.3).
        while True:
            line = self.ct.lookup(address)
            needs_at = line is None or line.role in (LineRole.SOURCE, LineRole.DEST)
            if not needs_at:
                break
            entry = self.at.blocking_entry(address, size, is_write)
            if entry is None:
                break
            hazard = self.at.hazard_for(address, size, is_write)
            self._c_hazard_stalls[hazard].add()
            self.tracer.log(
                self.sim.now, "host", "stall_hazard",
                addr=address, hazard=hazard.value, matrix=entry.matrix_id,
            )
            if entry.released is not None:
                yield entry.released
            else:  # AT built without a simulator: busy state must be cleared externally
                yield self._state_change

        # 3. serve the access.
        self._host_inflight += 1
        try:
            line = self.ct.lookup(address)
            if line is not None:
                self._c_hits.add()
                yield self.HIT_CYCLES
            else:
                self._c_misses.add()
                line = yield from self._refill(address)
            self.ct.touch(line)
            offset = address - line.tag
            if is_write:
                wrapped = int(value) & ((1 << (size * 8)) - 1)
                line.write_bytes(offset, wrapped.to_bytes(size, "little"))
                line.dirty = True
                result = None
            else:
                result = int.from_bytes(line.read_bytes(offset, size), "little")
        finally:
            self._host_inflight -= 1
            self._notify()
        return result

    def _refill(self, address: int) -> Generator:
        """Miss handling: victim selection, write-back, line fill (via DMA).

        Victim selection re-validates after every timing yield: the eCPU's
        allocator may claim the chosen line for compute while the refill
        is in flight (in hardware the two requests arbitrate for the same
        line; retrying models losing that arbitration).
        """
        tag = self.ct.tag_of(address)
        fill_cycles = self.bus.transfer_cycles(self.ct.line_bytes, offchip=True)
        while True:
            victim = self.ct.select_victim()
            if victim is None:
                raise RuntimeError("no evictable cache line (all busy computing)")
            if victim.valid and victim.dirty:
                yield from self._write_back(victim)
                if victim.is_compute:
                    continue  # line stolen by the allocator mid-writeback
            yield fill_cycles
            if not victim.is_compute:
                break
        self.ct.bind(victim, tag)
        victim.data[:] = bytearray(self._memory_read_line(tag))
        # A refilled line belonging to a registered operand region keeps its
        # AT marker so later accesses re-check the table (paper III-A.3).
        entry = self.at.lookup(tag, self.ct.line_bytes)
        if entry is not None:
            victim.role = (
                LineRole.SOURCE if entry.kind is OperandKind.SOURCE else LineRole.DEST
            )
        self._c_refills.add()
        return victim

    def _write_back(self, line: CacheLine) -> Generator:
        cycles = self.bus.transfer_cycles(self.ct.line_bytes, offchip=True)
        yield cycles
        if line.tag is None or not line.dirty:
            return  # the allocator already flushed and claimed this line
        self._memory_write_line(line.tag, line.data.tobytes())
        line.dirty = False
        self._c_writebacks.add()

    def _memory_read_line(self, tag: int) -> bytes:
        if self.memory.contains(tag, self.ct.line_bytes):
            return self.memory.read_block(tag, self.ct.line_bytes)
        # Partially out-of-range lines (edge of memory map) are zero-filled.
        chunk = bytearray(self.ct.line_bytes)
        for i in range(self.ct.line_bytes):
            if self.memory.contains(tag + i):
                chunk[i] = self.memory.read_u8(tag + i)
        return bytes(chunk)

    def _memory_write_line(self, tag: int, payload: bytes) -> None:
        if self.memory.contains(tag, len(payload)):
            self.memory.write_block(tag, payload)
            return
        for i, byte in enumerate(payload):
            if self.memory.contains(tag + i):
                self.memory.write_u8(tag + i, byte)

    # ------------------------------------------------------------------
    # routed (DMA / allocator) access path — functional, cycle cost is
    # charged by the DMA engine that calls these per row.
    # ------------------------------------------------------------------

    def route_read(self, address: int, length: int) -> bytes:
        """Serve a DMA row read: cache on hit, external memory on miss."""
        out = bytearray()
        cursor = address
        remaining = length
        while remaining > 0:
            line = self.ct.lookup(cursor)
            line_end = self.ct.tag_of(cursor) + self.ct.line_bytes
            chunk = min(remaining, line_end - cursor)
            if line is not None:
                out += line.read_bytes(cursor - line.tag, chunk)
            else:
                out += self.memory.read_block(cursor, chunk)
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def route_write(self, address: int, payload: bytes) -> None:
        """Serve a DMA row write with the fetch-on-write policy (III-A.4).

        Destination data is updated *in the cache*: the covering line is
        allocated (and filled from memory first when the write does not
        cover it fully) and marked dirty, so pending host requests for the
        result are served with the latest data.
        """
        cursor = address
        view = memoryview(bytes(payload))
        while view:
            line = self.ct.lookup(cursor)
            tag = self.ct.tag_of(cursor)
            line_end = tag + self.ct.line_bytes
            chunk = min(len(view), line_end - cursor)
            if line is None:
                victim = self.ct.select_victim()
                if victim is None:
                    raise RuntimeError("no evictable cache line for fetch-on-write")
                if victim.valid and victim.dirty:
                    self._memory_write_line(victim.tag, victim.data.tobytes())
                    self._c_writebacks.add()
                self.ct.bind(victim, tag)
                victim.data[:] = bytearray(self._memory_read_line(tag))
                line = victim
                self._c_refills.add()
            line.write_bytes(cursor - line.tag, bytes(view[:chunk]))
            line.dirty = True
            cursor += chunk
            view = view[chunk:]

    def set_role_for_region(self, start: int, end: int, role: LineRole) -> int:
        """Mark valid lines intersecting [start, end) with a compute role.

        The controller updates line statuses when it receives DMA requests
        for operand regions, sparing the C-RT a CT search (paper III-A.4).
        Returns the number of lines marked.
        """
        count = 0
        for line in self.ct.lines:
            if line.valid and line.tag < end and line.tag + self.ct.line_bytes > start:
                if line.role is not LineRole.BUSY_COMPUTE:
                    line.role = role
                    count += 1
        return count

    def clear_roles_for_region(self, start: int, end: int) -> int:
        """Drop compute-role markers after a kernel releases its operands."""
        count = 0
        for line in self.ct.lines:
            if (
                line.valid
                and line.tag < end
                and line.tag + self.ct.line_bytes > start
                and line.role in (LineRole.SOURCE, LineRole.DEST)
            ):
                line.role = LineRole.NONE
                count += 1
        return count

    # ------------------------------------------------------------------
    # debug access (no timing, no hazards) — test setup and inspection
    # ------------------------------------------------------------------

    def peek(self, address: int, length: int) -> bytes:
        return self.route_read(address, length)

    def poke(self, address: int, payload: bytes) -> None:
        """Debug write that keeps cache and memory coherent."""
        cursor = address
        view = memoryview(bytes(payload))
        while view:
            line = self.ct.lookup(cursor)
            tag = self.ct.tag_of(cursor)
            chunk = min(len(view), tag + self.ct.line_bytes - cursor)
            if line is not None:
                line.write_bytes(cursor - line.tag, bytes(view[:chunk]))
                line.dirty = True
            else:
                self.memory.write_block(cursor, bytes(view[:chunk]))
            cursor += chunk
            view = view[chunk:]

    def invalidate_region(self, start: int, end: int, writeback: bool = True) -> int:
        """Drop cached lines intersecting ``[start, end)`` from the tag map.

        With ``writeback`` dirty victims are flushed first; without it the
        cached data is discarded (the heap manager uses this when freeing
        a matrix — its contents are dead, and stale lines must not alias a
        future allocation at the same address).  Compute-claimed lines are
        never touched.  Returns the number of lines invalidated.
        """
        count = 0
        for line in self.ct.lines:
            if not line.valid or line.is_compute or line.tag is None:
                continue
            if line.tag < end and line.tag + self.ct.line_bytes > start:
                if writeback and line.dirty:
                    self._memory_write_line(line.tag, line.data.tobytes())
                self.ct.unbind(line)
                count += 1
        return count

    def flush(self) -> int:
        """Write every dirty line back to memory (functional, for tests)."""
        flushed = 0
        for line in self.ct.lines:
            if line.valid and line.dirty and line.tag is not None:
                self._memory_write_line(line.tag, line.data.tobytes())
                line.dirty = False
                flushed += 1
        return flushed
