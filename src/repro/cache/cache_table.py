"""The Cache Table (CT): line storage, tag lookup and victim selection.

The CT owns the shared LLC data array.  Lines are grouped per VPU: line
``v * vregs_per_vpu + r`` is vector register ``r`` of VPU ``v`` (paper
section III-A.1 — the cache has exactly as many lines as the aggregate
vector register capacity).  The VPU model receives numpy views of its
slice, so kernel results written by the VPU are immediately visible to
cache reads without any copying.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cache.line import CacheLine, LineRole
from repro.cache.lru import ApproxLru
from repro.utils.bitops import align_down


class CacheTable:
    """Fully-associative tag/data store for the ARCANE LLC."""

    def __init__(
        self,
        n_vpus: int,
        vregs_per_vpu: int,
        line_bytes: int,
        lru_counter_bits: int = 8,
    ) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError(f"line_bytes must be a power of two, got {line_bytes}")
        self.n_vpus = n_vpus
        self.vregs_per_vpu = vregs_per_vpu
        self.line_bytes = line_bytes
        self.n_lines = n_vpus * vregs_per_vpu
        self.storage = np.zeros(self.n_lines * line_bytes, dtype=np.uint8)
        self.lines: List[CacheLine] = [
            CacheLine(i, self.storage[i * line_bytes : (i + 1) * line_bytes])
            for i in range(self.n_lines)
        ]
        self.lru = ApproxLru(lru_counter_bits)
        self._tag_map: Dict[int, CacheLine] = {}

    # -- addressing ---------------------------------------------------------

    def tag_of(self, address: int) -> int:
        return align_down(address, self.line_bytes)

    def lookup(self, address: int) -> Optional[CacheLine]:
        """Return the valid line holding ``address``, or None on miss."""
        line = self._tag_map.get(self.tag_of(address))
        if line is not None and line.valid:
            return line
        return None

    def touch(self, line: CacheLine) -> None:
        """Update the replacement state after an access to ``line``."""
        self.lru.touch(line, self.lines)

    # -- line lifecycle ---------------------------------------------------------

    def select_victim(self) -> Optional[CacheLine]:
        """Choose a replacement victim among non-compute lines."""
        candidates = [line for line in self.lines if not line.is_compute]
        return self.lru.select_victim(candidates)

    def bind(self, line: CacheLine, address: int) -> None:
        """Map ``line`` to the line-aligned region containing ``address``."""
        if line.is_compute:
            raise RuntimeError(f"cannot bind compute-busy line {line.index}")
        self.unbind(line)
        previous = self._tag_map.get(self.tag_of(address))
        if previous is not None:
            # Another master cached the same region concurrently; a tag may
            # map to at most one line.
            self.unbind(previous)
        line.tag = self.tag_of(address)
        line.valid = True
        line.dirty = False
        self._tag_map[line.tag] = line

    def unbind(self, line: CacheLine) -> None:
        """Remove ``line`` from the tag map and invalidate it."""
        if line.tag is not None:
            self._tag_map.pop(line.tag, None)
        line.invalidate()

    def claim_for_compute(self, line: CacheLine) -> None:
        """Hand ``line`` over to a VPU (drops any cached mapping)."""
        if line.tag is not None:
            self._tag_map.pop(line.tag, None)
        line.claim_for_compute()

    def release_from_compute(self, line: CacheLine) -> None:
        line.release_from_compute()

    # -- VPU views -----------------------------------------------------------------

    def vpu_lines(self, vpu_index: int) -> List[CacheLine]:
        """The lines forming VPU ``vpu_index``'s vector register file."""
        if not 0 <= vpu_index < self.n_vpus:
            raise IndexError(f"vpu index {vpu_index} out of range")
        start = vpu_index * self.vregs_per_vpu
        return self.lines[start : start + self.vregs_per_vpu]

    def dirty_line_count(self, vpu_index: int) -> int:
        """Dirty lines in one VPU's slice (the scheduler's selection metric)."""
        return sum(1 for line in self.vpu_lines(vpu_index) if line.valid and line.dirty)

    # -- statistics ------------------------------------------------------------------

    def occupancy(self) -> Dict[str, int]:
        """Line counts by state, for tests and reporting."""
        valid = sum(1 for line in self.lines if line.valid)
        dirty = sum(1 for line in self.lines if line.dirty)
        compute = sum(1 for line in self.lines if line.is_compute)
        return {
            "lines": self.n_lines,
            "valid": valid,
            "dirty": dirty,
            "compute": compute,
            "roles": sum(1 for line in self.lines if line.role is not LineRole.NONE),
        }
