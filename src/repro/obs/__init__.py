"""Serving observability: request spans, rolling metrics, trace export.

Host-side only — nothing here is visible to the simulated machine, so an
observed run is bit-identical to an unobserved one.  See
:mod:`repro.obs.spans` for the span model, :mod:`repro.obs.metrics` for
the windowed time-series engine, and :mod:`repro.obs.export` for
Perfetto-loadable Chrome trace JSON plus the terminal timeline renderer.
"""

from repro.obs.export import (
    REQUIRED_EVENT_KEYS,
    chrome_trace,
    render_timeline,
    validate_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    RollingMetrics,
    auto_interval,
    build_timeline,
    timeline_peaks,
)
from repro.obs.spans import (
    CATEGORIES,
    NULL_RECORDER,
    InstantEvent,
    NullRecorder,
    Span,
    SpanRecorder,
)

__all__ = [
    "CATEGORIES",
    "NULL_RECORDER",
    "REQUIRED_EVENT_KEYS",
    "InstantEvent",
    "NullRecorder",
    "RollingMetrics",
    "Span",
    "SpanRecorder",
    "auto_interval",
    "build_timeline",
    "chrome_trace",
    "render_timeline",
    "timeline_peaks",
    "validate_trace",
    "write_chrome_trace",
]
