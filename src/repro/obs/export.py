"""Trace export: Chrome trace-event JSON (Perfetto-loadable) + text timeline.

The span trees recorded by :class:`~repro.obs.spans.SpanRecorder` become
a Chrome trace-event file (the JSON format Perfetto and ``chrome://
tracing`` load natively — see the "Trace Event Format" spec).  Layout:

* one trace **process** per worker (``pid = worker index``) carrying its
  ``dispatch``/``launch`` spans on a single track — worker service is
  serial, so they never overlap — plus instant markers for failed
  attempts and supervisor health transitions (quarantine / probation /
  reinstatement / rebuild);
* one extra "dispatcher" process (``pid = pool size``) carrying the
  ``request``/``attempt``/``queue_wait`` spans, one track (``tid``) per
  request id so concurrent requests stack visually;
* a ``queue_depth`` counter track (``"ph": "C"``) on the dispatcher
  process, sampled from the report's rolling-metrics timeline.

One simulated cycle maps to one trace microsecond (the format's time
unit); absolute magnitudes are meaningless but relative durations are
exact.  Export is pure serialization — same run, same seeds ⇒
byte-identical JSON (keys are emitted in a fixed order and events in a
deterministic sort).

:func:`render_timeline` is the terminal-sized counterpart: a fixed-width
per-window strip chart of queue depth / in-flight / worker busy
fractions for tests and example scripts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

#: Chrome trace-event keys every event must carry (CI smoke contract).
REQUIRED_EVENT_KEYS = ("ph", "ts", "pid")


def _event(
    ph: str,
    name: str,
    ts: int,
    pid: int,
    tid: int,
    cat: str,
    **extra: Any,
) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "ph": ph,
        "name": name,
        "ts": ts,
        "pid": pid,
        "tid": tid,
        "cat": cat,
    }
    event.update(extra)
    return event


def chrome_trace(report) -> Dict[str, Any]:
    """Serialize a ServingReport's spans/instants/timeline to trace JSON.

    Requires the run to have been observed (``report.spans`` not None);
    raises ``ValueError`` otherwise, so a missing ``observe=True`` fails
    loudly instead of exporting an empty file.
    """
    recorder = getattr(report, "spans", None)
    if recorder is None:
        raise ValueError(
            "report has no spans; run serve_online(..., observe=True) "
            "to record a trace"
        )
    pool_size = report.pool_size
    dispatcher_pid = pool_size
    events: List[Dict[str, Any]] = []

    for worker in range(pool_size):
        events.append(
            _event("M", "process_name", 0, worker, 0, "__metadata",
                   args={"name": f"worker {worker}"})
        )
    events.append(
        _event("M", "process_name", 0, dispatcher_pid, 0, "__metadata",
               args={"name": "dispatcher"})
    )

    for span in recorder.spans:
        duration = span.duration_cycles
        if span.category in ("dispatch", "launch"):
            # worker-side: service is serial per worker → one track
            pid = int(span.attrs.get("worker", dispatcher_pid))
            tid = 0
        else:
            # dispatcher-side: one track per request
            pid = dispatcher_pid
            tid = int(span.attrs.get("request", 0))
        if duration == 0:
            # zero-duration span (failed attempt detected at its dispatch
            # instant): an instant marker reads better than a 0-wide slice
            events.append(
                _event("i", span.name, span.start_cycle, pid, tid,
                       span.category, s="t", args=dict(span.attrs))
            )
        else:
            events.append(
                _event("X", span.name, span.start_cycle, pid, tid,
                       span.category, dur=duration, args=dict(span.attrs))
            )

    for instant in recorder.instants:
        pid = int(instant.attrs.get("worker", dispatcher_pid))
        events.append(
            _event("i", instant.name, instant.cycle, pid, 0, "health",
                   s="p", args=dict(instant.attrs))
        )

    for sample in getattr(report, "timeline", None) or []:
        events.append(
            _event("C", "queue", sample["start_cycle"], dispatcher_pid, 0,
                   "metrics",
                   args={"queue_depth": sample.get("queue_depth", 0),
                         "in_flight": sample.get("in_flight", 0)})
        )

    # deterministic order: time, then pid/tid, then phase/name
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["ph"], e["name"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "timebase": "simulated cycles (1 cycle = 1 trace microsecond)",
            "pool_size": pool_size,
        },
    }


def write_chrome_trace(report, path) -> str:
    """Write the trace JSON to ``path``; returns the path written.

    ``sort_keys`` + fixed separators keep same-seed exports
    byte-identical (a test asserts this).
    """
    trace = chrome_trace(report)
    text = json.dumps(trace, sort_keys=True, separators=(",", ":"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return str(path)


def validate_trace(trace: Dict[str, Any]) -> List[str]:
    """Check a trace object against the Chrome trace-event shape.

    Returns a list of problems (empty = valid).  Used by the CI smoke
    test, so it validates structure, not semantics: a ``traceEvents``
    list whose entries all carry :data:`REQUIRED_EVENT_KEYS`.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        problems.append("'traceEvents' is empty")
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {position} is not an object")
            continue
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                problems.append(f"event {position} missing required key {key!r}")
        if "ts" in event and not isinstance(event["ts"], int):
            problems.append(f"event {position} has non-integer ts")
    return problems


# -- plain-text timeline ------------------------------------------------------

_BLOCKS = " .:-=+*#%@"


def _strip(values: Sequence[float], peak: float) -> str:
    """Render values in [0, peak] as a character strip."""
    if peak <= 0:
        return " " * len(values)
    out = []
    for value in values:
        level = min(1.0, max(0.0, value / peak))
        out.append(_BLOCKS[round(level * (len(_BLOCKS) - 1))])
    return "".join(out)


def render_timeline(report, width: int = 64) -> str:
    """Fixed-width strip chart of a serving run's rolling metrics.

    One row per metric, one character per (resampled) window — enough to
    spot a shed storm or an idle worker from a terminal::

        cycles 0..786432 (16384/window, 48 windows)
        queue_depth  peak 7 |  .:-=++**##%%@@%#+=-:.  |
        in_flight    peak 2 | :==========+==========: |
        worker 0 busy       | ######################  |
    """
    timeline = getattr(report, "timeline", None)
    if not timeline:
        return "(no timeline: run serve_online(..., observe=True))"
    # resample to at most `width` columns by taking the max over spans
    n = len(timeline)
    columns = min(width, n)
    grouped: List[List[Dict]] = [[] for _ in range(columns)]
    for position, sample in enumerate(timeline):
        grouped[position * columns // n].append(sample)

    def column_max(name: str) -> List[float]:
        return [max((s.get(name, 0) for s in group), default=0)
                for group in grouped]

    interval = timeline[0]["end_cycle"] - timeline[0]["start_cycle"]
    end = timeline[-1]["end_cycle"]
    lines = [f"cycles 0..{end} ({interval}/window, {n} windows)"]
    for name in ("queue_depth", "in_flight", "arrivals", "completions",
                 "sheds", "failed_attempts"):
        values = column_max(name)
        peak = max(values, default=0)
        if peak == 0 and name not in ("queue_depth", "in_flight"):
            continue  # nothing happened; skip the empty strip
        lines.append(
            f"{name:<16} peak {int(peak):>4} |{_strip(values, peak)}|"
        )
    workers = sorted(
        (timeline[0].get("worker_busy") or {}).keys(), key=int
    )
    for worker in workers:
        values = [
            max((s.get("worker_busy", {}).get(worker, 0.0) for s in group),
                default=0.0)
            for group in grouped
        ]
        label = f"worker {worker} busy"
        lines.append(f"{label:<16} peak {max(values, default=0.0):>4.0%} "
                     f"|{_strip(values, 1.0)}|")
    return "\n".join(lines)
