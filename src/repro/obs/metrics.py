"""Rolling fleet metrics: a windowed time-series engine over simulated cycles.

End-of-run aggregates answer "how bad was it?"; this module answers
"*when* was it bad?".  :class:`RollingMetrics` buckets observations into
fixed-width cycle windows and supports the four shapes serving telemetry
needs:

* **rates** (:meth:`count`) — events per window (arrivals, completions,
  sheds, retries, replay hits/misses);
* **gauges** (:meth:`level`) — a running level sampled at each window
  edge from +/- delta events (queue depth, in-flight count);
* **busy fractions** (:meth:`busy`) — per-key interval overlap with each
  window (per-worker busy fraction);
* **percentiles-over-window** (:meth:`point`) — per-window
  :class:`~repro.sim.stats.Histogram` distributions reporting
  p50/p99/max without storing samples (latency within a window).

:func:`build_timeline` derives one sample list for a whole online
serving run from the dispatcher's event log and the per-request results
— post-hoc, so the serving hot loop is untouched and the instrumented
run stays bit-identical to an un-instrumented one.  The sample schema is
documented on :func:`build_timeline` and in the README; samples land in
``ServingReport.timeline`` / ``BENCH_serving.json`` so dashboards can
plot behavior over simulated time instead of one scalar per run.

Everything is deterministic: windows are pure functions of the event
cycles, and the auto-chosen interval depends only on the makespan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.stats import Histogram

#: Auto-interval target: about this many windows per run.
TARGET_WINDOWS = 48


def auto_interval(makespan_cycles: int, target_windows: int = TARGET_WINDOWS) -> int:
    """Pick a power-of-two window width giving ~``target_windows`` windows."""
    if target_windows < 1:
        raise ValueError("target_windows must be >= 1")
    if makespan_cycles <= 0:
        return 1024
    raw = max(1, makespan_cycles // target_windows)
    return 1 << (raw - 1).bit_length()


class RollingMetrics:
    """Accumulates observations into fixed-width simulated-cycle windows."""

    def __init__(self, interval_cycles: int) -> None:
        if interval_cycles < 1:
            raise ValueError("interval_cycles must be >= 1")
        self.interval = int(interval_cycles)
        #: rate metrics: name -> {window_index: count}
        self._counts: Dict[str, Dict[int, int]] = {}
        #: gauge metrics: name -> [(cycle, delta)]
        self._levels: Dict[str, List[Tuple[int, int]]] = {}
        #: busy metrics: name -> key -> [(start, end)]
        self._spans: Dict[str, Dict[str, List[Tuple[int, int]]]] = {}
        #: distribution metrics: name -> {window_index: Histogram}
        self._points: Dict[str, Dict[int, Histogram]] = {}
        self._max_cycle = 0

    def _window(self, cycle: int) -> int:
        if cycle < 0:
            raise ValueError(f"cycle must be >= 0, got {cycle}")
        if cycle > self._max_cycle:
            self._max_cycle = cycle
        return cycle // self.interval

    # -- observation ---------------------------------------------------------

    def count(self, cycle: int, name: str, amount: int = 1) -> None:
        """Count ``amount`` events of ``name`` at ``cycle`` (a rate)."""
        window = self._window(cycle)
        per_window = self._counts.setdefault(name, {})
        per_window[window] = per_window.get(window, 0) + amount

    def level(self, cycle: int, name: str, delta: int) -> None:
        """Shift the running level of gauge ``name`` by ``delta`` at ``cycle``."""
        self._window(cycle)  # track extent
        self._levels.setdefault(name, []).append((int(cycle), int(delta)))

    def busy(self, name: str, key: str, start: int, end: int) -> None:
        """Mark ``key`` (e.g. a worker) busy over ``[start, end)`` cycles."""
        if end < start:
            raise ValueError(f"busy interval ends ({end}) before it starts ({start})")
        self._window(max(start, end))
        self._spans.setdefault(name, {}).setdefault(str(key), []).append(
            (int(start), int(end))
        )

    def point(self, cycle: int, name: str, value: int) -> None:
        """Record one sample of distribution ``name`` at ``cycle``."""
        window = self._window(cycle)
        per_window = self._points.setdefault(name, {})
        histogram = per_window.get(window)
        if histogram is None:
            histogram = per_window[window] = Histogram(f"{name}[{window}]")
        histogram.record(int(value))

    # -- materialization -----------------------------------------------------

    @property
    def n_windows(self) -> int:
        return self._max_cycle // self.interval + 1

    def samples(self) -> List[Dict]:
        """Materialize one JSON-clean sample dict per window.

        Every registered metric appears in every window (0 / last level /
        0.0 busy / empty distribution), so consumers can plot columns
        without null-handling.
        """
        n = self.n_windows
        interval = self.interval
        rows: List[Dict] = [
            {
                "window": w,
                "start_cycle": w * interval,
                "end_cycle": (w + 1) * interval,
            }
            for w in range(n)
        ]
        for name, per_window in sorted(self._counts.items()):
            for w, row in enumerate(rows):
                row[name] = per_window.get(w, 0)
        for name, deltas in sorted(self._levels.items()):
            ordered = sorted(deltas)
            value = 0
            position = 0
            for w, row in enumerate(rows):
                edge = (w + 1) * interval
                while position < len(ordered) and ordered[position][0] < edge:
                    value += ordered[position][1]
                    position += 1
                row[name] = value
        for name, per_key in sorted(self._spans.items()):
            for key, intervals in sorted(per_key.items()):
                for w, row in enumerate(rows):
                    lo, hi = w * interval, (w + 1) * interval
                    overlap = sum(
                        max(0, min(end, hi) - max(start, lo))
                        for start, end in intervals
                    )
                    row.setdefault(name, {})[key] = round(overlap / interval, 4)
        for name, per_window in sorted(self._points.items()):
            for w, row in enumerate(rows):
                histogram = per_window.get(w)
                if histogram is None or histogram.count == 0:
                    row[name] = {"n": 0, "p50": 0.0, "p99": 0.0, "max": 0}
                else:
                    row[name] = {
                        "n": histogram.count,
                        "p50": round(histogram.percentile(50), 1),
                        "p99": round(histogram.percentile(99), 1),
                        "max": histogram.maximum,
                    }
        return rows


def build_timeline(
    results: Sequence,  # Sequence[RequestResult]
    events: Sequence,  # Sequence[OnlineEvent]
    pool_size: int,
    interval_cycles: Optional[int] = None,
) -> List[Dict]:
    """Fold an online serving run into a list of window samples.

    Per window the sample carries (beyond ``window``/``start_cycle``/
    ``end_cycle``):

    * rates — ``arrivals``, ``completions``, ``sheds``, ``failed_attempts``,
      ``retries``, ``replay_hits``, ``replay_misses``, ``replay_bypassed``;
    * gauges at window end — ``queue_depth`` (admitted, not yet started;
      retries waiting for backoff count as queued), ``in_flight``
      (started, not yet completed);
    * ``worker_busy`` — per-worker busy fraction of the window;
    * ``latency`` — ``{n, p50, p99, max}`` over the end-to-end latencies
      of requests *completing* in the window (log2-bucketed estimate).

    Built from the dispatcher's chronological event log plus per-request
    timelines, entirely post-hoc — the serving loop never sees it.
    """
    last_cycle = 0
    for event in events:
        if event.cycle > last_cycle:
            last_cycle = event.cycle
    for result in results:
        if result.completion_cycle is not None:
            last_cycle = max(last_cycle, result.completion_cycle)
    interval = interval_cycles or auto_interval(last_cycle)
    metrics = RollingMetrics(interval)

    # seed every gauge/rate so empty runs still materialize the schema
    for name in (
        "arrivals", "completions", "sheds", "failed_attempts", "retries",
        "replay_hits", "replay_misses", "replay_bypassed",
    ):
        metrics._counts.setdefault(name, {})
    metrics._levels.setdefault("queue_depth", [])
    metrics._levels.setdefault("in_flight", [])
    for worker in range(pool_size):
        metrics._spans.setdefault("worker_busy", {}).setdefault(str(worker), [])
    metrics._points.setdefault("latency", {})

    last_fail: Dict[int, int] = {}
    for event in events:
        kind = event.kind
        if kind == "arrival":
            metrics.count(event.cycle, "arrivals")
            metrics.level(event.cycle, "queue_depth", +1)
        elif kind == "shed":
            metrics.count(event.cycle, "sheds")
            metrics.level(event.cycle, "queue_depth", -1)
        elif kind == "fail":
            metrics.count(event.cycle, "failed_attempts")
            last_fail[event.request_id] = event.cycle
        elif kind == "retry":
            metrics.count(event.cycle, "retries")

    for result in results:
        if result.completed:
            metrics.level(result.start_cycle, "queue_depth", -1)
            metrics.level(result.start_cycle, "in_flight", +1)
            metrics.level(result.completion_cycle, "in_flight", -1)
            metrics.count(result.completion_cycle, "completions")
            metrics.point(result.completion_cycle, "latency", result.latency_cycles)
            metrics.busy(
                "worker_busy", str(result.worker),
                result.start_cycle, result.completion_cycle,
            )
        elif result.status == "failed":
            # exhausted/non-retryable: leaves the queue at its last failure
            cycle = last_fail.get(result.request_id, result.arrival_cycle or 0)
            metrics.level(cycle, "queue_depth", -1)
        for launch in getattr(result, "launches", ()):
            start = launch.get("start_cycle")
            if start is None:
                continue
            outcome = launch.get("replay", "off")
            if outcome == "hit":
                metrics.count(start, "replay_hits")
            elif outcome == "miss":
                metrics.count(start, "replay_misses")
            elif outcome == "bypassed":
                metrics.count(start, "replay_bypassed")

    return metrics.samples()


def timeline_peaks(timeline: Sequence[Dict]) -> Dict[str, int]:
    """Headline extrema of a timeline (for ``ServingReport.summary()``)."""
    peaks = {"queue_depth": 0, "in_flight": 0}
    for sample in timeline:
        for name in peaks:
            value = sample.get(name, 0)
            if value > peaks[name]:
                peaks[name] = value
    return peaks
