"""Request spans: hierarchical observability in the simulated-cycle timebase.

A serving run that misbehaves — a p99 spike, a shed storm, a streak of
replay-cache misses — cannot be explained by end-of-run aggregates.  This
module records *why* as a span tree per request, in the same simulated
cycle domain the dispatcher runs in::

    request 7                      [arrival .......... completion]
      attempt 1  (failed, kill)    [ready]
      attempt 2  (retry, failover) [ready ............ completion]
        queue_wait                 [ready ... start]
        dispatch  (worker 1)       [start ........... completion]
          launch gemm (replay=hit) [start .. start+cycles]

Spans are pure host-side bookkeeping: nothing in the simulated machine
observes them, so an instrumented run is bit-identical (outputs, cycle
counts, stats) to an un-instrumented one.  The disabled path is a
:class:`NullRecorder` whose methods are no-ops — the dispatcher guards
its span blocks on ``recorder.enabled``, mirroring the
:class:`~repro.sim.trace.Tracer` disabled idiom, so observability off
costs one attribute check per request.

Span categories (:data:`CATEGORIES`):

* ``request`` — arrival to terminal outcome (ok/timed_out/failed/shed);
* ``attempt`` — one dispatch try; failed attempts are zero-duration at
  their dispatch instant (injected faults fire before execution) and
  carry ``fault_class``/``injected``; retry attempts carry
  ``cause="retry"`` and ``failover=True`` when routed away from the
  worker that just failed;
* ``queue_wait`` — admission-ready to service start;
* ``dispatch`` — service on the chosen worker (``worker`` attribute);
* ``launch`` — one kernel launch inside the service window, tagged with
  its replay-cache outcome (``replay`` = ``hit``/``miss``/``bypassed``/
  ``off``).

Instant events (worker quarantine/probation/reinstatement/rebuild) ride
alongside on :attr:`SpanRecorder.instants`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Span categories in parent-before-child order.
CATEGORIES = ("request", "attempt", "queue_wait", "dispatch", "launch")


@dataclass
class Span:
    """One node of a request's span tree (cycles are simulated cycles)."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_cycle: int
    end_cycle: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_cycles(self) -> int:
        """Span duration; 0 while open (and for instant-like spans)."""
        if self.end_cycle is None:
            return 0
        return self.end_cycle - self.start_cycle

    def as_dict(self) -> Dict[str, Any]:
        """JSON-clean rendering (attrs carry only scalars by contract)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True)
class InstantEvent:
    """A point-in-time observability event (e.g. a worker quarantine)."""

    cycle: int
    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Shared default for all observability hooks, so instrumented code can
    call ``recorder.instant(...)`` unconditionally where it is cold, and
    guard on :attr:`enabled` only in per-request hot paths.
    """

    enabled = False

    def begin(
        self,
        name: str,
        category: str,
        cycle: int,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        return 0

    def end(self, span_id: int, cycle: int, **attrs: Any) -> None:
        pass

    def annotate(self, span_id: int, **attrs: Any) -> None:
        pass

    def instant(self, name: str, cycle: int, **attrs: Any) -> None:
        pass


#: module-level singleton: the one NullRecorder everything defaults to
NULL_RECORDER = NullRecorder()


class SpanRecorder(NullRecorder):
    """Collects spans and instant events for one serving run."""

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.instants: List[InstantEvent] = []
        self._open = 0

    def begin(
        self,
        name: str,
        category: str,
        cycle: int,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        """Open a span; returns its id (stable: index into :attr:`spans`)."""
        if category not in CATEGORIES:
            raise ValueError(
                f"unknown span category {category!r}; expected one of {CATEGORIES}"
            )
        span = Span(
            span_id=len(self.spans),
            parent_id=parent,
            name=name,
            category=category,
            start_cycle=int(cycle),
            attrs={k: v for k, v in attrs.items() if v is not None},
        )
        self.spans.append(span)
        self._open += 1
        return span.span_id

    def end(self, span_id: int, cycle: int, **attrs: Any) -> None:
        span = self.spans[span_id]
        if span.end_cycle is not None:
            raise ValueError(f"span {span_id} ({span.name!r}) ended twice")
        if cycle < span.start_cycle:
            raise ValueError(
                f"span {span_id} ({span.name!r}) ends at cycle {cycle} before "
                f"its start {span.start_cycle}"
            )
        span.end_cycle = int(cycle)
        for key, value in attrs.items():
            if value is not None:
                span.attrs[key] = value
        self._open -= 1

    def annotate(self, span_id: int, **attrs: Any) -> None:
        span = self.spans[span_id]
        for key, value in attrs.items():
            if value is not None:
                span.attrs[key] = value

    def instant(self, name: str, cycle: int, **attrs: Any) -> None:
        self.instants.append(
            InstantEvent(int(cycle), name, {k: v for k, v in attrs.items()
                                            if v is not None})
        )

    # -- queries (tests and the text renderer) -----------------------------

    @property
    def open_spans(self) -> int:
        """Spans begun but not yet ended (0 after a clean run)."""
        return self._open

    def children(self, span_id: Optional[int]) -> List[Span]:
        """Direct children of ``span_id`` in creation order."""
        return [s for s in self.spans if s.parent_id == span_id]

    def roots(self) -> List[Span]:
        return self.children(None)

    def tree(self, span_id: int) -> List[Span]:
        """The subtree rooted at ``span_id`` in depth-first order."""
        root = self.spans[span_id]
        out = [root]
        for child in self.children(span_id):
            out.extend(self.tree(child.span_id))
        return out

    def find(
        self, category: Optional[str] = None, **attrs: Any
    ) -> List[Span]:
        """Spans matching a category and/or exact attribute values."""
        selected = self.spans
        if category is not None:
            selected = [s for s in selected if s.category == category]
        for key, value in attrs.items():
            selected = [s for s in selected if s.attrs.get(key) == value]
        return selected
