"""Low-level utilities shared by the whole reproduction.

This package contains the bit-manipulation helpers used by the ISA
encoders/decoders (:mod:`repro.utils.bitops`) and fixed-width integer
arithmetic matching RV32 semantics (:mod:`repro.utils.fixedint`).
"""

from repro.utils.bitops import (
    bit,
    bits,
    mask,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.utils.fixedint import (
    sat,
    wrap,
    wrap8,
    wrap16,
    wrap32,
)

__all__ = [
    "bit",
    "bits",
    "mask",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "sat",
    "wrap",
    "wrap8",
    "wrap16",
    "wrap32",
]
