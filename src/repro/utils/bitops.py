"""Bit-field manipulation helpers.

All RISC-V instruction encoding and decoding in :mod:`repro.isa` is built
on these primitives.  Conventions follow the RISC-V specification: bit 0 is
the least-significant bit and ranges are inclusive on both ends, so
``bits(word, 14, 12)`` extracts ``funct3``.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits.

    >>> hex(mask(12))
    '0xfff'
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value: int, pos: int) -> int:
    """Extract the single bit at ``pos`` (0 or 1)."""
    return (value >> pos) & 1


def bits(value: int, hi: int, lo: int) -> int:
    """Extract the inclusive bit range ``[hi:lo]`` of ``value``.

    >>> bits(0xdeadbeef, 31, 28)
    13
    """
    if hi < lo:
        raise ValueError(f"bit range [{hi}:{lo}] is inverted")
    return (value >> lo) & mask(hi - lo + 1)


def set_bits(value: int, hi: int, lo: int, field: int) -> int:
    """Return ``value`` with the inclusive bit range ``[hi:lo]`` replaced.

    ``field`` must fit in the range width; excess bits raise ``ValueError``
    rather than silently corrupting neighbouring fields.
    """
    if hi < lo:
        raise ValueError(f"bit range [{hi}:{lo}] is inverted")
    width = hi - lo + 1
    if field & ~mask(width):
        raise ValueError(f"field {field:#x} does not fit in {width} bits")
    cleared = value & ~(mask(width) << lo)
    return cleared | (field << lo)


def sign_extend(value: int, width: int) -> int:
    """Sign-extend the ``width``-bit ``value`` to a Python int.

    >>> sign_extend(0xfff, 12)
    -1
    >>> sign_extend(0x7ff, 12)
    2047
    """
    value &= mask(width)
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def to_signed(value: int, width: int = 32) -> int:
    """Reinterpret an unsigned ``width``-bit value as two's-complement."""
    return sign_extend(value, width)


def to_unsigned(value: int, width: int = 32) -> int:
    """Reinterpret a (possibly negative) int as an unsigned ``width``-bit value."""
    return value & mask(width)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if alignment & (alignment - 1):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    if alignment & (alignment - 1):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return (value + alignment - 1) & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    """True when ``value`` is a multiple of ``alignment`` (a power of two)."""
    return align_down(value, alignment) == value
