"""Fixed-width integer arithmetic with RV32 wrap-around semantics.

The ISS (:mod:`repro.cpu`) and the VPU datapath (:mod:`repro.vpu`) both
need arithmetic that wraps modulo 2^N like hardware registers do, plus the
saturating helpers used by packed-SIMD averaging/clipping instructions.
"""

from __future__ import annotations

_WIDTH_MASKS = {8: 0xFF, 16: 0xFFFF, 32: 0xFFFFFFFF, 64: 0xFFFFFFFFFFFFFFFF}


def wrap(value: int, width: int) -> int:
    """Wrap ``value`` to an unsigned ``width``-bit integer (two's complement)."""
    try:
        return value & _WIDTH_MASKS[width]
    except KeyError:
        return value & ((1 << width) - 1)


def wrap8(value: int) -> int:
    """Wrap to unsigned 8 bits."""
    return value & 0xFF


def wrap16(value: int) -> int:
    """Wrap to unsigned 16 bits."""
    return value & 0xFFFF


def wrap32(value: int) -> int:
    """Wrap to unsigned 32 bits."""
    return value & 0xFFFFFFFF


def sat(value: int, width: int, signed: bool = True) -> int:
    """Saturate ``value`` to the representable range of ``width`` bits.

    Unlike :func:`wrap`, the result is returned as a *signed* Python int
    when ``signed`` is true (this is what SIMD clip instructions produce).
    """
    if signed:
        lo = -(1 << (width - 1))
        hi = (1 << (width - 1)) - 1
    else:
        lo = 0
        hi = (1 << width) - 1
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


def mulh_signed(a: int, b: int) -> int:
    """Upper 32 bits of a signed 32x32 -> 64 multiply (RV32M ``mulh``)."""
    from repro.utils.bitops import to_signed

    product = to_signed(a, 32) * to_signed(b, 32)
    return wrap32(product >> 32)


def mulh_unsigned(a: int, b: int) -> int:
    """Upper 32 bits of an unsigned 32x32 -> 64 multiply (``mulhu``)."""
    product = wrap32(a) * wrap32(b)
    return wrap32(product >> 32)


def mulh_signed_unsigned(a: int, b: int) -> int:
    """Upper 32 bits of signed×unsigned multiply (``mulhsu``)."""
    from repro.utils.bitops import to_signed

    product = to_signed(a, 32) * wrap32(b)
    return wrap32(product >> 32)


def div_signed(a: int, b: int) -> int:
    """RV32M ``div``: round toward zero; x/0 = -1; overflow wraps."""
    from repro.utils.bitops import to_signed

    sa, sb = to_signed(a, 32), to_signed(b, 32)
    if sb == 0:
        return 0xFFFFFFFF
    if sa == -(1 << 31) and sb == -1:  # signed overflow case from the spec
        return wrap32(sa)
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return wrap32(quotient)


def rem_signed(a: int, b: int) -> int:
    """RV32M ``rem``: sign of dividend; x%0 = x; overflow gives 0."""
    from repro.utils.bitops import to_signed

    sa, sb = to_signed(a, 32), to_signed(b, 32)
    if sb == 0:
        return wrap32(sa)
    if sa == -(1 << 31) and sb == -1:
        return 0
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return wrap32(remainder)


def div_unsigned(a: int, b: int) -> int:
    """RV32M ``divu``: x/0 = 2^32-1."""
    a, b = wrap32(a), wrap32(b)
    if b == 0:
        return 0xFFFFFFFF
    return a // b


def rem_unsigned(a: int, b: int) -> int:
    """RV32M ``remu``: x%0 = x."""
    a, b = wrap32(a), wrap32(b)
    if b == 0:
        return a
    return a % b
