"""ARCANE system configuration (paper section V-A).

The synthesized configurations share: 4 VPUs x 32 KiB (128 KiB data LLC),
1 KiB vector length == cache line size, a CV32E40X eCPU with 16 KiB eMEM,
128 KiB instruction memory, 250 MHz target clock — and differ in the
number of 32-bit lanes per VPU (2 / 4 / 8).

All timing-model constants live here so that every calibrated number is
visible (and sweepable) in one place; their provenance is documented in
:mod:`repro.eval.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ArcaneConfig:
    """Full parameterisation of one ARCANE instance."""

    # -- structural (paper V-A) ---------------------------------------------
    n_vpus: int = 4
    lanes: int = 4
    line_bytes: int = 1024  # vector length == cache line size (1 KiB)
    vpu_kib: int = 32  # per-VPU share of the data LLC
    emem_kib: int = 16
    imem_kib: int = 128
    clock_mhz: float = 250.0

    # -- C-RT sizing (paper IV-B: static allocation) ---------------------------
    n_matrix_registers: int = 8
    kernel_queue_capacity: int = 8
    address_table_entries: int = 16

    # -- memory system timing ------------------------------------------------
    bus_width_bytes: int = 4
    bus_request_latency: int = 1
    offchip_latency: int = 80  # external flash/PSRAM access penalty per burst

    # -- eCPU/VPU interaction timing ---------------------------------------------
    issue_cycles: int = 24  # eCPU software loop per dispatched vector instr
    lock_overhead_cycles: int = 8  # lock register write + handshake

    # -- behaviour switches (ablations) --------------------------------------------
    multi_vpu: bool = False  # shard kernels across all VPUs (section V-C)
    vpu_policy: str = "fewest_dirty"  # or "round_robin" / "first_free"
    main_memory_kib: int = 8192
    #: kernel replay cache (bit-exact fast path for repeated launches);
    #: ``ARCANE_NO_FASTPATH=1`` in the environment overrides this to off
    fastpath: bool = True

    def __post_init__(self) -> None:
        if self.n_vpus < 1:
            raise ValueError("need at least one VPU")
        if self.lanes < 1:
            raise ValueError("need at least one lane")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        if self.vpu_kib * 1024 % self.line_bytes:
            raise ValueError("VPU capacity must be a whole number of lines")

    @property
    def vregs_per_vpu(self) -> int:
        return self.vpu_kib * 1024 // self.line_bytes

    @property
    def cache_lines(self) -> int:
        """Total LLC lines == aggregate vector register capacity (III-A.1)."""
        return self.n_vpus * self.vregs_per_vpu

    @property
    def llc_kib(self) -> int:
        return self.n_vpus * self.vpu_kib

    def with_lanes(self, lanes: int) -> "ArcaneConfig":
        return replace(self, lanes=lanes)

    def with_multi_vpu(self, multi_vpu: bool = True) -> "ArcaneConfig":
        return replace(self, multi_vpu=multi_vpu)

    def with_fastpath(self, fastpath: bool = True) -> "ArcaneConfig":
        return replace(self, fastpath=fastpath)

    def describe(self) -> str:
        return (
            f"ARCANE {self.n_vpus} VPUs x {self.lanes} lanes, "
            f"{self.llc_kib} KiB LLC ({self.line_bytes} B lines), "
            f"{self.emem_kib} KiB eMEM @ {self.clock_mhz:.0f} MHz"
        )


#: The three synthesized configurations of paper Table II.
PRESET_2_LANES = ArcaneConfig(lanes=2)
PRESET_4_LANES = ArcaneConfig(lanes=4)
PRESET_8_LANES = ArcaneConfig(lanes=8)
