"""The X-HEEP + ARCANE system model and the host program builder.

:class:`ArcaneSystem` owns one simulation universe: main memory, the
ARCANE LLC (cache + VPUs + C-RT + bridge) and a host-CPU agent.  The host
agent is transaction-level: it issues xmnmc offloads and loads/stores
through the LLC with the same ordering and stalling a CV32E40X would see
over the CV-X-IF and the system bus (the instruction-accurate host ISS is
used for the *baselines*, where instruction-level effects are the whole
point; on the ARCANE side host work between offloads is negligible and
transaction-level modelling is standard practice).

:class:`HostProgram` is the Listing-1 builder::

    with system.program() as prog:
        prog.xmr(0, a)
        prog.xmr(1, f)
        prog.xmr(2, out)
        prog.conv_layer(dest=2, src=0, flt=1)

On exit the queued operations run as a simulation process, the C-RT
drains, and :attr:`ArcaneSystem.last_report` collects cycles, phase
breakdowns and cache statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.core.api import Matrix, element_type_for
from repro.core.config import ArcaneConfig
from repro.core.llc import ArcaneLlc
from repro.isa.xmnmc import FUNC5_XMR, OffloadRequest, pack_pair
from repro.mem.memory import MainMemory
from repro.runtime.phases import PhaseBreakdown
from repro.sim.kernel import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer
from repro.utils.bitops import align_up
from repro.xbridge.bridge import OffloadOutcome


@dataclass
class RunReport:
    """What one host program execution measured."""

    total_cycles: int
    host_cycles: int
    breakdown: PhaseBreakdown
    per_kernel: Dict[int, PhaseBreakdown]
    outcomes: List[OffloadOutcome]
    stats: Dict[str, int]
    load_values: List[int] = field(default_factory=list)
    #: kernel replay-cache activity during this run (hits / misses /
    #: recorded / bypassed / invalidated); empty when the fast path is
    #: off.  Kept out of :attr:`stats` on purpose — the simulated-world
    #: counters must be bit-exact between fast and slow paths, while this
    #: block describes the host-side machinery.
    replay: Dict[str, int] = field(default_factory=dict)

    @property
    def offload_count(self) -> int:
        return len(self.outcomes)


class HostProgram:
    """Deferred host instruction stream (built, then executed on exit)."""

    def __init__(self, system: "ArcaneSystem") -> None:
        self.system = system
        self._ops: List[Tuple[str, tuple]] = []
        self._instr_id = 0

    # -- xmnmc intrinsics ----------------------------------------------------

    def _next_id(self) -> int:
        self._instr_id += 1
        return self._instr_id

    def xmr(self, md: int, matrix: Matrix) -> "HostProgram":
        """``_xmr_[w|h|b](mN, A, stride, rows, cols)`` of Listing 1."""
        request = OffloadRequest(
            func5=FUNC5_XMR,
            size_suffix=matrix.etype.suffix,
            rs1_value=matrix.address & 0xFFFFFFFF,
            rs2_value=pack_pair(matrix.cols, md),  # stride (elements), md
            rs3_value=pack_pair(matrix.cols, matrix.rows),
            instr_id=self._next_id(),
        )
        self._ops.append(("offload", (request,)))
        return self

    def xmk(
        self, func5: int, suffix: str, rs1: int = 0, rs2: int = 0, rs3: int = 0
    ) -> "HostProgram":
        """Raw kernel instruction with pre-packed operand registers."""
        request = OffloadRequest(
            func5=func5, size_suffix=suffix,
            rs1_value=rs1 & 0xFFFFFFFF, rs2_value=rs2 & 0xFFFFFFFF,
            rs3_value=rs3 & 0xFFFFFFFF, instr_id=self._next_id(),
        )
        self._ops.append(("offload", (request,)))
        return self

    def gemm(
        self, dest: int, a: int, b: int, c: int,
        alpha: int = 1, beta: int = 0, suffix: str = "w",
    ) -> "HostProgram":
        return self.xmk(
            0, suffix,
            rs1=pack_pair(alpha & 0xFFFF, beta & 0xFFFF),
            rs2=pack_pair(c, dest),
            rs3=pack_pair(a, b),
        )

    def leaky_relu(self, dest: int, src: int, alpha: int = 3, suffix: str = "w") -> "HostProgram":
        return self.xmk(1, suffix, rs1=pack_pair(alpha, 0), rs2=pack_pair(0, dest),
                        rs3=pack_pair(src, 0))

    def maxpool(
        self, dest: int, src: int, window: int = 2, stride: int = 2, suffix: str = "w"
    ) -> "HostProgram":
        return self.xmk(2, suffix, rs1=pack_pair(stride, window), rs2=pack_pair(0, dest),
                        rs3=pack_pair(src, 0))

    def conv2d(self, dest: int, src: int, flt: int, suffix: str = "w") -> "HostProgram":
        return self.xmk(3, suffix, rs2=pack_pair(0, dest), rs3=pack_pair(src, flt))

    def conv_layer(self, dest: int, src: int, flt: int, suffix: str = "w") -> "HostProgram":
        """``_conv_layer_[w|h|b](mR, mA, mF)`` of Listing 1 (xmk4)."""
        return self.xmk(4, suffix, rs2=pack_pair(0, dest), rs3=pack_pair(src, flt))

    # -- plain host memory traffic (exercises the cache + hazard paths) -------

    def load(self, matrix: Matrix, row: int, col: int) -> "HostProgram":
        """Host load of one element; stalls on RAW if the kernel still owns it."""
        self._ops.append(("load", (matrix.element_address(row, col), matrix.itemsize)))
        return self

    def store(self, matrix: Matrix, row: int, col: int, value: int) -> "HostProgram":
        self._ops.append(
            ("store", (matrix.element_address(row, col), int(value), matrix.itemsize))
        )
        return self

    def delay(self, cycles: int) -> "HostProgram":
        self._ops.append(("delay", (int(cycles),)))
        return self

    # -- execution -----------------------------------------------------------------

    def _host_process(self, report_sink: dict) -> Generator:
        llc = self.system.llc
        outcomes: List[OffloadOutcome] = []
        loads: List[int] = []
        for op, args in self._ops:
            if op == "offload":
                outcome = yield from llc.bridge.offload(args[0])
                outcomes.append(outcome)
            elif op == "load":
                value = yield from llc.controller.host_read(args[0], args[1])
                # matrices are signed integers: present the load like lb/lh/lw
                from repro.utils.bitops import sign_extend

                loads.append(sign_extend(value, args[1] * 8))
            elif op == "store":
                yield from llc.controller.host_write(args[0], args[1], args[2])
            elif op == "delay":
                yield args[0]
            else:  # pragma: no cover - builder is closed
                raise RuntimeError(f"unknown host op {op}")
        report_sink["host_done"] = self.system.sim.now
        report_sink["outcomes"] = outcomes
        report_sink["loads"] = loads

    def run(self) -> RunReport:
        return self.system._execute_program(self)

    def __enter__(self) -> "HostProgram":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.run()
        return False


class ArcaneSystem:
    """One simulated X-HEEP MCU with its data LLC replaced by ARCANE."""

    #: Matrices are placed from this offset, line-aligned.
    HEAP_BASE = 0x0001_0000

    def __init__(
        self,
        config: Optional[ArcaneConfig] = None,
        trace: bool = False,
        fastpath: Optional[bool] = None,
    ) -> None:
        """Build one system.

        ``fastpath`` overrides ``config.fastpath`` when given (debugging
        convenience — ``ArcaneSystem(fastpath=False)`` forces every kernel
        launch down the slow interpreted path; ``ARCANE_NO_FASTPATH=1``
        does the same globally).  Tracing also disables the fast path: a
        replayed kernel would not emit per-operation trace events.
        """
        self.config = config or ArcaneConfig()
        if fastpath is not None:
            self.config = self.config.with_fastpath(fastpath)
        self.sim = Simulator()
        self.stats = StatsRegistry()
        self.tracer = Tracer(enabled=trace)
        self.memory = MainMemory(self.config.main_memory_kib * 1024, base=0)
        self.llc = ArcaneLlc(self.sim, self.config, self.memory, self.stats, self.tracer)
        self.llc.start()
        self._heap = align_up(self.HEAP_BASE, self.config.line_bytes)
        self._matrix_count = 0
        self._alloc_seq = 0
        #: live allocations: line-aligned base -> (reserved bytes, alloc id)
        self._live: Dict[int, Tuple[int, int]] = {}
        #: free blocks (address-sorted, coalesced): [(address, reserved bytes)]
        self._free_blocks: List[Tuple[int, int]] = []
        self.last_report: Optional[RunReport] = None

    @property
    def corruption(self):
        """The LLC's data-corruption injection surface (inert until armed)."""
        return self.llc.corruption

    # -- memory management ----------------------------------------------------
    #
    # Matrices live in a line-aligned heap with a free list: freed blocks
    # are coalesced and reused first-fit, and the bump pointer only grows
    # when no freed block fits.  free_matrix() / reset_heap() make one
    # ArcaneSystem reusable across an unbounded number of programs — the
    # serving engine's whole premise.

    def _allocate(self, n_bytes: int) -> int:
        reserved = align_up(max(n_bytes, 1), self.config.line_bytes)
        self._alloc_seq += 1
        for i, (address, size) in enumerate(self._free_blocks):
            if size >= reserved:  # first fit; keep the (aligned) remainder free
                if size > reserved:
                    self._free_blocks[i] = (address + reserved, size - reserved)
                else:
                    del self._free_blocks[i]
                self._live[address] = (reserved, self._alloc_seq)
                return address
        address = self._heap
        if address + reserved > self.memory.base + self.memory.size:
            raise MemoryError(
                f"matrix heap exhausted placing {n_bytes} bytes at {address:#x} "
                f"({self.heap_stats()['live_bytes']} bytes live; free_matrix() or "
                "reset_heap() reclaims space on a long-lived system)"
            )
        self._heap = address + reserved
        self._live[address] = (reserved, self._alloc_seq)
        return address

    def _require_idle_runtime(self, action: str) -> None:
        reasons = self.llc.runtime.busy_reasons()
        if reasons:
            raise RuntimeError(
                f"cannot {action} with kernels pending ({'; '.join(reasons)}); "
                "run the program to completion (or drain) first"
            )

    def free_matrix(self, matrix: Matrix) -> None:
        """Return a matrix's heap block to the free list.

        Cached lines covering the block are dropped *without* write-back
        (the data is dead); this keeps a later allocation at the same
        address from reading another matrix's stale lines.  The handle's
        allocation id must match the live allocation — a stale handle
        whose address was recycled cannot free the current occupant —
        and the runtime must be idle: freeing the operand of a queued or
        running kernel would let its block be recycled mid-computation.
        """
        self._require_idle_runtime("free a matrix")
        live = self._live.get(matrix.address)
        if live is None or live[1] != matrix.alloc_id:
            raise ValueError(
                f"matrix {matrix.name!r} at {matrix.address:#x} is not a live "
                "allocation of this system (double free, stale or foreign handle?)"
            )
        reserved, _ = self._live.pop(matrix.address)
        self.llc.controller.invalidate_region(
            matrix.address, matrix.address + reserved, writeback=False
        )
        self._free_blocks.append((matrix.address, reserved))
        self._free_blocks.sort()
        self._coalesce_free_blocks()

    def _coalesce_free_blocks(self) -> None:
        merged: List[Tuple[int, int]] = []
        for address, size in self._free_blocks:
            if merged and merged[-1][0] + merged[-1][1] == address:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((address, size))
        if merged and merged[-1][0] + merged[-1][1] == self._heap:
            self._heap = merged.pop()[0]  # retract the bump pointer
        self._free_blocks = merged

    def reset_heap(self) -> None:
        """Release every matrix and rewind the heap to its base.

        The fast path between serving requests: cached heap lines are
        discarded (no write-back — all matrices are dead), per-kernel
        breakdown history is cleared, and the next program starts from
        the same cold-cache state a freshly built system would see, so
        its results *and* cycle counts match a single-shot run bit-exactly.
        Raises if kernels are still queued or running.
        """
        self._require_idle_runtime("reset the heap")
        runtime = self.llc.runtime
        self.llc.controller.invalidate_region(
            self.HEAP_BASE, self._heap, writeback=False
        )
        self._heap = align_up(self.HEAP_BASE, self.config.line_bytes)
        self._live.clear()
        self._free_blocks.clear()
        self._matrix_count = 0
        runtime.scheduler.breakdowns.clear()
        runtime.scheduler.completed.clear()
        self.last_report = None

    def heap_stats(self) -> Dict[str, int]:
        """Occupancy of the matrix heap (for reports and regression tests)."""
        live = sum(reserved for reserved, _ in self._live.values())
        free = sum(size for _, size in self._free_blocks)
        base = align_up(self.HEAP_BASE, self.config.line_bytes)
        return {
            "live_matrices": len(self._live),
            "live_bytes": live,
            "free_bytes": free,
            "heap_bytes": self._heap - base,
        }

    def place_matrix(self, values: np.ndarray, name: str = "") -> Matrix:
        """Copy a 2-D integer array into system memory, return its handle."""
        values = np.asarray(values)
        if values.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {values.shape}")
        element_type_for(values.dtype)  # validation
        address = self._allocate(values.nbytes)
        self.memory.write_matrix(address, values)
        self._matrix_count += 1
        return Matrix(
            address, values.shape[0], values.shape[1], np.dtype(values.dtype),
            name or f"m{self._matrix_count}", alloc_id=self._live[address][1],
        )

    def alloc_matrix(self, shape: Tuple[int, int], dtype: Any, name: str = "") -> Matrix:
        """Reserve a zeroed output matrix in system memory."""
        rows, cols = shape
        dtype = np.dtype(dtype)
        element_type_for(dtype)
        address = self._allocate(rows * cols * dtype.itemsize)
        self.memory.write_matrix(address, np.zeros((rows, cols), dtype=dtype))
        self._matrix_count += 1
        return Matrix(address, rows, cols, dtype, name or f"m{self._matrix_count}",
                      alloc_id=self._live[address][1])

    def read_matrix(self, matrix: Matrix) -> np.ndarray:
        """Read a matrix back (coherent view through the LLC)."""
        raw = self.llc.controller.peek(matrix.address, matrix.total_bytes)
        return np.frombuffer(raw, dtype=matrix.dtype).reshape(matrix.shape).copy()

    # -- program execution -------------------------------------------------------

    def program(self) -> HostProgram:
        return HostProgram(self)

    def _execute_program(self, program: HostProgram) -> RunReport:
        sink: dict = {}
        start_cycle = self.sim.now
        start_breakdowns = set(self.llc.runtime.breakdowns)
        start_counters = self.stats.counters()
        replay_cache = self.llc.runtime.replay_cache
        start_replay = dict(replay_cache.stats) if replay_cache is not None else {}
        host = self.sim.process(program._host_process(sink), name="host")
        self.sim.run()
        if not host.finished:
            raise RuntimeError(f"host program deadlocked at cycle {self.sim.now}")
        drain = self.sim.process(self.llc.runtime.drain(), name="drain")
        self.sim.run()
        if not drain.finished:
            raise RuntimeError(f"C-RT failed to drain at cycle {self.sim.now}")

        merged = PhaseBreakdown()
        per_kernel: Dict[int, PhaseBreakdown] = {}
        for kernel_id, breakdown in self.llc.runtime.breakdowns.items():
            if kernel_id in start_breakdowns:
                continue
            per_kernel[kernel_id] = breakdown
            merged.merge(breakdown)
        # Per-run stats epoch: report what *this* program added, so reports
        # from a long-lived system match single-shot runs on a fresh one.
        stats_delta = {
            name: value - start_counters.get(name, 0)
            for name, value in self.stats.counters().items()
        }
        replay_delta = (
            {
                name: value - start_replay.get(name, 0)
                for name, value in replay_cache.stats.items()
            }
            if replay_cache is not None
            else {}
        )
        report = RunReport(
            total_cycles=self.sim.now - start_cycle,
            host_cycles=sink.get("host_done", self.sim.now) - start_cycle,
            breakdown=merged,
            per_kernel=per_kernel,
            outcomes=sink.get("outcomes", []),
            stats=stats_delta,
            load_values=sink.get("loads", []),
            replay=replay_delta,
        )
        self.last_report = report
        return report

    # -- convenience one-shots (benchmark harness entry points) --------------------

    def run_conv_layer(
        self, image: np.ndarray, filters: np.ndarray
    ) -> Tuple[np.ndarray, RunReport]:
        """Place operands, run one xmk4 conv layer, return (result, report)."""
        from repro.runtime.kernels.conv_layer import conv_layer_shapes

        _, _, _, pooled = conv_layer_shapes(
            image.shape[0], image.shape[1], filters.shape[0], filters.shape[1]
        )
        x = self.place_matrix(image, "x")
        f = self.place_matrix(filters, "f")
        out = self.alloc_matrix(pooled, image.dtype, "out")
        suffix = x.etype.suffix
        with self.program() as prog:
            prog.xmr(0, x)
            prog.xmr(1, f)
            prog.xmr(2, out)
            prog.conv_layer(dest=2, src=0, flt=1, suffix=suffix)
        return self.read_matrix(out), self.last_report
