"""Assembly of the complete ARCANE LLC subsystem (paper Figure 1).

Wires together, for one :class:`~repro.core.config.ArcaneConfig`:

* the Cache Table (whose data array backs the VPU register files),
* the Address Table,
* the LLC controller,
* one :class:`~repro.vpu.vpu.Vpu` per NM-Carus instance + dispatcher,
* the C-RT runtime on the eCPU,
* the CV-X-IF bridge.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.address_table import AddressTable
from repro.cache.cache_table import CacheTable
from repro.cache.controller import LlcController
from repro.core.config import ArcaneConfig
from repro.integrity.inject import CorruptionSurface
from repro.mem.bus import BusModel
from repro.mem.memory import MainMemory
from repro.runtime.crt import CacheRuntime
from repro.sim.kernel import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer
from repro.vpu.dispatcher import Dispatcher
from repro.vpu.vpu import Vpu
from repro.vpu.vrf import VectorRegisterFile
from repro.xbridge.bridge import Bridge


class ArcaneLlc:
    """The smart LLC: cache + VPUs + eCPU runtime + bridge."""

    def __init__(
        self,
        sim: Simulator,
        config: ArcaneConfig,
        memory: MainMemory,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.memory = memory
        self.stats = stats or StatsRegistry()
        self.tracer = tracer or Tracer(enabled=False)

        self.bus = BusModel(
            width_bytes=config.bus_width_bytes,
            request_latency=config.bus_request_latency,
            offchip_latency=config.offchip_latency,
        )
        self.cache_table = CacheTable(
            n_vpus=config.n_vpus,
            vregs_per_vpu=config.vregs_per_vpu,
            line_bytes=config.line_bytes,
        )
        self.address_table = AddressTable(config.address_table_entries, sim)
        self.controller = LlcController(
            sim, self.cache_table, self.address_table, memory, self.bus,
            self.stats, self.tracer,
        )
        self.vpus = [
            Vpu(
                index=v,
                vrf=VectorRegisterFile(self.cache_table.vpu_lines(v)),
                lanes=config.lanes,
                stats=self.stats,
            )
            for v in range(config.n_vpus)
        ]
        self.dispatcher = Dispatcher(self.vpus, config.issue_cycles, self.stats)
        self.runtime = CacheRuntime(
            sim,
            self.controller,
            self.dispatcher,
            self.bus,
            n_matrix_registers=config.n_matrix_registers,
            queue_capacity=config.kernel_queue_capacity,
            stats=self.stats,
            tracer=self.tracer,
            multi_vpu=config.multi_vpu,
            vpu_policy=config.vpu_policy,
            fastpath=config.fastpath,
        )
        self.runtime.allocator.lock_overhead_cycles = config.lock_overhead_cycles
        self.runtime.install_default_kernels()
        self.bridge = Bridge(sim, self.runtime.decode, self.stats, self.tracer)
        # Fault-injection applicator for data-corruption clauses; inert
        # (all hooks None) until a serving fault plan arms it.
        self.corruption = CorruptionSurface(self)

    def start(self) -> None:
        """Launch the C-RT scheduler loop."""
        self.runtime.start()
