"""ARCANE top level: configuration, system assembly and the public API.

Typical use (the Python analogue of the paper's Listing 1)::

    import numpy as np
    from repro import ArcaneConfig, ArcaneSystem

    system = ArcaneSystem(ArcaneConfig(lanes=4))
    x = system.place_matrix(np.random.randint(-8, 8, (3 * 32, 32), np.int8))
    f = system.place_matrix(np.random.randint(-2, 2, (3 * 3, 3), np.int8))
    out = system.alloc_matrix((14, 15), np.int8)

    with system.program() as prog:
        prog.xmr(0, x)
        prog.xmr(1, f)
        prog.xmr(2, out)
        prog.conv_layer(dest=2, src=0, flt=1)

    result = system.read_matrix(out)        # pooled conv+ReLU output
    report = system.last_report             # cycles + phase breakdown
"""

from repro.core.config import ArcaneConfig, PRESET_2_LANES, PRESET_4_LANES, PRESET_8_LANES
from repro.core.llc import ArcaneLlc
from repro.core.system import ArcaneSystem, HostProgram, RunReport
from repro.core.api import Matrix

__all__ = [
    "ArcaneConfig",
    "PRESET_2_LANES",
    "PRESET_4_LANES",
    "PRESET_8_LANES",
    "ArcaneLlc",
    "ArcaneSystem",
    "HostProgram",
    "RunReport",
    "Matrix",
]
