"""Host-side matrix handles — the Python face of the xmnmc intrinsics.

A :class:`Matrix` is what the C code of the paper's Listing 1 holds as
``int A[rowsA][colsA]``: a shape + dtype + base address in system memory.
:class:`~repro.core.system.ArcaneSystem` hands them out from a bump
allocator and the program builder packs them into ``xmr`` operand pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.vpu.visa import ElementType

_SUPPORTED_DTYPES = {
    np.dtype(np.int8): ElementType.B,
    np.dtype(np.int16): ElementType.H,
    np.dtype(np.int32): ElementType.W,
}


def element_type_for(dtype: np.dtype) -> ElementType:
    """Map a numpy dtype to the xmnmc element suffix; rejects others."""
    dtype = np.dtype(dtype)
    try:
        return _SUPPORTED_DTYPES[dtype]
    except KeyError:
        supported = ", ".join(str(d) for d in _SUPPORTED_DTYPES)
        raise TypeError(f"dtype {dtype} unsupported; use one of: {supported}") from None


@dataclass(frozen=True)
class Matrix:
    """A host-visible matrix living in system memory."""

    address: int
    rows: int
    cols: int
    dtype: np.dtype
    name: str = ""
    #: allocation generation stamped by ArcaneSystem; lets free_matrix()
    #: reject stale handles whose address was since recycled
    alloc_id: int = field(default=-1, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"matrix shape {self.rows}x{self.cols} must be positive")
        # Normalize so Matrix(..., dtype=np.int32) and
        # Matrix(..., dtype=np.dtype(np.int32)) compare/hash equal
        # (frozen dataclass, hence object.__setattr__).
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    @property
    def etype(self) -> ElementType:
        return element_type_for(self.dtype)

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    @property
    def row_bytes(self) -> int:
        return self.cols * self.itemsize

    @property
    def total_bytes(self) -> int:
        return self.rows * self.row_bytes

    @property
    def shape(self):
        return (self.rows, self.cols)

    def element_address(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"({row}, {col}) outside {self.rows}x{self.cols}")
        return self.address + (row * self.cols + col) * self.itemsize

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or "matrix"
        return f"<{label} {self.rows}x{self.cols} {np.dtype(self.dtype).name} @{self.address:#x}>"
