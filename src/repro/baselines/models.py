"""Analytical baseline cycle models, fitted against the ISS.

Running 256x256 conv layers instruction-by-instruction in a Python ISS
would take minutes per point; the benchmark grid needs hundreds of
points.  But the generated kernels have *exactly linear* cycle counts in
their loop-trip structure (every loop contributes a per-iteration cost
and a per-entry constant; ``li32`` keeps code size shape-independent), so
a linear model over structural features is exact up to the data-dependent
branches in the scalar pooling epilogue (a < 0.5 % effect).

The model is fitted by least squares over a set of small ISS runs and
cached per (architecture, element size).  ``tests/test_baseline_models``
validates predictions against held-out ISS runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.pulp_kernels import padded_k, run_pulp_conv_layer, simd_width
from repro.baselines.scalar_kernels import ConvLayerShape, run_scalar_conv_layer

#: Calibration shapes: varied (H, W, K) to make the feature matrix well
#: conditioned. All run in well under a second on the ISS.
_CALIBRATION_SHAPES = (
    ConvLayerShape(8, 8, 3),
    ConvLayerShape(10, 14, 3),
    ConvLayerShape(14, 10, 3),
    ConvLayerShape(12, 12, 5),
    ConvLayerShape(16, 12, 5),
    ConvLayerShape(14, 16, 7),
    ConvLayerShape(18, 18, 7),
    ConvLayerShape(20, 16, 3),
)


def _features(shape: ConvLayerShape, esize: int, arch: str) -> np.ndarray:
    """Structural loop-trip counts of the generated kernel."""
    s = shape
    conv_pixels = s.conv_rows * s.conv_cols
    c_iters = conv_pixels * s.channels
    dr_iters = c_iters * s.k
    out_rows, out_cols = s.out_shape
    if arch == "scalar":
        innermost = dr_iters * s.k  # dc loop iterations
    elif arch == "pulp":
        innermost = dr_iters * (padded_k(s.k, esize) // simd_width(esize))
    else:
        raise ValueError(f"unknown arch {arch!r}")
    return np.array(
        [
            innermost,
            dr_iters,
            c_iters,
            conv_pixels,
            s.conv_rows,
            out_rows * out_cols,
            out_rows,
            1.0,
        ],
        dtype=np.float64,
    )


@dataclass(frozen=True)
class FittedConvModel:
    """Least-squares coefficients over the structural features."""

    arch: str
    esize: int
    coefficients: np.ndarray
    residual_rel: float  # worst relative error over the calibration set

    def cycles(self, shape: ConvLayerShape) -> int:
        prediction = float(self._predict(shape))
        return max(1, int(round(prediction)))

    def _predict(self, shape: ConvLayerShape) -> float:
        return float(_features(shape, self.esize, self.arch) @ self.coefficients)


_RUNNERS = {"scalar": run_scalar_conv_layer, "pulp": run_pulp_conv_layer}
_MODEL_CACHE: Dict[Tuple[str, int], FittedConvModel] = {}
_DTYPES = {1: np.int8, 2: np.int16, 4: np.int32}


def _measure(arch: str, esize: int, shape: ConvLayerShape) -> int:
    rng = np.random.default_rng(1234 + esize)
    dtype = _DTYPES[esize]
    image = rng.integers(-8, 8, (shape.channels * shape.height, shape.width)).astype(dtype)
    filters = rng.integers(-2, 3, (shape.channels * shape.k, shape.k)).astype(dtype)
    _, cycles = _RUNNERS[arch](image, filters)
    return cycles


def fit_conv_model(arch: str, esize: int) -> FittedConvModel:
    """Fit (or fetch the cached) cycle model for one baseline/element size."""
    key = (arch, esize)
    if key in _MODEL_CACHE:
        return _MODEL_CACHE[key]
    rows: List[np.ndarray] = []
    targets: List[float] = []
    for shape in _CALIBRATION_SHAPES:
        rows.append(_features(shape, esize, arch))
        targets.append(float(_measure(arch, esize, shape)))
    matrix = np.vstack(rows)
    target_vec = np.array(targets)
    coefficients, *_ = np.linalg.lstsq(matrix, target_vec, rcond=None)
    predictions = matrix @ coefficients
    residual_rel = float(np.max(np.abs(predictions - target_vec) / target_vec))
    model = FittedConvModel(arch, esize, coefficients, residual_rel)
    _MODEL_CACHE[key] = model
    return model


def scalar_conv_layer_cycles(shape: ConvLayerShape, esize: int) -> int:
    """Predicted CV32E40X cycles for the conv layer workload."""
    return fit_conv_model("scalar", esize).cycles(shape)


def pulp_conv_layer_cycles(shape: ConvLayerShape, esize: int) -> int:
    """Predicted CV32E40PX (XCVPULP) cycles for the conv layer workload."""
    return fit_conv_model("pulp", esize).cycles(shape)
