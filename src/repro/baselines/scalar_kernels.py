"""CV32E40X scalar baseline: RV32IM assembly kernels executed on the ISS.

The paper's speedups are measured against "a baseline CV32E40X CPU core"
running the same 3-channel convolutional layer in scalar code.  We
*generate* that code (shape constants baked in, exactly like a compiler
unrolling nothing) and execute it on the instruction-set simulator with
the CV32E40X timing model, so baseline cycle counts come from real
instruction streams, not guesses.

Layouts match the ARCANE kernels: input (3H x W) channel-stacked, filter
(3K x K), output = pooled conv (ReLU applied during pooling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.cpu.core import Cpu
from repro.cpu.timing import CV32E40X_TIMING
from repro.isa.asm import assemble
from repro.mem.memory import MainMemory

#: Memory map for baseline kernel runs.
CODE_BASE = 0x0000_0000
X_BASE = 0x0008_0000
F_BASE = 0x0010_0000
CONV_BASE = 0x0014_0000  # scratch conv output before pooling
OUT_BASE = 0x0018_0000
MEMORY_BYTES = 0x0020_0000

_LOAD = {1: "lb", 2: "lh", 4: "lw"}
_STORE = {1: "sb", 2: "sh", 4: "sw"}


@dataclass(frozen=True)
class ConvLayerShape:
    """Shape bundle for the 3-channel conv layer workload."""

    height: int
    width: int
    k: int
    channels: int = 3
    pool: int = 2
    pool_stride: int = 2

    @property
    def conv_rows(self) -> int:
        return self.height - self.k + 1

    @property
    def conv_cols(self) -> int:
        return self.width - self.k + 1

    @property
    def out_shape(self) -> Tuple[int, int]:
        rows = (self.conv_rows - self.pool) // self.pool_stride + 1
        cols = (self.conv_cols - self.pool) // self.pool_stride + 1
        return rows, cols

    @property
    def macs(self) -> int:
        return self.conv_rows * self.conv_cols * self.channels * self.k * self.k


def generate_conv_layer_asm(shape: ConvLayerShape, esize: int) -> str:
    """Emit the scalar conv+ReLU+pool kernel for one shape/element size."""
    load, store = _LOAD[esize], _STORE[esize]
    s = shape
    row_bytes = s.width * esize
    conv_row_bytes = s.conv_cols * esize
    filter_row_bytes = s.k * esize
    plane_bytes = s.height * row_bytes
    out_rows, out_cols = s.out_shape

    return f"""
# scalar 3-channel conv layer: {s.height}x{s.width}, {s.k}x{s.k}, esize={esize}
    li32 s0, {X_BASE}          # X base
    li32 s1, {F_BASE}          # F base
    li32 s2, {CONV_BASE}       # conv scratch
    li32 s3, {OUT_BASE}        # pooled output

# ---- convolution ----
    li32 s4, 0                 # i (conv row)
conv_i:
    li32 s5, 0                 # j (conv col)
conv_j:
    li32 a0, 0                 # acc
    li32 s6, 0                 # c (channel)
conv_c:
    # a5 = &X[c*H + i][j], a6 = &F[c*K][0]
    li32 t0, {plane_bytes}
    mul  a5, s6, t0
    add  a5, a5, s0
    li32 t0, {row_bytes}
    mul  t1, s4, t0
    add  a5, a5, t1
    li32 t0, {esize}
    mul  t1, s5, t0
    add  a5, a5, t1
    li32 t0, {s.k * filter_row_bytes}
    mul  a6, s6, t0
    add  a6, a6, s1
    li32 s7, 0                 # dr
conv_dr:
    li32 t0, {s.k}             # dc counter
conv_dc:
    {load}   t1, 0(a5)
    {load}   t2, 0(a6)
    mul  t3, t1, t2
    add  a0, a0, t3
    addi a5, a5, {esize}
    addi a6, a6, {esize}
    addi t0, t0, -1
    bnez t0, conv_dc
    addi a5, a5, {row_bytes - filter_row_bytes}   # next input row, same j
    addi s7, s7, 1
    li32 t0, {s.k}
    bne  s7, t0, conv_dr
    addi s6, s6, 1
    li32 t0, {s.channels}
    bne  s6, t0, conv_c
    # CONV[i][j] = acc
    li32 t0, {conv_row_bytes}
    mul  t1, s4, t0
    add  t1, t1, s2
    li32 t0, {esize}
    mul  t2, s5, t0
    add  t1, t1, t2
    {store}  a0, 0(t1)
    addi s5, s5, 1
    li32 t0, {s.conv_cols}
    bne  s5, t0, conv_j
    addi s4, s4, 1
    li32 t0, {s.conv_rows}
    bne  s4, t0, conv_i

# ---- 2x2/2 max pool + ReLU ----
    li32 s4, 0                 # pi
pool_i:
    li32 s5, 0                 # pj
pool_j:
    # t4 = &CONV[2*pi][2*pj]
    li32 t0, {conv_row_bytes * s.pool_stride}
    mul  t4, s4, t0
    add  t4, t4, s2
    li32 t0, {esize * s.pool_stride}
    mul  t1, s5, t0
    add  t4, t4, t1
    {load}   a0, 0(t4)
    {load}   t1, {esize}(t4)
    bge  a0, t1, pool_m1_{0}
    mv   a0, t1
pool_m1_{0}:
    {load}   t1, {conv_row_bytes}(t4)
    bge  a0, t1, pool_m2_{0}
    mv   a0, t1
pool_m2_{0}:
    {load}   t1, {conv_row_bytes + esize}(t4)
    bge  a0, t1, pool_m3_{0}
    mv   a0, t1
pool_m3_{0}:
    bgez a0, pool_relu_{0}
    li32 a0, 0
pool_relu_{0}:
    li32 t0, {out_cols * esize}
    mul  t1, s4, t0
    add  t1, t1, s3
    li32 t0, {esize}
    mul  t2, s5, t0
    add  t1, t1, t2
    {store}  a0, 0(t1)
    addi s5, s5, 1
    li32 t0, {out_cols}
    bne  s5, t0, pool_j
    addi s4, s4, 1
    li32 t0, {out_rows}
    bne  s4, t0, pool_i
    ebreak
"""


def run_scalar_conv_layer(
    image: np.ndarray, filters: np.ndarray, max_instructions: int = 80_000_000
) -> Tuple[np.ndarray, int]:
    """Assemble, load and execute the scalar kernel; return (output, cycles)."""
    esize = image.dtype.itemsize
    channels = 3
    height = image.shape[0] // channels
    k = filters.shape[0] // channels
    shape = ConvLayerShape(height=height, width=image.shape[1], k=k, channels=channels)

    program = assemble(generate_conv_layer_asm(shape, esize), base=CODE_BASE)
    memory = MainMemory(MEMORY_BYTES, base=0)
    memory.write_block(CODE_BASE, bytes(program.data))
    memory.write_matrix(X_BASE, image)
    memory.write_matrix(F_BASE, filters)

    cpu = Cpu(memory, timing=CV32E40X_TIMING)
    cycles = cpu.run(max_instructions=max_instructions)

    out_rows, out_cols = shape.out_shape
    output = memory.read_matrix(OUT_BASE, out_rows, out_cols, image.dtype)
    return output, cycles
