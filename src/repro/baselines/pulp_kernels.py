"""CV32E40PX baseline: XCVPULP packed-SIMD conv layer on the ISS.

The stronger CPU baseline of paper Figure 4: a CV32E40P-derived core with
the XCVPULP extensions.  The convolution inner loop uses ``pv.sdotsp.b``
(4 int8 MACs per instruction) / ``pv.sdotsp.h`` (2 int16 MACs), with the
filter rows zero-padded to the SIMD width so whole words can be loaded
without lane masking — the standard PULP convolution idiom.  int32 data
has no packed form; it falls back to ``cv.mac`` with post-increment
loads, still ahead of plain RV32IM.

The paper notes this baseline's scaling "peaks at 8.6x due to overhead
from repeated data loading" — visible here as the per-pixel pointer
arithmetic that ARCANE's DMA amortises away.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.baselines.scalar_kernels import (
    CODE_BASE,
    CONV_BASE,
    F_BASE,
    MEMORY_BYTES,
    OUT_BASE,
    X_BASE,
    ConvLayerShape,
)
from repro.cpu.core import Cpu
from repro.cpu.timing import CV32E40PX_TIMING
from repro.isa.asm import assemble
from repro.mem.memory import MainMemory

_LOAD = {1: "lb", 2: "lh", 4: "lw"}
_STORE = {1: "sb", 2: "sh", 4: "sw"}


def simd_width(esize: int) -> int:
    """Elements per 32-bit SIMD word (1 disables packing)."""
    return {1: 4, 2: 2, 4: 1}[esize]


def padded_k(k: int, esize: int) -> int:
    width = simd_width(esize)
    return -(-k // width) * width


def _inner_block(esize: int, k: int, row_bytes: int, fpad_row_bytes: int) -> str:
    """The per-filter-row MAC block (unrolled over SIMD word chunks)."""
    width = simd_width(esize)
    if width == 1:
        # int32: cv.mac with post-increment loads, k MACs.
        lines = []
        for _ in range(k):
            lines.append("    cv.lw t1, 4(a5!)")
            lines.append("    cv.lw t2, 4(a6!)")
            lines.append("    cv.mac a0, t1, t2")
        lines.append(f"    addi a5, a5, {row_bytes - k * 4}")
        lines.append(f"    addi a6, a6, {fpad_row_bytes - k * 4}")
        return "\n".join(lines)
    op = "pv.sdotsp.b" if esize == 1 else "pv.sdotsp.h"
    chunks = padded_k(k, esize) // width
    lines = []
    for chunk in range(chunks):
        offset = chunk * 4
        lines.append(f"    lw t1, {offset}(a5)")
        lines.append(f"    lw t2, {offset}(a6)")
        lines.append(f"    {op} a0, t1, t2")
    lines.append(f"    addi a5, a5, {row_bytes}")
    lines.append(f"    addi a6, a6, {fpad_row_bytes}")
    return "\n".join(lines)


def generate_pulp_conv_layer_asm(shape: ConvLayerShape, esize: int) -> str:
    """Emit the XCVPULP conv+ReLU+pool kernel for one shape/element size."""
    load, store = _LOAD[esize], _STORE[esize]
    s = shape
    row_bytes = s.width * esize
    conv_row_bytes = s.conv_cols * esize
    fpad_row_bytes = padded_k(s.k, esize) * esize if esize < 4 else s.k * esize
    plane_bytes = s.height * row_bytes
    filter_plane_bytes = s.k * fpad_row_bytes
    out_rows, out_cols = s.out_shape
    inner = _inner_block(esize, s.k, row_bytes, fpad_row_bytes)

    return f"""
# XCVPULP 3-channel conv layer: {s.height}x{s.width}, {s.k}x{s.k}, esize={esize}
    li32 s0, {X_BASE}
    li32 s1, {F_BASE}
    li32 s2, {CONV_BASE}
    li32 s3, {OUT_BASE}
    li32 s4, 0                 # i
conv_i:
    li32 s5, 0                 # j
conv_j:
    li32 a0, 0                 # acc
    li32 s6, 0                 # c
conv_c:
    li32 t0, {plane_bytes}
    mul  a5, s6, t0
    add  a5, a5, s0
    li32 t0, {row_bytes}
    mul  t1, s4, t0
    add  a5, a5, t1
    li32 t0, {esize}
    mul  t1, s5, t0
    add  a5, a5, t1
    li32 t0, {filter_plane_bytes}
    mul  a6, s6, t0
    add  a6, a6, s1
    li32 s7, {s.k}             # dr countdown
conv_dr:
{inner}
    addi s7, s7, -1
    bnez s7, conv_dr
    addi s6, s6, 1
    li32 t0, {s.channels}
    bne  s6, t0, conv_c
    li32 t0, {conv_row_bytes}
    mul  t1, s4, t0
    add  t1, t1, s2
    li32 t0, {esize}
    mul  t2, s5, t0
    add  t1, t1, t2
    {store}  a0, 0(t1)
    addi s5, s5, 1
    li32 t0, {s.conv_cols}
    bne  s5, t0, conv_j
    addi s4, s4, 1
    li32 t0, {s.conv_rows}
    bne  s4, t0, conv_i

# ---- 2x2/2 max pool + ReLU (cv.max makes this branch-free) ----
    li32 s4, 0
pool_i:
    li32 s5, 0
pool_j:
    li32 t0, {conv_row_bytes * s.pool_stride}
    mul  t4, s4, t0
    add  t4, t4, s2
    li32 t0, {esize * s.pool_stride}
    mul  t1, s5, t0
    add  t4, t4, t1
    {load}   a0, 0(t4)
    {load}   t1, {esize}(t4)
    cv.max a0, a0, t1
    {load}   t1, {conv_row_bytes}(t4)
    cv.max a0, a0, t1
    {load}   t1, {conv_row_bytes + esize}(t4)
    cv.max a0, a0, t1
    cv.max a0, a0, zero
    li32 t0, {out_cols * esize}
    mul  t1, s4, t0
    add  t1, t1, s3
    li32 t0, {esize}
    mul  t2, s5, t0
    add  t1, t1, t2
    {store}  a0, 0(t1)
    addi s5, s5, 1
    li32 t0, {out_cols}
    bne  s5, t0, pool_j
    addi s4, s4, 1
    li32 t0, {out_rows}
    bne  s4, t0, pool_i
    ebreak
"""


def pad_filters(filters: np.ndarray, esize: int) -> np.ndarray:
    """Zero-pad each filter row to the SIMD word width."""
    if esize == 4:
        return filters
    k = filters.shape[1]
    k_pad = padded_k(k, esize)
    padded = np.zeros((filters.shape[0], k_pad), dtype=filters.dtype)
    padded[:, :k] = filters
    return padded


def run_pulp_conv_layer(
    image: np.ndarray, filters: np.ndarray, max_instructions: int = 80_000_000
) -> Tuple[np.ndarray, int]:
    """Assemble, load and execute the XCVPULP kernel; return (output, cycles)."""
    esize = image.dtype.itemsize
    channels = 3
    height = image.shape[0] // channels
    k = filters.shape[0] // channels
    shape = ConvLayerShape(height=height, width=image.shape[1], k=k, channels=channels)

    program = assemble(generate_pulp_conv_layer_asm(shape, esize), base=CODE_BASE)
    memory = MainMemory(MEMORY_BYTES, base=0)
    memory.write_block(CODE_BASE, bytes(program.data))
    memory.write_matrix(X_BASE, image)
    memory.write_matrix(F_BASE, pad_filters(filters, esize))

    cpu = Cpu(memory, timing=CV32E40PX_TIMING)
    cycles = cpu.run(max_instructions=max_instructions)

    out_rows, out_cols = shape.out_shape
    output = memory.read_matrix(OUT_BASE, out_rows, out_cols, image.dtype)
    return output, cycles
