"""Numpy golden models with hardware-exact integer semantics.

All kernels use wrap-around two's-complement arithmetic in the output
element width (accumulating exactly, then truncating — congruent mod 2^n
to the per-instruction wrapping the VPU datapath performs).  These are
the correctness oracles for both the ARCANE kernels and the ISS baseline
kernels.
"""

from __future__ import annotations

import numpy as np

N_CHANNELS = 3


def _wrap_to(dtype: np.dtype, values: np.ndarray) -> np.ndarray:
    """Truncate an exact (int64) result to the element width, wrapping."""
    return values.astype(np.int64).astype(dtype)


def ref_gemm(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, alpha: int = 1, beta: int = 0
) -> np.ndarray:
    """D = alpha * (A @ B) + beta * C in the dtype of the operands."""
    dtype = a.dtype
    exact = alpha * (a.astype(np.int64) @ b.astype(np.int64)) + beta * c.astype(np.int64)
    return _wrap_to(dtype, exact)


def ref_leaky_relu(x: np.ndarray, alpha: int) -> np.ndarray:
    """max(x, 0) + (min(x, 0) >> alpha), arithmetic shift."""
    positive = np.maximum(x, 0)
    negative = np.minimum(x.astype(np.int64), 0) >> alpha
    return _wrap_to(x.dtype, positive.astype(np.int64) + negative)


def ref_maxpool(x: np.ndarray, window: int, stride: int) -> np.ndarray:
    """2D max pooling, floor semantics, no padding."""
    rows, cols = x.shape
    out_rows = (rows - window) // stride + 1
    out_cols = (cols - window) // stride + 1
    out = np.empty((out_rows, out_cols), dtype=x.dtype)
    for i in range(out_rows):
        for j in range(out_cols):
            patch = x[i * stride : i * stride + window, j * stride : j * stride + window]
            out[i, j] = patch.max()
    return out


def ref_conv2d(x: np.ndarray, f: np.ndarray) -> np.ndarray:
    """'Valid' cross-correlation in the element dtype (wrapping)."""
    k = f.shape[0]
    if f.shape[0] != f.shape[1]:
        raise ValueError("filter must be square")
    out_rows = x.shape[0] - k + 1
    out_cols = x.shape[1] - k + 1
    x64 = x.astype(np.int64)
    f64 = f.astype(np.int64)
    out = np.zeros((out_rows, out_cols), dtype=np.int64)
    for dr in range(k):
        for dc in range(k):
            out += f64[dr, dc] * x64[dr : dr + out_rows, dc : dc + out_cols]
    return _wrap_to(x.dtype, out)


def ref_conv_layer(x_stacked: np.ndarray, f_stacked: np.ndarray) -> np.ndarray:
    """The xmk4 golden model: 3-channel conv + ReLU + 2x2/stride-2 max pool.

    ``x_stacked`` is (3H, W) with channel planes stacked row-wise;
    ``f_stacked`` is (3K, K).
    """
    if x_stacked.shape[0] % N_CHANNELS or f_stacked.shape[0] % N_CHANNELS:
        raise ValueError("inputs must stack three channel planes row-wise")
    height = x_stacked.shape[0] // N_CHANNELS
    k = f_stacked.shape[0] // N_CHANNELS
    out_rows = height - k + 1
    out_cols = x_stacked.shape[1] - k + 1
    acc = np.zeros((out_rows, out_cols), dtype=np.int64)
    for channel in range(N_CHANNELS):
        plane = x_stacked[channel * height : (channel + 1) * height].astype(np.int64)
        kernel = f_stacked[channel * k : (channel + 1) * k].astype(np.int64)
        for dr in range(k):
            for dc in range(k):
                acc += kernel[dr, dc] * plane[dr : dr + out_rows, dc : dc + out_cols]
    conv = _wrap_to(x_stacked.dtype, acc)
    pooled = ref_maxpool(conv, 2, 2)
    return np.maximum(pooled, 0)
