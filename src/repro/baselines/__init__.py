"""Baselines: golden models and the CPU systems ARCANE is compared against.

* :mod:`repro.baselines.reference` — numpy golden models with the exact
  wrap-around integer semantics of the hardware (used by every
  correctness test);
* :mod:`repro.baselines.scalar_kernels` — RV32IM assembly kernels
  executed on the ISS (the CV32E40X baseline);
* :mod:`repro.baselines.pulp_kernels` — XCVPULP packed-SIMD assembly
  kernels (the CV32E40PX baseline);
* :mod:`repro.baselines.models` — analytical cycle models validated
  against the ISS and extrapolated to paper-scale inputs;
* :mod:`repro.baselines.multicore` — the theoretical multi-core
  CV32E40PX scaling model of paper section V-C.
"""

from repro.baselines.reference import (
    ref_conv2d,
    ref_conv_layer,
    ref_gemm,
    ref_leaky_relu,
    ref_maxpool,
)

__all__ = [
    "ref_conv2d",
    "ref_conv_layer",
    "ref_gemm",
    "ref_leaky_relu",
    "ref_maxpool",
]
