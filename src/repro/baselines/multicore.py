"""Theoretical multi-core CV32E40PX scaling model (paper section V-C).

The paper argues that a multi-core packed-SIMD system comparable in area
to multi-instance ARCANE (about 15 CV32E40PX cores) cannot match it:
"multi-core implementations relying on packed-SIMD instructions introduce
significant overhead from frequent instruction cache accesses, causing
memory contention and synchronization delays.  Even under optimal
conditions, the theoretical speedup peaks at 75x."

We model that argument explicitly: N cores each delivering the measured
single-core XCVPULP speedup, derated by a contention efficiency term

    efficiency(N) = 1 / (1 + alpha * (N - 1))

where ``alpha`` captures per-core instruction-fetch/memory contention.
``alpha`` is calibrated so that the 15-core configuration lands at the
paper's 75x ceiling given its 8.6x peak single-core speedup
(75 = 15 * 8.6 * eff(15) -> alpha ~= 0.052).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper anchors.
PAPER_SINGLE_CORE_PEAK = 8.6
PAPER_MULTICORE_PEAK = 75.0
PAPER_CORE_COUNT = 15


def _calibrate_alpha(
    cores: int = PAPER_CORE_COUNT,
    single: float = PAPER_SINGLE_CORE_PEAK,
    target: float = PAPER_MULTICORE_PEAK,
) -> float:
    # target = cores * single / (1 + alpha * (cores - 1))
    return (cores * single / target - 1.0) / (cores - 1)


DEFAULT_ALPHA = _calibrate_alpha()


@dataclass(frozen=True)
class MulticoreModel:
    """Contention-derated multi-core speedup estimator."""

    single_core_speedup: float = PAPER_SINGLE_CORE_PEAK
    alpha: float = DEFAULT_ALPHA

    def efficiency(self, cores: int) -> float:
        if cores < 1:
            raise ValueError("need at least one core")
        return 1.0 / (1.0 + self.alpha * (cores - 1))

    def speedup(self, cores: int) -> float:
        """Aggregate speedup over the scalar CV32E40X baseline."""
        return cores * self.single_core_speedup * self.efficiency(cores)

    def peak(self, max_cores: int = PAPER_CORE_COUNT) -> float:
        """Best speedup within the area-equivalent core budget.

        The paper's "theoretical speedup peaks at 75x" is evaluated at
        area parity with multi-instance ARCANE (~15 CV32E40PX cores), so
        the default budget is 15 cores — the efficiency curve itself is
        monotone and only the area budget caps it.
        """
        return max(self.speedup(n) for n in range(1, max_cores + 1))
