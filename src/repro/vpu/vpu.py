"""The VPU execution model: functional semantics + lane-accurate timing.

Timing model (from the NM-Carus microarchitecture the paper builds on):

* a vector instruction streams its elements through ``lanes`` 32-bit
  lanes; contiguous (stride-1) accesses pack ``4 / element_bytes``
  elements per lane per cycle (sub-word SIMD), so the throughput is
  ``lanes * elems_per_word`` elements/cycle;
* strided/gather accesses defeat packing: one element per lane per cycle;
* every instruction pays a small fixed ``startup`` cost (decode + first
  operand fetch);
* reductions pay an extra ``log2(lanes)`` merge cost.

Functional semantics use wrap-around two's-complement arithmetic in the
element width, matching the RTL datapath.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.sim.stats import StatsRegistry
from repro.vpu.visa import ElementType, OP_TRAITS, STRIDED_SOURCES, VectorOp, VectorOpcode
from repro.vpu.vrf import VectorRegisterFile


class Vpu:
    """One near-memory vector processing unit."""

    STARTUP_CYCLES = 2

    def __init__(
        self,
        index: int,
        vrf: VectorRegisterFile,
        lanes: int,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        if lanes < 1:
            raise ValueError("a VPU needs at least one lane")
        self.index = index
        self.vrf = vrf
        self.lanes = lanes
        self.stats = stats or StatsRegistry()
        # Counter handles are resolved once here: the execute loop runs per
        # vector instruction and must not build f-string names or walk the
        # registry dict on every op.
        self._c_ops = self.stats.counter(f"vpu{index}.ops")
        self._c_cycles = self.stats.counter(f"vpu{index}.cycles")
        self._c_elems = self.stats.counter(f"vpu{index}.elems")
        self._reduction_cycles = max(
            1, int(math.log2(lanes)) if lanes > 1 else 1
        )

    # -- timing ----------------------------------------------------------

    def elems_per_cycle(self, etype: ElementType, stride: int = 1) -> int:
        """Element throughput for the given element type and access stride."""
        if stride == 1:
            return self.lanes * etype.elems_per_word
        return self.lanes

    def op_cycles(self, op: VectorOp) -> int:
        """Cycle cost of executing ``op`` on this VPU.

        The single source of the timing formula — ``execute`` and the
        replay compiler both charge through here, so the fast and slow
        paths cannot drift apart.  Traits come from the precomputed
        enum-member attributes (no per-op dict hashing).
        """
        opcode = op.opcode
        vl = op.vl
        if vl == 0:
            return self.STARTUP_CYCLES
        if opcode.strided and op.stride != 1:
            throughput = self.lanes
        else:
            throughput = self.lanes * op.etype.elems_per_word
        cycles = self.STARTUP_CYCLES + -(-vl // throughput)  # ceil division
        if opcode.traits.is_reduction:
            cycles += self._reduction_cycles
        return cycles

    # -- functional execution ------------------------------------------------

    def execute(self, op: VectorOp) -> int:
        """Execute ``op`` functionally; return its cycle cost."""
        opcode = op.opcode
        etype = op.etype
        traits = opcode.traits  # hoisted: plain attribute, no enum hashing
        vl = op.vl
        cycles = self.op_cycles(op)
        # hot path: counters are monotonic by construction, bump directly
        self._c_ops.value += 1
        self._c_cycles.value += cycles
        self._c_elems.value += vl
        if vl == 0:
            return cycles

        dtype = etype.np_dtype
        dst_view = self.vrf.view(op.vd, etype)
        dst = dst_view[op.vd_offset : op.vd_offset + vl]
        if len(dst) != vl:
            raise ValueError(
                f"vl={vl} at vd_offset={op.vd_offset} overflows register {op.vd}"
            )

        if opcode is VectorOpcode.VCLEAR:
            dst[:] = 0
            return cycles

        src = self._gather(op.vs1, etype, vl, op.offset, op.stride, op.vd)
        # vs2 is fetched only by the two-source opcode forms
        other = (
            self.vrf.view(op.vs2, etype)[:vl]
            if traits.n_vs_registers == 2
            else None
        )

        if opcode is VectorOpcode.VMV:
            dst[:] = src
        elif opcode is VectorOpcode.VADD_VV:
            dst[:] = (src.astype(np.int64) + other.astype(np.int64)).astype(dtype)
        elif opcode is VectorOpcode.VMUL_VV:
            dst[:] = (src.astype(np.int64) * other.astype(np.int64)).astype(dtype)
        elif opcode is VectorOpcode.VMACC_VS:
            acc = dst.astype(np.int64) + src.astype(np.int64) * int(op.scalar)
            dst[:] = acc.astype(dtype)
        elif opcode is VectorOpcode.VMUL_VS:
            dst[:] = (src.astype(np.int64) * int(op.scalar)).astype(dtype)
        elif opcode is VectorOpcode.VADD_VS:
            dst[:] = (src.astype(np.int64) + int(op.scalar)).astype(dtype)
        elif opcode is VectorOpcode.VMAX_VV:
            dst[:] = np.maximum(dst, src)
        elif opcode is VectorOpcode.VMAX_VS:
            dst[:] = np.maximum(src, dtype(op.scalar))
        elif opcode is VectorOpcode.VMIN_VS:
            dst[:] = np.minimum(src, dtype(op.scalar))
        elif opcode is VectorOpcode.VSRA_VS:
            dst[:] = src >> int(op.scalar)
        elif opcode is VectorOpcode.VREDSUM:
            # Wrap the int64 total straight through the element dtype (the
            # old ``& -1`` int64 mask was a no-op on the way to the cast).
            total = src.astype(np.int64).sum()
            dst_view[op.vd_offset] = total.astype(dtype)
        else:  # pragma: no cover - enum is closed
            raise NotImplementedError(opcode)
        return cycles

    def _gather(
        self, vs: int, etype: ElementType, vl: int, offset: int, stride: int,
        vd: int = -1,
    ) -> np.ndarray:
        view = self.vrf.view(vs, etype)
        if stride == 1:
            src = view[offset : offset + vl]
            if len(src) != vl:
                raise ValueError(
                    f"vl={vl} at offset={offset} overflows source register {vs}"
                )
            return src.copy() if vs == vd else src
        last = offset + stride * (vl - 1)
        if last >= len(view):
            raise ValueError(
                f"strided access (off={offset}, stride={stride}, vl={vl}) "
                f"overflows source register {vs}"
            )
        # Strided slice *view* instead of a fancy-index temp array: no
        # per-op index-array allocation.  Only reads aliasing the
        # destination register still need a defensive copy (``dst[:] =
        # src`` with overlapping views is undefined).
        src = view[offset : last + 1 : stride]
        return src.copy() if vs == vd else src
