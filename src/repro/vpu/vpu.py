"""The VPU execution model: functional semantics + lane-accurate timing.

Timing model (from the NM-Carus microarchitecture the paper builds on):

* a vector instruction streams its elements through ``lanes`` 32-bit
  lanes; contiguous (stride-1) accesses pack ``4 / element_bytes``
  elements per lane per cycle (sub-word SIMD), so the throughput is
  ``lanes * elems_per_word`` elements/cycle;
* strided/gather accesses defeat packing: one element per lane per cycle;
* every instruction pays a small fixed ``startup`` cost (decode + first
  operand fetch);
* reductions pay an extra ``log2(lanes)`` merge cost.

Functional semantics use wrap-around two's-complement arithmetic in the
element width, matching the RTL datapath.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.sim.stats import StatsRegistry
from repro.vpu.visa import ElementType, OP_TRAITS, STRIDED_SOURCES, VectorOp, VectorOpcode
from repro.vpu.vrf import VectorRegisterFile


class Vpu:
    """One near-memory vector processing unit."""

    STARTUP_CYCLES = 2

    def __init__(
        self,
        index: int,
        vrf: VectorRegisterFile,
        lanes: int,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        if lanes < 1:
            raise ValueError("a VPU needs at least one lane")
        self.index = index
        self.vrf = vrf
        self.lanes = lanes
        self.stats = stats or StatsRegistry()

    # -- timing ----------------------------------------------------------

    def elems_per_cycle(self, etype: ElementType, stride: int = 1) -> int:
        """Element throughput for the given element type and access stride."""
        if stride == 1:
            return self.lanes * etype.elems_per_word
        return self.lanes

    def op_cycles(self, op: VectorOp) -> int:
        """Cycle cost of executing ``op`` on this VPU."""
        if op.vl == 0:
            return self.STARTUP_CYCLES
        stride = op.stride if op.opcode in STRIDED_SOURCES else 1
        throughput = self.elems_per_cycle(op.etype, stride)
        cycles = self.STARTUP_CYCLES + math.ceil(op.vl / throughput)
        if OP_TRAITS[op.opcode].is_reduction:
            cycles += max(1, int(math.log2(self.lanes)) if self.lanes > 1 else 1)
        return cycles

    # -- functional execution ------------------------------------------------

    def execute(self, op: VectorOp) -> int:
        """Execute ``op`` functionally; return its cycle cost."""
        cycles = self.op_cycles(op)
        self.stats.counter(f"vpu{self.index}.ops").add()
        self.stats.counter(f"vpu{self.index}.cycles").add(cycles)
        self.stats.counter(f"vpu{self.index}.elems").add(op.vl)
        if op.vl == 0:
            return cycles

        etype = op.etype
        dtype = etype.np_dtype
        dst_view = self.vrf.view(op.vd, etype)
        dst = dst_view[op.vd_offset : op.vd_offset + op.vl]
        if len(dst) != op.vl:
            raise ValueError(
                f"vl={op.vl} at vd_offset={op.vd_offset} overflows register {op.vd}"
            )

        if op.opcode is VectorOpcode.VCLEAR:
            dst[:] = 0
            return cycles

        src = self._gather(op.vs1, etype, op.vl, op.offset, op.stride)
        # vs2 is fetched only by the two-source opcode forms
        other = (
            self.vrf.view(op.vs2, etype)[: op.vl]
            if OP_TRAITS[op.opcode].n_vs_registers == 2
            else None
        )

        if op.opcode is VectorOpcode.VMV:
            dst[:] = src
        elif op.opcode is VectorOpcode.VADD_VV:
            dst[:] = (src.astype(np.int64) + other.astype(np.int64)).astype(dtype)
        elif op.opcode is VectorOpcode.VMUL_VV:
            dst[:] = (src.astype(np.int64) * other.astype(np.int64)).astype(dtype)
        elif op.opcode is VectorOpcode.VMACC_VS:
            acc = dst.astype(np.int64) + src.astype(np.int64) * int(op.scalar)
            dst[:] = acc.astype(dtype)
        elif op.opcode is VectorOpcode.VMUL_VS:
            dst[:] = (src.astype(np.int64) * int(op.scalar)).astype(dtype)
        elif op.opcode is VectorOpcode.VADD_VS:
            dst[:] = (src.astype(np.int64) + int(op.scalar)).astype(dtype)
        elif op.opcode is VectorOpcode.VMAX_VV:
            dst[:] = np.maximum(dst, src)
        elif op.opcode is VectorOpcode.VMAX_VS:
            dst[:] = np.maximum(src, dtype(op.scalar))
        elif op.opcode is VectorOpcode.VMIN_VS:
            dst[:] = np.minimum(src, dtype(op.scalar))
        elif op.opcode is VectorOpcode.VSRA_VS:
            dst[:] = src >> int(op.scalar)
        elif op.opcode is VectorOpcode.VREDSUM:
            total = int(src.astype(np.int64).sum())
            dst_view[op.vd_offset] = dtype(np.int64(total) & np.int64(-1))
        else:  # pragma: no cover - enum is closed
            raise NotImplementedError(op.opcode)
        return cycles

    def _gather(
        self, vs: int, etype: ElementType, vl: int, offset: int, stride: int
    ) -> np.ndarray:
        view = self.vrf.view(vs, etype)
        if stride == 1:
            src = view[offset : offset + vl]
            if len(src) != vl:
                raise ValueError(
                    f"vl={vl} at offset={offset} overflows source register {vs}"
                )
            return src.copy()
        indices = offset + stride * np.arange(vl)
        if indices[-1] >= len(view):
            raise ValueError(
                f"strided access (off={offset}, stride={stride}, vl={vl}) "
                f"overflows source register {vs}"
            )
        return view[indices]
