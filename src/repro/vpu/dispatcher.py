"""The eCPU-to-VPU dispatcher (paper section III: "a dispatcher carries
out the distribution to the selected VPUs, keeping the architecture
modular and scalable").

The dispatcher owns all VPU instances, tracks which kernel currently
occupies each, and charges the per-instruction *issue* cost: the eCPU's
software loop that prepares and dispatches each vector instruction.
Dispatch and VPU execution are pipelined — while the VPU crunches one
vector instruction the eCPU prepares the next — so the cost of one issued
operation is ``max(issue_cycles, vpu_cycles)`` once the pipeline is full.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.stats import StatsRegistry
from repro.vpu.vpu import Vpu
from repro.vpu.visa import VectorOp


class Dispatcher:
    """Routes vector instructions from the eCPU to the selected VPU."""

    def __init__(
        self,
        vpus: List[Vpu],
        issue_cycles: int,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        if not vpus:
            raise ValueError("dispatcher needs at least one VPU")
        self.vpus = vpus
        self.issue_cycles = issue_cycles
        self.stats = stats or StatsRegistry()
        self._owner: Dict[int, Optional[int]] = {vpu.index: None for vpu in vpus}
        # counter handles resolved once: dispatch runs per vector instruction
        self._c_ops = self.stats.counter("dispatch.ops")
        self._c_cycles = self.stats.counter("dispatch.cycles")
        self._c_issue_bound = self.stats.counter("dispatch.issue_bound")

    @property
    def n_vpus(self) -> int:
        return len(self.vpus)

    def vpu(self, index: int) -> Vpu:
        return self.vpus[index]

    # -- occupancy tracking (used by the Kernel Scheduler) -----------------

    def claim(self, vpu_index: int, kernel_id: int) -> None:
        if self._owner[vpu_index] is not None:
            raise RuntimeError(
                f"VPU {vpu_index} already claimed by kernel {self._owner[vpu_index]}"
            )
        self._owner[vpu_index] = kernel_id

    def release(self, vpu_index: int) -> None:
        self._owner[vpu_index] = None

    def owner(self, vpu_index: int) -> Optional[int]:
        return self._owner[vpu_index]

    def free_vpus(self) -> List[int]:
        return [index for index, owner in self._owner.items() if owner is None]

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, vpu_index: int, op: VectorOp) -> int:
        """Execute ``op`` on VPU ``vpu_index``; return the pipelined cycle cost."""
        vpu = self.vpus[vpu_index]
        op_cycles = vpu.execute(op)
        issue = self.issue_cycles
        # hot path: counters are monotonic by construction, bump directly
        self._c_ops.value += 1
        if issue >= op_cycles:
            self._c_issue_bound.value += 1
            self._c_cycles.value += issue
            return issue
        self._c_cycles.value += op_cycles
        return op_cycles
