"""The NM-Carus-style custom vector ISA executed inside the cache.

Matrix kernels (paper section IV) are micro-programs built from these
vector-like instructions; the eCPU dispatches them to a VPU which decodes
and executes them in hardware.  The subset here is what the five Table I
kernels need:

=============  =============================================================
``vclear``     vd[0:vl] = 0
``vmv``        vd[0:vl] = vs[off + i*stride]           (gather/slide move)
``vadd.vv``    vd[0:vl] = vs1[...] + vs2[...]
``vmacc.vs``   vd[0:vl] += vs[off + i*stride] * scalar (the conv workhorse)
``vmul.vv``    vd[0:vl] = vs1[...] * vs2[...]
``vmul.vs``    vd[0:vl] = vs[...] * scalar
``vadd.vs``    vd[0:vl] = vs[...] + scalar
``vmax.vv``    vd[0:vl] = max(vd[...], vs[off + i*stride])
``vmax.vs``    vd[0:vl] = max(vs[...], scalar)
``vmin.vs``    vd[0:vl] = min(vs[...], scalar)
``vsra.vs``    vd[0:vl] = vs[...] >> scalar            (arithmetic)
``vredsum``    vd[0]    = sum(vs[0:vl])                (reduction)
=============  =============================================================

All operands use wrap-around two's-complement arithmetic in the element
width, like the hardware datapath.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class ElementType(enum.Enum):
    """Vector element width: the .b/.h/.w suffix of xmnmc and the vector ISA."""

    B = ("b", 1, np.int8)
    H = ("h", 2, np.int16)
    W = ("w", 4, np.int32)

    def __init__(self, suffix: str, nbytes: int, np_dtype: type) -> None:
        self.suffix = suffix
        self.nbytes = nbytes
        self.np_dtype = np_dtype
        #: sub-word SIMD elements packed per 32-bit lane (precomputed:
        #: the VPU timing model reads this per dispatched instruction)
        self.elems_per_word = 4 // nbytes

    @classmethod
    def from_suffix(cls, suffix: str) -> "ElementType":
        for member in cls:
            if member.suffix == suffix:
                return member
        raise ValueError(f"unknown element suffix {suffix!r}")

    @classmethod
    def from_bytes(cls, nbytes: int) -> "ElementType":
        for member in cls:
            if member.nbytes == nbytes:
                return member
        raise ValueError(f"no element type of {nbytes} bytes")



class VectorOpcode(enum.Enum):
    VCLEAR = "vclear"
    VMV = "vmv"
    VADD_VV = "vadd.vv"
    VMUL_VV = "vmul.vv"
    VMACC_VS = "vmacc.vs"
    VMUL_VS = "vmul.vs"
    VADD_VS = "vadd.vs"
    VMAX_VV = "vmax.vv"
    VMAX_VS = "vmax.vs"
    VMIN_VS = "vmin.vs"
    VSRA_VS = "vsra.vs"
    VREDSUM = "vredsum"


#: Opcodes whose source uses the (offset, stride) gather addressing.
STRIDED_SOURCES = frozenset(
    {
        VectorOpcode.VMV,
        VectorOpcode.VMACC_VS,
        VectorOpcode.VMAX_VV,
        VectorOpcode.VADD_VV,
        VectorOpcode.VMUL_VV,
    }
)


@dataclass(frozen=True)
class OpTraits:
    """Static operand metadata for one vector opcode.

    ``n_vs_registers`` is the number of ``vs`` register operands the
    opcode reads (the VPU fetches ``vs2`` only for the two-source
    forms).  ``is_reduction`` marks opcodes that collapse the ``vl``
    elements into ``vd[vd_offset]``: they pay the lane-merge cost in
    the timing model, and the kernel compiler reserves a scratch
    register for their collapsed value when planning register windows
    against the capacity-aware strip-mining budget (see
    ``repro.compiler.lower``).
    """

    n_vs_registers: int  # vs operands read (vmax.vv reads vd + vs1: one vs)
    is_reduction: bool  # collapses vl elements into vd[vd_offset]


OP_TRAITS = {
    VectorOpcode.VCLEAR: OpTraits(0, False),
    VectorOpcode.VMV: OpTraits(1, False),
    VectorOpcode.VADD_VV: OpTraits(2, False),
    VectorOpcode.VMUL_VV: OpTraits(2, False),
    VectorOpcode.VMACC_VS: OpTraits(1, False),
    VectorOpcode.VMUL_VS: OpTraits(1, False),
    VectorOpcode.VADD_VS: OpTraits(1, False),
    VectorOpcode.VMAX_VV: OpTraits(1, False),
    VectorOpcode.VMAX_VS: OpTraits(1, False),
    VectorOpcode.VMIN_VS: OpTraits(1, False),
    VectorOpcode.VSRA_VS: OpTraits(1, False),
    VectorOpcode.VREDSUM: OpTraits(1, True),
}

# The VPU execute loop runs per vector instruction; looking traits up by
# enum key pays a (pure-Python) Enum.__hash__ per access, so the static
# metadata is also mirrored onto the enum members as plain attributes.
for _opcode, _traits in OP_TRAITS.items():
    _opcode.traits = _traits
    _opcode.strided = _opcode in STRIDED_SOURCES
del _opcode, _traits


@dataclass(frozen=True)
class VectorOp:
    """One vector instruction as dispatched by the eCPU to a VPU.

    Attributes:
        opcode: operation selector.
        etype: element width.
        vd: destination vector register index.
        vs1: first source register (ignored by vclear).
        vs2: second source register (``.vv`` forms only).
        vl: vector length in elements.
        scalar: the ``.vs`` scalar operand.
        offset: starting element offset applied to vs1.
        stride: element stride applied to vs1 (1 = contiguous); strided
            access defeats sub-word packing, which the timing model
            reflects.
        vd_offset: starting element offset applied to vd.
    """

    opcode: VectorOpcode
    etype: ElementType
    vd: int
    vs1: int = 0
    vs2: int = 0
    vl: int = 0
    scalar: int = 0
    offset: int = 0
    stride: int = 1
    vd_offset: int = 0

    def __post_init__(self) -> None:
        if self.vl < 0:
            raise ValueError("vector length must be non-negative")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")
