"""Near-memory Vector Processing Units (NM-Carus instances, paper III).

Each VPU owns a slice of the LLC data array as its vector register file
(``vregs_per_vpu`` registers of ``line_bytes`` each) and executes the
custom vector-like RISC-V extension of the NM-Carus IP: vector-vector and
vector-scalar arithmetic over 8/16/32-bit elements, processed by
``lanes`` 32-bit lanes with sub-word SIMD packing (4/2/1 elements per
lane per cycle for b/h/w).
"""

from repro.vpu.visa import ElementType, VectorOp
from repro.vpu.vrf import VectorRegisterFile
from repro.vpu.vpu import Vpu
from repro.vpu.dispatcher import Dispatcher

__all__ = ["ElementType", "VectorOp", "VectorRegisterFile", "Vpu", "Dispatcher"]
