"""The vector register file: typed views over a VPU's cache lines.

A vector register *is* a cache line (paper III-A.1).  The VRF wraps the
``CacheLine`` objects of one VPU's slice and hands out numpy views in the
requested element type, so VPU writes are visible to the cache controller
(and thus the host) without copies.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cache.line import CacheLine
from repro.vpu.visa import ElementType


class VectorRegisterFile:
    """Typed accessors over one VPU's vector registers."""

    def __init__(self, lines: List[CacheLine]) -> None:
        if not lines:
            raise ValueError("a VRF needs at least one line")
        self.lines = lines
        self.line_bytes = lines[0].size
        # Typed views are pure aliases of the (never-reallocated) line
        # buffers, built once per (element width, register) and reused:
        # the VPU execute loop would otherwise allocate a fresh numpy view
        # object per operand fetch.  Keyed by element *width* (a plain
        # int) rather than the ElementType enum — enum hashing is a
        # pure-Python call and this lookup runs several times per op.
        self._views = {
            etype.nbytes: [line.data.view(etype.np_dtype) for line in lines]
            for etype in ElementType
        }
        # Fault-injection hook (see repro.integrity.inject): when armed it
        # may return a corrupted copy of the values written.  None when no
        # fault plan is armed, so the hot path pays one attribute check.
        self.corruption = None

    @property
    def n_regs(self) -> int:
        return len(self.lines)

    def max_vl(self, etype: ElementType) -> int:
        """Maximum vector length for the element type (one full line)."""
        return self.line_bytes // etype.nbytes

    def view(self, index: int, etype: ElementType) -> np.ndarray:
        """A mutable typed view of the whole register ``index``."""
        if index < 0:
            raise IndexError(f"vector register {index} out of range 0..{self.n_regs - 1}")
        try:
            return self._views[etype.nbytes][index]
        except IndexError:
            raise IndexError(
                f"vector register {index} out of range 0..{self.n_regs - 1}"
            ) from None

    def read(self, index: int, etype: ElementType, vl: int) -> np.ndarray:
        """A copy of the first ``vl`` elements of register ``index``."""
        return self.view(index, etype)[:vl].copy()

    def write(self, index: int, values: np.ndarray, offset: int = 0) -> None:
        """Write ``values`` (typed array) into register ``index`` at element offset."""
        if not 0 <= index < self.n_regs:
            raise IndexError(f"vector register {index} out of range 0..{self.n_regs - 1}")
        try:
            view = self._views[values.dtype.itemsize][index]
        except KeyError:
            raise ValueError(
                f"cannot write {values.dtype} values to register {index}"
            ) from None
        if offset + len(values) > len(view):
            raise ValueError(
                f"write of {len(values)} elements at offset {offset} "
                f"overflows register {index}"
            )
        if self.corruption is not None:
            values = self.corruption.on_vrf_write(index, values, offset)
        view[offset : offset + len(values)] = values

    def fill(self, index: int, value: int, etype: ElementType) -> None:
        self.view(index, etype)[:] = value
