"""Memory subsystem: main memory, OBI-like bus latency model, 2D DMA.

The ARCANE LLC (paper Fig. 1) sits between the host system bus and the
external memories; cache refills, write-backs and matrix-operand
allocation all go through the :class:`~repro.mem.dma.Dma2D` engine
modelled here.
"""

from repro.mem.memory import MainMemory, MainMemoryError, MemoryError
from repro.mem.bus import BusModel
from repro.mem.dma import Dma2D, DmaRequest

__all__ = [
    "MainMemory",
    "MainMemoryError",
    "MemoryError",  # deprecated alias of MainMemoryError
    "BusModel",
    "Dma2D",
    "DmaRequest",
]
