"""X-HEEP-style DMA engine with 2D (strided) transaction support.

Paper section III-A.4: during kernel allocation the eCPU programs 2D DMA
transfers that move operands from main memory into the selected VPU in
the required matrix layout; during write-back it consolidates scattered
matrix-shaped data back into a contiguous array.  The DMA is routed
*through* the LLC controller, which serves each row from the cache on a
hit or from external memory on a miss.

The engine is decoupled from concrete memories: a request carries reader/
writer callables, so the same engine moves bytes between main memory,
cache lines and VPU register files.  Functionally the transfer happens
atomically per row; timing comes from :class:`~repro.mem.bus.BusModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.mem.bus import BusModel
from repro.sim.kernel import Simulator
from repro.sim.stats import StatsRegistry

Reader = Callable[[int, int], bytes]
Writer = Callable[[int, bytes], None]


@dataclass
class DmaRequest:
    """One 2D DMA transaction.

    ``rows`` rows of ``row_bytes`` are copied; after each row the source
    and destination addresses advance by their respective strides (in
    bytes).  A contiguous 1D copy is the special case
    ``rows=1, row_bytes=total``.
    """

    src_addr: int
    dst_addr: int
    row_bytes: int
    rows: int
    src_stride: int = 0  # bytes between consecutive source rows (0 = contiguous)
    dst_stride: int = 0  # bytes between consecutive destination rows
    read: Optional[Reader] = None
    write: Optional[Writer] = None
    offchip: bool = False  # whether rows touch external memory (adds latency)
    label: str = ""
    row_hook: Optional[Callable[[int, int, int], None]] = field(default=None, repr=False)
    # row_hook(row_index, src_row_addr, dst_row_addr) lets the LLC controller
    # update cache-line status per row, as the paper's controller does on
    # receiving a DMA request.

    def __post_init__(self) -> None:
        if self.rows < 0 or self.row_bytes < 0:
            raise ValueError("rows and row_bytes must be non-negative")
        if self.src_stride < 0 or self.dst_stride < 0:
            raise ValueError(
                f"DMA strides must be non-negative, got src_stride="
                f"{self.src_stride}, dst_stride={self.dst_stride}"
            )
        if self.src_stride == 0:
            self.src_stride = self.row_bytes
        if self.dst_stride == 0:
            self.dst_stride = self.row_bytes

    @property
    def empty(self) -> bool:
        """True when the transfer moves no bytes (zero rows or zero-byte rows)."""
        return self.rows == 0 or self.row_bytes == 0

    @property
    def total_bytes(self) -> int:
        return self.rows * self.row_bytes


class Dma2D:
    """The DMA engine: functional copy plus cycle-accurate process form."""

    def __init__(self, bus: BusModel, stats: Optional[StatsRegistry] = None) -> None:
        self.bus = bus
        self.stats = stats or StatsRegistry()
        # counter handles resolved once (transfers run per kernel operand row)
        self._c_transfers = self.stats.counter("dma.transfers")
        self._c_bytes = self.stats.counter("dma.bytes")
        self._c_cycles = self.stats.counter("dma.cycles")
        # Fault-injection hook (repro.integrity.inject): when armed it may
        # return a corrupted copy of a row payload in flight.  None when no
        # fault plan is armed — the hot path pays one attribute check.
        self.corruption = None

    def _copy_row(self, request: DmaRequest, row: int) -> None:
        src = request.src_addr + row * request.src_stride
        dst = request.dst_addr + row * request.dst_stride
        if request.row_hook is not None:
            request.row_hook(row, src, dst)
        payload = request.read(src, request.row_bytes)
        if len(payload) != request.row_bytes:
            raise RuntimeError(
                f"DMA read returned {len(payload)} bytes, expected {request.row_bytes}"
            )
        if self.corruption is not None:
            payload = self.corruption.on_dma_row(payload)
        request.write(dst, payload)

    def transfer(self, request: DmaRequest) -> int:
        """Execute the whole transfer immediately; return its cycle cost."""
        if request.empty:
            return 0
        for row in range(request.rows):
            self._copy_row(request, row)
        cycles = self.cycles(request)
        self._c_transfers.add()
        self._c_bytes.add(request.total_bytes)
        self._c_cycles.add(cycles)
        return cycles

    def cycles(self, request: DmaRequest) -> int:
        """Cycle cost of a transfer without executing it."""
        return self.bus.transfer_2d_cycles(
            request.row_bytes, request.rows, offchip=request.offchip
        )

    def transfer_process(self, sim: Simulator, request: DmaRequest) -> Generator:
        """Event-simulation process: copies row by row, advancing time per row.

        Copying row-by-row (instead of all-at-once followed by one big
        wait) matters for correctness of the hazard model: a host access
        that unblocks halfway through an allocation must observe the rows
        already copied and not the ones still pending.
        """
        if request.empty:
            return 0
        per_row = self.bus.transfer_cycles(request.row_bytes, offchip=request.offchip)
        for row in range(request.rows):
            self._copy_row(request, row)
            yield per_row
        self._c_transfers.add()
        self._c_bytes.add(request.total_bytes)
        self._c_cycles.add(per_row * request.rows)
        return per_row * request.rows
