"""OBI-like system bus latency model.

X-HEEP uses a 32-bit OBI crossbar.  We model latency, not wiring: a
transfer of N bytes costs ``request_latency + ceil(N / width_bytes)``
cycles, with a distinct (higher) latency for off-chip memory behind the
LLC.  The numbers are parameters of :class:`BusModel`, set from
:class:`repro.core.config.ArcaneConfig` and documented in
:mod:`repro.eval.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BusModel:
    """Cycle-cost calculator for bus transactions.

    Attributes:
        width_bytes: datapath width (4 for the 32-bit OBI bus).
        request_latency: fixed cycles to arbitrate + address phase.
        offchip_latency: extra fixed cycles for transactions that reach the
            external flash/PSRAM behind the LLC (cache refills/writebacks).
        burst: whether back-to-back beats stream at 1 beat/cycle (DMA)
            or each beat pays the request latency (CPU single accesses).
    """

    width_bytes: int = 4
    request_latency: int = 1
    offchip_latency: int = 10
    burst: bool = True

    def beats(self, n_bytes: int) -> int:
        """Number of datapath beats for ``n_bytes``."""
        if n_bytes <= 0:
            return 0
        return -(-n_bytes // self.width_bytes)

    def transfer_cycles(self, n_bytes: int, offchip: bool = False) -> int:
        """Cycles for one contiguous transfer of ``n_bytes``."""
        if n_bytes <= 0:
            return 0
        fixed = self.request_latency + (self.offchip_latency if offchip else 0)
        if self.burst:
            return fixed + self.beats(n_bytes)
        return self.beats(n_bytes) * (fixed + 1)

    def transfer_2d_cycles(self, row_bytes: int, rows: int, offchip: bool = False) -> int:
        """Cycles for a 2D transfer: ``rows`` rows of ``row_bytes`` each.

        Each row is one burst (strided source/destination forces an address
        phase per row), matching the X-HEEP 2D DMA behaviour.
        """
        if rows <= 0 or row_bytes <= 0:
            return 0
        return rows * self.transfer_cycles(row_bytes, offchip=offchip)
