"""Byte-addressable main memory backed by a numpy array.

Models the external memory (flash / pseudo-static RAM) behind the ARCANE
LLC as well as the instruction memory of the host MCU.  Accesses are
bounds-checked; the ISS and DMA read/write through the typed accessors.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bitops import sign_extend


class MainMemoryError(RuntimeError):
    """Out-of-range or misaligned access."""


#: Deprecated alias.  The original name shadowed the Python builtin
#: ``MemoryError``, which made ``except MemoryError:`` handlers catch
#: simulator access errors (or vice versa) depending on which name was
#: imported.  Import :class:`MainMemoryError` instead.
MemoryError = MainMemoryError


class MainMemory:
    """A flat little-endian memory region of ``size`` bytes starting at ``base``."""

    def __init__(self, size: int, base: int = 0) -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self.base = base
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)

    def _offset(self, address: int, length: int) -> int:
        offset = address - self.base
        if offset < 0 or offset + length > self.size:
            raise MainMemoryError(
                f"access [{address:#x}, +{length}) outside "
                f"[{self.base:#x}, {self.base + self.size:#x})"
            )
        return offset

    def contains(self, address: int, length: int = 1) -> bool:
        """True when the byte range lies entirely inside this memory."""
        offset = address - self.base
        return 0 <= offset and offset + length <= self.size

    # -- raw block access (DMA, cache line fills) --------------------------

    def read_block(self, address: int, length: int) -> bytes:
        offset = self._offset(address, length)
        return self.data[offset : offset + length].tobytes()

    def write_block(self, address: int, payload: bytes) -> None:
        offset = self._offset(address, len(payload))
        self.data[offset : offset + len(payload)] = np.frombuffer(
            bytes(payload), dtype=np.uint8
        )

    # -- typed scalar access (ISS) ----------------------------------------

    def read_u8(self, address: int) -> int:
        return int(self.data[self._offset(address, 1)])

    def read_u16(self, address: int) -> int:
        offset = self._offset(address, 2)
        return int.from_bytes(self.data[offset : offset + 2].tobytes(), "little")

    def read_u32(self, address: int) -> int:
        offset = self._offset(address, 4)
        return int.from_bytes(self.data[offset : offset + 4].tobytes(), "little")

    def read_s8(self, address: int) -> int:
        return sign_extend(self.read_u8(address), 8)

    def read_s16(self, address: int) -> int:
        return sign_extend(self.read_u16(address), 16)

    def write_u8(self, address: int, value: int) -> None:
        self.data[self._offset(address, 1)] = value & 0xFF

    def write_u16(self, address: int, value: int) -> None:
        offset = self._offset(address, 2)
        self.data[offset : offset + 2] = np.frombuffer(
            (value & 0xFFFF).to_bytes(2, "little"), dtype=np.uint8
        )

    def write_u32(self, address: int, value: int) -> None:
        offset = self._offset(address, 4)
        self.data[offset : offset + 4] = np.frombuffer(
            (value & 0xFFFFFFFF).to_bytes(4, "little"), dtype=np.uint8
        )

    # -- numpy matrix views (test fixtures, allocator) ----------------------

    def write_matrix(self, address: int, matrix: np.ndarray) -> None:
        """Store a 2-D numpy integer matrix row-major at ``address``."""
        contiguous = np.ascontiguousarray(matrix)
        self.write_block(address, contiguous.tobytes())

    def read_matrix(self, address: int, rows: int, cols: int, dtype: np.dtype) -> np.ndarray:
        """Load a row-major matrix of the given shape and dtype."""
        dtype = np.dtype(dtype)
        raw = self.read_block(address, rows * cols * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).reshape(rows, cols).copy()
