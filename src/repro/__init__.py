"""ARCANE reproduction: adaptive RISC-V cache with near-memory extensions.

Functional/cycle-level reproduction of "ARCANE: Adaptive RISC-V Cache
Architecture for Near-memory Extensions" (DAC 2025).  See DESIGN.md for
the system inventory and EXPERIMENTS.md for the paper-vs-measured record.

Public entry points:

* :class:`repro.ArcaneSystem` / :class:`repro.ArcaneConfig` -- the smart
  LLC system model and its configuration (the primary contribution);
* :mod:`repro.baselines` -- CV32E40X scalar and CV32E40PX packed-SIMD
  baselines (ISS-backed) plus the conventional-cache system;
* :mod:`repro.compiler` -- the kernel compiler: author new complex
  instructions as loop nests over matrix elements, schedule them
  (shard / strip-mine / unroll / vectorize) and lower them to
  library-registrable kernels.  ``install_compiled`` adds six compiled
  workloads (GeMM, depthwise conv, fully-connected, element-wise
  add/mul, row-sum) above the five handwritten Table I slots — the
  paper's software-based ISA extensibility at compiler scale (see
  ``examples/compiled_kernel.py``);
* :mod:`repro.eval` -- area model, throughput comparisons and the data
  series behind every table/figure of the paper.
"""

from repro.core.api import Matrix
from repro.core.config import (
    ArcaneConfig,
    PRESET_2_LANES,
    PRESET_4_LANES,
    PRESET_8_LANES,
)
from repro.core.system import ArcaneSystem, HostProgram, RunReport

__version__ = "1.0.0"

__all__ = [
    "Matrix",
    "ArcaneConfig",
    "ArcaneSystem",
    "HostProgram",
    "RunReport",
    "PRESET_2_LANES",
    "PRESET_4_LANES",
    "PRESET_8_LANES",
    "__version__",
]
