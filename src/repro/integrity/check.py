"""Per-request integrity verdicts: the policy ladder, digests and coverage.

The serving stack supports four integrity policies, in increasing cost:

* ``off``    — no checking; the pre-existing behaviour, bit for bit.
* ``digest`` — blake2b output digests remembered per request payload in
  a bounded :class:`DigestLedger`; a repeated request whose digest
  diverges from the remembered one flags silent corruption.  Catches
  only repeats, but costs one hash.
* ``abft``   — checksum-residue verification for the gemm family
  (:mod:`repro.integrity.abft`): detection without a golden model and
  single-element correction.  Kernels outside the gemm family fall back
  to the digest ledger.
* ``dmr``    — dual modular redundancy: the worker executes the request
  twice (second run with the replay fast path suspended) and compares
  outputs byte for byte.  Implemented in the worker; this module only
  names the policy.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.compiler import FUNC5_CGEMM, FUNC5_FC
from repro.integrity.abft import verify_gemm

if TYPE_CHECKING:  # structural only: anything with .kind and .payload works
    from repro.serve.request import InferenceRequest

#: the IntegrityPolicy ladder, cheapest first
INTEGRITY_POLICIES = ("off", "digest", "abft", "dmr")

#: func5 values whose outputs the gemm ABFT covers (gemm, cgemm, fc)
ABFT_FUNC5 = (0, FUNC5_CGEMM, FUNC5_FC)


def coerce_policy(value) -> str:
    """Normalise a user-supplied policy value; None means ``off``."""
    if value is None:
        return "off"
    policy = str(value).lower()
    if policy not in INTEGRITY_POLICIES:
        raise ValueError(
            f"unknown integrity policy {value!r}; expected one of {INTEGRITY_POLICIES}"
        )
    return policy


def abft_operands(request: InferenceRequest) -> Optional[tuple]:
    """``(a, b, c, alpha, beta)`` when the request's final output is a
    gemm-family product the ABFT residues can verify, else None.

    Graph requests are never covered — their final output is a composite
    of several kernels — and neither are convolutions; those fall back
    to digest/DMR checking.
    """
    payload = request.payload
    if request.kind == "gemm":
        return (
            payload["a"],
            payload["b"],
            payload["c"],
            payload["alpha"],
            payload["beta"],
        )
    if request.kind == "kernel":
        func5 = payload["func5"]
        if func5 in (0, FUNC5_CGEMM):
            a, b, c = payload["inputs"]
            params = payload.get("params") or ()
            alpha = params[0] if len(params) > 0 else 1
            beta = params[1] if len(params) > 1 else 0
            return a, b, c, alpha, beta
        if func5 == FUNC5_FC:
            x, w, bias = payload["inputs"]
            return x, w, bias, 1, 1
    return None


def covered(request: InferenceRequest) -> bool:
    """True when ABFT can verify this request without a golden model."""
    return abft_operands(request) is not None


def _update_array(h: "hashlib._Hash", array: np.ndarray) -> None:
    arr = np.ascontiguousarray(array)
    h.update(str(arr.shape).encode())
    h.update(arr.dtype.str.encode())
    h.update(arr.tobytes())


def request_digest(request: InferenceRequest) -> bytes:
    """A stable content digest of everything that determines the output."""
    h = hashlib.blake2b(digest_size=16)
    h.update(request.kind.encode())
    payload = request.payload
    if request.kind == "gemm":
        for key in ("a", "b", "c"):
            _update_array(h, payload[key])
        h.update(repr((int(payload["alpha"]), int(payload["beta"]))).encode())
    elif request.kind == "kernel":
        h.update(repr((payload["func5"], tuple(payload.get("params") or ()))).encode())
        h.update(repr((tuple(payload["out_shape"]), str(payload.get("dtype")))).encode())
        for array in payload["inputs"]:
            _update_array(h, array)
    elif request.kind == "conv_layer":
        for key in sorted(payload):
            value = payload[key]
            h.update(key.encode())
            if isinstance(value, np.ndarray):
                _update_array(h, value)
            else:
                h.update(repr(value).encode())
    else:  # graph
        for name in sorted(payload["inputs"]):
            h.update(name.encode())
            _update_array(h, payload["inputs"][name])
        h.update(repr(payload["nodes"]).encode())
        h.update(str(payload["output"]).encode())
    return h.digest()


def output_digest(output: np.ndarray) -> bytes:
    """Byte-exact digest of a result array."""
    h = hashlib.blake2b(digest_size=16)
    _update_array(h, output)
    return h.digest()


class DigestLedger:
    """Bounded memory of ``request digest -> output digest`` pairs.

    Serving workers reset to a cold heap between requests, so a repeated
    request payload must produce a byte-identical output; a divergence
    on a repeat is silent corruption in one of the two runs.  On a
    mismatch the entry is evicted — the ledger cannot tell which run was
    the corrupt one, so it forgets both and relearns from the retry.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("ledger capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[bytes, bytes]" = OrderedDict()
        self.stats = {"recorded": 0, "confirmed": 0, "mismatched": 0}

    def __len__(self) -> int:
        return len(self._entries)

    def observe(self, key: bytes, digest: bytes) -> bool:
        """Record or compare one output digest; True means *mismatch*."""
        seen = self._entries.get(key)
        if seen is None:
            self._entries[key] = digest
            self.stats["recorded"] += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return False
        self._entries.move_to_end(key)
        if seen != digest:
            del self._entries[key]
            self.stats["mismatched"] += 1
            return True
        self.stats["confirmed"] += 1
        return False


@dataclass(frozen=True)
class IntegrityVerdict:
    """Outcome of checking one output: ``clean``, ``corrected`` (ABFT
    repaired a single element; ``output`` holds the fixed array) or
    ``corrupt`` (unrepairable; the worker raises and recovery begins)."""

    status: str
    output: Optional[np.ndarray]
    detail: Optional[str] = None
    method: Optional[str] = None


def check_output(
    request: InferenceRequest,
    output: np.ndarray,
    policy: str,
    ledger: Optional[DigestLedger] = None,
) -> IntegrityVerdict:
    """Apply the per-request portion of an integrity policy.

    ``dmr``'s shadow execution happens in the worker (it needs the
    machine); here ``dmr`` gets the same ABFT/digest screening as
    ``abft`` so cheap detection still runs first.
    """
    if policy == "off":
        return IntegrityVerdict("clean", output)
    if policy in ("abft", "dmr"):
        operands = abft_operands(request)
        if operands is not None:
            status, checked = verify_gemm(*operands, output)
            if status == "corrupt":
                return IntegrityVerdict(
                    "corrupt", None, "ABFT checksum residue nonzero", "abft"
                )
            return IntegrityVerdict(status, checked, method="abft")
    if ledger is not None:
        if ledger.observe(request_digest(request), output_digest(output)):
            return IntegrityVerdict(
                "corrupt", None, "output digest diverged from prior run", "digest"
            )
    return IntegrityVerdict("clean", output)
