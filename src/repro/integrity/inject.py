"""Hardware-level silent-data-corruption injection.

The :class:`CorruptionSurface` is the worker-side applicator for the
data-corruption fault clauses (``flip``, ``dma_corrupt``, ``vrf_flip``,
``stuck_line``).  *Whether* a clause fires and *which* site it hits are
decided in the dispatch parent from seeded rng streams hashed over
``(fault_seed, request_id, attempt, kind salt)`` — see
:meth:`repro.serve.faults.FaultInjector.corruption_for` — so injections
are order-independent and bit-reproducible across pool sizes and
process counts.  The surface only turns those parent-drawn
:class:`CorruptionDirective` numbers into actual flipped bits through
narrow hooks:

* ``flip``        — one bit in the LLC-resident bytes of a kernel's
  operands, flipped right after the launch is scheduled (and before the
  replay key is computed, so a corrupt operand keys its own recording
  rather than poisoning the clean one);
* ``dma_corrupt`` — one bit in one row payload moved by the allocator's
  lock-protected DMA transfers (loads *and* write-backs);
* ``vrf_flip``    — one bit in the values of one VPU register-file
  write;
* ``stuck_line``  — a cache line freezes: reads return a byte snapshot
  taken at fault onset, regardless of later writes.  Stuck lines model
  a failed storage cell and survive disarm — only rebuilding the worker
  (fresh :class:`~repro.core.system.ArcaneSystem`) replaces the silicon.

Every hook hangs off a ``corruption`` attribute that is ``None`` unless
a plan armed it, so the fault-free paths pay one attribute check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

import numpy as np

#: data-corruption clause kinds (the legacy availability kinds live in
#: repro.serve.faults.FAULT_KINDS)
CORRUPTION_KINDS = ("flip", "dma_corrupt", "vrf_flip", "stuck_line")

#: per-kind salt mixed into the parent's rng stream key.  Keeping the
#: corruption draws on salted streams (and the legacy kill/transient/slow
#: draws on the unsalted ``(seed, request, attempt)`` stream) means adding
#: a corruption clause to a plan never perturbs the legacy draws.
SITE_SALTS = {"flip": 0x11, "dma_corrupt": 0x22, "vrf_flip": 0x33, "stuck_line": 0x44}

#: dma_corrupt targets row-movement event ``site % 16`` of the attempt; a
#: fixed modulus keeps the target independent of the (shape-dependent)
#: total row count, so a given seed names the same event everywhere.  If
#: the attempt moves fewer rows the directive simply never fires.
DMA_EVENT_MODULO = 16

#: vrf_flip targets register-file write event ``site % 32``, same scheme.
VRF_EVENT_MODULO = 32


@dataclass(frozen=True)
class CorruptionDirective:
    """One corruption to apply during one attempt.

    ``site`` and ``value`` are raw 63-bit draws from the parent's salted
    stream; the surface reduces them modulo whatever geometry the hit
    site actually has (operand bytes, payload bits, line count).
    """

    kind: str
    site: int
    value: int

    def __post_init__(self) -> None:
        if self.kind not in CORRUPTION_KINDS:
            raise ValueError(f"unknown corruption kind {self.kind!r}")
        if self.site < 0 or self.value < 0:
            raise ValueError("corruption draws must be non-negative")


class CorruptionSurface:
    """Applies armed directives through the simulator's narrow hooks."""

    def __init__(self, llc) -> None:
        self.llc = llc
        #: what actually fired this attempt (kind, site details); read by
        #: the serving worker after dispatch, reset on arm()
        self.events: List[Dict[str, Any]] = []
        self.armed = False
        self._flip: CorruptionDirective | None = None
        self._dma_target = -1
        self._dma_bit = 0
        self._dma_count = 0
        self._vrf_target = -1
        self._vrf_bit = 0
        self._vrf_count = 0

    # -- lifecycle -----------------------------------------------------------

    def arm(self, directives: Sequence[CorruptionDirective]) -> None:
        """Attach hooks for one attempt's directives (replaces any prior)."""
        self.disarm()
        self.events = []
        runtime = self.llc.runtime
        for directive in directives:
            if directive.kind == "flip":
                self._flip = directive
                runtime.scheduler.corruption = self
            elif directive.kind == "dma_corrupt":
                self._dma_target = directive.site % DMA_EVENT_MODULO
                self._dma_bit = directive.value
                self._dma_count = 0
                runtime.allocator.corruption = self
            elif directive.kind == "vrf_flip":
                self._vrf_target = directive.site % VRF_EVENT_MODULO
                self._vrf_bit = directive.value
                self._vrf_count = 0
                for vpu in self.llc.vpus:
                    vpu.vrf.corruption = self
            else:  # stuck_line (__post_init__ rejects anything else)
                self._stick_line(directive)
        self.armed = True

    def disarm(self) -> None:
        """Detach all hooks.  Stuck lines deliberately stay stuck — a
        failed storage cell outlives the request that exposed it; only a
        worker rebuild installs fresh silicon."""
        runtime = self.llc.runtime
        runtime.scheduler.corruption = None
        runtime.allocator.corruption = None
        for vpu in self.llc.vpus:
            vpu.vrf.corruption = None
        self._flip = None
        self._dma_target = -1
        self._vrf_target = -1
        self.armed = False

    # -- hooks (called from the simulator while armed) ----------------------

    def on_kernel(self, kernel, controller) -> None:
        """flip: XOR one bit of the first scheduled kernel's operand bytes.

        Runs after scheduling, before the replay key digest — the flip is
        part of the operand content the key hashes, so the corrupt run
        records under its own key and cannot poison the clean entry.
        """
        directive = self._flip
        if directive is None:
            return
        regions = [
            (binding.address, binding.end_address - binding.address)
            for binding in kernel.sources
        ]
        if kernel.dest is not None:
            regions.append(
                (kernel.dest.address, kernel.dest.end_address - kernel.dest.address)
            )
        total_bytes = sum(length for _, length in regions)
        if total_bytes == 0:
            return
        self._flip = None  # one flip per armed attempt
        byte_index, bit = divmod(directive.site % (total_bytes * 8), 8)
        for base, length in regions:
            if byte_index < length:
                address = base + byte_index
                break
            byte_index -= length
        original = controller.peek(address, 1)[0]
        controller.poke(address, bytes([original ^ (1 << bit)]))
        self.events.append(
            {"kind": "flip", "kernel": kernel.name, "address": address, "bit": bit}
        )

    def on_dma_row(self, payload: bytes) -> bytes:
        """dma_corrupt: XOR one bit of the targeted row-movement payload."""
        if self._dma_target < 0:
            return payload
        event = self._dma_count
        self._dma_count += 1
        if event != self._dma_target or not payload:
            return payload
        self._dma_target = -1
        byte_index, bit = divmod(self._dma_bit % (len(payload) * 8), 8)
        corrupted = bytearray(payload)
        corrupted[byte_index] ^= 1 << bit
        self.events.append(
            {"kind": "dma_corrupt", "row_event": event, "byte": byte_index, "bit": bit}
        )
        return bytes(corrupted)

    def on_vrf_write(
        self, index: int, values: np.ndarray, offset: int
    ) -> np.ndarray:
        """vrf_flip: XOR one bit of the targeted register-file write."""
        if self._vrf_target < 0:
            return values
        event = self._vrf_count
        self._vrf_count += 1
        if event != self._vrf_target or len(values) == 0:
            return values
        self._vrf_target = -1
        raw = bytearray(np.ascontiguousarray(values).tobytes())
        byte_index, bit = divmod(self._vrf_bit % (len(raw) * 8), 8)
        raw[byte_index] ^= 1 << bit
        self.events.append(
            {
                "kind": "vrf_flip",
                "write_event": event,
                "register": index,
                "byte": byte_index,
                "bit": bit,
            }
        )
        return np.frombuffer(bytes(raw), dtype=values.dtype)

    # -- persistent faults ---------------------------------------------------

    def _stick_line(self, directive: CorruptionDirective) -> None:
        """stuck_line: freeze one cache line at its current contents."""
        lines = self.llc.cache_table.lines
        line = lines[directive.site % len(lines)]
        if line.stuck is None:
            line.stuck = line.data.copy()
            self.events.append({"kind": "stuck_line", "line": line.index})

    def stuck_lines(self) -> List[int]:
        """Indices of currently stuck lines (diagnostics and tests)."""
        return [
            line.index for line in self.llc.cache_table.lines if line.stuck is not None
        ]
