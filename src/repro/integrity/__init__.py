"""Data-integrity layer: silent-data-corruption injection and detection.

Production fleets fear the quiet failure more than the loud one: a bit
flips in a cache line, a DMA payload, or a register file, and the
request completes "successfully" with a wrong answer (the hyperscaler
SDC literature — e.g. Hochschild et al., "Cores that don't count",
HotOS'21 — documents exactly this class at scale).  This package spans
that concern across the simulator and the serving stack:

* :mod:`repro.integrity.inject` — the :class:`CorruptionSurface` that
  applies parent-drawn :class:`CorruptionDirective`\\ s through narrow
  hooks in the memory system, cache lines, DMA/allocator row movement
  and the VPU register files.  All hooks are ``None`` when no plan is
  armed, so the fault-free hot path pays one attribute check.
* :mod:`repro.integrity.abft` — algorithm-based fault tolerance for the
  gemm family (Huang & Abraham's checksum-matrix technique): corruption
  is detected from checksum residues without a golden model, and
  single-element output errors are located and corrected in place.
* :mod:`repro.integrity.check` — the per-request verdict: the
  ``IntegrityPolicy`` ladder (``off | digest | abft | dmr``), blake2b
  output digests with a bounded :class:`DigestLedger`, and the request
  coverage map for ABFT.

Recovery (retry with fastpath bypass, failover, quarantine, fleet-wide
retraction of poisoned replay recordings) lives in :mod:`repro.serve`.
"""

from repro.integrity.abft import correct_single, gemm_residues, verify_gemm
from repro.integrity.check import (
    INTEGRITY_POLICIES,
    DigestLedger,
    IntegrityVerdict,
    abft_operands,
    check_output,
    coerce_policy,
    covered,
    output_digest,
    request_digest,
)
from repro.integrity.inject import (
    CORRUPTION_KINDS,
    DMA_EVENT_MODULO,
    SITE_SALTS,
    VRF_EVENT_MODULO,
    CorruptionDirective,
    CorruptionSurface,
)

__all__ = [
    "CORRUPTION_KINDS",
    "DMA_EVENT_MODULO",
    "INTEGRITY_POLICIES",
    "SITE_SALTS",
    "VRF_EVENT_MODULO",
    "CorruptionDirective",
    "CorruptionSurface",
    "DigestLedger",
    "IntegrityVerdict",
    "abft_operands",
    "check_output",
    "coerce_policy",
    "correct_single",
    "covered",
    "gemm_residues",
    "output_digest",
    "request_digest",
    "verify_gemm",
]
