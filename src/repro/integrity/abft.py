"""Algorithm-based fault tolerance for the gemm family (Huang & Abraham).

The classic ABFT construction augments ``D = alpha * A @ B + beta * C``
with checksum rows and columns: because summation commutes with the
matrix product, the column sums of a correct result must equal
``alpha * (colsum(A) @ B) + beta * colsum(C)`` and the row sums must
equal ``alpha * (A @ rowsum(B)) + beta * rowsum(C)``.  The differences
between the observed sums and those references — the *residues* — are
exactly zero for a correct device result, without ever computing a
golden product.

All checksum arithmetic here runs in the output dtype with numpy's
wrapping integer operations.  The device accumulates in int64 and
truncates to the output width, and truncation mod ``2**w`` is a ring
homomorphism, so the checksum identities hold exactly in the wrapped
ring — there is no tolerance, no epsilon: a nonzero residue *is*
corruption.

Detection coverage for a single flipped storage bit: a flip in ``A``
perturbs the product by a rank-1 update ``±2**b * alpha * e_i @ B[k, :]``
whose nonzero columns all show up in the column residue; a flip in ``B``
symmetrically lands in the row residue; a flip in ``C`` or in the output
itself perturbs one element and shows in both.  Any *manifest*
corruption (one that changes the output at all) therefore flips at
least one residue entry.  Flips that vanish in the ring (e.g. a carry
out of the top bit under an even ``alpha``) leave the output correct
and are benign by definition.

When exactly one row residue entry and one column residue entry are
nonzero and equal, the corruption is a single output element at their
intersection and is corrected in place — the Huang & Abraham locate
step — with a residue re-check guarding against aliased multi-element
damage.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _wrap(value: int, dtype: np.dtype) -> np.ndarray:
    """A scalar reduced into the output ring (matches device truncation)."""
    return np.array(value, dtype=np.int64).astype(dtype)


def gemm_residues(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    alpha: int,
    beta: int,
    out: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Row and column checksum residues of ``out`` vs the ABFT references.

    Both residues are zero vectors iff ``out`` is consistent with
    ``alpha * a @ b + beta * c`` in the output dtype's wrapped ring.
    """
    dtype = out.dtype
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    c = np.asarray(c, dtype=dtype)
    al = _wrap(alpha, dtype)
    be = _wrap(beta, dtype)
    # colsum(D) = alpha * colsum(A) @ B + beta * colsum(C); rowsum dual.
    col_ref = al * (a.sum(axis=0, dtype=dtype) @ b) + be * c.sum(axis=0, dtype=dtype)
    row_ref = al * (a @ b.sum(axis=1, dtype=dtype)) + be * c.sum(axis=1, dtype=dtype)
    col_res = out.sum(axis=0, dtype=dtype) - col_ref
    row_res = out.sum(axis=1, dtype=dtype) - row_ref
    return row_res, col_res


def correct_single(
    out: np.ndarray, row_res: np.ndarray, col_res: np.ndarray
) -> Optional[np.ndarray]:
    """Locate and fix a single corrupted output element, if that is what
    the residues describe: exactly one nonzero entry in each residue and
    the two excesses agree.  Returns the corrected copy, or None when
    the damage is not a lone element (caller escalates instead)."""
    rows = np.flatnonzero(row_res)
    cols = np.flatnonzero(col_res)
    if len(rows) != 1 or len(cols) != 1:
        return None
    if row_res[rows[0]] != col_res[cols[0]]:
        return None
    fixed = out.copy()
    fixed[rows[0], cols[0]] -= row_res[rows[0]]
    return fixed


def verify_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    alpha: int,
    beta: int,
    out: np.ndarray,
) -> Tuple[str, Optional[np.ndarray]]:
    """Full ABFT verdict for one gemm-family output.

    Returns ``("clean", out)`` when the residues vanish, ``("corrected",
    fixed)`` when a single-element error was located, repaired and the
    repaired output re-verified, or ``("corrupt", None)`` when the
    corruption cannot be repaired locally.
    """
    row_res, col_res = gemm_residues(a, b, c, alpha, beta, out)
    if not row_res.any() and not col_res.any():
        return "clean", out
    fixed = correct_single(out, row_res, col_res)
    if fixed is not None:
        row2, col2 = gemm_residues(a, b, c, alpha, beta, fixed)
        if not row2.any() and not col2.any():
            return "corrected", fixed
    return "corrupt", None
