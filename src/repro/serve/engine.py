"""The request-level serving engine: many requests, a pool of ARCANE systems.

The :class:`ServingEngine` multiplexes independent inference requests
over a pool of long-lived, reusable
:class:`~repro.serve.worker.SystemWorker` instances — the throughput
layer the ROADMAP's "serve heavy traffic" north-star asks for, built on
the lifecycle guarantees of ``ArcaneSystem.reset_heap()``:

* **scheduling** — the *offline* path (:meth:`ServingEngine.serve`)
  computes request→worker assignment up front, either balancing
  estimated load by operand volume (``least_loaded``, models a load
  balancer fronting identical accelerator instances) or strictly
  round-robin; the *online* path (:meth:`ServingEngine.serve_online`)
  instead replays seeded request arrivals in simulated time through a
  FIFO admission queue and dispatches each request at its arrival cycle
  to the worker with the smallest actual backlog
  (:mod:`repro.serve.online`);
* **fault tolerance** — both paths speak the
  :mod:`repro.serve.faults` taxonomy: a failed request becomes a
  ``status="failed"`` result instead of aborting the batch, retryable
  failures are retried under a :class:`~repro.serve.faults.RetryPolicy`
  (failing over to a different worker), repeatedly-failing workers are
  quarantined by a :class:`~repro.serve.faults.WorkerSupervisor`, and a
  seeded fault spec (``faults="kill:0.1"``) rehearses all of it
  deterministically;
* **parallelism** — with ``processes > 1`` the pool is partitioned over
  OS processes (each owns its workers outright), so independent
  simulations use multiple host cores; results are identical to the
  serial path because request→worker assignment is computed up front
  (fault injection/retry need the serial pool: ``processes=1``);
* **aggregation** — per-request :class:`RunReport`s fold into a
  :class:`~repro.eval.serving.ServingReport` with throughput, latency
  percentiles and an availability section (success rate, retries,
  failovers, sheds, per-worker health events).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import ArcaneConfig
from repro.eval.serving import ServingReport, build_serving_report
from repro.obs.metrics import build_timeline
from repro.obs.spans import NULL_RECORDER, NullRecorder, SpanRecorder
from repro.serve.faults import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    ServingError,
    WorkerCrashError,
    WorkerSupervisor,
)
from repro.serve.golden import expected_output
from repro.serve.online import OnlineDispatcher
from repro.serve.request import InferenceRequest, RequestResult
from repro.serve.traffic import TrafficSpec, stamp_arrivals
from repro.serve.worker import SystemWorker

POLICIES = ("least_loaded", "round_robin")


def _serve_shard(args: tuple) -> Tuple[float, List[RequestResult]]:
    """Worker-process entry point: serve one shard on its own workers.

    Top-level (picklable) on purpose.  ``assignments`` carries the
    engine's request→worker mapping, so a multi-process run reproduces
    the serial schedule exactly.  The returned seconds time the serving
    loop only — pool construction stays outside, mirroring the serial
    path where the pool is built in ``__init__`` before the timer.
    A structured serving failure becomes a ``status="failed"`` result
    (no retries in shards — retry/failover need the serial pool).
    """
    worker_indices, config, with_compiled, assignments = args
    workers = {
        index: SystemWorker(index, config, with_compiled) for index in worker_indices
    }
    start = time.perf_counter()
    results = []
    for worker_index, request in assignments:
        try:
            results.append(workers[worker_index].run(request))
        except ServingError as error:
            results.append(RequestResult.failure(
                request, "failed",
                f"attempt 1 on worker {worker_index}: {error}",
                worker=worker_index, fault_class=error.fault_class,
            ))
    return time.perf_counter() - start, results


class ServingEngine:
    """Schedules independent requests over a pool of reusable systems."""

    def __init__(
        self,
        pool_size: int = 2,
        config: Optional[ArcaneConfig] = None,
        with_compiled: bool = True,
        policy: str = "least_loaded",
        processes: int = 1,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool needs at least one system")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.pool_size = pool_size
        self.config = config
        self.with_compiled = with_compiled
        self.policy = policy
        self.processes = min(processes, pool_size)
        self._workers: Optional[List[SystemWorker]] = None
        if self.processes == 1:
            self._workers = [
                SystemWorker(i, config, with_compiled) for i in range(pool_size)
            ]

    @property
    def workers(self) -> List[SystemWorker]:
        if self._workers is None:
            raise RuntimeError("worker pool lives in subprocesses (processes > 1)")
        return self._workers

    # -- scheduling -----------------------------------------------------------

    def _assign(
        self, requests: Sequence[InferenceRequest]
    ) -> List[Tuple[int, InferenceRequest]]:
        """Map every request to a worker index before execution.

        ``least_loaded`` balances *estimated* load by operand volume
        (requests are assigned before they run, as a front-end load
        balancer would); ``round_robin`` ignores load entirely.
        """
        assignments: List[Tuple[int, InferenceRequest]] = []
        if self.policy == "round_robin":
            for i, request in enumerate(requests):
                assignments.append((i % self.pool_size, request))
            return assignments
        load = [0] * self.pool_size
        for request in requests:
            worker = min(range(self.pool_size), key=lambda w: (load[w], w))
            load[worker] += self._estimate_cost(request)
            assignments.append((worker, request))
        return assignments

    @staticmethod
    def _estimate_cost(request: InferenceRequest) -> int:
        """Cheap load proxy: total operand elements touched."""
        payload = request.payload

        def size(array: np.ndarray) -> int:
            return int(np.asarray(array).size)

        if request.kind == "gemm":
            return size(payload["a"]) + size(payload["b"]) + size(payload["c"])
        if request.kind == "conv_layer":
            return size(payload["image"]) + size(payload["filters"])
        if request.kind == "kernel":
            return sum(size(m) for m in payload["inputs"])
        if request.kind == "graph":
            return sum(size(m) for m in payload["inputs"].values()) + sum(
                node.out_shape[0] * node.out_shape[1] for node in payload["nodes"]
            )
        return 1

    # -- serving --------------------------------------------------------------

    @staticmethod
    def _check_unique_ids(requests: Sequence[InferenceRequest]) -> None:
        seen_ids = set()
        for request in requests:
            if request.request_id in seen_ids:
                raise ValueError(f"duplicate request_id {request.request_id}")
            seen_ids.add(request.request_id)

    @staticmethod
    def _verify_outputs(
        requests: Sequence[InferenceRequest], results: Sequence[RequestResult]
    ) -> bool:
        """Check every completed output against the golden model.

        Collects *all* mismatching requests (not just the first) and
        reports, per mismatch, how many elements differ and the max
        absolute difference.  Non-completed results (failed/shed) carry
        no output and are skipped.
        """
        mismatches: List[str] = []
        for request, result in zip(requests, results):
            if not result.completed:
                continue
            expected = expected_output(request)
            actual = result.output
            if np.array_equal(actual, expected):
                continue
            if actual is None or actual.shape != expected.shape:
                got = "None" if actual is None else f"shape {actual.shape}"
                mismatches.append(
                    f"request {request.request_id} ({request.kind}): expected "
                    f"shape {expected.shape}, got {got}"
                )
                continue
            diff = np.abs(
                np.asarray(actual, dtype=np.int64)
                - np.asarray(expected, dtype=np.int64)
            )
            mismatches.append(
                f"request {request.request_id} ({request.kind}): "
                f"{int(np.count_nonzero(diff))}/{diff.size} elements differ, "
                f"max |diff| = {int(diff.max())}"
            )
        if mismatches:
            raise AssertionError(
                f"{len(mismatches)} request(s) mismatch the golden model: "
                + "; ".join(mismatches)
            )
        return True

    def serve(
        self,
        requests: Sequence[InferenceRequest],
        verify: bool = False,
        faults: Optional[Union[str, FaultPlan]] = None,
        fault_seed: int = 0,
        retry: Optional[RetryPolicy] = None,
    ) -> ServingReport:
        """Run every request as an offline batch, return the aggregate report.

        Per-request results (with outputs) are kept on ``report.results``;
        with ``verify=True`` every completed output is checked against the
        numpy golden model and any mismatch raises with full detail.

        A request that fails does **not** abort the batch: retryable
        failures are retried (immediately, failing over to a different
        worker) up to ``retry.max_attempts``, and exhausted or
        non-retryable failures become ``status="failed"`` results.  A
        ``faults`` spec (e.g. ``"kill:0.1"``, see
        :meth:`~repro.serve.faults.FaultPlan.parse`) injects seeded
        faults deterministically; it requires the serial pool
        (``processes=1``).
        """
        requests = list(requests)
        self._check_unique_ids(requests)
        plan = FaultPlan.coerce(faults)
        if plan is not None and self.processes != 1:
            raise RuntimeError(
                "fault injection shares injector/supervisor state across the "
                "pool; use processes=1"
            )
        assignments = self._assign(requests)
        # wall time covers serving on a ready pool in both modes: the serial
        # pool is built in __init__, and parallel shards time their serving
        # loop after constructing their workers (max over concurrent shards).
        if self.processes == 1:
            injector = FaultInjector(plan, fault_seed) if plan else None
            policy = retry or RetryPolicy()
            supervisor = WorkerSupervisor(self.pool_size)
            tally: Dict = {"retries": 0, "failovers": 0,
                           "failed_attempts_by_class": {}}
            before = [w.health_snapshot() for w in self.workers]
            start = time.perf_counter()
            results = [
                self._run_with_recovery(
                    request, worker, seq, injector, policy, supervisor, tally
                )
                for seq, (worker, request) in enumerate(assignments)
            ]
            wall = time.perf_counter() - start
            health = self._collect_health(injector, supervisor, tally, before)
        else:
            wall, results = self._serve_parallel(assignments)
            health = None

        verified: Optional[bool] = None
        if verify:
            verified = self._verify_outputs(requests, results)

        report = build_serving_report(
            results, self.pool_size, self.processes, self.policy, wall, verified,
            faults=plan.describe() if plan else None, health=health,
        )
        report.results = results  # per-request detail rides along (not in JSON)
        return report

    def _run_with_recovery(
        self,
        request: InferenceRequest,
        preferred: int,
        seq: int,
        injector: Optional[FaultInjector],
        policy: RetryPolicy,
        supervisor: WorkerSupervisor,
        tally: Dict,
    ) -> RequestResult:
        """Offline retry loop: bounded attempts, failover, quarantine.

        ``seq`` (the dispatch sequence number) stands in for the clock in
        supervision events — the offline path has no simulated arrivals.
        """
        attempt = 1
        last_failed: Optional[int] = None
        history: List[str] = []
        while True:
            supervisor.tick(seq)
            candidates = supervisor.available(seq)
            if attempt == 1 and preferred in candidates:
                worker = preferred
            else:
                pool = candidates
                if last_failed is not None and policy.failover:
                    others = [w for w in candidates if w != last_failed]
                    if others:
                        pool = others
                worker = min(
                    pool, key=lambda w: (self.workers[w].busy_cycles, w)
                )
            if attempt > 1 and worker != last_failed:
                tally["failovers"] += 1
            try:
                result = self.workers[worker].run(
                    request, attempt=attempt, injector=injector
                )
            except ServingError as error:
                history.append(f"attempt {attempt} on worker {worker}: {error}")
                recovery = self.workers[worker].last_recovery
                if recovery and recovery.get("error"):
                    history.append(
                        f"worker {worker} rebuilt after reset failure: "
                        f"{recovery['error']}"
                    )
                by_class = tally["failed_attempts_by_class"]
                by_class[error.fault_class] = by_class.get(error.fault_class, 0) + 1
                quarantined = supervisor.record_failure(worker, seq, error)
                if quarantined and not isinstance(error, WorkerCrashError):
                    # crash already rebuilt the worker inside run()
                    self.workers[worker].rebuild()
                last_failed = worker
                if error.retryable and attempt < policy.max_attempts:
                    attempt += 1
                    tally["retries"] += 1
                    continue
                return RequestResult.failure(
                    request, "failed", "; ".join(history),
                    worker=worker, attempts=attempt,
                    fault_class=error.fault_class,
                )
            supervisor.record_success(worker, seq)
            result.attempts = attempt
            if history:
                result.error = "; ".join(history)
            return result

    def _collect_health(
        self,
        injector: Optional[FaultInjector],
        supervisor: WorkerSupervisor,
        tally: Dict,
        before: Sequence[Dict[str, int]],
    ) -> Dict:
        """Fold injector/supervisor/worker state into the report's health
        record; worker counters are deltas over this serving run."""
        workers = {}
        for worker, snapshot in zip(self.workers, before):
            now = worker.health_snapshot()
            workers[worker.index] = {
                key: now[key] - snapshot[key] for key in now
            }
        return {
            "retries": tally["retries"],
            "failovers": tally["failovers"],
            "failed_attempts_by_class": dict(tally["failed_attempts_by_class"]),
            "injected": dict(injector.injected) if injector else {},
            "worker_events": list(supervisor.events),
            "workers": workers,
        }

    def serve_online(
        self,
        requests: Sequence[InferenceRequest],
        traffic: Optional[Union[str, TrafficSpec]] = None,
        seed: int = 0,
        verify: bool = False,
        faults: Optional[Union[str, FaultPlan]] = None,
        fault_seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        queue_capacity: Optional[int] = None,
        observe: bool = False,
        metrics_interval: Optional[int] = None,
    ) -> ServingReport:
        """Serve requests as arrival-driven traffic in simulated time.

        With ``traffic`` (a spec string like ``"poisson:25"`` or a
        :class:`~repro.serve.traffic.TrafficSpec`), requests are stamped
        with seeded arrival cycles first; without it, each request's own
        ``arrival_cycle`` is replayed as-is.  The pool then runs the
        :class:`~repro.serve.online.OnlineDispatcher` event loop — FIFO
        admission, least-backlog dispatch — and the report splits each
        request's end-to-end latency into ``queue_delay + service`` cycles, with
        per-worker utilization over the simulated makespan.

        Failure machinery rides the same loop: ``faults`` injects a
        seeded fault plan, retryable failures back off in simulated
        cycles and re-enter the admission queue (failing over to another
        worker), ``queue_capacity`` bounds the admission queue (excess
        arrivals are shed), per-request ``deadline_cycle`` stamps cause
        deadline-aware shedding and ``timed_out`` statuses, and workers
        that fail repeatedly are quarantined then reinstated after
        probation.  Results are deterministic for a fixed ``(traffic,
        seed, fault_seed)``.

        ``observe=True`` turns on the observability layer
        (:mod:`repro.obs`): the report gains per-request span trees
        (``report.spans``, exportable to Perfetto via
        :func:`repro.obs.export.write_chrome_trace`), a rolling-metrics
        ``timeline`` (window width ``metrics_interval`` cycles, auto
        when ``None``), the raw dispatch event log behind
        :meth:`~repro.eval.serving.ServingReport.events`, and per-launch
        replay tags on each result.  All of it is host-side bookkeeping:
        outputs and cycle counts are bit-identical with ``observe=False``.
        """
        if self.processes != 1:
            raise RuntimeError(
                "online serving runs the pool in one simulated-time domain; "
                "use processes=1"
            )
        requests = list(requests)
        self._check_unique_ids(requests)
        spec: Optional[TrafficSpec] = None
        if traffic is not None:
            spec = traffic if isinstance(traffic, TrafficSpec) else TrafficSpec.parse(traffic)
            requests = stamp_arrivals(requests, spec, seed)
        plan = FaultPlan.coerce(faults)
        injector = FaultInjector(plan, fault_seed) if plan else None
        supervisor = WorkerSupervisor(self.pool_size)
        recorder: NullRecorder = NULL_RECORDER
        if observe:
            recorder = SpanRecorder()
            supervisor.recorder = recorder
        before = [w.health_snapshot() for w in self.workers]
        dispatcher = OnlineDispatcher(
            self.workers, injector=injector, retry=retry,
            supervisor=supervisor, queue_capacity=queue_capacity,
            recorder=recorder,
        )
        start = time.perf_counter()
        results = dispatcher.run(requests)
        wall = time.perf_counter() - start

        verified: Optional[bool] = None
        if verify:
            verified = self._verify_outputs(requests, results)

        health = self._collect_health(injector, supervisor, dispatcher.tally, before)
        report = build_serving_report(
            results, self.pool_size, self.processes, self.policy, wall, verified,
            mode="online", traffic=spec.describe() if spec else "replay",
            faults=plan.describe() if plan else None, health=health,
        )
        report.results = results
        report.dispatch_events = list(dispatcher.events)
        if observe:
            report.spans = recorder
            report.timeline = build_timeline(
                results, dispatcher.events, self.pool_size,
                interval_cycles=metrics_interval,
            )
        return report

    def _serve_parallel(
        self, assignments: List[Tuple[int, InferenceRequest]]
    ) -> Tuple[float, List[RequestResult]]:
        import multiprocessing as mp

        # Partition workers over processes; each shard keeps request order.
        shard_of_worker = {w: w % self.processes for w in range(self.pool_size)}
        shards: Dict[int, List[Tuple[int, InferenceRequest]]] = {
            p: [] for p in range(self.processes)
        }
        order: Dict[int, List[int]] = {p: [] for p in range(self.processes)}
        for position, (worker, request) in enumerate(assignments):
            shard = shard_of_worker[worker]
            shards[shard].append((worker, request))
            order[shard].append(position)
        jobs = [
            (
                [w for w, s in shard_of_worker.items() if s == p],
                self.config,
                self.with_compiled,
                shards[p],
            )
            for p in range(self.processes)
        ]
        with mp.Pool(self.processes) as pool:
            shard_results = pool.map(_serve_shard, jobs)
        results = self._reassemble(
            len(assignments), order, [batch for _, batch in shard_results]
        )
        wall = max((seconds for seconds, _ in shard_results), default=0.0)
        return wall, results

    @staticmethod
    def _reassemble(
        n_requests: int,
        order: Dict[int, List[int]],
        batches: Sequence[Sequence[RequestResult]],
    ) -> List[RequestResult]:
        """Scatter shard batches back to submission order; every position
        must be filled.  A missing result (a shard returning short) must
        raise rather than be silently dropped — downstream ``serve()``
        zips results against requests positionally, so a dropped entry
        would misalign every later verify/report row."""
        results: List[Optional[RequestResult]] = [None] * n_requests
        for shard, batch in enumerate(batches):
            positions = order[shard]
            if len(batch) != len(positions):
                raise RuntimeError(
                    f"shard {shard} returned {len(batch)} results for "
                    f"{len(positions)} requests"
                )
            for position, result in zip(positions, batch):
                results[position] = result
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise RuntimeError(
                f"parallel serving lost results for request positions {missing}"
            )
        return results  # type: ignore[return-value]
