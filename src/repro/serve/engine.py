"""The request-level serving engine: many requests, a pool of ARCANE systems.

The :class:`ServingEngine` multiplexes independent inference requests
over a pool of long-lived, reusable
:class:`~repro.serve.worker.SystemWorker` instances — the throughput
layer the ROADMAP's "serve heavy traffic" north-star asks for, built on
the lifecycle guarantees of ``ArcaneSystem.reset_heap()``.  Both serving
modes are thin frontends over the unified
:class:`~repro.serve.dispatch.DispatchCore`:

* **offline** (:meth:`ServingEngine.serve`) computes request→worker
  assignment up front — balancing estimated load by operand volume
  (``least_loaded``) or strictly round-robin — and runs the core on the
  dispatch-sequence clock (immediate retries, no simulated timeline);
* **online** (:meth:`ServingEngine.serve_online`) replays seeded request
  arrivals in simulated time on the cycle clock: admission-policy
  ordering (FIFO / priority / EDF / SJF), least-backlog dispatch,
  simulated retry backoff, deadlines and load shedding;
* **fault tolerance** works in every mode and pool layout: the core
  draws each seeded fault itself (hashing ``(fault_seed, request_id,
  attempt)``) and mirrors the decision to the worker's owning backend,
  so retry/failover/quarantine behave — and report — bit-identically
  whether the pool is in-process or partitioned over OS processes;
* **parallelism** — with ``processes > 1`` the pool lives in a
  persistent :class:`~repro.serve.dispatch.ProcessPool` (worker ``w`` in
  shard ``w % processes``); a no-fault offline batch fans out statically
  for wall-clock speed, everything else keeps decisions in the parent's
  core with execution remote;
* **fleet replay sharing** — ``share_replay=True`` connects every
  worker's replay cache through a
  :class:`~repro.serve.fleet.FleetReplayCache` (piggybacked over the
  pool pipes when multi-process), so one worker's first launch warms the
  whole pool; results are bit-exact with the cache off;
* **aggregation** — per-request :class:`RunReport`s fold into a
  :class:`~repro.eval.serving.ServingReport` with throughput, latency
  percentiles, an availability section and per-worker replay-cache
  deltas.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compiler.library import NAME_BY_FUNC5
from repro.compiler.tune import ScheduleCache, Tuner, geometry_key
from repro.core.config import ArcaneConfig
from repro.eval.serving import ServingReport, build_serving_report
from repro.integrity.check import coerce_policy
from repro.integrity.check import covered as abft_covered
from repro.integrity.inject import CORRUPTION_KINDS
from repro.obs.metrics import build_timeline
from repro.obs.spans import NULL_RECORDER, NullRecorder, SpanRecorder
from repro.serve.dispatch import (
    CYCLE_CLOCK,
    SEQUENCE_CLOCK,
    AdmissionPolicy,
    DispatchCore,
    ProcessPool,
    SerialPool,
)
from repro.serve.faults import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    WorkerSupervisor,
)
from repro.serve.fleet import FleetReplayCache
from repro.serve.golden import expected_output
from repro.serve.request import InferenceRequest, RequestResult
from repro.serve.traffic import TrafficSpec, stamp_arrivals
from repro.serve.worker import SystemWorker

POLICIES = ("least_loaded", "round_robin")


@dataclass(frozen=True)
class AutotunePolicy:
    """When and how the engine retunes hot ``(kernel, geometry)`` keys.

    A library-kernel request key becomes *hot* once it has been seen
    ``threshold`` times (cumulative across serve calls); the engine then
    runs one :class:`~repro.compiler.tune.Tuner` search (``budget``
    simulator runs, ``beam_width`` survivors per level) and, when the
    winner beats the stock recipe, swaps the tuned variant into every
    pool worker via library re-registration — the generation bump
    invalidates stale replay recordings, so outputs stay bit-exact.
    """

    threshold: int = 3
    budget: int = 16
    beam_width: int = 3

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError(f"autotune threshold must be >= 1, got {self.threshold}")

    @classmethod
    def coerce(cls, spec) -> Optional["AutotunePolicy"]:
        """None/False | True | hit-threshold int | policy -> policy or None."""
        if spec is None or spec is False:
            return None
        if spec is True:
            return cls()
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, int):
            return cls(threshold=spec)
        raise ValueError(
            f"autotune must be None, a bool, a hit threshold, or an "
            f"AutotunePolicy; got {spec!r}"
        )


class ServingEngine:
    """Schedules independent requests over a pool of reusable systems."""

    def __init__(
        self,
        pool_size: int = 2,
        config: Optional[ArcaneConfig] = None,
        with_compiled: bool = True,
        policy: str = "least_loaded",
        processes: int = 1,
        admission: Union[str, AdmissionPolicy, None] = "fifo",
        share_replay: bool = False,
        autotune: Union[bool, int, AutotunePolicy, None] = None,
        integrity: Union[str, None] = "off",
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool needs at least one system")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.pool_size = pool_size
        self.config = config
        self.with_compiled = with_compiled
        self.policy = policy
        self.admission = AdmissionPolicy.coerce(admission)
        self.share_replay = share_replay
        self.integrity = coerce_policy(integrity)
        #: what the caller asked for; ``processes`` is the effective count
        self.requested_processes = processes
        self.processes = min(processes, pool_size)
        if self.processes < processes:
            warnings.warn(
                f"processes={processes} exceeds pool_size={pool_size}; "
                f"running {self.processes} process(es) — one worker cannot "
                "be split across processes",
                RuntimeWarning,
                stacklevel=2,
            )
        self.autotune = AutotunePolicy.coerce(autotune)
        self._tuner: Optional[Tuner] = None
        #: cumulative (kernel, geometry) request counts across serve calls
        self._hot_counts: Dict[Tuple[str, str], int] = {}
        #: keys already tuned: (kernel, geometry) -> swap record
        self._tuned: Dict[Tuple[str, str], Dict] = {}
        if self.autotune is not None:
            self._tuner = Tuner(
                config or ArcaneConfig(), budget=self.autotune.budget,
                beam_width=self.autotune.beam_width,
            )
            # measured tuned cycles feed sjf ranking through the cache
            self.admission = dataclasses.replace(
                self.admission, schedule_cache=self._tuner.cache,
                config=self._tuner.config,
            )
        self._workers: Optional[List[SystemWorker]] = None
        self._backend = None
        if self.processes == 1:
            fleet = FleetReplayCache() if share_replay else None
            self._workers = [
                SystemWorker(
                    i, config, with_compiled, fleet=fleet,
                    integrity=self.integrity,
                )
                for i in range(pool_size)
            ]
            self._backend = SerialPool(self._workers)

    @property
    def workers(self) -> List[SystemWorker]:
        if self._workers is None:
            raise RuntimeError("worker pool lives in subprocesses (processes > 1)")
        return self._workers

    @property
    def schedule_cache(self) -> Optional[ScheduleCache]:
        """The autotuner's schedule cache (None when autotuning is off)."""
        return self._tuner.cache if self._tuner is not None else None

    # -- online autotuning ----------------------------------------------------

    def _autotune_requests(self, requests: Sequence[InferenceRequest]) -> None:
        """Count library-kernel keys; retune and swap the ones that go hot.

        Runs before dispatch: every compiled library-kernel request bumps
        its ``(kernel, geometry)`` hit count, and a key crossing the
        policy threshold gets one tuner search on the request's actual
        operands.  A winner that beats the stock recipe is re-registered
        into every pool worker (tuned outputs were checked bit-exact
        against the default during the search, and the library generation
        bump drops stale replay recordings).
        """
        if self._tuner is None:
            return
        for request in requests:
            if request.kind != "kernel":
                continue
            payload = request.payload
            name = NAME_BY_FUNC5.get(payload["func5"])
            if name is None or not payload["inputs"]:
                continue
            inputs = [np.asarray(m) for m in payload["inputs"]]
            geometry = geometry_key(
                [m.shape for m in inputs], inputs[0].dtype, payload["params"]
            )
            key = (name, geometry)
            self._hot_counts[key] = self._hot_counts.get(key, 0) + 1
            if key in self._tuned or self._hot_counts[key] < self.autotune.threshold:
                continue
            result = self._tuner.tune(name, inputs, params=payload["params"])
            record = result.as_dict()
            record["swapped"] = result.best_recipe != result.default_recipe
            if record["swapped"]:
                self._get_backend().register_recipe(
                    name, result.best_recipe.to_json()
                )
            self._tuned[key] = record

    def _autotune_report(self) -> Optional[Dict]:
        """Autotuning section for the serving report (None when off)."""
        if self._tuner is None:
            return None
        return {
            "policy": {
                "threshold": self.autotune.threshold,
                "budget": self.autotune.budget,
                "beam_width": self.autotune.beam_width,
            },
            "cache": self._tuner.cache.stats(),
            "hot_keys": {
                f"{kernel}|{geometry}": count
                for (kernel, geometry), count in sorted(self._hot_counts.items())
            },
            "tuned": [record for _, record in sorted(self._tuned.items())],
        }

    def _get_backend(self):
        """The pool backend, building the process shards on first use.

        The :class:`ProcessPool` is persistent: shard processes (and
        their replay caches) stay warm across ``serve`` calls, mirroring
        the serial pool built in ``__init__``.
        """
        if self._backend is None:
            self._backend = ProcessPool(
                self.pool_size, self.processes, self.config, self.with_compiled,
                share_replay=self.share_replay, integrity=self.integrity,
            )
        return self._backend

    def close(self) -> None:
        """Shut down pool subprocesses (no-op for the serial pool)."""
        if self._backend is not None:
            self._backend.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- scheduling -----------------------------------------------------------

    def _assign(
        self, requests: Sequence[InferenceRequest]
    ) -> List[Tuple[int, InferenceRequest]]:
        """Map every request to a worker index before execution.

        ``least_loaded`` balances *estimated* load by operand volume
        (requests are assigned before they run, as a front-end load
        balancer would); ``round_robin`` ignores load entirely.
        """
        assignments: List[Tuple[int, InferenceRequest]] = []
        if self.policy == "round_robin":
            for i, request in enumerate(requests):
                assignments.append((i % self.pool_size, request))
            return assignments
        load = [0] * self.pool_size
        for request in requests:
            worker = min(range(self.pool_size), key=lambda w: (load[w], w))
            load[worker] += self._estimate_cost(request)
            assignments.append((worker, request))
        return assignments

    @staticmethod
    def _estimate_cost(request: InferenceRequest) -> int:
        """Cheap load proxy: total operand elements touched."""
        payload = request.payload

        def size(array: np.ndarray) -> int:
            return int(np.asarray(array).size)

        if request.kind == "gemm":
            return size(payload["a"]) + size(payload["b"]) + size(payload["c"])
        if request.kind == "conv_layer":
            return size(payload["image"]) + size(payload["filters"])
        if request.kind == "kernel":
            return sum(size(m) for m in payload["inputs"])
        if request.kind == "graph":
            return sum(size(m) for m in payload["inputs"].values()) + sum(
                node.out_shape[0] * node.out_shape[1] for node in payload["nodes"]
            )
        return 1

    # -- serving --------------------------------------------------------------

    @staticmethod
    def _check_unique_ids(requests: Sequence[InferenceRequest]) -> None:
        seen_ids = set()
        for request in requests:
            if request.request_id in seen_ids:
                raise ValueError(f"duplicate request_id {request.request_id}")
            seen_ids.add(request.request_id)

    @staticmethod
    def _verify_outputs(
        requests: Sequence[InferenceRequest],
        results: Sequence[RequestResult],
        validate: str = "strict",
    ) -> bool:
        """Check every completed output against the golden model.

        Collects *all* mismatching requests (not just the first) and
        reports, per mismatch, how many elements differ and the max
        absolute difference.  Non-completed results (failed/shed) carry
        no output and are skipped.

        ``validate="strict"`` (the default) raises ``AssertionError`` on
        any mismatch.  ``validate="report"`` instead downgrades each
        mismatching result in place — ``status="corrupted"``,
        ``fault_class="corrupted"``, the mismatch detail on ``error`` —
        keeping the suspect output and the rest of the batch intact,
        and returns ``False``.  This is how undetected silent corruption
        is measured without aborting a serving run.
        """
        if validate not in ("strict", "report"):
            raise ValueError(
                f"validate must be 'strict' or 'report', got {validate!r}"
            )
        mismatches: List[str] = []
        for request, result in zip(requests, results):
            if not result.completed:
                continue
            expected = expected_output(request)
            actual = result.output
            if np.array_equal(actual, expected):
                continue
            if actual is None or actual.shape != expected.shape:
                got = "None" if actual is None else f"shape {actual.shape}"
                detail = (
                    f"request {request.request_id} ({request.kind}): expected "
                    f"shape {expected.shape}, got {got}"
                )
            else:
                diff = np.abs(
                    np.asarray(actual, dtype=np.int64)
                    - np.asarray(expected, dtype=np.int64)
                )
                detail = (
                    f"request {request.request_id} ({request.kind}): "
                    f"{int(np.count_nonzero(diff))}/{diff.size} elements differ, "
                    f"max |diff| = {int(diff.max())}"
                )
            mismatches.append(detail)
            if validate == "report":
                result.status = "corrupted"
                result.fault_class = "corrupted"
                result.error = (
                    f"{result.error}; {detail}" if result.error else detail
                )
        if mismatches:
            if validate == "report":
                return False
            raise AssertionError(
                f"{len(mismatches)} request(s) mismatch the golden model: "
                + "; ".join(mismatches)
            )
        return True

    def _replay_delta(
        self, before: Dict[int, Optional[Dict[str, int]]]
    ) -> Optional[Dict]:
        """Per-worker replay-cache stat deltas over one serving run."""
        after = self._backend.replay_stats() if self._backend is not None else {}
        per_worker = {}
        for worker, now in sorted(after.items()):
            if now is None:
                continue
            base = before.get(worker) or {}
            per_worker[str(worker)] = {
                key: value - base.get(key, 0) for key, value in now.items()
            }
        if not per_worker:
            return None
        return {"shared": bool(self.share_replay), "per_worker": per_worker}

    def serve(
        self,
        requests: Sequence[InferenceRequest],
        verify: Union[bool, str] = False,
        faults: Optional[Union[str, FaultPlan]] = None,
        fault_seed: int = 0,
        retry: Optional[RetryPolicy] = None,
    ) -> ServingReport:
        """Run every request as an offline batch, return the aggregate report.

        Per-request results (with outputs) are kept on ``report.results``;
        with ``verify=True`` (or ``verify="strict"``) every completed
        output is checked against the numpy golden model and any mismatch
        raises with full detail.  ``verify="report"`` performs the same
        check but marks mismatching results ``status="corrupted"`` in
        place instead of raising — the batch survives, and the report's
        ``integrity`` section counts the misses as *undetected*
        corruption.

        A request that fails does **not** abort the batch: retryable
        failures are retried (immediately, failing over to a different
        worker) up to ``retry.max_attempts``, and exhausted or
        non-retryable failures become ``status="failed"`` results.  A
        ``faults`` spec (e.g. ``"kill:0.1"``, see
        :meth:`~repro.serve.faults.FaultPlan.parse`) injects seeded
        faults deterministically — in any pool layout: fault decisions
        are drawn in the dispatch core, so multi-process runs are
        bit-identical to serial ones.  A no-fault, no-retry batch on
        ``processes > 1`` takes a static fan-out fast path (same results,
        concurrent shards).
        """
        requests = list(requests)
        self._check_unique_ids(requests)
        self._autotune_requests(requests)
        plan = FaultPlan.coerce(faults)
        assignments = self._assign(requests)
        backend = self._get_backend()
        replay_before = backend.replay_stats()
        # wall time covers serving on a ready pool in every mode: the
        # serial pool is built in __init__, process shards on first use.
        if (
            self.processes > 1 and plan is None and retry is None
            and self.integrity == "off"
        ):
            # static fast path: assignment is precomputed and nothing can
            # reorder it, so shards run their slices concurrently; an
            # integrity policy needs the core's escalation loop, so it
            # always takes the dispatch path
            wall, results = backend.run_batch(assignments)
            health = None
            events = None
            injector = None
            core = None
        else:
            injector = FaultInjector(plan, fault_seed) if plan else None
            supervisor = WorkerSupervisor(self.pool_size)
            before = backend.health_snapshots()
            core = DispatchCore(
                backend, clock=SEQUENCE_CLOCK, admission=self.admission,
                injector=injector, retry=retry, supervisor=supervisor,
            )
            preferred = [worker for worker, _ in assignments]
            start = time.perf_counter()
            results = core.run(requests, preferred=preferred)
            wall = time.perf_counter() - start
            health = self._collect_health(injector, supervisor, core.tally, before)
            events = core.events
        # offline dispatch order is positional either way; the report
        # still records the engine's policy so runs are comparable
        admission = self.admission.kind

        verified: Optional[bool] = None
        validated = self._validate_mode(verify)
        if validated is not None:
            verified = self._verify_outputs(requests, results, validate=validated)

        report = build_serving_report(
            results, self.pool_size, self.processes, self.policy, wall, verified,
            faults=plan.describe() if plan else None, health=health,
            requested_processes=self.requested_processes, admission=admission,
        )
        report.results = results  # per-request detail rides along (not in JSON)
        if events is not None:
            report.dispatch_events = events
        report.replay = self._replay_delta(replay_before)
        report.autotune = self._autotune_report()
        report.integrity = self._collect_integrity(
            injector, core, requests, results, validated
        )
        return report

    @staticmethod
    def _validate_mode(verify: Union[bool, str]) -> Optional[str]:
        """Map the ``verify`` argument onto a ``_verify_outputs`` mode."""
        if verify is False or verify is None:
            return None
        if verify is True:
            return "strict"
        if verify in ("strict", "report"):
            return verify
        raise ValueError(
            f"verify must be a bool, 'strict' or 'report', got {verify!r}"
        )

    def _collect_integrity(
        self,
        injector: Optional[FaultInjector],
        core: Optional[DispatchCore],
        requests: Sequence[InferenceRequest],
        results: Sequence[RequestResult],
        validated: Optional[str],
    ) -> Optional[Dict]:
        """The report's ``integrity`` section (None when nothing to say).

        Emitted when an integrity policy is armed or the fault plan
        injects data corruption.  ``detected`` counts requests the
        running checks flagged (and escalated); ``corrected`` counts
        outputs ABFT repaired in place without a retry; ``undetected``
        (and detection ``recall``) need golden validation and are only
        present when ``verify="report"`` ran.  ``covered`` narrows the
        same accounting to ABFT-covered (gemm-family) requests — the
        kernels the acceptance gate holds to recall 1.0.
        """
        corrupts = injector is not None and injector.corrupts
        if self.integrity == "off" and not corrupts:
            return None
        injected = {}
        if injector is not None:
            injected = {
                kind: injector.injected[kind]
                for kind in CORRUPTION_KINDS
                if kind in injector.injected
            }
        positions = list(core.corrupted_positions) if core is not None else []
        detected = len(positions)
        recovered = sum(
            1 for p in positions if p < len(results) and results[p].status == "ok"
        )
        corrected = sum(
            1
            for r in results
            if r.integrity is not None and r.integrity.get("corrected")
        )
        tally = (
            dict(core.corruption_tally)
            if core is not None
            else {"escalations": 0, "bypass_retries": 0, "failover_escalations": 0}
        )
        section: Dict = {
            "policy": self.integrity,
            "injected": injected,
            "detected": detected,
            "corrected": corrected,
            "recovered": recovered,
            "escalations": tally,
        }
        if validated == "report":
            undetected = sum(1 for r in results if r.status == "corrupted")
            caught = detected + corrected
            total = caught + undetected
            section["undetected"] = undetected
            section["recall"] = (caught / total) if total else 1.0
            flags = [abft_covered(request) for request in requests]
            covered_caught = sum(
                1 for p in positions if p < len(flags) and flags[p]
            ) + sum(
                1
                for i, r in enumerate(results)
                if flags[i]
                and r.integrity is not None
                and r.integrity.get("corrected")
            )
            covered_undetected = sum(
                1
                for i, r in enumerate(results)
                if flags[i] and r.status == "corrupted"
            )
            covered_total = covered_caught + covered_undetected
            section["covered"] = {
                "requests": sum(flags),
                "undetected": covered_undetected,
                "recall": (
                    covered_caught / covered_total if covered_total else 1.0
                ),
            }
        return section

    def _collect_health(
        self,
        injector: Optional[FaultInjector],
        supervisor: WorkerSupervisor,
        tally: Dict,
        before: Sequence[Dict[str, int]],
    ) -> Dict:
        """Fold injector/supervisor/worker state into the report's health
        record; worker counters are deltas over this serving run."""
        workers = {}
        for index, (snapshot, now) in enumerate(
            zip(before, self._backend.health_snapshots())
        ):
            workers[index] = {key: now[key] - snapshot[key] for key in now}
        return {
            "retries": tally["retries"],
            "failovers": tally["failovers"],
            "failed_attempts_by_class": dict(tally["failed_attempts_by_class"]),
            "injected": dict(injector.injected) if injector else {},
            "worker_events": list(supervisor.events),
            "workers": workers,
        }

    def serve_online(
        self,
        requests: Sequence[InferenceRequest],
        traffic: Optional[Union[str, TrafficSpec]] = None,
        seed: int = 0,
        verify: Union[bool, str] = False,
        faults: Optional[Union[str, FaultPlan]] = None,
        fault_seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        queue_capacity: Optional[int] = None,
        observe: bool = False,
        metrics_interval: Optional[int] = None,
    ) -> ServingReport:
        """Serve requests as arrival-driven traffic in simulated time.

        With ``traffic`` (a spec string like ``"poisson:25"`` or a
        :class:`~repro.serve.traffic.TrafficSpec`), requests are stamped
        with seeded arrival cycles first; without it, each request's own
        ``arrival_cycle`` is replayed as-is.  The pool then runs the
        dispatch core on the cycle clock — admission-policy ordering
        (the engine's ``admission``: FIFO by default), least-backlog
        dispatch — and the report splits each request's end-to-end
        latency into ``queue_delay + service`` cycles, with per-worker
        utilization over the simulated makespan.

        Failure machinery rides the same loop: ``faults`` injects a
        seeded fault plan, retryable failures back off in simulated
        cycles and re-enter the admission queue (failing over to another
        worker), ``queue_capacity`` bounds the admission queue (excess
        arrivals are shed), per-request ``deadline_cycle`` stamps cause
        deadline-aware shedding and ``timed_out`` statuses, and workers
        that fail repeatedly are quarantined then reinstated after
        probation.  Results are deterministic for a fixed ``(traffic,
        seed, fault_seed)`` — and identical for any ``processes``
        setting: the event loop runs in one simulated-time domain in the
        parent, only execution is remote, and every per-request result
        is order- and worker-independent by the reset-to-cold contract.

        ``observe=True`` turns on the observability layer
        (:mod:`repro.obs`): the report gains per-request span trees
        (``report.spans``, exportable to Perfetto via
        :func:`repro.obs.export.write_chrome_trace`), a rolling-metrics
        ``timeline`` (window width ``metrics_interval`` cycles, auto
        when ``None``), the raw dispatch event log behind
        :meth:`~repro.eval.serving.ServingReport.events`, and per-launch
        replay tags on each result.  All of it is host-side bookkeeping:
        outputs and cycle counts are bit-identical with ``observe=False``.
        """
        requests = list(requests)
        self._check_unique_ids(requests)
        self._autotune_requests(requests)
        spec: Optional[TrafficSpec] = None
        if traffic is not None:
            spec = traffic if isinstance(traffic, TrafficSpec) else TrafficSpec.parse(traffic)
            requests = stamp_arrivals(requests, spec, seed)
        plan = FaultPlan.coerce(faults)
        injector = FaultInjector(plan, fault_seed) if plan else None
        supervisor = WorkerSupervisor(self.pool_size)
        recorder: NullRecorder = NULL_RECORDER
        if observe:
            recorder = SpanRecorder()
            supervisor.recorder = recorder
        backend = self._get_backend()
        before = backend.health_snapshots()
        replay_before = backend.replay_stats()
        core = DispatchCore(
            backend, clock=CYCLE_CLOCK, admission=self.admission,
            injector=injector, retry=retry, supervisor=supervisor,
            queue_capacity=queue_capacity, recorder=recorder,
        )
        start = time.perf_counter()
        results = core.run(requests)
        wall = time.perf_counter() - start

        verified: Optional[bool] = None
        validated = self._validate_mode(verify)
        if validated is not None:
            verified = self._verify_outputs(requests, results, validate=validated)

        health = self._collect_health(injector, supervisor, core.tally, before)
        report = build_serving_report(
            results, self.pool_size, self.processes, self.policy, wall, verified,
            mode="online", traffic=spec.describe() if spec else "replay",
            faults=plan.describe() if plan else None, health=health,
            requested_processes=self.requested_processes,
            admission=self.admission.kind,
        )
        report.results = results
        report.dispatch_events = list(core.events)
        report.replay = self._replay_delta(replay_before)
        report.autotune = self._autotune_report()
        report.integrity = self._collect_integrity(
            injector, core, requests, results, validated
        )
        if observe:
            report.spans = recorder
            report.timeline = build_timeline(
                results, core.events, self.pool_size,
                interval_cycles=metrics_interval,
            )
        return report
