"""Request-level serving over pools of reusable ARCANE systems.

Quickstart::

    from repro.serve import ServingEngine, gemm_request, conv_layer_request

    engine = ServingEngine(pool_size=2)
    report = engine.serve(
        [gemm_request(0, a, b), conv_layer_request(1, image, filters)],
        verify=True,
    )
    print(report.summary())
    print(report.to_json())

See ``examples/serving.py`` for the full tour and
``benchmarks/bench_serving.py`` for the throughput benchmark.
"""

from repro.eval.serving import ServingReport, build_serving_report, percentile
from repro.serve.engine import POLICIES, ServingEngine
from repro.serve.golden import expected_output, kernel_golden
from repro.serve.request import (
    KINDS,
    GraphNode,
    InferenceRequest,
    RequestResult,
    conv_layer_request,
    gemm_request,
    graph_request,
    kernel_request,
)
from repro.serve.worker import RequestRejected, SystemWorker

__all__ = [
    "KINDS",
    "POLICIES",
    "GraphNode",
    "InferenceRequest",
    "RequestRejected",
    "RequestResult",
    "ServingEngine",
    "ServingReport",
    "SystemWorker",
    "build_serving_report",
    "conv_layer_request",
    "expected_output",
    "gemm_request",
    "graph_request",
    "kernel_golden",
    "kernel_request",
    "percentile",
]
