"""Request-level serving over pools of reusable ARCANE systems.

Quickstart::

    from repro.serve import ServingEngine, gemm_request, conv_layer_request

    engine = ServingEngine(pool_size=2)
    report = engine.serve(          # offline: the whole batch at cycle 0
        [gemm_request(0, a, b), conv_layer_request(1, image, filters)],
        verify=True,
    )
    online = engine.serve_online(   # online: arrival-driven, simulated time
        requests, traffic="poisson:25", seed=7, verify=True,
    )
    print(report.summary())
    print(online.summary())         # queue delay + service split, utilization

See ``examples/serving.py`` for the full tour and
``benchmarks/bench_serving.py`` for the throughput benchmark.
"""

from repro.eval.serving import (
    MODES,
    ServingReport,
    build_serving_report,
    latency_stats,
    percentile,
)
from repro.serve.engine import POLICIES, ServingEngine
from repro.serve.golden import expected_output, kernel_golden
from repro.serve.online import OnlineDispatcher, OnlineEvent
from repro.serve.request import (
    KINDS,
    GraphNode,
    InferenceRequest,
    RequestResult,
    conv_layer_request,
    gemm_request,
    graph_request,
    kernel_request,
)
from repro.serve.traffic import (
    TRAFFIC_KINDS,
    TrafficSpec,
    arrival_cycles,
    stamp_arrivals,
)
from repro.serve.worker import RequestRejected, SystemWorker

__all__ = [
    "KINDS",
    "MODES",
    "POLICIES",
    "TRAFFIC_KINDS",
    "GraphNode",
    "InferenceRequest",
    "OnlineDispatcher",
    "OnlineEvent",
    "RequestRejected",
    "RequestResult",
    "ServingEngine",
    "ServingReport",
    "SystemWorker",
    "TrafficSpec",
    "arrival_cycles",
    "build_serving_report",
    "conv_layer_request",
    "expected_output",
    "gemm_request",
    "graph_request",
    "kernel_golden",
    "kernel_request",
    "latency_stats",
    "percentile",
    "stamp_arrivals",
]
