"""Request-level serving over pools of reusable ARCANE systems.

Quickstart::

    from repro.serve import ServingEngine, gemm_request, conv_layer_request

    engine = ServingEngine(pool_size=2)
    report = engine.serve(          # offline: the whole batch at cycle 0
        [gemm_request(0, a, b), conv_layer_request(1, image, filters)],
        verify=True,
    )
    online = engine.serve_online(   # online: arrival-driven, simulated time
        requests, traffic="poisson:25", seed=7, verify=True,
    )
    faulty = engine.serve_online(   # rehearse failures, deterministically
        requests, traffic="poisson:25", seed=7, faults="kill:0.1", fault_seed=3,
    )
    print(report.summary())
    print(online.summary())         # queue delay + service split, utilization
    print(faulty.availability)      # success rate, retries, failovers, sheds

See ``examples/serving.py`` for the full tour and
``benchmarks/bench_serving.py`` for the throughput benchmark.
"""

from repro.eval.serving import (
    MODES,
    ServingReport,
    build_serving_report,
    latency_stats,
    percentile,
)
from repro.serve.dispatch import (
    ADMISSION_POLICIES,
    CLOCKS,
    CYCLE_CLOCK,
    SEQUENCE_CLOCK,
    AdmissionPolicy,
    DispatchCore,
    ProcessPool,
    SerialPool,
    estimate_service_cycles,
)
from repro.integrity.check import INTEGRITY_POLICIES
from repro.integrity.inject import CORRUPTION_KINDS
from repro.serve.engine import POLICIES, ServingEngine
from repro.serve.faults import (
    ALL_FAULT_KINDS,
    FAULT_KINDS,
    FaultClause,
    FaultInjector,
    FaultPlan,
    KernelKilledError,
    RequestRejected,
    RetryPolicy,
    ServingError,
    SilentCorruptionError,
    TransientOffloadError,
    WorkerCrashError,
    WorkerSupervisor,
)
from repro.serve.fleet import FleetReplayCache
from repro.serve.golden import expected_output, kernel_golden
from repro.serve.online import OnlineDispatcher, OnlineEvent
from repro.serve.request import (
    KINDS,
    STATUSES,
    GraphNode,
    InferenceRequest,
    RequestResult,
    conv_layer_request,
    gemm_request,
    graph_request,
    kernel_request,
)
from repro.serve.traffic import (
    TRAFFIC_KINDS,
    TrafficSpec,
    arrival_cycles,
    stamp_arrivals,
    stamp_deadlines,
)
from repro.serve.worker import SystemWorker

__all__ = [
    "ADMISSION_POLICIES",
    "ALL_FAULT_KINDS",
    "CLOCKS",
    "CORRUPTION_KINDS",
    "CYCLE_CLOCK",
    "FAULT_KINDS",
    "INTEGRITY_POLICIES",
    "KINDS",
    "MODES",
    "POLICIES",
    "SEQUENCE_CLOCK",
    "STATUSES",
    "TRAFFIC_KINDS",
    "AdmissionPolicy",
    "DispatchCore",
    "FaultClause",
    "FaultInjector",
    "FaultPlan",
    "FleetReplayCache",
    "GraphNode",
    "InferenceRequest",
    "KernelKilledError",
    "OnlineDispatcher",
    "OnlineEvent",
    "ProcessPool",
    "RequestRejected",
    "RequestResult",
    "RetryPolicy",
    "SerialPool",
    "ServingEngine",
    "ServingError",
    "ServingReport",
    "SilentCorruptionError",
    "SystemWorker",
    "TrafficSpec",
    "TransientOffloadError",
    "WorkerCrashError",
    "WorkerSupervisor",
    "arrival_cycles",
    "build_serving_report",
    "conv_layer_request",
    "estimate_service_cycles",
    "expected_output",
    "gemm_request",
    "graph_request",
    "kernel_golden",
    "kernel_request",
    "latency_stats",
    "percentile",
    "stamp_arrivals",
    "stamp_deadlines",
]
