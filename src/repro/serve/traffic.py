"""Seeded arrival processes — the load side of online serving.

Offline serving hands the engine a batch that exists all at once; online
serving needs *traffic*: each :class:`~repro.serve.request.InferenceRequest`
carries an ``arrival_cycle`` in the same simulated-cycle domain the
ARCANE systems are timed in, and the
:class:`~repro.serve.online.OnlineDispatcher` replays those arrivals
against the pool.  This module generates the arrival stamps:

* ``poisson:<rate>`` — memoryless arrivals at ``rate`` requests per
  simulated megacycle (exponential inter-arrival gaps), the standard
  open-loop load model;
* ``uniform:<low>:<high>`` — integer inter-arrival gaps drawn uniformly
  from ``[low, high]`` cycles;
* ``bursty:<burst>:<gap>`` — ``burst`` simultaneous arrivals every
  ``gap`` cycles (worst case for a FIFO admission queue);
* ``trace:<c0,c1,...>`` — an explicit, replayable list of arrival
  cycles (e.g. recorded from production and replayed in CI).

Every process is seeded: the same :class:`TrafficSpec` and seed always
produce the same arrival cycles, so online serving runs — and their
queue-delay percentiles — are reproducible end to end.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.serve.request import InferenceRequest

#: Arrival-process kinds understood by :meth:`TrafficSpec.parse`.
TRAFFIC_KINDS = ("poisson", "uniform", "bursty", "trace")


@dataclass(frozen=True)
class TrafficSpec:
    """One parsed arrival process (``kind`` plus numeric parameters)."""

    kind: str
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in TRAFFIC_KINDS:
            raise ValueError(
                f"unknown traffic kind {self.kind!r}; expected one of {TRAFFIC_KINDS}"
            )
        if self.kind == "poisson":
            if len(self.params) != 1 or self.params[0] <= 0:
                raise ValueError("poisson needs one positive rate (req/Mcycle)")
        elif self.kind == "uniform":
            if len(self.params) != 2:
                raise ValueError("uniform needs low and high gap bounds")
            low, high = self.params
            if not (float(low).is_integer() and float(high).is_integer()):
                raise ValueError(
                    f"uniform bounds are whole cycles, got {low}:{high}"
                )
            if low < 0 or high < low:
                raise ValueError(f"uniform needs 0 <= low <= high, got {low}:{high}")
        elif self.kind == "bursty":
            if len(self.params) != 2:
                raise ValueError("bursty needs burst size and gap")
            burst, gap = self.params
            if not (float(burst).is_integer() and float(gap).is_integer()):
                raise ValueError(
                    f"bursty burst/gap are whole counts/cycles, got {burst}:{gap}"
                )
            if burst < 1 or gap < 0:
                raise ValueError(f"bursty needs burst >= 1 and gap >= 0, got {burst}:{gap}")
        elif self.kind == "trace":
            cycles = list(self.params)
            if any(c < 0 for c in cycles):
                raise ValueError("trace arrival cycles must be non-negative")
            if any(b < a for a, b in zip(cycles, cycles[1:])):
                raise ValueError("trace arrival cycles must be non-decreasing")

    @classmethod
    def parse(cls, text: str) -> "TrafficSpec":
        """Parse a ``kind:params`` spec string, e.g. ``poisson:25`` or
        ``trace:0,500,500,9000``."""
        kind, _, rest = str(text).partition(":")
        kind = kind.strip()
        try:
            if kind == "trace":
                raw = [p for p in rest.split(",") if p.strip()]
                if not raw:
                    raise ValueError("trace spec needs at least one arrival cycle")
                return cls("trace", tuple(int(p) for p in raw))
            params = tuple(float(p) for p in rest.split(":") if p.strip())
        except ValueError as error:
            raise ValueError(f"bad traffic spec {text!r}: {error}") from None
        return cls(kind, params)

    def describe(self) -> str:
        """The canonical spec string (round-trips through :meth:`parse`)."""
        if self.kind == "trace":
            return "trace:" + ",".join(str(int(c)) for c in self.params)
        parts = []
        for p in self.params:
            parts.append(str(int(p)) if float(p).is_integer() else str(p))
        return ":".join([self.kind] + parts)


def arrival_cycles(spec: TrafficSpec, n: int, seed: int = 0) -> List[int]:
    """``n`` non-decreasing arrival cycles for the given process and seed."""
    if n < 0:
        raise ValueError("request count must be non-negative")
    if n == 0:
        return []
    if spec.kind == "trace":
        cycles = [int(c) for c in spec.params]
        if len(cycles) < n:
            raise ValueError(
                f"trace has {len(cycles)} arrivals but {n} requests were submitted"
            )
        return cycles[:n]
    if spec.kind == "bursty":
        burst, gap = int(spec.params[0]), int(spec.params[1])
        return [(i // burst) * gap for i in range(n)]
    rng = np.random.default_rng(seed)
    if spec.kind == "poisson":
        # rate is requests per megacycle -> mean gap of 1e6/rate cycles
        gaps = rng.exponential(1e6 / spec.params[0], size=n)
    else:  # uniform
        low, high = spec.params
        gaps = rng.integers(int(low), int(high) + 1, size=n)
    cycles: List[int] = []
    clock = 0
    for gap in gaps:
        clock += int(gap)
        cycles.append(clock)
    return cycles


def stamp_arrivals(
    requests: Sequence[InferenceRequest],
    spec: TrafficSpec,
    seed: int = 0,
) -> List[InferenceRequest]:
    """Return copies of ``requests`` stamped with the process's arrivals.

    The i-th request receives the i-th arrival cycle, so submission order
    is arrival order — what a FIFO admission queue observes.
    """
    cycles = arrival_cycles(spec, len(requests), seed)
    return [
        dataclasses.replace(request, arrival_cycle=cycle)
        for request, cycle in zip(requests, cycles)
    ]


def stamp_deadlines(
    requests: Sequence[InferenceRequest], budget_cycles: int
) -> List[InferenceRequest]:
    """Return copies with ``deadline_cycle = arrival_cycle + budget``.

    Deadlines are absolute simulated cycles, so a relative latency
    budget must be stamped *after* arrivals (``stamp_arrivals``).  The
    online dispatcher sheds a request whose projected start would miss
    its deadline and marks late completions ``timed_out``.
    """
    if budget_cycles < 0:
        raise ValueError(f"deadline budget must be >= 0, got {budget_cycles}")
    return [
        dataclasses.replace(
            request, deadline_cycle=request.arrival_cycle + int(budget_cycles)
        )
        for request in requests
    ]
