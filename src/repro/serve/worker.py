"""One reusable ARCANE instance serving requests back-to-back.

A :class:`SystemWorker` owns a long-lived
:class:`~repro.core.system.ArcaneSystem` and runs one request at a time:
place operands, offload, read the result, then ``reset_heap()`` so the
next request starts from the same cold state a fresh system would see.
That reset is what makes per-request results (and cycle counts) on a
long-lived worker bit-exact with single-shot runs — and what keeps the
bump allocator from exhausting the matrix heap after a handful of
requests, the lifecycle bug this engine exists to exercise.

The worker is also the **fault boundary**: a
:class:`~repro.serve.faults.FaultInjector` passed to :meth:`run` decides
each attempt's fate *before* the kernel executes (so injected failures
never perturb the simulated machine — a later retry is bit-exact with a
fault-free run), and every failure path funnels through
:meth:`_recover`, which counts recoveries (``reset_heap`` sufficed) vs
rebuilds (fresh system) and keeps the swallowed reset diagnostic for the
failure record instead of silently discarding it.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler import install_compiled, offload_compiled
from repro.core.api import Matrix
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem, RunReport
from repro.integrity.check import DigestLedger, check_output, coerce_policy
from repro.integrity.inject import CorruptionDirective
from repro.runtime.phases import PhaseBreakdown
from repro.runtime.replay import ReplayDivergence
from repro.serve.faults import (
    FaultInjector,
    RequestRejected,
    ServingError,
    SilentCorruptionError,
    WorkerCrashError,
)
from repro.serve.request import GraphNode, InferenceRequest, RequestResult
from repro.xbridge.bridge import OffloadOutcome


class SystemWorker:
    """Wraps one reusable ArcaneSystem; executes requests serially."""

    def __init__(
        self,
        index: int = 0,
        config: Optional[ArcaneConfig] = None,
        with_compiled: bool = True,
        fleet=None,
        integrity: str = "off",
    ) -> None:
        self.index = index
        self.config = config or ArcaneConfig()
        self.with_compiled = with_compiled
        #: shared fleet replay cache (:class:`repro.serve.fleet.FleetReplayCache`)
        #: the worker's replay cache publishes to / adopts from; ``None``
        #: keeps replay strictly per-system
        self.fleet = fleet
        #: integrity policy applied to every output this worker produces
        #: (``off | digest | abft | dmr`` — :mod:`repro.integrity.check`)
        self.integrity = coerce_policy(integrity)
        #: request-digest -> output-digest memory; survives rebuilds on
        #: purpose (the ledger describes *payloads*, not this silicon)
        self.ledger = DigestLedger() if self.integrity != "off" else None
        self.system = ArcaneSystem(self.config)
        if with_compiled:
            install_compiled(self.system.llc.runtime.library)
        self._attach_fleet()
        #: accumulated simulated cycles served (pool-balance telemetry;
        #: scheduling itself assigns up front from operand volume)
        self.busy_cycles = 0
        self.served = 0
        #: failed attempts this worker has seen (injected or organic)
        self.failures = 0
        #: post-failure recoveries where ``reset_heap()`` sufficed
        self.recoveries = 0
        #: times the simulation universe had to be rebuilt from scratch
        self.rebuilds = 0
        #: how the most recent failure was recovered:
        #: ``{"via": "reset"|"rebuild", "error": <swallowed reset diag>}``
        self.last_recovery: Optional[Dict[str, Optional[str]]] = None
        #: autotuned schedule swaps: kernel name -> (recipe JSON, slot);
        #: reapplied on every rebuild so fault recovery keeps tuned variants
        self._recipe_overrides: Dict[str, Tuple[str, int]] = {}

    # -- request execution ----------------------------------------------------

    def run(
        self,
        request: InferenceRequest,
        attempt: int = 1,
        injector: Optional[FaultInjector] = None,
        observe: bool = False,
        slow_factor: float = 1.0,
        directives: Sequence[CorruptionDirective] = (),
        bypass_fastpath: bool = False,
    ) -> RequestResult:
        """Execute one attempt on the long-lived system and reset it.

        Raises a :class:`~repro.serve.faults.ServingError` subclass on
        failure (injected or organic); the system is always left
        serviceable — via ``reset_heap()`` when possible, a full rebuild
        when not (a worker crash always rebuilds).

        ``observe=True`` additionally fills ``result.launches`` with one
        record per kernel launch (name, cycles, replay-cache outcome) —
        pure host-side reads of scheduler/replay state, so the simulated
        machine and its cycle counts are untouched.

        ``slow_factor`` lets a caller that already drew the fault decision
        (the dispatch core injects in the core, not at the worker) apply an
        injected latency spike; a local ``injector`` overrides it.  The
        same caller hands parent-drawn corruption ``directives`` for this
        attempt; ``bypass_fastpath`` suspends the replay fast path for the
        attempt (corruption-escalation retries distrust cached recordings).
        """
        start = time.perf_counter()
        self.last_recovery = None
        if injector is not None:
            try:
                slow_factor = injector.before_attempt(request, attempt, self.index)
            except WorkerCrashError:
                # the simulated hardware died: all state is lost
                self.failures += 1
                self.rebuild()
                self.last_recovery = {"via": "rebuild", "error": None}
                raise
            except ServingError:
                # injected pre-execution fault: the system never ran, so
                # it is still clean — no recovery needed
                self.failures += 1
                raise
            if not directives:
                directives = injector.corruption_for(request, attempt, self.index)
        cache = self.system.llc.runtime.replay_cache if observe else None
        launch_log: Optional[List[Tuple[int, str]]] = None
        if cache is not None:
            launch_log = cache.launch_log = []
        replay_cache = self.system.llc.runtime.replay_cache
        if replay_cache is not None:
            if bypass_fastpath:
                replay_cache.suspended = True
            if self.integrity != "off":
                # log every recording stored or replayed this attempt so a
                # detection can retract whatever the attempt poisoned
                replay_cache.touched = []
        surface = self.system.corruption
        # arm() resets the event log, but an unarmed run must too — stale
        # events from a previous armed run on this system would otherwise
        # attach to the wrong result
        surface.events = []
        if directives:
            surface.arm(directives)
        try:
            output, reports = self._dispatch(request)
            for report in reports:
                killed = [o for o in report.outcomes if o is OffloadOutcome.KILLED]
                if killed:
                    raise RequestRejected(
                        f"request {request.request_id} ({request.kind}): "
                        f"{len(killed)} offload(s) killed by the decoder",
                        request_id=request.request_id, worker=self.index,
                    )
        except ReplayDivergence as error:
            # A recording stopped matching the machine mid-replay: on a
            # healthy system this is unreachable, so treat it as a
            # poisoned recording.  The scheduler already invalidated and
            # retracted the diverged key; drop everything else this
            # attempt touched and surface a retryable corruption failure.
            self.failures += 1
            self._retract_touched()
            self._recover()
            raise SilentCorruptionError(
                f"request {request.request_id}: replay recording diverged "
                f"mid-run on worker {self.index} (poisoned recording "
                f"invalidated and retracted)",
                request_id=request.request_id, worker=self.index,
            ) from error
        except BaseException:
            # Keep the original diagnostic: a failed request may leave
            # kernels pending, in which case reset_heap() itself raises —
            # recover the pool slot with a fresh system instead of letting
            # that error mask the real one.
            self.failures += 1
            self._recover()
            raise
        finally:
            if cache is not None:
                cache.launch_log = None
            if surface.armed:
                surface.disarm()
        integrity_info: Optional[Dict[str, Any]] = None
        if self.integrity != "off":
            try:
                output, reports, integrity_info = self._check_integrity(
                    request, output, reports
                )
            except SilentCorruptionError:
                self.failures += 1
                self._retract_touched()
                self._recover()
                raise
            except BaseException:
                self.failures += 1
                self._recover()
                raise
        launches: List[Dict[str, Any]] = []
        if observe:
            # collect per-launch records before reset_heap() clears the
            # scheduler's completed/breakdowns state
            scheduler = self.system.llc.runtime.scheduler
            outcomes = dict(launch_log or ())
            for kernel in scheduler.completed:
                phases = scheduler.breakdowns.get(kernel.kernel_id)
                launches.append({
                    "kernel_id": kernel.kernel_id,
                    "name": kernel.name,
                    "cycles": phases.total if phases is not None else 0,
                    "replay": outcomes.get(kernel.kernel_id, "off"),
                })
        self._restore_replay_flags()
        self.system.reset_heap()
        wall = time.perf_counter() - start
        sim_cycles = sum(r.total_cycles for r in reports)
        if slow_factor > 1.0:
            # injected latency spike: stretches the serving timeline only
            # (the RunReports keep the machine's true cycle counts)
            sim_cycles = int(round(sim_cycles * slow_factor))
        breakdown = PhaseBreakdown()
        for report in reports:
            breakdown.merge(report.breakdown)
        self.busy_cycles += sim_cycles
        self.served += 1
        if surface.events:
            # what actually fired on the machine (diagnostics): attached
            # even under policy "off", where nothing would catch it
            integrity_info = dict(integrity_info or {})
            integrity_info["events"] = list(surface.events)
        return RequestResult(
            request_id=request.request_id,
            kind=request.kind,
            worker=self.index,
            output=output,
            sim_cycles=sim_cycles,
            breakdown=breakdown,
            wall_seconds=wall,
            reports=reports,
            attempts=attempt,
            launches=launches,
            integrity=integrity_info,
        )

    def apply_injected(self, error: ServingError) -> None:
        """Mirror an injected fault's worker-side effects.

        The dispatch core draws fault decisions centrally (so serial and
        multi-process runs make identical decisions in identical order)
        and calls this on the owning backend — reproducing exactly what
        :meth:`run` does when its own ``injector`` raises: the attempt
        never executes, the system stays clean, a crash loses all state.
        """
        self.last_recovery = None
        self.failures += 1
        if isinstance(error, WorkerCrashError):
            # the simulated hardware died: all state is lost
            self.rebuild()
            self.last_recovery = {"via": "rebuild", "error": None}

    def rebuild(self) -> None:
        """Replace the simulation universe with a fresh one (counted)."""
        self.system = ArcaneSystem(self.config)
        if self.with_compiled:
            install_compiled(self.system.llc.runtime.library)
        self._attach_fleet()
        for name, (recipe_json, slot) in self._recipe_overrides.items():
            self._register_recipe(name, recipe_json, slot)
        self.rebuilds += 1

    def register_recipe(
        self, name: str, recipe_json: str, func5: Optional[int] = None
    ) -> None:
        """Swap one library kernel for a tuned-recipe variant.

        Re-registers the recompiled spec (``replace=True`` bumps the
        library generation, invalidating stale replay recordings) and
        remembers the override so :meth:`rebuild` reapplies it after
        fault recovery.  ``func5=None`` targets the kernel's stock slot.
        """
        from repro.compiler.library import DEFAULT_FUNC5

        slot = DEFAULT_FUNC5[name] if func5 is None else func5
        self._register_recipe(name, recipe_json, slot)
        self._recipe_overrides[name] = (recipe_json, slot)

    def _register_recipe(self, name: str, recipe_json: str, slot: int) -> None:
        from repro.compiler.library import recompile

        spec = recompile(name, recipe_json, func5=slot)
        self.system.llc.runtime.library.register(spec, replace=True)

    def _attach_fleet(self) -> None:
        """Point the system's replay cache at the shared fleet store."""
        if self.fleet is None:
            return
        cache = self.system.llc.runtime.replay_cache
        if cache is not None:
            cache.fleet = self.fleet

    def _check_integrity(
        self, request: InferenceRequest, output: np.ndarray, reports: List[RunReport]
    ) -> Tuple[np.ndarray, List[RunReport], Dict[str, Any]]:
        """Apply this worker's integrity policy to a finished attempt.

        Raises :class:`SilentCorruptionError` on unrepairable corruption;
        returns the (possibly ABFT-corrected) output, the report list
        (extended with the DMR shadow's reports — redundancy costs real
        cycles) and a JSON-clean info dict for the result.
        """
        info: Dict[str, Any] = {"policy": self.integrity}
        verdict = check_output(request, output, self.integrity, self.ledger)
        if verdict.status == "corrupt":
            raise SilentCorruptionError(
                f"request {request.request_id}: {verdict.detail} "
                f"(worker {self.index}, via {verdict.method})",
                request_id=request.request_id, worker=self.index,
            )
        if verdict.status == "corrected":
            info["corrected"] = True
            info["method"] = verdict.method
            output = verdict.output
        elif verdict.method is not None:
            info["method"] = verdict.method
        if self.integrity == "dmr":
            shadow, shadow_reports = self._shadow_run(request)
            reports = list(reports) + shadow_reports
            if (
                shadow.shape != output.shape
                or shadow.dtype != output.dtype
                or not np.array_equal(shadow, output)
            ):
                raise SilentCorruptionError(
                    f"request {request.request_id}: DMR shadow execution "
                    f"disagrees with the primary on worker {self.index}",
                    request_id=request.request_id, worker=self.index,
                )
            info["method"] = "dmr"
        return output, reports, info

    def _shadow_run(
        self, request: InferenceRequest
    ) -> Tuple[np.ndarray, List[RunReport]]:
        """DMR shadow: re-execute once more on the reset machine with the
        replay fast path suspended (a poisoned recording must not vote)."""
        self.system.reset_heap()
        cache = self.system.llc.runtime.replay_cache
        restore = cache.suspended if cache is not None else False
        if cache is not None:
            cache.suspended = True
        try:
            return self._dispatch(request)
        finally:
            if cache is not None:
                cache.suspended = restore

    def _retract_touched(self) -> None:
        """Invalidate (and fleet-retract) every recording this attempt
        stored or replayed — a detected corruption taints all of them."""
        cache = self.system.llc.runtime.replay_cache
        if cache is not None and cache.touched:
            for key in dict.fromkeys(cache.touched):
                cache.invalidate(key)

    def _restore_replay_flags(self) -> None:
        cache = self.system.llc.runtime.replay_cache
        if cache is not None:
            cache.touched = None
            cache.suspended = False

    def _recover(self) -> None:
        """Restore a serviceable system after a failed request.

        Counts whether ``reset_heap()`` sufficed (``recoveries``) or the
        universe had to be rebuilt (``rebuilds``), and keeps the
        swallowed reset-failure diagnostic on ``last_recovery`` so the
        engine can attach it to the request's failure record.
        """
        self._restore_replay_flags()
        try:
            self.system.reset_heap()
        except Exception as reset_error:
            # kernels stuck mid-flight: rebuild the simulation universe
            self.rebuild()
            self.last_recovery = {"via": "rebuild", "error": repr(reset_error)}
        else:
            self.recoveries += 1
            self.last_recovery = {"via": "reset", "error": None}

    def health_snapshot(self) -> Dict[str, int]:
        """Cumulative health counters (for ServingReport deltas)."""
        return {
            "failures": self.failures,
            "recoveries": self.recoveries,
            "rebuilds": self.rebuilds,
        }

    def _dispatch(self, request: InferenceRequest) -> Tuple[np.ndarray, List[RunReport]]:
        payload = request.payload
        if request.kind == "gemm":
            return self._run_gemm(**payload)
        if request.kind == "conv_layer":
            return self._run_conv_layer(payload["image"], payload["filters"])
        if request.kind == "kernel":
            output, report, _ = self._run_kernel(
                payload["func5"], payload["inputs"], payload["out_shape"],
                payload["params"], payload["dtype"],
            )
            return output, [report]
        if request.kind == "graph":
            return self._run_graph(payload["inputs"], payload["nodes"], payload["output"])
        raise ValueError(f"unknown request kind {request.kind!r}")

    def _run_gemm(self, a, b, c, alpha, beta) -> Tuple[np.ndarray, List[RunReport]]:
        system = self.system
        ma, mb, mc = (system.place_matrix(m) for m in (a, b, c))
        out = system.alloc_matrix((a.shape[0], b.shape[1]), a.dtype)
        with system.program() as prog:
            prog.xmr(0, ma).xmr(1, mb).xmr(2, mc).xmr(3, out)
            prog.gemm(dest=3, a=0, b=1, c=2, alpha=alpha, beta=beta,
                      suffix=ma.etype.suffix)
        return system.read_matrix(out), [system.last_report]

    def _run_conv_layer(self, image, filters) -> Tuple[np.ndarray, List[RunReport]]:
        output, report = self.system.run_conv_layer(image, filters)
        return output, [report]

    def _run_kernel(
        self,
        func5: int,
        inputs: Sequence[np.ndarray],
        out_shape: Tuple[int, int],
        params: Sequence[int],
        dtype: Optional[Any] = None,
        handles: Optional[Sequence[Matrix]] = None,
    ) -> Tuple[np.ndarray, RunReport, Matrix]:
        """One library kernel (any slot) over fresh or pre-placed operands."""
        system = self.system
        if handles is None:
            handles = [system.place_matrix(m) for m in inputs]
        dtype = np.dtype(dtype) if dtype is not None else handles[0].dtype
        out = system.alloc_matrix(tuple(out_shape), dtype)
        with system.program() as prog:
            for register, handle in enumerate(handles):
                prog.xmr(register, handle)
            prog.xmr(len(handles), out)
            offload_compiled(
                prog, func5, out.etype.suffix, dest=len(handles),
                sources=list(range(len(handles))), params=list(params),
            )
        return system.read_matrix(out), system.last_report, out

    def _run_graph(
        self, inputs: Dict[str, np.ndarray], nodes: Sequence[GraphNode], output: str
    ) -> Tuple[np.ndarray, List[RunReport]]:
        """Run a node chain; intermediates stay resident in system memory.

        Each node is one host program (its own offload batch); a consumer
        reads its producer's output through the LLC, so warm results are
        served from cache lines the producer's write-back just filled.
        """
        system = self.system
        env: Dict[str, Matrix] = {
            name: system.place_matrix(array, name) for name, array in inputs.items()
        }
        reports: List[RunReport] = []
        result: Optional[np.ndarray] = None
        for node in nodes:
            handles = [env[name] for name in node.inputs]
            value, report, out_handle = self._run_kernel(
                node.func5, [], node.out_shape, node.params,
                dtype=node.dtype or handles[0].dtype, handles=handles,
            )
            reports.append(report)
            env[node.name] = out_handle
            if node.name == output:
                result = value
        assert result is not None  # graph_request validated the output name
        return result, reports
