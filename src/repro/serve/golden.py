"""Numpy oracles for serving requests (result verification).

Maps library slots (func5) to the hardware-exact golden models in
:mod:`repro.baselines.reference`, and evaluates whole requests — including
graph requests, by interpreting the node chain over numpy arrays.  The
engine's ``verify=True`` path and the serving tests both check every
served output against these.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.baselines.reference import (
    ref_conv2d,
    ref_conv_layer,
    ref_gemm,
    ref_leaky_relu,
    ref_maxpool,
)
from repro.compiler import (
    FUNC5_CGEMM,
    FUNC5_DWCONV2D,
    FUNC5_EWISE_ADD,
    FUNC5_EWISE_MUL,
    FUNC5_FC,
    FUNC5_ROWSUM,
)
from repro.serve.request import InferenceRequest


def _wrap(dtype, exact: np.ndarray) -> np.ndarray:
    return exact.astype(np.int64).astype(dtype)


def _g_gemm(inputs: Sequence[np.ndarray], params: Sequence[int]) -> np.ndarray:
    a, b, c = inputs
    alpha = params[0] if len(params) > 0 else 1
    beta = params[1] if len(params) > 1 else 0
    return ref_gemm(a, b, c, alpha, beta)


def _g_leaky_relu(inputs, params):
    (x,) = inputs
    return ref_leaky_relu(x, params[0] if params else 3)


def _g_maxpool(inputs, params):
    (x,) = inputs
    stride = params[0] if len(params) > 0 else 2
    window = params[1] if len(params) > 1 else 2
    return ref_maxpool(x, window, stride)


def _g_conv2d(inputs, params):
    x, f = inputs
    return ref_conv2d(x, f)


def _g_conv_layer(inputs, params):
    x, f = inputs
    return ref_conv_layer(x, f)


def _g_dwconv2d(inputs, params):
    x, f = inputs
    k = f.shape[1]
    channels = f.shape[0] // k
    height = x.shape[0] // channels
    return np.vstack([
        ref_conv2d(x[ch * height : (ch + 1) * height], f[ch * k : (ch + 1) * k])
        for ch in range(channels)
    ])


def _g_fc(inputs, params):
    x, w, bias = inputs
    exact = x.astype(np.int64) @ w.astype(np.int64) + bias.astype(np.int64)
    return _wrap(x.dtype, exact)


def _g_ewise_add(inputs, params):
    x, y = inputs
    return _wrap(x.dtype, x.astype(np.int64) + y.astype(np.int64))


def _g_ewise_mul(inputs, params):
    x, y = inputs
    return _wrap(x.dtype, x.astype(np.int64) * y.astype(np.int64))


def _g_rowsum(inputs, params):
    (x,) = inputs
    return _wrap(x.dtype, x.astype(np.int64).sum(axis=1).reshape(-1, 1))


#: func5 -> golden(inputs, params); covers Table I plus the compiled library.
KERNEL_GOLDEN = {
    0: _g_gemm,
    1: _g_leaky_relu,
    2: _g_maxpool,
    3: _g_conv2d,
    4: _g_conv_layer,
    FUNC5_CGEMM: _g_gemm,
    FUNC5_DWCONV2D: _g_dwconv2d,
    FUNC5_FC: _g_fc,
    FUNC5_EWISE_ADD: _g_ewise_add,
    FUNC5_EWISE_MUL: _g_ewise_mul,
    FUNC5_ROWSUM: _g_rowsum,
}


def kernel_golden(func5: int, inputs: Sequence[np.ndarray], params: Sequence[int]):
    fn = KERNEL_GOLDEN.get(func5)
    if fn is None:
        raise KeyError(f"no golden model registered for kernel slot {func5}")
    return fn(list(inputs), list(params))


def expected_output(request: InferenceRequest) -> np.ndarray:
    """Evaluate one request on the numpy oracles."""
    payload = request.payload
    if request.kind == "gemm":
        return ref_gemm(payload["a"], payload["b"], payload["c"],
                        payload["alpha"], payload["beta"])
    if request.kind == "conv_layer":
        return ref_conv_layer(payload["image"], payload["filters"])
    if request.kind == "kernel":
        return kernel_golden(payload["func5"], payload["inputs"], payload["params"])
    if request.kind == "graph":
        env: Dict[str, np.ndarray] = dict(payload["inputs"])
        for node in payload["nodes"]:
            inputs: List[np.ndarray] = [env[name] for name in node.inputs]
            env[node.name] = kernel_golden(node.func5, inputs, node.params)
        return env[payload["output"]]
    raise ValueError(f"unknown request kind {request.kind!r}")
