"""The shared fleet replay cache: one worker's recording warms the pool.

A :class:`~repro.runtime.replay.ReplayCache` is per-system, so in a
serving pool every worker pays the record-once cost for every distinct
launch key itself.  Recordings are deliberately position-independent
(operands referenced by position, rows by index) and replays re-execute
against the live machine, which makes a recording valid on *any*
identically configured system — the :class:`FleetReplayCache` exploits
exactly that: a bounded cross-worker store the per-system caches publish
newly recorded streams into and fall back to on a local miss.

Transport is pull-free in-process (serial pools hand every worker the
same object) and piggybacked over the pool pipes for ``processes > 1``:
each shard drains its fleet's *outbox* into every command reply, and the
:class:`~repro.serve.dispatch.ProcessPool` forwards those recordings to
the other shards with their next command — a publish/subscribe path with
no extra round trips.  Adopted recordings never re-enter an outbox, so
nothing ping-pongs.

Sharing recordings cannot change results: replay is bit-exact with the
slow path by the replay module's contract, and ``can_replay`` still
vetoes any launch whose environment (VRF free list, LLC state, VPU
selection) differs from the recording's — a fleet hit that doesn't fit
simply takes the slow path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional, Tuple

from repro.runtime.replay import Recording


class FleetReplayCache:
    """Bounded LRU store of recordings shared across a worker pool."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("fleet cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, Recording]" = OrderedDict()
        #: recordings published locally and not yet shipped to other
        #: shards (multi-process transport drains this into replies)
        self._outbox: List[Tuple[tuple, Recording]] = []
        #: keys retracted locally (poisoned recordings) and not yet
        #: shipped to other shards
        self._retract_outbox: List[tuple] = []
        self.stats = {"published": 0, "adopted": 0, "served": 0, "retracted": 0}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Optional[Recording]:
        recording = self._entries.get(key)
        if recording is not None:
            self._entries.move_to_end(key)
            self.stats["served"] += 1
        return recording

    def publish(self, key: tuple, recording: Recording) -> None:
        """Share one locally recorded stream with the rest of the pool."""
        if key in self._entries:
            return
        self._entries[key] = recording
        self._outbox.append((key, recording))
        self.stats["published"] += 1
        self._trim()

    def adopt(self, items: Iterable[Tuple[tuple, Recording]]) -> None:
        """Take in recordings published elsewhere (no outbox: these are
        already fleet-wide, re-shipping them would ping-pong forever)."""
        for key, recording in items:
            if key in self._entries:
                continue
            self._entries[key] = recording
            self.stats["adopted"] += 1
        self._trim()

    def retract(self, key: tuple) -> None:
        """Remove a poisoned recording fleet-wide.

        The local entry is dropped, any not-yet-shipped publish of it is
        cancelled, and the retraction is queued for the other shards so a
        corrupt recording one worker produced can never be replayed by
        another.
        """
        self._entries.pop(key, None)
        self._outbox = [(k, r) for k, r in self._outbox if k != key]
        self._retract_outbox.append(key)
        self.stats["retracted"] += 1

    def discard(self, keys: Iterable[tuple]) -> None:
        """Apply retractions that arrived from another shard (no outbox:
        they are already propagating fleet-wide)."""
        for key in keys:
            self._entries.pop(key, None)

    def drain_outbox(self) -> List[Tuple[tuple, Recording]]:
        """Hand over everything published since the last drain."""
        out, self._outbox = self._outbox, []
        return out

    def drain_retractions(self) -> List[tuple]:
        """Hand over every key retracted since the last drain."""
        out, self._retract_outbox = self._retract_outbox, []
        return out

    def _trim(self) -> None:
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
