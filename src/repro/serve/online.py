"""Online serving: an arrival-driven event loop in simulated cycles.

The offline :class:`~repro.serve.engine.ServingEngine` path assigns every
request up front by *estimated* operand volume — a batch calculator.
This module is the queueing simulator the ROADMAP's "heavy traffic"
north-star needs: requests *arrive* over simulated time (stamped by
:mod:`repro.serve.traffic`), wait in a FIFO admission queue, and are
dispatched at their arrival cycle to the worker with the smallest
**actual** cycle backlog — the load balancer sees real queue depths, not
operand-volume guesses.

Everything lives in one simulated-cycle domain: a request's service time
is the cycles its ARCANE system actually simulates (bit-exact with a
single-shot run, thanks to ``reset_heap()``), and its completion cycle is
``start + service`` on the worker's timeline.  Per request::

    queue_delay = start_cycle - arrival_cycle      (>= 0)
    latency     = completion_cycle - arrival_cycle (== queue_delay + service)

The dispatcher also owns the **failure half** of online serving
(:mod:`repro.serve.faults`): a failed attempt is detected at its
dispatch instant, backed off in simulated cycles, and *re-enters the
admission queue* as a later attempt (failing over to a different worker
when possible); a bounded admission queue sheds arrivals when too many
admitted requests are still waiting; deadline-aware admission sheds a
request whose projected start would already miss its ``deadline_cycle``
and marks late completions ``timed_out``; and a
:class:`~repro.serve.faults.WorkerSupervisor` quarantines workers that
fail repeatedly (the dispatcher skips them until probation).

The loop is deterministic: a fixed traffic seed fixes the arrival stamps,
FIFO admission breaks simultaneous arrivals by submission order, backlog
ties go to the lowest worker index, and fault draws hash ``(fault seed,
request, attempt)`` — so online reports (availability included) are
exactly reproducible for a fixed ``(traffic seed, fault seed)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import NULL_RECORDER, NullRecorder
from repro.serve.faults import (
    FaultInjector,
    RetryPolicy,
    ServingError,
    WorkerCrashError,
    WorkerSupervisor,
)
from repro.serve.request import InferenceRequest, RequestResult
from repro.serve.worker import SystemWorker

#: Event kinds recorded on the dispatcher's timeline.
ARRIVAL = "arrival"
DISPATCH = "dispatch"
COMPLETION = "completion"
FAIL = "fail"
RETRY = "retry"
SHED = "shed"


@dataclass(frozen=True)
class OnlineEvent:
    """One entry in the simulated-time event log."""

    cycle: int
    kind: str
    request_id: int
    worker: Optional[int] = None


class OnlineDispatcher:
    """FIFO admission + least-backlog dispatch over a worker pool.

    The dispatcher owns the simulated clock.  Requests are admitted in
    ``(arrival_cycle, submission order)`` order — a FIFO queue in front
    of the pool — and each is routed *at its arrival cycle* to the
    available worker whose backlog (cycles of already-dispatched work
    still pending at that instant) is smallest.  Service happens by
    actually running the request on the chosen worker, so timing is the
    simulator's, not an estimate.

    Optional fault machinery: ``injector`` injects seeded faults at each
    attempt, ``retry`` bounds attempts and spaces them with simulated
    backoff (a retry re-enters the admission queue), ``supervisor``
    quarantines repeatedly-failing workers, and ``queue_capacity``
    bounds how many admitted requests may be waiting (excess arrivals
    are shed).  All default to off, reproducing the plain FIFO loop.
    """

    def __init__(
        self,
        workers: Sequence[SystemWorker],
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        supervisor: Optional[WorkerSupervisor] = None,
        queue_capacity: Optional[int] = None,
        recorder: NullRecorder = NULL_RECORDER,
    ) -> None:
        if not workers:
            raise ValueError("online dispatch needs at least one worker")
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None for unbounded)")
        self.workers = list(workers)
        self.injector = injector
        self.retry = retry or RetryPolicy()
        self.supervisor = supervisor
        self.queue_capacity = queue_capacity
        #: observability recorder; the default no-op costs one attribute
        #: check per request (mirrors the Tracer's disabled path)
        self.recorder = recorder
        #: cycle at which each worker drains all dispatched work
        self.free_at = [0] * len(self.workers)
        #: chronological event log (arrival/dispatch/completion/fail/retry/shed)
        self.events: List[OnlineEvent] = []
        #: availability tally for the serving report
        self.tally: Dict = {
            "retries": 0,
            "failovers": 0,
            "failed_attempts_by_class": {},
        }

    def backlog(self, worker: int, now: int) -> int:
        """Cycles of pending work on ``worker`` as seen at cycle ``now``."""
        return max(0, self.free_at[worker] - now)

    def _candidates(self, now: int, avoid: Optional[int]) -> List[int]:
        """Dispatchable workers at ``now``, preferring not-``avoid``."""
        if self.supervisor is not None:
            ready = self.supervisor.available(now)
        else:
            ready = list(range(len(self.workers)))
        if avoid is not None and self.retry.failover:
            others = [w for w in ready if w != avoid]
            if others:
                return others
        return ready

    def run(self, requests: Sequence[InferenceRequest]) -> List[RequestResult]:
        """Serve every request in simulated time; results in input order."""
        requests = list(requests)
        admission = sorted(
            ((request.arrival_cycle, position)
             for position, request in enumerate(requests)),
            key=lambda entry: entry[:2],
        )
        # the pending heap orders (ready_cycle, admission seq); retries
        # re-enter with a fresh seq so FIFO ties stay deterministic
        pending: List[Tuple[int, int, int, int]] = [
            (arrival, seq, 1, position)
            for seq, (arrival, position) in enumerate(admission)
        ]
        heapq.heapify(pending)
        next_seq = len(pending)
        completions: List[Tuple[int, int, int, int]] = []  # heap: (cycle, pos, rid, w)
        results: List[Optional[RequestResult]] = [None] * len(requests)
        attempt_errors: Dict[int, List[str]] = {}
        last_failed: Dict[int, int] = {}
        dispatched_starts: List[int] = []
        rec = self.recorder
        request_spans: Dict[int, int] = {}  # position -> open request span

        while pending:
            ready, seq, attempt, position = heapq.heappop(pending)
            request = requests[position]
            rid = request.request_id
            # retire completions that happen before this instant, so the
            # event log interleaves chronologically
            while completions and completions[0][0] <= ready:
                cycle, _, crid, worker = heapq.heappop(completions)
                self.events.append(OnlineEvent(cycle, COMPLETION, crid, worker))
            if attempt == 1:
                self.events.append(OnlineEvent(ready, ARRIVAL, rid))
                if rec.enabled:
                    request_spans[position] = rec.begin(
                        f"request {rid}", "request", ready,
                        request=rid, kind=request.kind,
                    )
            if self.supervisor is not None:
                self.supervisor.tick(ready)
            # bounded admission: how many admitted requests are still
            # waiting (dispatched but not yet started) at this instant?
            if self.queue_capacity is not None:
                depth = sum(1 for s in dispatched_starts if s > ready)
                if depth >= self.queue_capacity:
                    self.events.append(OnlineEvent(ready, SHED, rid))
                    if rec.enabled:
                        rec.end(request_spans[position], ready,
                                status="shed", cause="queue_full")
                    results[position] = RequestResult.failure(
                        request, "shed",
                        f"admission queue full ({depth} waiting, capacity "
                        f"{self.queue_capacity}) at cycle {ready}",
                        attempts=attempt, arrival_cycle=request.arrival_cycle,
                        fault_class="queue_full",
                    )
                    continue
            candidates = self._candidates(ready, last_failed.get(position))
            worker = min(candidates, key=lambda w: (self.backlog(w, ready), w))
            start = max(ready, self.free_at[worker])
            # deadline-aware load shedding: don't burn cycles on a request
            # whose queue delay already blew its deadline
            if request.deadline_cycle is not None and start > request.deadline_cycle:
                self.events.append(OnlineEvent(ready, SHED, rid))
                if rec.enabled:
                    rec.end(request_spans[position], ready,
                            status="shed", cause="deadline")
                results[position] = RequestResult.failure(
                    request, "shed",
                    f"projected start cycle {start} past deadline "
                    f"{request.deadline_cycle} (queue delay would blow it)",
                    attempts=attempt, arrival_cycle=request.arrival_cycle,
                    fault_class="deadline",
                )
                continue
            failover = attempt > 1 and worker != last_failed.get(position)
            if failover:
                self.tally["failovers"] += 1
            attempt_span = 0
            if rec.enabled:
                attempt_span = rec.begin(
                    f"attempt {attempt}", "attempt", ready,
                    parent=request_spans[position],
                    request=rid, attempt=attempt, worker=worker,
                    cause="retry" if attempt > 1 else None,
                    failover=failover or None,
                )
            try:
                result = self.workers[worker].run(
                    request, attempt=attempt, injector=self.injector,
                    observe=rec.enabled,
                )
            except ServingError as error:
                if rec.enabled:
                    # a fault fires at its dispatch instant: zero duration
                    rec.end(attempt_span, ready, status="failed",
                            fault_class=error.fault_class,
                            injected=error.injected or None)
                self._record_failure(
                    request, worker, ready, attempt, error,
                    attempt_errors.setdefault(position, []),
                )
                last_failed[position] = worker
                if error.retryable and attempt < self.retry.max_attempts:
                    retry_at = ready + self.retry.backoff(attempt)
                    self.events.append(OnlineEvent(ready, RETRY, rid, worker))
                    self.tally["retries"] += 1
                    heapq.heappush(pending, (retry_at, next_seq, attempt + 1, position))
                    next_seq += 1
                else:
                    if rec.enabled:
                        rec.end(request_spans[position], ready,
                                status="failed", fault_class=error.fault_class)
                    results[position] = RequestResult.failure(
                        request, "failed",
                        "; ".join(attempt_errors.get(position, [])),
                        worker=worker, attempts=attempt,
                        arrival_cycle=request.arrival_cycle,
                        fault_class=error.fault_class,
                    )
                continue
            if self.supervisor is not None:
                self.supervisor.record_success(worker, ready)
            completion = start + result.sim_cycles
            result.arrival_cycle = request.arrival_cycle
            result.start_cycle = start
            result.completion_cycle = completion
            result.attempts = attempt
            if attempt_errors.get(position):
                # succeeded after retries: keep the failure history around
                result.error = "; ".join(attempt_errors[position])
            if (
                request.deadline_cycle is not None
                and completion > request.deadline_cycle
            ):
                result.status = "timed_out"
            if rec.enabled:
                wait_span = rec.begin("queue_wait", "queue_wait", ready,
                                      parent=attempt_span, request=rid)
                rec.end(wait_span, start)
                service_span = rec.begin(
                    f"serve {rid}", "dispatch", start,
                    parent=attempt_span, request=rid, worker=worker,
                )
                # launches lie back-to-back from the service start (the
                # worker executes them serially); stamp the absolute
                # window on each record for the rolling metrics
                cursor = start
                for launch in result.launches:
                    launch_end = cursor + launch["cycles"]
                    launch["start_cycle"] = cursor
                    launch["end_cycle"] = launch_end
                    launch_span = rec.begin(
                        launch["name"], "launch", cursor,
                        parent=service_span, request=rid, worker=worker,
                        kernel_id=launch["kernel_id"], replay=launch["replay"],
                    )
                    rec.end(launch_span, launch_end)
                    cursor = launch_end
                rec.end(service_span, completion)
                rec.end(attempt_span, completion, status=result.status)
                rec.end(request_spans[position], completion,
                        status=result.status, worker=worker)
            self.free_at[worker] = completion
            dispatched_starts.append(start)
            self.events.append(OnlineEvent(ready, DISPATCH, rid, worker))
            heapq.heappush(completions, (completion, position, rid, worker))
            results[position] = result
        while completions:
            cycle, _, crid, worker = heapq.heappop(completions)
            self.events.append(OnlineEvent(cycle, COMPLETION, crid, worker))
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _record_failure(
        self,
        request: InferenceRequest,
        worker: int,
        cycle: int,
        attempt: int,
        error: ServingError,
        history: List[str],
    ) -> None:
        """Log one failed attempt: event, class tally, recovery diagnostic,
        supervision (quarantine rebuilds the worker's system)."""
        self.events.append(OnlineEvent(cycle, FAIL, request.request_id, worker))
        history.append(f"attempt {attempt} on worker {worker}: {error}")
        recovery = self.workers[worker].last_recovery
        if recovery and recovery.get("error"):
            history.append(
                f"worker {worker} rebuilt after reset failure: {recovery['error']}"
            )
        by_class = self.tally["failed_attempts_by_class"]
        by_class[error.fault_class] = by_class.get(error.fault_class, 0) + 1
        if self.supervisor is not None:
            quarantined = self.supervisor.record_failure(worker, cycle, error)
            if quarantined and not isinstance(error, WorkerCrashError):
                # crash already rebuilt the worker inside run()
                self.workers[worker].rebuild()
                self.recorder.instant("rebuilt", cycle, worker=worker)

    @property
    def makespan_cycles(self) -> int:
        """Simulated cycle at which the last dispatched request completes."""
        return max(self.free_at, default=0)
