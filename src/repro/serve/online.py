"""Online serving: an arrival-driven event loop in simulated cycles.

The offline :class:`~repro.serve.engine.ServingEngine` path assigns every
request up front by *estimated* operand volume — a batch calculator.
This module is the queueing simulator the ROADMAP's "heavy traffic"
north-star needs: requests *arrive* over simulated time (stamped by
:mod:`repro.serve.traffic`), wait in a FIFO admission queue, and are
dispatched at their arrival cycle to the worker with the smallest
**actual** cycle backlog — the load balancer sees real queue depths, not
operand-volume guesses.

Everything lives in one simulated-cycle domain: a request's service time
is the cycles its ARCANE system actually simulates (bit-exact with a
single-shot run, thanks to ``reset_heap()``), and its completion cycle is
``start + service`` on the worker's timeline.  Per request::

    queue_delay = start_cycle - arrival_cycle      (>= 0)
    latency     = completion_cycle - arrival_cycle (== queue_delay + service)

The loop is deterministic: a fixed traffic seed fixes the arrival stamps,
FIFO admission breaks simultaneous arrivals by submission order, and
backlog ties go to the lowest worker index — so online reports (and their
queue-delay percentiles) are exactly reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.serve.request import InferenceRequest, RequestResult
from repro.serve.worker import SystemWorker

#: Event kinds recorded on the dispatcher's timeline.
ARRIVAL = "arrival"
DISPATCH = "dispatch"
COMPLETION = "completion"


@dataclass(frozen=True)
class OnlineEvent:
    """One entry in the simulated-time event log."""

    cycle: int
    kind: str
    request_id: int
    worker: Optional[int] = None


class OnlineDispatcher:
    """FIFO admission + least-backlog dispatch over a worker pool.

    The dispatcher owns the simulated clock.  Requests are admitted in
    ``(arrival_cycle, submission order)`` order — a FIFO queue in front
    of the pool — and each is routed *at its arrival cycle* to the
    worker whose backlog (cycles of already-dispatched work still
    pending at that instant) is smallest.  Service happens by actually
    running the request on the chosen worker, so timing is the
    simulator's, not an estimate.
    """

    def __init__(self, workers: Sequence[SystemWorker]) -> None:
        if not workers:
            raise ValueError("online dispatch needs at least one worker")
        self.workers = list(workers)
        #: cycle at which each worker drains all dispatched work
        self.free_at = [0] * len(self.workers)
        #: chronological event log (arrival / dispatch / completion)
        self.events: List[OnlineEvent] = []

    def backlog(self, worker: int, now: int) -> int:
        """Cycles of pending work on ``worker`` as seen at cycle ``now``."""
        return max(0, self.free_at[worker] - now)

    def run(self, requests: Sequence[InferenceRequest]) -> List[RequestResult]:
        """Serve every request in simulated time; results in input order."""
        admission: List[Tuple[int, int, InferenceRequest]] = sorted(
            ((request.arrival_cycle, position, request)
             for position, request in enumerate(requests)),
            key=lambda entry: entry[:2],
        )
        completions: List[Tuple[int, int, int, int]] = []  # heap: (cycle, pos, rid, w)
        results: List[Optional[RequestResult]] = [None] * len(admission)
        for arrival, position, request in admission:
            # retire completions that happen before this arrival, so the
            # event log interleaves chronologically
            while completions and completions[0][0] <= arrival:
                cycle, _, rid, worker = heapq.heappop(completions)
                self.events.append(OnlineEvent(cycle, COMPLETION, rid, worker))
            self.events.append(OnlineEvent(arrival, ARRIVAL, request.request_id))
            worker = min(
                range(len(self.workers)),
                key=lambda w: (self.backlog(w, arrival), w),
            )
            start = max(arrival, self.free_at[worker])
            result = self.workers[worker].run(request)
            completion = start + result.sim_cycles
            result.arrival_cycle = arrival
            result.start_cycle = start
            result.completion_cycle = completion
            self.free_at[worker] = completion
            self.events.append(
                OnlineEvent(arrival, DISPATCH, request.request_id, result.worker)
            )
            heapq.heappush(
                completions, (completion, position, request.request_id, result.worker)
            )
            results[position] = result
        while completions:
            cycle, _, rid, worker = heapq.heappop(completions)
            self.events.append(OnlineEvent(cycle, COMPLETION, rid, worker))
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    @property
    def makespan_cycles(self) -> int:
        """Simulated cycle at which the last dispatched request completes."""
        return max(self.free_at, default=0)
