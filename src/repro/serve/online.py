"""Online serving: the arrival-driven face of the unified dispatch core.

Historically this module owned its own event loop; that loop now lives
in :mod:`repro.serve.dispatch` as the :class:`DispatchCore` running on
the cycle clock, shared with offline and multi-process serving.  What
remains here is the backward-compatible surface: the event-kind
constants, :class:`OnlineEvent`, and :class:`OnlineDispatcher` — a thin
shim that wires a list of in-process workers into a
:class:`~repro.serve.dispatch.SerialPool` + core with FIFO admission,
preserving the exact semantics (and bit-identical event/span streams)
of the original dispatcher.

Everything lives in one simulated-cycle domain: a request's service time
is the cycles its ARCANE system actually simulates (bit-exact with a
single-shot run, thanks to ``reset_heap()``), and its completion cycle
is ``start + service`` on the worker's timeline.  Per request::

    queue_delay = start_cycle - arrival_cycle      (>= 0)
    latency     = completion_cycle - arrival_cycle (== queue_delay + service)

The loop is deterministic: a fixed traffic seed fixes the arrival
stamps, FIFO admission breaks simultaneous arrivals by submission order,
backlog ties go to the lowest worker index, and fault draws hash
``(fault seed, request, attempt)`` — so online reports (availability
included) are exactly reproducible for a fixed ``(traffic seed, fault
seed)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.obs.spans import NULL_RECORDER, NullRecorder
from repro.serve.dispatch import (
    ARRIVAL,
    COMPLETION,
    CYCLE_CLOCK,
    DISPATCH,
    FAIL,
    RETRY,
    SHED,
    DispatchCore,
    OnlineEvent,
    SerialPool,
)
from repro.serve.faults import (
    FaultInjector,
    RetryPolicy,
    WorkerSupervisor,
)
from repro.serve.request import InferenceRequest, RequestResult
from repro.serve.worker import SystemWorker

__all__ = [
    "ARRIVAL", "DISPATCH", "COMPLETION", "FAIL", "RETRY", "SHED",
    "OnlineEvent", "OnlineDispatcher",
]


class OnlineDispatcher:
    """FIFO admission + least-backlog dispatch over an in-process pool.

    A compatibility frontend over :class:`DispatchCore` on the cycle
    clock: requests are admitted in ``(arrival_cycle, submission
    order)`` order and each is routed at its arrival cycle to the
    available worker with the smallest backlog; service happens by
    actually running the request on the chosen worker, so timing is the
    simulator's, not an estimate.

    Optional fault machinery: ``injector`` injects seeded faults at each
    attempt, ``retry`` bounds attempts and spaces them with simulated
    backoff (a retry re-enters the admission queue), ``supervisor``
    quarantines repeatedly-failing workers, and ``queue_capacity``
    bounds how many admitted requests may be waiting (excess arrivals
    are shed).  All default to off, reproducing the plain FIFO loop.
    """

    def __init__(
        self,
        workers: Sequence[SystemWorker],
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        supervisor: Optional[WorkerSupervisor] = None,
        queue_capacity: Optional[int] = None,
        recorder: NullRecorder = NULL_RECORDER,
    ) -> None:
        if not workers:
            raise ValueError("online dispatch needs at least one worker")
        self.workers = list(workers)
        self._core = DispatchCore(
            SerialPool(self.workers), clock=CYCLE_CLOCK, admission="fifo",
            injector=injector, retry=retry, supervisor=supervisor,
            queue_capacity=queue_capacity, recorder=recorder,
        )

    @property
    def free_at(self) -> List[int]:
        return self._core.free_at

    @property
    def events(self) -> List[OnlineEvent]:
        return self._core.events

    @property
    def tally(self):
        return self._core.tally

    def backlog(self, worker: int, now: int) -> int:
        """Cycles of pending work on ``worker`` as seen at cycle ``now``."""
        return self._core.backlog(worker, now)

    def run(self, requests: Sequence[InferenceRequest]) -> List[RequestResult]:
        """Serve every request in simulated time; results in input order."""
        return self._core.run(requests)

    @property
    def makespan_cycles(self) -> int:
        """Simulated cycle at which the last dispatched request completes."""
        return self._core.makespan_cycles
