"""The unified dispatch core: one scheduling loop for every serving mode.

Before this module, ``serve/`` had three divergent execution paths —
offline serial (faults + retry + quarantine), offline parallel shards
(no faults, no retry), and online (serial pool only, plain FIFO).  The
:class:`DispatchCore` replaces all three with **one event loop** that
owns admission, worker selection, retry/failover, quarantine, deadlines
and span/metrics hooks, parameterized by three orthogonal pieces of
data (the Exo/SYS_ATL scheduling-as-data idiom: one fixed algorithm,
policies as values):

* a **clock** — :data:`CYCLE_CLOCK` runs the loop in simulated cycles
  (arrival-driven online serving: backlog-aware dispatch, simulated
  backoff, deadlines, the request timeline); :data:`SEQUENCE_CLOCK`
  runs it in dispatch-sequence order (offline batches: the engine's
  precomputed assignment is the preferred worker, retries are
  immediate, no timeline);
* an **admission policy** (:class:`AdmissionPolicy`) — ``fifo`` keeps
  strict arrival order; ``priority`` serves lower priority classes
  first; ``edf`` (earliest deadline first) and ``sjf`` (shortest job
  first, by the compiled-kernel trip-count estimate of
  :func:`estimate_service_cycles`) re-order the backlog whenever
  requests are queued.  The pending heap is keyed ``(ready, *rank,
  seq)``, so FIFO (empty rank) reproduces the legacy loop bit-for-bit;
* a **pool backend** — :class:`SerialPool` executes on in-process
  :class:`~repro.serve.worker.SystemWorker` instances;
  :class:`ProcessPool` partitions the pool over OS processes (worker
  ``w`` lives in shard ``w % processes``) behind the same six-call
  protocol.

Fault decisions live in the **core**, not the worker: the core calls
:meth:`FaultInjector.before_attempt` itself and mirrors the decision to
the owning backend, so serial and multi-process runs draw identical
faults in identical order.  Combined with two existing invariants —
per-request results are bit-exact with single-shot cold runs
(``reset_heap()``) and injected faults fire *before* execution — this
makes serial vs multi-process reports bit-identical (outputs, statuses,
simulated cycles, event logs, availability), which is what lifted the
old ``processes=1`` restrictions on faults and online serving.

The :class:`ProcessPool` also carries the **shared fleet replay cache**
(:mod:`repro.serve.fleet`): recordings a shard publishes ride back on
its replies and are forwarded to the other shards with the next command,
so one worker's first launch warms the whole pool across process
boundaries.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.spans import NULL_RECORDER, NullRecorder
from repro.serve.faults import (
    FaultInjector,
    RetryPolicy,
    ServingError,
    WorkerCrashError,
    WorkerSupervisor,
)
from repro.serve.request import InferenceRequest, RequestResult
from repro.serve.worker import SystemWorker

#: Clocks a :class:`DispatchCore` can run on.
CYCLE_CLOCK = "cycles"
SEQUENCE_CLOCK = "sequence"
CLOCKS = (CYCLE_CLOCK, SEQUENCE_CLOCK)

#: Event kinds recorded on the dispatch timeline.
ARRIVAL = "arrival"
DISPATCH = "dispatch"
COMPLETION = "completion"
FAIL = "fail"
RETRY = "retry"
SHED = "shed"


@dataclass(frozen=True)
class OnlineEvent:
    """One entry in the dispatch event log.

    ``cycle`` is a simulated cycle under :data:`CYCLE_CLOCK` and the
    dispatch sequence number under :data:`SEQUENCE_CLOCK` (matching the
    :class:`~repro.serve.faults.WorkerSupervisor` convention).
    """

    cycle: int
    kind: str
    request_id: int
    worker: Optional[int] = None


# -- admission policies -------------------------------------------------------

#: Admission policies understood by :meth:`AdmissionPolicy.coerce`.
ADMISSION_POLICIES = ("fifo", "priority", "edf", "sjf")


def estimate_service_cycles(
    request: InferenceRequest,
    schedule_cache=None,
    config=None,
) -> int:
    """Deterministic service-cost estimate for shortest-job-first ranking.

    With a :class:`~repro.compiler.tune.ScheduleCache` and the pool's
    :class:`~repro.core.config.ArcaneConfig`, a library-kernel request
    whose ``(kernel, geometry, config)`` has been autotuned returns the
    cache's **measured** simulated cycles — ground truth from the tuner's
    runs — instead of an estimate.  Otherwise, where the kernel
    semantics are known the estimate mirrors the compiled kernel's loop
    trip counts (a gemm macc-accumulates ``m * n * k`` elements; a conv
    layer visits every output pixel once per filter tap); for opaque
    single-kernel and graph requests it falls back to operand + output
    volume.  The unit is arbitrary — only the *ordering* matters, and it
    is a pure function of the request (and the cache contents), so every
    run ranks identically.
    """
    payload = request.payload

    if (
        schedule_cache is not None
        and config is not None
        and request.kind == "kernel"
    ):
        from repro.compiler.library import NAME_BY_FUNC5
        from repro.compiler.tune import geometry_key

        name = NAME_BY_FUNC5.get(payload["func5"])
        if name is not None and payload["inputs"]:
            geometry = geometry_key(
                [np.asarray(m).shape for m in payload["inputs"]],
                np.asarray(payload["inputs"][0]).dtype,
                payload["params"],
            )
            measured = schedule_cache.measured_cycles(name, geometry, config)
            if measured is not None:
                return int(measured)

    def volume(array) -> int:
        return int(np.asarray(array).size)

    if request.kind == "gemm":
        m, k = payload["a"].shape
        n = payload["b"].shape[1]
        return m * n * (k + 2)
    if request.kind == "conv_layer":
        return volume(payload["image"]) * volume(payload["filters"])
    if request.kind == "kernel":
        out_rows, out_cols = payload["out_shape"]
        return sum(volume(m) for m in payload["inputs"]) + out_rows * out_cols
    if request.kind == "graph":
        return sum(volume(m) for m in payload["inputs"].values()) + sum(
            node.out_shape[0] * node.out_shape[1] for node in payload["nodes"]
        )
    return 1


@dataclass(frozen=True)
class AdmissionPolicy:
    """How queued requests are ordered when the pool is backlogged.

    The policy contributes a *rank tuple* to the pending-heap key
    ``(ready, *rank, seq)``.  FIFO's rank is empty, which keeps the
    exact legacy ordering ``(ready, seq)``; the other policies rank
    same-cycle requests by priority class, deadline, or estimated
    service cost.  Non-FIFO policies are **deferring**: a request that
    would have to wait for a busy worker re-enters the heap at the
    cycle the earliest candidate frees, where the rank re-orders it
    against everything else queued by then — so the policy decides who
    gets the freed worker, not merely who is examined first.
    """

    kind: str = "fifo"
    #: optional :class:`~repro.compiler.tune.ScheduleCache` + pool config:
    #: when set, ``sjf`` ranks autotuned library-kernel requests by their
    #: *measured* cycles instead of the trip-count heuristic
    schedule_cache: Any = None
    config: Any = None

    def __post_init__(self) -> None:
        if self.kind not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.kind!r}; expected one of "
                f"{ADMISSION_POLICIES}"
            )

    @classmethod
    def coerce(cls, spec) -> "AdmissionPolicy":
        """None | kind-string | AdmissionPolicy -> AdmissionPolicy."""
        if spec is None:
            return cls()
        if isinstance(spec, cls):
            return spec
        return cls(str(spec))

    @property
    def immediate(self) -> bool:
        """True when dispatch never defers (FIFO dispatches at ready)."""
        return self.kind == "fifo"

    def rank(self, request: InferenceRequest) -> Tuple[int, ...]:
        """The policy's heap-rank tuple for one request (lower = first)."""
        if self.kind == "fifo":
            return ()
        if self.kind == "priority":
            return (int(request.priority),)
        if self.kind == "edf":
            if request.deadline_cycle is None:
                return (1, 0)  # no deadline: after every deadlined request
            return (0, int(request.deadline_cycle))
        return (  # sjf
            estimate_service_cycles(request, self.schedule_cache, self.config),
        )


# -- pool backends ------------------------------------------------------------


class SerialPool:
    """In-process backend over a list of :class:`SystemWorker`."""

    def __init__(self, workers: Sequence[SystemWorker]) -> None:
        if not workers:
            raise ValueError("pool backend needs at least one worker")
        self.workers = list(workers)

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def execute(
        self,
        worker: int,
        request: InferenceRequest,
        attempt: int = 1,
        observe: bool = False,
        slow_factor: float = 1.0,
        directives: Sequence = (),
        bypass_fastpath: bool = False,
    ) -> RequestResult:
        return self.workers[worker].run(
            request, attempt=attempt, observe=observe, slow_factor=slow_factor,
            directives=directives, bypass_fastpath=bypass_fastpath,
        )

    def apply_injected(self, worker: int, error: ServingError) -> None:
        self.workers[worker].apply_injected(error)

    def rebuild(self, worker: int) -> None:
        self.workers[worker].rebuild()

    def register_recipe(
        self, name: str, recipe_json: str, func5: Optional[int] = None
    ) -> None:
        """Swap a tuned-recipe kernel variant into every worker."""
        for worker in self.workers:
            worker.register_recipe(name, recipe_json, func5)

    def last_recovery(self, worker: int) -> Optional[Dict[str, Optional[str]]]:
        return self.workers[worker].last_recovery

    def busy_cycles(self, worker: int) -> int:
        return self.workers[worker].busy_cycles

    def health_snapshots(self) -> List[Dict[str, int]]:
        return [w.health_snapshot() for w in self.workers]

    def replay_stats(self) -> Dict[int, Optional[Dict[str, int]]]:
        stats: Dict[int, Optional[Dict[str, int]]] = {}
        for w in self.workers:
            cache = w.system.llc.runtime.replay_cache
            stats[w.index] = dict(cache.stats) if cache is not None else None
        return stats

    def run_batch(
        self, assignments: Sequence[Tuple[int, InferenceRequest]]
    ) -> Tuple[float, List[RequestResult]]:
        """Static batch execution (no retries), timing the serving loop."""
        start = time.perf_counter()
        results = [
            _run_static(self.workers[worker], worker, request)
            for worker, request in assignments
        ]
        return time.perf_counter() - start, results

    def close(self) -> None:
        pass


def _run_static(
    worker: SystemWorker, index: int, request: InferenceRequest
) -> RequestResult:
    """One attempt with the legacy static-shard failure shape."""
    try:
        return worker.run(request)
    except ServingError as error:
        return RequestResult.failure(
            request, "failed",
            f"attempt 1 on worker {index}: {error}",
            worker=index, fault_class=error.fault_class,
        )


def _pool_shard_main(
    conn, worker_indices, config, with_compiled, share_replay, integrity="off"
) -> None:
    """Shard-process entry point: own a subset of workers, serve commands.

    Every reply carries the shard's newly published fleet recordings and
    any keys it *retracted* (poisoned recordings); every command may
    carry recordings published — and retractions issued — by *other*
    shards (applied before the command runs).  This is the
    multiprocessing publish/subscribe path of the shared fleet replay
    cache; because ``retract`` also cancels the shard's own pending
    publishes, a recording poisoned and caught in the same command never
    leaves its shard at all.
    """
    from repro.serve.fleet import FleetReplayCache

    fleet = FleetReplayCache() if share_replay else None
    workers = {
        index: SystemWorker(
            index, config, with_compiled, fleet=fleet, integrity=integrity
        )
        for index in worker_indices
    }
    while True:
        try:
            command, kwargs, updates, retracted = conn.recv()
        except (EOFError, OSError):
            break
        if fleet is not None:
            if retracted:
                fleet.discard(retracted)
            if updates:
                fleet.adopt(updates)
        if command == "close":
            break
        status: str = "ok"
        value: Any = None
        recovery: Optional[Dict[str, Optional[str]]] = None
        try:
            if command == "run":
                worker = workers[kwargs["worker"]]
                try:
                    value = worker.run(
                        kwargs["request"], attempt=kwargs["attempt"],
                        observe=kwargs["observe"],
                        slow_factor=kwargs["slow_factor"],
                        directives=kwargs.get("directives", ()),
                        bypass_fastpath=kwargs.get("bypass_fastpath", False),
                    )
                except ServingError as error:
                    status, value = "err", error
                recovery = worker.last_recovery
            elif command == "inject":
                worker = workers[kwargs["worker"]]
                worker.apply_injected(kwargs["error"])
                recovery = worker.last_recovery
            elif command == "rebuild":
                workers[kwargs["worker"]].rebuild()
            elif command == "register_recipe":
                # recipes are plain JSON: each shard recompiles locally
                for worker in workers.values():
                    worker.register_recipe(
                        kwargs["name"], kwargs["recipe_json"], kwargs["func5"]
                    )
            elif command == "snapshots":
                value = {w: worker.health_snapshot() for w, worker in workers.items()}
            elif command == "replay":
                value = {}
                for w, worker in workers.items():
                    cache = worker.system.llc.runtime.replay_cache
                    value[w] = dict(cache.stats) if cache is not None else None
            elif command == "run_batch":
                start = time.perf_counter()
                batch = [
                    _run_static(workers[w], w, request)
                    for w, request in kwargs["assignments"]
                ]
                value = (time.perf_counter() - start, batch)
            else:
                status, value = "fatal", f"unknown pool command {command!r}"
        except Exception as error:  # pragma: no cover - defensive
            status, value = "fatal", f"{type(error).__name__}: {error}"
        published = fleet.drain_outbox() if fleet is not None else []
        retractions = fleet.drain_retractions() if fleet is not None else []
        try:
            conn.send((status, value, recovery, published, retractions))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            break
    conn.close()


class ProcessPool:
    """Multi-process backend: worker ``w`` lives in shard ``w % processes``.

    Each shard is a long-lived child process owning its workers outright
    (same partitioning as the legacy ``_serve_parallel``), driven over a
    pipe by the same protocol :class:`SerialPool` implements in-process.
    Execution is remote but every *decision* stays in the parent's
    dispatch core, so multi-process runs are bit-identical to serial
    ones.  The parent mirrors per-worker busy cycles and the last
    recovery diagnostic from replies, and relays fleet-cache recordings
    between shards (see :func:`_pool_shard_main`).
    """

    def __init__(
        self,
        pool_size: int,
        processes: int,
        config=None,
        with_compiled: bool = True,
        share_replay: bool = False,
        integrity: str = "off",
    ) -> None:
        import multiprocessing as mp

        if not 1 <= processes <= pool_size:
            raise ValueError("need 1 <= processes <= pool_size")
        self.pool_size = pool_size
        self.processes = processes
        self.share_replay = share_replay
        self.integrity = integrity
        self.shard_of = {w: w % processes for w in range(pool_size)}
        self._busy = [0] * pool_size
        self._recovery: List[Optional[Dict[str, Optional[str]]]] = [None] * pool_size
        #: recordings published by other shards, awaiting the next command
        self._updates: List[list] = [[] for _ in range(processes)]
        #: keys retracted by other shards, awaiting the next command
        self._retracted: List[list] = [[] for _ in range(processes)]
        self._conns = []
        self._procs = []
        ctx = mp.get_context()
        for p in range(processes):
            parent_conn, child_conn = ctx.Pipe()
            indices = [w for w in range(pool_size) if w % processes == p]
            proc = ctx.Process(
                target=_pool_shard_main,
                args=(child_conn, indices, config, with_compiled, share_replay,
                      integrity),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    @property
    def n_workers(self) -> int:
        return self.pool_size

    def _distribute(self, shard: int, published: list, retractions: list) -> None:
        for other in range(self.processes):
            if other == shard:
                continue
            if published:
                self._updates[other].extend(published)
            if retractions:
                self._retracted[other].extend(retractions)
        if retractions:
            # a retracted key must not resurface from a stale pending
            # update either (shard A published it, shard B retracted it
            # before shard C saw the publish)
            keys = set(retractions)
            for other in range(self.processes):
                self._updates[other] = [
                    (k, r) for k, r in self._updates[other] if k not in keys
                ]

    def _send(self, shard: int, command: str, **kwargs) -> None:
        updates = self._updates[shard]
        self._updates[shard] = []
        retracted = self._retracted[shard]
        self._retracted[shard] = []
        self._conns[shard].send((command, kwargs, updates, retracted))

    def _recv(self, shard: int):
        status, value, recovery, published, retractions = self._conns[shard].recv()
        self._distribute(shard, published, retractions)
        if status == "fatal":
            raise RuntimeError(f"pool shard {shard} failed: {value}")
        return status, value, recovery

    def _request(self, shard: int, command: str, **kwargs):
        self._send(shard, command, **kwargs)
        return self._recv(shard)

    def execute(
        self,
        worker: int,
        request: InferenceRequest,
        attempt: int = 1,
        observe: bool = False,
        slow_factor: float = 1.0,
        directives: Sequence = (),
        bypass_fastpath: bool = False,
    ) -> RequestResult:
        shard = self.shard_of[worker]
        status, value, recovery = self._request(
            shard, "run", worker=worker, request=request, attempt=attempt,
            observe=observe, slow_factor=slow_factor,
            directives=tuple(directives), bypass_fastpath=bypass_fastpath,
        )
        self._recovery[worker] = recovery
        if status == "err":
            raise value
        self._busy[worker] += value.sim_cycles
        return value

    def apply_injected(self, worker: int, error: ServingError) -> None:
        shard = self.shard_of[worker]
        _, _, recovery = self._request(shard, "inject", worker=worker, error=error)
        self._recovery[worker] = recovery

    def rebuild(self, worker: int) -> None:
        self._request(self.shard_of[worker], "rebuild", worker=worker)

    def register_recipe(
        self, name: str, recipe_json: str, func5: Optional[int] = None
    ) -> None:
        """Broadcast a tuned-recipe swap to every shard's workers."""
        for shard in range(self.processes):
            self._request(
                shard, "register_recipe",
                name=name, recipe_json=recipe_json, func5=func5,
            )

    def last_recovery(self, worker: int) -> Optional[Dict[str, Optional[str]]]:
        return self._recovery[worker]

    def busy_cycles(self, worker: int) -> int:
        return self._busy[worker]

    def _gather(self, command: str) -> Dict[int, Any]:
        merged: Dict[int, Any] = {}
        for shard in range(self.processes):
            _, value, _ = self._request(shard, command)
            merged.update(value)
        return merged

    def health_snapshots(self) -> List[Dict[str, int]]:
        by_worker = self._gather("snapshots")
        return [by_worker[w] for w in range(self.pool_size)]

    def replay_stats(self) -> Dict[int, Optional[Dict[str, int]]]:
        return dict(sorted(self._gather("replay").items()))

    def run_batch(
        self, assignments: Sequence[Tuple[int, InferenceRequest]]
    ) -> Tuple[float, List[RequestResult]]:
        """Fan one static batch out to all shards concurrently.

        Reproduces the legacy parallel path: per-shard request order is
        submission order, results scatter back by position, the wall
        time is the slowest shard's serving loop, and a short shard is
        a hard error (a dropped result would misalign every later
        verify/report row).
        """
        parts: Dict[int, List[Tuple[int, InferenceRequest]]] = {
            p: [] for p in range(self.processes)
        }
        order: Dict[int, List[int]] = {p: [] for p in range(self.processes)}
        for position, (worker, request) in enumerate(assignments):
            shard = self.shard_of[worker]
            parts[shard].append((worker, request))
            order[shard].append(position)
        for p in range(self.processes):
            self._send(p, "run_batch", assignments=parts[p])
        results: List[Optional[RequestResult]] = [None] * len(assignments)
        wall = 0.0
        for p in range(self.processes):
            _, value, _ = self._recv(p)
            seconds, batch = value
            wall = max(wall, seconds)
            if len(batch) != len(order[p]):
                raise RuntimeError(
                    f"shard {p} returned {len(batch)} results for "
                    f"{len(order[p])} requests"
                )
            for position, result in zip(order[p], batch):
                results[position] = result
                if result.status == "ok":
                    self._busy[result.worker] += result.sim_cycles
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise RuntimeError(
                f"parallel serving lost results for request positions {missing}"
            )
        return wall, results  # type: ignore[return-value]

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close", {}, [], []))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._conns = []
        self._procs = []

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if self._procs:
                self.close()
        except Exception:
            pass


# -- the core -----------------------------------------------------------------


class DispatchCore:
    """One event loop for offline, online and parallel serving.

    The loop pops ``(ready, *rank, seq, attempt, position)`` entries off
    a pending heap.  Under :data:`CYCLE_CLOCK` ``ready`` is the
    request's arrival (or retry-backoff) cycle and dispatch goes to the
    candidate with the smallest cycle backlog; under
    :data:`SEQUENCE_CLOCK` ``ready`` is the dispatch sequence number,
    the engine's precomputed assignment is the first-attempt worker and
    retries rebalance by accumulated busy cycles.  Faults, retry,
    failover, quarantine, bounded admission, deadlines and span
    recording behave identically on both clocks (deadlines and the
    simulated timeline exist only in cycles).

    The core draws every fault itself and mirrors worker-side effects
    through the backend, so the same decisions reach the same workers
    regardless of where those workers live.
    """

    def __init__(
        self,
        backend,
        clock: str = CYCLE_CLOCK,
        admission=None,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        supervisor: Optional[WorkerSupervisor] = None,
        queue_capacity: Optional[int] = None,
        recorder: NullRecorder = NULL_RECORDER,
    ) -> None:
        if clock not in CLOCKS:
            raise ValueError(f"unknown clock {clock!r}; expected one of {CLOCKS}")
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None for unbounded)")
        if backend.n_workers < 1:
            raise ValueError("dispatch needs at least one worker")
        self.backend = backend
        self.clock = clock
        self.admission = AdmissionPolicy.coerce(admission)
        self.injector = injector
        self.retry = retry or RetryPolicy()
        self.supervisor = supervisor
        self.queue_capacity = queue_capacity
        #: observability recorder; the default no-op costs one attribute
        #: check per request (mirrors the Tracer's disabled path)
        self.recorder = recorder
        #: cycle at which each worker drains all dispatched work
        self.free_at = [0] * backend.n_workers
        #: chronological event log (arrival/dispatch/completion/fail/retry/shed)
        self.events: List[OnlineEvent] = []
        #: availability tally for the serving report
        self.tally: Dict = {
            "retries": 0,
            "failovers": 0,
            "failed_attempts_by_class": {},
        }
        #: corruption-recovery tally, kept out of ``tally`` so the
        #: availability schema stays byte-identical when nothing corrupts;
        #: the engine folds it into the report's ``integrity`` section
        self.corruption_tally: Dict[str, int] = {
            "escalations": 0,
            "bypass_retries": 0,
            "failover_escalations": 0,
        }
        #: request positions that suffered >= 1 corrupted-class failure
        #: in the last ``run`` (filled at the end of every run)
        self.corrupted_positions: List[int] = []

    def backlog(self, worker: int, now: int) -> int:
        """Cycles of pending work on ``worker`` as seen at cycle ``now``."""
        return max(0, self.free_at[worker] - now)

    def _candidates(self, now: int, avoid: Optional[int]) -> List[int]:
        """Dispatchable workers at ``now``, preferring not-``avoid``."""
        if self.supervisor is not None:
            ready = self.supervisor.available(now)
        else:
            ready = list(range(self.backend.n_workers))
        if avoid is not None and self.retry.failover:
            others = [w for w in ready if w != avoid]
            if others:
                return others
        return ready

    def _select_worker(
        self,
        ready: int,
        attempt: int,
        candidates: List[int],
        preferred: Optional[int],
        avoid: Optional[int],
    ) -> int:
        if self.clock == CYCLE_CLOCK:
            return min(candidates, key=lambda w: (self.backlog(w, ready), w))
        # sequence clock: honour the precomputed assignment on the first
        # attempt, rebalance retries by accumulated busy cycles
        if attempt == 1 and preferred is not None and preferred in candidates:
            return preferred
        pool = candidates
        if avoid is not None and self.retry.failover:
            others = [w for w in candidates if w != avoid]
            if others:
                pool = others
        return min(pool, key=lambda w: (self.backend.busy_cycles(w), w))

    def _attempt(
        self,
        worker: int,
        request: InferenceRequest,
        attempt: int,
        observe: bool,
        bypass_fastpath: bool = False,
    ) -> Tuple[Optional[RequestResult], Optional[ServingError]]:
        """One attempt: draw the fault in the core, execute on the backend.

        The injector decides the attempt's fate *here* — before any
        execution, in deterministic dispatch order — and the decision's
        worker-side effects (failure counters, crash rebuilds) are
        mirrored to the owning backend, wherever the worker lives.
        Corruption directives are drawn here too (same reason) and
        shipped to the worker for application mid-execution.
        """
        slow_factor = 1.0
        directives: Sequence = ()
        if self.injector is not None:
            try:
                slow_factor = self.injector.before_attempt(request, attempt, worker)
            except ServingError as error:
                self.backend.apply_injected(worker, error)
                return None, error
            directives = self.injector.corruption_for(request, attempt, worker)
        try:
            result = self.backend.execute(
                worker, request, attempt=attempt, observe=observe,
                slow_factor=slow_factor, directives=directives,
                bypass_fastpath=bypass_fastpath,
            )
        except ServingError as error:
            return None, error
        return result, None

    def run(
        self,
        requests: Sequence[InferenceRequest],
        preferred: Optional[Sequence[int]] = None,
    ) -> List[RequestResult]:
        """Serve every request; results in input order.

        ``preferred`` (sequence clock only) is the engine's precomputed
        request→worker assignment, honoured on first attempts.
        """
        requests = list(requests)
        cycles = self.clock == CYCLE_CLOCK
        if cycles:
            admission = sorted(
                ((request.arrival_cycle, position)
                 for position, request in enumerate(requests)),
                key=lambda entry: entry[:2],
            )
        else:
            # offline: ready == seq == submission position, so the heap
            # replays the batch in assignment order with immediate retries
            admission = [(position, position) for position in range(len(requests))]
        rank_of = [self.admission.rank(request) for request in requests]
        # the pending heap orders (ready, *rank, seq); retries re-enter
        # with a fresh seq so ties within a rank stay deterministic
        pending: List[tuple] = [
            (ready, *rank_of[position], seq, 1, position)
            for seq, (ready, position) in enumerate(admission)
        ]
        heapq.heapify(pending)
        next_seq = len(pending)
        completions: List[Tuple[int, int, int, int]] = []  # (cycle, pos, rid, w)
        results: List[Optional[RequestResult]] = [None] * len(requests)
        attempt_errors: Dict[int, List[str]] = {}
        last_failed: Dict[int, int] = {}
        #: corruption-escalation state: how many ``corrupted`` failures a
        #: position has taken, and (level 1 only) the worker to re-run on
        corrupted_level: Dict[int, int] = {}
        sticky_retry: Dict[int, int] = {}
        dispatched_starts: List[int] = []
        arrived: set = set()
        rec = self.recorder
        request_spans: Dict[int, int] = {}  # position -> open request span

        while pending:
            entry = heapq.heappop(pending)
            ready, position, attempt = entry[0], entry[-1], entry[-2]
            seq = entry[-3]
            request = requests[position]
            rid = request.request_id
            # retire completions that happen before this instant, so the
            # event log interleaves chronologically
            while completions and completions[0][0] <= ready:
                cycle, _, crid, worker = heapq.heappop(completions)
                self.events.append(OnlineEvent(cycle, COMPLETION, crid, worker))
            if attempt == 1 and position not in arrived:
                arrived.add(position)
                self.events.append(OnlineEvent(ready, ARRIVAL, rid))
                if rec.enabled:
                    request_spans[position] = rec.begin(
                        f"request {rid}", "request", ready,
                        request=rid, kind=request.kind,
                    )
            if self.supervisor is not None:
                self.supervisor.tick(ready)
            # bounded admission: how many admitted requests are still
            # waiting (dispatched but not yet started) at this instant?
            if self.queue_capacity is not None:
                depth = sum(1 for s in dispatched_starts if s > ready)
                if depth >= self.queue_capacity:
                    self.events.append(OnlineEvent(ready, SHED, rid))
                    if rec.enabled:
                        rec.end(request_spans[position], ready,
                                status="shed", cause="queue_full")
                    results[position] = RequestResult.failure(
                        request, "shed",
                        f"admission queue full ({depth} waiting, capacity "
                        f"{self.queue_capacity}) at cycle {ready}",
                        attempts=attempt,
                        arrival_cycle=request.arrival_cycle if cycles else None,
                        fault_class="queue_full",
                    )
                    continue
            avoid = last_failed.get(position)
            sticky = sticky_retry.pop(position, None)
            if sticky is not None:
                # corruption escalation, level 1: re-run on the *same*
                # worker with the replay fast path bypassed — the prime
                # suspect is a poisoned recording, not the silicon —
                # unless the supervisor pulled that worker meanwhile
                candidates = self._candidates(ready, None)
                if sticky in candidates:
                    worker = sticky
                else:
                    worker = self._select_worker(
                        ready, attempt, candidates, None, avoid
                    )
            else:
                candidates = self._candidates(ready, avoid)
                worker = self._select_worker(
                    ready, attempt, candidates,
                    preferred[position] if preferred is not None else None,
                    avoid,
                )
            start = max(ready, self.free_at[worker]) if cycles else ready
            # deadline-aware load shedding: don't burn cycles on a request
            # whose queue delay already blew its deadline
            if (
                cycles
                and request.deadline_cycle is not None
                and start > request.deadline_cycle
            ):
                self.events.append(OnlineEvent(ready, SHED, rid))
                if rec.enabled:
                    rec.end(request_spans[position], ready,
                            status="shed", cause="deadline")
                results[position] = RequestResult.failure(
                    request, "shed",
                    f"projected start cycle {start} past deadline "
                    f"{request.deadline_cycle} (queue delay would blow it)",
                    attempts=attempt, arrival_cycle=request.arrival_cycle,
                    fault_class="deadline",
                )
                continue
            if cycles and not self.admission.immediate and start > ready:
                # deferring policy: wait until the earliest candidate
                # frees; by then the rank re-orders everything queued
                heapq.heappush(
                    pending, (start, *rank_of[position], seq, attempt, position)
                )
                continue
            failover = attempt > 1 and worker != last_failed.get(position)
            if failover:
                self.tally["failovers"] += 1
            bypass = corrupted_level.get(position, 0) > 0
            if bypass and attempt > 1:
                self.corruption_tally["bypass_retries"] += 1
            attempt_span = 0
            if rec.enabled:
                attempt_span = rec.begin(
                    f"attempt {attempt}", "attempt", ready,
                    parent=request_spans[position],
                    request=rid, attempt=attempt, worker=worker,
                    cause="retry" if attempt > 1 else None,
                    failover=failover or None,
                )
            result, error = self._attempt(
                worker, request, attempt, rec.enabled, bypass_fastpath=bypass
            )
            if error is not None:
                if rec.enabled:
                    # a fault fires at its dispatch instant: zero duration
                    rec.end(attempt_span, ready, status="failed",
                            fault_class=error.fault_class,
                            injected=error.injected or None)
                self._record_failure(
                    request, worker, ready, attempt, error,
                    attempt_errors.setdefault(position, []),
                )
                last_failed[position] = worker
                if error.fault_class == "corrupted":
                    level = corrupted_level.get(position, 0) + 1
                    corrupted_level[position] = level
                    self.corruption_tally["escalations"] += 1
                    if level == 1:
                        sticky_retry[position] = worker
                    else:
                        self.corruption_tally["failover_escalations"] += 1
                if error.retryable and attempt < self.retry.max_attempts:
                    retry_at = ready + self.retry.backoff(attempt) if cycles else ready
                    self.events.append(OnlineEvent(ready, RETRY, rid, worker))
                    self.tally["retries"] += 1
                    heapq.heappush(
                        pending,
                        (retry_at, *rank_of[position], next_seq, attempt + 1,
                         position),
                    )
                    next_seq += 1
                else:
                    if rec.enabled:
                        rec.end(request_spans[position], ready,
                                status="failed", fault_class=error.fault_class)
                    results[position] = RequestResult.failure(
                        request, "failed",
                        "; ".join(attempt_errors.get(position, [])),
                        worker=worker, attempts=attempt,
                        arrival_cycle=request.arrival_cycle if cycles else None,
                        fault_class=error.fault_class,
                    )
                continue
            if self.supervisor is not None:
                self.supervisor.record_success(worker, ready)
            result.attempts = attempt
            if attempt_errors.get(position):
                # succeeded after retries: keep the failure history around
                result.error = "; ".join(attempt_errors[position])
            if cycles:
                completion = start + result.sim_cycles
                result.arrival_cycle = request.arrival_cycle
                result.start_cycle = start
                result.completion_cycle = completion
                if (
                    request.deadline_cycle is not None
                    and completion > request.deadline_cycle
                ):
                    result.status = "timed_out"
            else:
                completion = ready
            if rec.enabled:
                wait_span = rec.begin("queue_wait", "queue_wait", ready,
                                      parent=attempt_span, request=rid)
                rec.end(wait_span, start)
                service_span = rec.begin(
                    f"serve {rid}", "dispatch", start,
                    parent=attempt_span, request=rid, worker=worker,
                )
                # launches lie back-to-back from the service start (the
                # worker executes them serially); stamp the absolute
                # window on each record for the rolling metrics
                cursor = start
                for launch in result.launches:
                    launch_end = cursor + launch["cycles"]
                    launch["start_cycle"] = cursor
                    launch["end_cycle"] = launch_end
                    launch_span = rec.begin(
                        launch["name"], "launch", cursor,
                        parent=service_span, request=rid, worker=worker,
                        kernel_id=launch["kernel_id"], replay=launch["replay"],
                    )
                    rec.end(launch_span, launch_end)
                    cursor = launch_end
                rec.end(service_span, completion)
                rec.end(attempt_span, completion, status=result.status)
                rec.end(request_spans[position], completion,
                        status=result.status, worker=worker)
            if cycles:
                self.free_at[worker] = completion
                dispatched_starts.append(start)
            self.events.append(OnlineEvent(ready, DISPATCH, rid, worker))
            heapq.heappush(completions, (completion, position, rid, worker))
            results[position] = result
        while completions:
            cycle, _, crid, worker = heapq.heappop(completions)
            self.events.append(OnlineEvent(cycle, COMPLETION, crid, worker))
        # positions whose attempts raised at least one corrupted-class
        # failure; the engine maps these back to requests for the
        # report's detection/recovery accounting
        self.corrupted_positions = sorted(corrupted_level)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _record_failure(
        self,
        request: InferenceRequest,
        worker: int,
        cycle: int,
        attempt: int,
        error: ServingError,
        history: List[str],
    ) -> None:
        """Log one failed attempt: event, class tally, recovery diagnostic,
        supervision (quarantine rebuilds the worker's system)."""
        self.events.append(OnlineEvent(cycle, FAIL, request.request_id, worker))
        history.append(f"attempt {attempt} on worker {worker}: {error}")
        recovery = self.backend.last_recovery(worker)
        if recovery and recovery.get("error"):
            history.append(
                f"worker {worker} rebuilt after reset failure: {recovery['error']}"
            )
        by_class = self.tally["failed_attempts_by_class"]
        by_class[error.fault_class] = by_class.get(error.fault_class, 0) + 1
        if self.supervisor is not None:
            quarantined = self.supervisor.record_failure(worker, cycle, error)
            if quarantined and not isinstance(error, WorkerCrashError):
                # a crash already rebuilt the worker at injection time
                self.backend.rebuild(worker)
                self.recorder.instant("rebuilt", cycle, worker=worker)

    @property
    def makespan_cycles(self) -> int:
        """Simulated cycle at which the last dispatched request completes."""
        return max(self.free_at, default=0)
