"""Seeded fault injection and the serving failure taxonomy.

A production-shaped serving stack needs the *failure* half of the story:
requests that die mid-offload, workers that crash, latency spikes — and
a deterministic way to rehearse all of it.  This module provides:

* a **failure taxonomy** rooted at :class:`ServingError`, replacing the
  bare raises that used to abort a whole batch (each error knows whether
  a retry can help and which availability class it counts against);
* a **fault plan** grammar parsed like a traffic spec
  (:meth:`FaultPlan.parse`), e.g. ``"kill:0.05"``,
  ``"transient:0.1"``, ``"slow:0.02:4x"``, ``"crash_worker:2@50"``,
  with clauses combined by commas: ``"kill:0.05,slow:0.02:4x"``.
  Data-corruption clauses (``"flip:0.01"``, ``"dma_corrupt:0.01"``,
  ``"vrf_flip:0.01"``, ``"stuck_line:1@5"``) inject *silent* wrong
  answers instead of loud failures; detection is the integrity layer's
  job (:mod:`repro.integrity`) and their seeded draws live on salted
  streams so they never perturb the legacy clauses' decisions;
* a **seeded injector** (:class:`FaultInjector`) that decides, at the
  :class:`~repro.serve.worker.SystemWorker` boundary, whether a given
  ``(request, attempt)`` is killed, transiently failed, slowed, or lands
  on a crashing worker.  Decisions hash ``(fault seed, request id,
  attempt)`` so they are order-independent and bit-reproducible: two
  runs with the same ``(traffic seed, fault seed)`` inject identical
  faults;
* a **retry policy** (:class:`RetryPolicy`) — bounded attempts, failover
  to a different worker, exponential backoff in simulated cycles on the
  online path;
* a **worker supervisor** (:class:`WorkerSupervisor`) — consecutive
  failures quarantine a worker (the dispatcher skips it and its system
  is rebuilt), a countdown releases it into *probation*, and one clean
  request reinstates it.

Injected availability faults fire *before* the kernel executes, so a
failed attempt never perturbs the simulated machine: the retry that
succeeds produces output and cycle counts bit-exact with a fault-free
run.  Data-corruption faults are the deliberate exception — they flip
bits *during* execution and let the attempt "succeed" with a wrong
answer; catching that is the job of :mod:`repro.integrity` and the
``corrupted`` recovery path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.integrity.inject import CORRUPTION_KINDS, SITE_SALTS, CorruptionDirective
from repro.obs.spans import NULL_RECORDER

#: Availability fault kinds (the original grammar).  The data-corruption
#: kinds (``flip``/``dma_corrupt``/``vrf_flip``/``stuck_line``) come from
#: :mod:`repro.integrity.inject`; a plan may mix both families freely.
FAULT_KINDS = ("kill", "transient", "slow", "crash_worker")

#: Every kind :meth:`FaultPlan.parse` accepts.
ALL_FAULT_KINDS = FAULT_KINDS + CORRUPTION_KINDS

#: mask applied to rng stream key components (SeedSequence entropy words)
_SEED_MASK = 0xFFFFFFFF

#: Worker health states tracked by :class:`WorkerSupervisor`.
HEALTHY, QUARANTINED, PROBATION = "healthy", "quarantined", "probation"


# -- failure taxonomy ---------------------------------------------------------


class ServingError(RuntimeError):
    """Base of every structured serving failure.

    ``retryable`` says whether another attempt (possibly on another
    worker) can succeed; ``fault_class`` is the availability-report
    bucket the failure counts against; ``injected`` distinguishes
    rehearsed faults from organic ones.
    """

    retryable = True
    fault_class = "error"

    def __init__(
        self,
        message: str,
        request_id: Optional[int] = None,
        worker: Optional[int] = None,
        injected: bool = False,
    ) -> None:
        super().__init__(message)
        self.request_id = request_id
        self.worker = worker
        self.injected = injected


class KernelKilledError(ServingError):
    """The kernel launch was killed in flight (injected ``kill`` fault)."""

    fault_class = "kill"


class TransientOffloadError(ServingError):
    """A transient offload failure — expected to clear on retry."""

    fault_class = "transient"


class WorkerCrashError(ServingError):
    """The worker's simulated hardware died; its system must be rebuilt.

    Retryable — but only via failover, since the crashed worker loses
    all state and comes back cold.
    """

    fault_class = "crash_worker"


class RequestRejected(ServingError):
    """The request itself is bad (e.g. offload killed by the decoder for
    an unknown slot) — no retry can help."""

    retryable = False
    fault_class = "rejected"


class SilentCorruptionError(ServingError):
    """An integrity check caught a corrupted result before it shipped.

    Raised when ABFT residues are nonzero and unrepairable, an output
    digest diverges from a prior run of the same payload, a DMR shadow
    execution disagrees, or a replay recording turns out poisoned
    (:class:`~repro.runtime.replay.ReplayDivergence`).  Retryable: the
    dispatch core escalates — first a re-execution with the replay fast
    path bypassed, then failover to a different worker — and repeat
    offenders are quarantined by the supervisor.
    """

    fault_class = "corrupted"


# -- fault plan grammar -------------------------------------------------------


@dataclass(frozen=True)
class FaultClause:
    """One parsed fault clause.

    ``probability``/``factor`` apply to the stochastic kinds
    (``kill``/``transient``/``slow`` and the corruption kinds
    ``flip``/``dma_corrupt``/``vrf_flip``); ``worker``/``at_request`` to
    the deterministic kinds (``crash_worker``/``stuck_line``: fault
    worker ``worker`` the ``at_request``-th time it executes an attempt,
    1-based).
    """

    kind: str
    probability: float = 0.0
    factor: float = 1.0
    worker: int = -1
    at_request: int = -1

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {ALL_FAULT_KINDS}"
            )
        if self.kind in ("kill", "transient", "slow", "flip", "dma_corrupt", "vrf_flip"):
            if not (0.0 < self.probability <= 1.0):
                raise ValueError(
                    f"{self.kind} needs a probability in (0, 1], got {self.probability}"
                )
        if self.kind == "slow" and self.factor <= 1.0:
            raise ValueError(f"slow needs a factor > 1, got {self.factor}")
        if self.kind in ("crash_worker", "stuck_line"):
            if self.worker < 0 or self.at_request < 1:
                raise ValueError(
                    f"{self.kind} needs <worker>@<nth-request> with worker >= 0 "
                    f"and nth >= 1, got {self.worker}@{self.at_request}"
                )

    def describe(self) -> str:
        def num(x: float) -> str:
            return str(int(x)) if float(x).is_integer() else str(x)

        if self.kind in ("crash_worker", "stuck_line"):
            return f"{self.kind}:{self.worker}@{self.at_request}"
        if self.kind == "slow":
            return f"slow:{num(self.probability)}:{num(self.factor)}x"
        return f"{self.kind}:{num(self.probability)}"


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault spec: one or more clauses applied to every attempt."""

    clauses: Tuple[FaultClause, ...]

    def __post_init__(self) -> None:
        if not self.clauses:
            raise ValueError("fault plan needs at least one clause")

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a comma-joined fault spec, e.g. ``"kill:0.05,slow:0.02:4x"``.

        Grammar per clause::

            kill:<p>                  # kernel launch killed with prob. p
            transient:<p>             # transient offload failure, prob. p
            slow:<p>:<factor>x        # latency spike: service * factor
            crash_worker:<w>@<n>      # worker w crashes on its n-th attempt
            flip:<p>                  # one LLC operand bit flips, prob. p
            dma_corrupt:<p>           # one DMA row payload bit flips, prob. p
            vrf_flip:<p>              # one VPU register-file write bit flips
            stuck_line:<w>@<n>        # a cache line of worker w sticks on
                                      # its n-th attempt (persists until
                                      # the worker is rebuilt)
        """
        clauses: List[FaultClause] = []
        for chunk in str(text).split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, _, rest = chunk.partition(":")
            kind = kind.strip()
            try:
                if kind in ("crash_worker", "stuck_line"):
                    worker_s, sep, nth_s = rest.partition("@")
                    if not sep:
                        raise ValueError("expected <worker>@<nth-request>")
                    clauses.append(
                        FaultClause(kind, worker=int(worker_s), at_request=int(nth_s))
                    )
                elif kind == "slow":
                    prob_s, _, factor_s = rest.partition(":")
                    if not factor_s:
                        raise ValueError("expected slow:<p>:<factor>x")
                    clauses.append(
                        FaultClause(
                            kind,
                            probability=float(prob_s),
                            factor=float(factor_s.strip().rstrip("xX")),
                        )
                    )
                else:
                    clauses.append(FaultClause(kind, probability=float(rest)))
            except ValueError as error:
                raise ValueError(f"bad fault spec {chunk!r}: {error}") from None
        if not clauses:
            raise ValueError(f"empty fault spec {text!r}")
        return cls(tuple(clauses))

    @classmethod
    def coerce(cls, spec) -> Optional["FaultPlan"]:
        """None | spec-string | FaultPlan -> Optional[FaultPlan]."""
        if spec is None or isinstance(spec, cls):
            return spec
        return cls.parse(spec)

    def describe(self) -> str:
        """The canonical spec string (round-trips through :meth:`parse`)."""
        return ",".join(clause.describe() for clause in self.clauses)


# -- the injector -------------------------------------------------------------


class FaultInjector:
    """Deterministically injects a :class:`FaultPlan` at the worker boundary.

    Stochastic clauses draw from an RNG seeded with ``(seed, request_id,
    attempt)`` — the draw depends only on the request and attempt number,
    never on execution order, so offline and online serving inject the
    same faults and reruns are bit-reproducible.  ``crash_worker``
    clauses count executed attempts per worker (deterministic under the
    deterministic dispatch order) and fire exactly once.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = int(seed)
        #: attempts each worker has begun executing (crash-clause clock)
        self.worker_runs: Dict[int, int] = {}
        #: injected-fault tally by kind, surfaced in the availability report.
        #: The legacy kinds are always present (report-schema stability);
        #: corruption kinds appear only when the plan mentions them.
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        for kind in CORRUPTION_KINDS:
            if any(clause.kind == kind for clause in plan.clauses):
                self.injected[kind] = 0

    def before_attempt(self, request, attempt: int, worker: int) -> float:
        """Decide the fate of one attempt; called before the kernel runs.

        Raises the injected :class:`ServingError` subclass, or returns
        the latency-spike factor to apply to the attempt's service
        cycles (``1.0`` = no spike).
        """
        runs = self.worker_runs.get(worker, 0) + 1
        self.worker_runs[worker] = runs
        for clause in self.plan.clauses:
            if (
                clause.kind == "crash_worker"
                and clause.worker == worker
                and clause.at_request == runs
            ):
                self.injected["crash_worker"] += 1
                raise WorkerCrashError(
                    f"injected fault: worker {worker} crashed executing its "
                    f"attempt #{runs} (request {request.request_id})",
                    request_id=request.request_id, worker=worker, injected=True,
                )
        rng = np.random.default_rng(
            [self.seed & _SEED_MASK, request.request_id & _SEED_MASK, attempt]
        )
        slow = 1.0
        for clause in self.plan.clauses:
            if clause.kind == "crash_worker" or clause.kind in CORRUPTION_KINDS:
                # Corruption clauses draw from their own salted streams in
                # corruption_for(); consuming a draw here would perturb the
                # legacy kill/transient/slow decisions of any plan that
                # adds a corruption clause under the same seed.
                continue
            draw = float(rng.random())
            if draw >= clause.probability:
                continue
            if clause.kind == "kill":
                self.injected["kill"] += 1
                raise KernelKilledError(
                    f"injected fault: kernel launch for request "
                    f"{request.request_id} killed on worker {worker} "
                    f"(attempt {attempt})",
                    request_id=request.request_id, worker=worker, injected=True,
                )
            if clause.kind == "transient":
                self.injected["transient"] += 1
                raise TransientOffloadError(
                    f"injected fault: transient offload failure for request "
                    f"{request.request_id} on worker {worker} "
                    f"(attempt {attempt})",
                    request_id=request.request_id, worker=worker, injected=True,
                )
            self.injected["slow"] += 1
            slow = max(slow, clause.factor)
        return slow

    def corruption_for(
        self, request, attempt: int, worker: int
    ) -> List[CorruptionDirective]:
        """Draw the data-corruption directives for one attempt.

        Called after :meth:`before_attempt` (which advances the
        per-worker run clock the ``stuck_line`` clauses key on).  Each
        stochastic corruption kind draws from its own rng stream hashed
        over ``(seed, request_id, attempt, kind salt)``: order- and
        pool-independent like the legacy draws, and — because the
        streams are salted — adding a corruption clause never perturbs
        the legacy kill/transient/slow decisions under the same seed.
        ``stuck_line`` picks its line from ``(seed, worker, nth, salt)``
        so the stuck cell doesn't depend on which request happened to
        land on the worker.
        """
        directives: List[CorruptionDirective] = []
        runs = self.worker_runs.get(worker, 0)
        for clause in self.plan.clauses:
            if clause.kind not in CORRUPTION_KINDS:
                continue
            if clause.kind == "stuck_line":
                if clause.worker == worker and clause.at_request == runs:
                    rng = np.random.default_rng(
                        [
                            self.seed & _SEED_MASK,
                            clause.worker,
                            clause.at_request,
                            SITE_SALTS["stuck_line"],
                        ]
                    )
                    site, value = (int(x) for x in rng.integers(0, 2**63, size=2))
                    directives.append(CorruptionDirective("stuck_line", site, value))
                    self.injected["stuck_line"] += 1
                continue
            rng = np.random.default_rng(
                [
                    self.seed & _SEED_MASK,
                    request.request_id & _SEED_MASK,
                    attempt,
                    SITE_SALTS[clause.kind],
                ]
            )
            if float(rng.random()) >= clause.probability:
                continue
            site, value = (int(x) for x in rng.integers(0, 2**63, size=2))
            directives.append(CorruptionDirective(clause.kind, site, value))
            self.injected[clause.kind] += 1
        return directives

    @property
    def corrupts(self) -> bool:
        """True when the plan contains any data-corruption clause."""
        return any(c.kind in CORRUPTION_KINDS for c in self.plan.clauses)


# -- retry policy -------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with failover and exponential simulated backoff.

    ``max_attempts`` counts the first try; ``backoff_cycles`` is the
    simulated-cycle delay before attempt 2, doubling per further attempt
    (online path — offline retries are immediate).  With ``failover``
    a retry prefers a different worker than the one that just failed.
    """

    max_attempts: int = 3
    backoff_cycles: int = 1024
    failover: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_cycles < 0:
            raise ValueError("backoff_cycles must be >= 0")

    def backoff(self, attempt: int) -> int:
        """Simulated cycles to wait after failed attempt ``attempt``."""
        return self.backoff_cycles << (attempt - 1)


# -- worker supervision -------------------------------------------------------


@dataclass
class WorkerHealth:
    """One worker's supervision state."""

    state: str = HEALTHY
    consecutive_failures: int = 0
    #: dispatch decisions remaining before a quarantined worker reaches
    #: probation
    countdown: int = 0


class WorkerSupervisor:
    """Quarantines workers that fail repeatedly; reinstates via probation.

    ``threshold`` consecutive failures quarantine a worker: the
    dispatcher skips it for ``quarantine_for`` dispatch decisions (its
    system is rebuilt by the engine), after which it enters *probation*
    — dispatchable again, reinstated as healthy by its first success,
    re-quarantined immediately by a failure.  ``cycle`` in the event log
    is a simulated cycle online and the dispatch sequence number
    offline.
    """

    def __init__(
        self, n_workers: int, threshold: int = 3, quarantine_for: int = 3
    ) -> None:
        if n_workers < 1:
            raise ValueError("supervisor needs at least one worker")
        if threshold < 1 or quarantine_for < 1:
            raise ValueError("threshold and quarantine_for must be >= 1")
        self.threshold = threshold
        self.quarantine_for = quarantine_for
        self.health = [WorkerHealth() for _ in range(n_workers)]
        #: chronological health events (JSON-clean dicts)
        self.events: List[Dict] = []
        #: observability hook: health transitions mirror to this recorder
        #: as instant events (the engine swaps in a live SpanRecorder)
        self.recorder = NULL_RECORDER

    def _log(self, cycle: int, worker: int, event: str) -> None:
        self.events.append({"cycle": int(cycle), "worker": worker, "event": event})
        self.recorder.instant(event, cycle, worker=worker)

    def tick(self, cycle: int) -> None:
        """Advance quarantine countdowns by one dispatch decision."""
        for worker, health in enumerate(self.health):
            if health.state == QUARANTINED:
                health.countdown -= 1
                if health.countdown <= 0:
                    health.state = PROBATION
                    self._log(cycle, worker, "probation")

    def available(self, cycle: int = 0) -> List[int]:
        """Dispatchable workers (healthy + probation), lowest index first.

        If *every* worker is quarantined the pool would deadlock, so all
        of them are force-released into probation instead.
        """
        ready = [w for w, h in enumerate(self.health) if h.state != QUARANTINED]
        if ready:
            return ready
        for worker, health in enumerate(self.health):
            health.state = PROBATION
            health.countdown = 0
            self._log(cycle, worker, "forced_probation")
        return list(range(len(self.health)))

    def record_success(self, worker: int, cycle: int) -> None:
        health = self.health[worker]
        health.consecutive_failures = 0
        if health.state == PROBATION:
            health.state = HEALTHY
            self._log(cycle, worker, "reinstated")

    def record_failure(self, worker: int, cycle: int, error: ServingError) -> bool:
        """Record a failed attempt; True if the worker was just quarantined
        (the caller should rebuild its system)."""
        health = self.health[worker]
        health.consecutive_failures += 1
        if health.state == PROBATION or health.consecutive_failures >= self.threshold:
            health.state = QUARANTINED
            health.countdown = self.quarantine_for
            health.consecutive_failures = 0
            self._log(cycle, worker, "quarantined")
            return True
        return False

    def state_of(self, worker: int) -> str:
        return self.health[worker].state
