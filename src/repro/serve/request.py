"""Request/response types for the multi-request serving engine.

An :class:`InferenceRequest` is one independent unit of work a client
submits to the :class:`~repro.serve.engine.ServingEngine`: a GeMM, an
``xmk4`` convolutional layer, any single library kernel (handwritten or
compiled), or a small *graph* of kernels chained through named tensors.
Requests carry plain numpy operands; they are picklable so the engine
can fan them out to parallel worker processes.

A :class:`RequestResult` is the matching response: the output matrix,
the per-request :class:`~repro.core.system.RunReport`(s), and the
latency observed in simulated cycles and harness wall-clock seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.system import RunReport
from repro.runtime.phases import PhaseBreakdown

#: Request kinds understood by the worker dispatch table.
KINDS = ("gemm", "conv_layer", "kernel", "graph")

#: Lifecycle states a :class:`RequestResult` can end in.
STATUSES = ("ok", "failed", "timed_out", "shed", "corrupted")


def validate_out_shape(out_shape, where: str) -> Tuple[int, int]:
    """Check an output shape at request-construction time.

    ``SystemWorker._run_kernel`` assumes a 2-tuple of positive dims;
    validating here turns a deep, cryptic worker failure into a clear
    error at the API boundary.
    """
    try:
        shape = tuple(int(d) for d in out_shape)
    except (TypeError, ValueError):
        raise ValueError(
            f"{where}: out_shape must be a (rows, cols) pair of ints, "
            f"got {out_shape!r}"
        ) from None
    if len(shape) != 2 or any(d <= 0 for d in shape):
        raise ValueError(
            f"{where}: out_shape must be a (rows, cols) pair of positive "
            f"dims, got {out_shape!r}"
        )
    return shape  # type: ignore[return-value]


@dataclass
class GraphNode:
    """One kernel invocation inside a graph request.

    ``inputs`` name either request-level input tensors or the outputs of
    earlier nodes; ``name`` is the tensor this node produces.
    """

    name: str
    func5: int
    inputs: Tuple[str, ...]
    out_shape: Tuple[int, int]
    params: Tuple[int, ...] = ()
    dtype: Optional[Any] = None  # defaults to the first input's dtype

    def __post_init__(self) -> None:
        self.out_shape = validate_out_shape(
            self.out_shape, f"graph node {self.name!r}"
        )


@dataclass
class InferenceRequest:
    """One independent inference job for the serving engine.

    ``arrival_cycle`` places the request in the pool's simulated-cycle
    domain for online serving (:meth:`ServingEngine.serve_online`); the
    offline path ignores it.  Traffic processes in
    :mod:`repro.serve.traffic` stamp it; the default of 0 means "already
    waiting when the simulation starts".

    ``deadline_cycle`` is an *absolute* simulated cycle by which the
    request must complete (``None`` = no deadline).  The online
    dispatcher sheds the request if its projected start would already
    miss the deadline, and marks it ``timed_out`` if it completes late;
    the offline path ignores deadlines.  Stamp relative budgets after
    arrivals with :func:`repro.serve.traffic.stamp_deadlines`.

    ``priority`` is the request's admission class for the dispatch
    core's ``priority`` policy — lower values are served first (0 is the
    default/highest class).  FIFO, EDF and SJF admission ignore it.
    """

    request_id: int
    kind: str
    payload: Dict[str, Any]
    arrival_cycle: int = 0
    deadline_cycle: Optional[int] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown request kind {self.kind!r}; expected {KINDS}")
        if self.arrival_cycle < 0:
            raise ValueError(f"arrival_cycle must be >= 0, got {self.arrival_cycle}")
        if self.deadline_cycle is not None and self.deadline_cycle < 0:
            raise ValueError(
                f"deadline_cycle must be >= 0, got {self.deadline_cycle}"
            )


def gemm_request(
    request_id: int,
    a: np.ndarray,
    b: np.ndarray,
    c: Optional[np.ndarray] = None,
    alpha: int = 1,
    beta: int = 0,
) -> InferenceRequest:
    """D = alpha * (A @ B) + beta * C on the handwritten ``xmk0`` kernel."""
    if c is None:
        c = np.zeros((a.shape[0], b.shape[1]), dtype=a.dtype)
    return InferenceRequest(
        request_id, "gemm",
        {"a": a, "b": b, "c": c, "alpha": int(alpha), "beta": int(beta)},
    )


def conv_layer_request(
    request_id: int, image: np.ndarray, filters: np.ndarray
) -> InferenceRequest:
    """The paper's Listing-1 workload: conv + ReLU + 2x2 max pool (xmk4)."""
    return InferenceRequest(
        request_id, "conv_layer", {"image": image, "filters": filters}
    )


def kernel_request(
    request_id: int,
    func5: int,
    inputs: Sequence[np.ndarray],
    out_shape: Tuple[int, int],
    params: Sequence[int] = (),
    dtype: Optional[Any] = None,
) -> InferenceRequest:
    """Any single library kernel by slot — handwritten or compiled."""
    return InferenceRequest(
        request_id, "kernel",
        {
            "func5": int(func5),
            "inputs": list(inputs),
            "out_shape": validate_out_shape(out_shape, "kernel request"),
            "params": tuple(int(p) for p in params),
            "dtype": dtype,
        },
    )


def graph_request(
    request_id: int,
    inputs: Dict[str, np.ndarray],
    nodes: Sequence[GraphNode],
    output: Optional[str] = None,
) -> InferenceRequest:
    """A chain/DAG of kernels over named tensors; ``output`` defaults to
    the last node's tensor."""
    nodes = list(nodes)
    if not nodes:
        raise ValueError("graph request needs at least one node")
    names = set(inputs)
    for node in nodes:
        missing = [t for t in node.inputs if t not in names]
        if missing:
            raise ValueError(
                f"graph node {node.name!r} consumes undefined tensors {missing}"
            )
        if node.name in names:
            raise ValueError(f"graph tensor {node.name!r} defined twice")
        names.add(node.name)
    output = output or nodes[-1].name
    if output not in {n.name for n in nodes}:
        raise ValueError(f"graph output {output!r} is not produced by any node")
    return InferenceRequest(
        request_id, "graph", {"inputs": dict(inputs), "nodes": nodes, "output": output}
    )


@dataclass
class RequestResult:
    """The serving engine's answer for one request.

    ``sim_cycles`` is always the *service* time (cycles the assigned
    system spent executing the request).  In online mode the dispatcher
    also fills the simulated timeline — ``arrival_cycle``,
    ``start_cycle``, ``completion_cycle`` — from which the queueing
    split derives: ``queue_delay_cycles + sim_cycles ==
    latency_cycles`` per request.  Offline results leave the timeline
    ``None``.

    ``status`` is the request's lifecycle outcome (one of
    :data:`STATUSES`): ``ok``, ``failed`` (all attempts exhausted or a
    non-retryable error — ``output`` is ``None``), ``timed_out``
    (completed past its ``deadline_cycle``; output kept), ``shed``
    (dropped by admission control before running) or ``corrupted``
    (the output is known or suspected wrong — flagged by
    ``validate="report"`` or by an exhausted corruption-recovery
    escalation; the suspect output is kept for forensics).  ``error``
    carries the per-attempt failure history, ``attempts`` how many
    tries the request consumed (1 = first try succeeded), and
    ``fault_class`` the taxonomy bucket of the final failure.
    """

    request_id: int
    kind: str
    worker: int
    output: Optional[np.ndarray]
    sim_cycles: int
    breakdown: PhaseBreakdown
    wall_seconds: float
    reports: List[RunReport] = field(default_factory=list, repr=False)
    arrival_cycle: Optional[int] = None
    start_cycle: Optional[int] = None
    completion_cycle: Optional[int] = None
    status: str = "ok"
    error: Optional[str] = None
    attempts: int = 1
    fault_class: Optional[str] = None
    #: per-kernel-launch observability records (observe=True only): dicts
    #: with ``kernel_id``/``name``/``cycles``/``replay`` — the replay tag
    #: is hit/miss/bypassed, or "off" when the fast path is disabled.
    #: The online dispatcher stamps absolute ``start_cycle``/``end_cycle``
    #: once the request's place on the timeline is known.
    launches: List[Dict[str, Any]] = field(default_factory=list, repr=False)
    #: integrity verdict details when a policy other than ``off`` ran (or
    #: an injected corruption fired): ``policy``, ``corrected``/``method``
    #: when ABFT repaired the output in place, ``events`` with what the
    #: fault injector actually flipped.  JSON-clean.
    integrity: Optional[Dict[str, Any]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(
                f"unknown result status {self.status!r}; expected {STATUSES}"
            )

    @classmethod
    def failure(
        cls,
        request: InferenceRequest,
        status: str,
        error: str,
        worker: int = -1,
        attempts: int = 1,
        arrival_cycle: Optional[int] = None,
        fault_class: Optional[str] = None,
    ) -> "RequestResult":
        """A terminal non-ok result (no output, zero service cycles)."""
        return cls(
            request_id=request.request_id,
            kind=request.kind,
            worker=worker,
            output=None,
            sim_cycles=0,
            breakdown=PhaseBreakdown(),
            wall_seconds=0.0,
            arrival_cycle=arrival_cycle,
            status=status,
            error=error,
            attempts=attempts,
            fault_class=fault_class,
        )

    @property
    def completed(self) -> bool:
        """True when the request actually ran to completion (possibly late,
        possibly with an output flagged ``corrupted``)."""
        return self.status in ("ok", "timed_out", "corrupted")

    @property
    def offload_count(self) -> int:
        return sum(r.offload_count for r in self.reports)

    @property
    def queue_delay_cycles(self) -> Optional[int]:
        """Cycles spent waiting in queue before service began (online)."""
        if self.start_cycle is None or self.arrival_cycle is None:
            return None
        return self.start_cycle - self.arrival_cycle

    @property
    def latency_cycles(self) -> Optional[int]:
        """End-to-end simulated latency: arrival to completion (online)."""
        if self.completion_cycle is None or self.arrival_cycle is None:
            return None
        return self.completion_cycle - self.arrival_cycle
