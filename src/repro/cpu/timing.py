"""Per-instruction cycle-timing models for the CV32E40X and CV32E40PX.

Both cores are 4-stage in-order pipelines (IF/ID/EX/WB) issuing at most
one instruction per cycle, so dynamic cycle count is the sum of
per-instruction latencies plus control-flow penalties:

* ALU / packed-SIMD / MAC instructions: 1 cycle;
* loads/stores: 1 cycle against single-cycle local SRAM, plus any memory
  wait states the platform model charges separately;
* taken branches flush the two fetch stages (+2 cycles); not-taken
  branches are 1 cycle; jumps pay +1;
* multiplies: ``mul`` is single-cycle, the ``mulh*`` family takes 5;
* divides are iterative (3-35 cycles); we charge the documented mean;
* hardware-loop end-of-body branches are free (that is their point) —
  the ISS accounts for this in :mod:`repro.cpu.core`, not here.

These numbers come from the CV32E40X/CV32E40P user manuals and are the
calibration anchors for the analytical baseline models
(:mod:`repro.eval.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class TimingModel:
    """Cycle cost lookup for one core configuration."""

    name: str
    default_cycles: int = 1
    taken_branch_penalty: int = 2
    jump_penalty: int = 1
    load_cycles: int = 1
    store_cycles: int = 1
    special: Dict[str, int] = field(default_factory=dict)

    def cycles_for(self, mnemonic: str) -> int:
        """Base cycles for ``mnemonic`` (penalties applied by the core)."""
        if mnemonic in self.special:
            return self.special[mnemonic]
        if mnemonic in ("lb", "lh", "lw", "lbu", "lhu") or mnemonic.startswith("cv.l"):
            return self.load_cycles
        if mnemonic in ("sb", "sh", "sw") or mnemonic.startswith("cv.s"):
            return self.store_cycles
        return self.default_cycles


_MULH_CYCLES = 5
_DIV_CYCLES = 18  # mid-range of the 3-35 iterative divider

CV32E40X_TIMING = TimingModel(
    name="cv32e40x",
    special={
        "mulh": _MULH_CYCLES,
        "mulhu": _MULH_CYCLES,
        "mulhsu": _MULH_CYCLES,
        "div": _DIV_CYCLES,
        "divu": _DIV_CYCLES,
        "rem": _DIV_CYCLES,
        "remu": _DIV_CYCLES,
    },
)

# The PX core shares the base pipeline; XCVPULP ops are single-cycle,
# including post-increment memory ops and packed dot products.
CV32E40PX_TIMING = TimingModel(
    name="cv32e40px",
    special=dict(CV32E40X_TIMING.special),
)
