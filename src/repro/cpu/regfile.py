"""The RV32 integer register file (x0 hardwired to zero)."""

from __future__ import annotations

from typing import List

from repro.utils.fixedint import wrap32


class RegisterFile:
    """32 general-purpose registers storing unsigned 32-bit values."""

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs: List[int] = [0] * 32

    def read(self, index: int) -> int:
        """Read register ``index`` as an unsigned 32-bit value."""
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        """Write register ``index``; writes to x0 are discarded."""
        if index:
            self._regs[index] = wrap32(value)

    def snapshot(self) -> List[int]:
        """A copy of all 32 register values (for test assertions)."""
        return list(self._regs)

    def __getitem__(self, index: int) -> int:
        return self._regs[index]

    def __setitem__(self, index: int, value: int) -> None:
        self.write(index, value)
