"""The instruction-set simulator core with cycle accounting.

Models a CV32E40X-class 4-stage in-order core: one instruction retires
per cycle except for the penalties encoded in the
:class:`~repro.cpu.timing.TimingModel` (taken branches, jumps, multi-cycle
mul/div) and memory wait states charged by the platform's load/store
hooks.  Hardware-loop redirects are zero-penalty, matching XCVPULP.

A coprocessor implementing the CV-X-IF issue side can be attached via
:attr:`Cpu.xif`; decoded ``xmnmc`` instructions are forwarded to it with
the three source register values sampled, exactly like the paper's bridge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.cpu import csr as csrdefs
from repro.cpu.csr import CsrFile
from repro.cpu.executor import EbreakHalt, EcallTrap, execute
from repro.cpu.regfile import RegisterFile
from repro.cpu.timing import CV32E40X_TIMING, TimingModel
from repro.isa.decode import DecodeError, decode
from repro.isa.instruction import Instruction
from repro.isa.xmnmc import request_from_instruction
from repro.mem.memory import MainMemory
from repro.utils.bitops import sign_extend
from repro.utils.fixedint import wrap32


class CpuHalted(Exception):
    """The program executed ``ebreak`` (normal completion for ISS runs)."""


class IllegalInstruction(Exception):
    """Fetch decoded to an illegal or unsupported encoding."""


@dataclass
class HwLoop:
    """One XCVPULP hardware-loop register set (start, end, count)."""

    start: int = 0
    end: int = 0
    count: int = 0

    @property
    def active(self) -> bool:
        return self.count > 0 and self.end > 0


_BRANCH_MNEMONICS = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu"})
_JUMP_MNEMONICS = frozenset({"jal", "jalr", "mret"})


class Cpu:
    """RV32IMC(+XCVPULP, +xmnmc offload) instruction-set simulator."""

    #: Decoded-instruction cache bound.  A long-lived core (a pooled
    #: worker's host serving an unbounded request stream) must not grow
    #: the cache without limit; the insertion-ordered dict evicts FIFO,
    #: which is free on the hot path and good enough for looping code.
    DECODE_CACHE_LIMIT = 4096

    def __init__(
        self,
        memory: MainMemory,
        timing: TimingModel = CV32E40X_TIMING,
        xif: Optional[Callable[..., int]] = None,
        memory_wait_states: int = 0,
    ) -> None:
        self.memory = memory
        self.timing = timing
        self.regs = RegisterFile()
        self.csrs = CsrFile()
        self.pc = 0
        self.cycles = 0
        self.instret = 0
        self.hwloop = [HwLoop(), HwLoop()]
        self.xif = xif
        self.memory_wait_states = memory_wait_states
        self._offload_count = 0
        self._decode_cache: Dict[int, Instruction] = {}
        # per-mnemonic base-cycle memo: TimingModel.cycles_for walks
        # membership chains; the step loop pays it once per mnemonic
        # instead of once per retired instruction
        self._timing_cache: Dict[str, int] = {}
        self.mnemonic_counts: Dict[str, int] = {}
        self.count_mnemonics = False

    # -- memory interface used by the executor ------------------------------

    def load(self, address: int, width: int, signed: bool) -> int:
        address = wrap32(address)
        if width == 4:
            value = self.memory.read_u32(address)
        elif width == 2:
            value = self.memory.read_u16(address)
        else:
            value = self.memory.read_u8(address)
        self.cycles += self.memory_wait_states
        return sign_extend(value, width * 8) if signed else value

    def store(self, address: int, value: int, width: int) -> None:
        address = wrap32(address)
        if width == 4:
            self.memory.write_u32(address, value)
        elif width == 2:
            self.memory.write_u16(address, value)
        else:
            self.memory.write_u8(address, value)
        self.cycles += self.memory_wait_states

    # -- CV-X-IF offload hook -------------------------------------------------

    def offload_matrix_instruction(self, instr: Instruction) -> None:
        """Sample source registers and hand the instruction to the coprocessor.

        The attached ``xif`` callable receives an
        :class:`~repro.isa.xmnmc.OffloadRequest` and returns the number of
        cycles the host was stalled for (issue + software decode handshake;
        paper section III-B — the host then continues out-of-order).
        """
        if self.xif is None:
            raise IllegalInstruction(
                f"matrix instruction {instr.mnemonic} with no coprocessor attached"
            )
        self._offload_count += 1
        request = request_from_instruction(
            instr,
            self.regs[instr.rs1],
            self.regs[instr.rs2],
            self.regs[instr.rs3],
            instr_id=self._offload_count,
        )
        stall = self.xif(request)
        self.cycles += int(stall)

    # -- fetch/execute loop ------------------------------------------------------

    def fetch(self) -> Instruction:
        cached = self._decode_cache.get(self.pc)
        if cached is not None:
            return cached
        word = self.memory.read_u32(self.pc)
        try:
            instruction = decode(word, self.pc)
        except DecodeError as error:
            raise IllegalInstruction(str(error)) from error
        if len(self._decode_cache) >= self.DECODE_CACHE_LIMIT:
            self._decode_cache.pop(next(iter(self._decode_cache)))
        self._decode_cache[self.pc] = instruction
        return instruction

    def step(self) -> Instruction:
        """Execute one instruction; returns it (for tracing)."""
        self._maybe_take_interrupt()
        instruction = self.fetch()
        pc_before = self.pc
        next_pc = execute(self, instruction)

        mnemonic = instruction.mnemonic
        cycles = self._timing_cache.get(mnemonic)
        if cycles is None:
            cycles = self.timing.cycles_for(mnemonic)
            self._timing_cache[mnemonic] = cycles
        if next_pc is not None:
            if instruction.mnemonic in _BRANCH_MNEMONICS:
                cycles += self.timing.taken_branch_penalty
            elif instruction.mnemonic in _JUMP_MNEMONICS:
                cycles += self.timing.jump_penalty
        self.cycles += cycles
        self.instret += 1
        if self.count_mnemonics:
            self.mnemonic_counts[instruction.mnemonic] = (
                self.mnemonic_counts.get(instruction.mnemonic, 0) + 1
            )

        if next_pc is None:
            next_pc = pc_before + instruction.length
        next_pc = self._apply_hwloops(next_pc)
        self.pc = wrap32(next_pc)
        return instruction

    def _apply_hwloops(self, next_pc: int) -> int:
        """Zero-cycle loop-back when sequential flow reaches a loop end."""
        for loop in self.hwloop:
            if loop.active and next_pc == loop.end:
                if loop.count > 1:
                    loop.count -= 1
                    return loop.start
                loop.count = 0
        return next_pc

    def _maybe_take_interrupt(self) -> None:
        if not (self.csrs.interrupts_enabled and self.csrs.external_interrupt_pending):
            return
        self.csrs.write(csrdefs.MEPC, self.pc)
        self.csrs.write(csrdefs.MCAUSE, 0x8000000B)  # machine external interrupt
        self.csrs.clear_bits(csrdefs.MSTATUS, 1 << csrdefs.MSTATUS_MIE_BIT)
        self.pc = self.csrs.read(csrdefs.MTVEC) & ~0b11
        self.cycles += 4  # pipeline flush + vector fetch

    def run(self, max_instructions: int = 10_000_000) -> int:
        """Run until ``ebreak``; returns cycles consumed.  ``ecall`` is a no-op."""
        executed = 0
        while executed < max_instructions:
            try:
                self.step()
            except EbreakHalt:
                return self.cycles
            except EcallTrap:
                pass  # environment calls are ignored in bare-metal runs
            executed += 1
        raise RuntimeError(
            f"program did not halt within {max_instructions} instructions "
            f"(pc={self.pc:#010x})"
        )

    def reset(self, pc: int = 0) -> None:
        """Reset architectural state, keeping the loaded memory image."""
        self.regs = RegisterFile()
        self.csrs = CsrFile()
        self.pc = pc
        self.cycles = 0
        self.instret = 0
        self.hwloop = [HwLoop(), HwLoop()]
        self._offload_count = 0
        self._decode_cache.clear()
        self.mnemonic_counts = {}
