"""RV32 instruction-set simulator with CV32E40X/CV32E40PX timing models.

The ISS plays two roles in the reproduction:

* it executes the *baseline* kernels (scalar RV32IMC and XCVPULP
  packed-SIMD convolutions) to measure the cycle counts that ARCANE's
  speedups in Figure 4 are computed against, and
* it validates the analytical baseline cycle models in
  :mod:`repro.baselines` that extrapolate to input sizes too large to
  simulate instruction-by-instruction in Python.
"""

from repro.cpu.core import Cpu, CpuHalted, IllegalInstruction
from repro.cpu.regfile import RegisterFile
from repro.cpu.csr import CsrFile
from repro.cpu.timing import TimingModel, CV32E40X_TIMING, CV32E40PX_TIMING

__all__ = [
    "Cpu",
    "CpuHalted",
    "IllegalInstruction",
    "RegisterFile",
    "CsrFile",
    "TimingModel",
    "CV32E40X_TIMING",
    "CV32E40PX_TIMING",
]
