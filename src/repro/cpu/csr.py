"""Minimal machine-mode CSR file (Zicsr subset used by the eCPU firmware).

The C-RT on the eCPU is interrupt-driven (paper section III-B): the bridge
raises an interrupt, the eCPU decodes the offloaded instruction in the
handler.  The CSR subset here is what that flow needs — trap vector,
status/enable bits, cause, plus the cycle/instret counters.
"""

from __future__ import annotations

from typing import Dict

from repro.utils.fixedint import wrap32

MSTATUS = 0x300
MISA = 0x301
MIE = 0x304
MTVEC = 0x305
MSCRATCH = 0x340
MEPC = 0x341
MCAUSE = 0x342
MTVAL = 0x343
MIP = 0x344
MCYCLE = 0xB00
MINSTRET = 0xB02
MCYCLEH = 0xB80
MINSTRETH = 0xB82

MSTATUS_MIE_BIT = 3
MIP_MEIP_BIT = 11  # machine external interrupt (the bridge line)

_KNOWN = {
    MSTATUS, MISA, MIE, MTVEC, MSCRATCH, MEPC, MCAUSE, MTVAL, MIP,
    MCYCLE, MINSTRET, MCYCLEH, MINSTRETH,
}


class CsrFile:
    """Flat CSR storage with the read/write/set/clear access primitives."""

    def __init__(self) -> None:
        self._csrs: Dict[int, int] = {address: 0 for address in _KNOWN}
        self._csrs[MISA] = (1 << 30) | (1 << 8) | (1 << 12) | (1 << 2)  # RV32IMC

    def read(self, address: int) -> int:
        return self._csrs.get(address, 0)

    def write(self, address: int, value: int) -> None:
        self._csrs[address] = wrap32(value)

    def set_bits(self, address: int, bits: int) -> int:
        old = self.read(address)
        self.write(address, old | bits)
        return old

    def clear_bits(self, address: int, bits: int) -> int:
        old = self.read(address)
        self.write(address, old & ~bits)
        return old

    # -- interrupt helpers ---------------------------------------------

    @property
    def interrupts_enabled(self) -> bool:
        return bool(self.read(MSTATUS) >> MSTATUS_MIE_BIT & 1)

    def raise_external_interrupt(self) -> None:
        self.set_bits(MIP, 1 << MIP_MEIP_BIT)

    def clear_external_interrupt(self) -> None:
        self.clear_bits(MIP, 1 << MIP_MEIP_BIT)

    @property
    def external_interrupt_pending(self) -> bool:
        pending = self.read(MIP) & self.read(MIE)
        return bool(pending >> MIP_MEIP_BIT & 1)
