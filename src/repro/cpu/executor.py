"""Functional semantics of every instruction the ISS supports.

:func:`execute` mutates the CPU architectural state (registers, memory,
CSRs, hardware-loop state) and returns the next PC when the instruction
redirects control flow, or ``None`` for sequential execution.  Timing is
*not* handled here — :mod:`repro.cpu.core` charges cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cpu import csr as csrdefs
from repro.utils.bitops import sign_extend, to_signed
from repro.utils.fixedint import (
    div_signed,
    div_unsigned,
    mulh_signed,
    mulh_signed_unsigned,
    mulh_unsigned,
    rem_signed,
    rem_unsigned,
    sat,
    wrap32,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.core import Cpu
    from repro.isa.instruction import Instruction


class EcallTrap(Exception):
    """Raised on ``ecall`` so the embedding environment can service it."""


class EbreakHalt(Exception):
    """Raised on ``ebreak`` — the ISS convention for 'program finished'."""


def _lanes(value: int, width: int) -> list:
    """Split a 32-bit value into signed SIMD lanes of ``width`` bits."""
    count = 32 // width
    return [sign_extend((value >> (i * width)) & ((1 << width) - 1), width) for i in range(count)]


def _pack_lanes(lanes: list, width: int) -> int:
    word = 0
    lane_mask = (1 << width) - 1
    for i, lane in enumerate(lanes):
        word |= (lane & lane_mask) << (i * width)
    return wrap32(word)


def execute(cpu: "Cpu", instr: "Instruction") -> Optional[int]:
    """Execute one decoded instruction against ``cpu``. Returns next-PC override."""
    m = instr.mnemonic
    regs = cpu.regs
    pc = cpu.pc

    # ---- arithmetic-immediate -------------------------------------------
    if m == "addi":
        regs[instr.rd] = regs[instr.rs1] + instr.imm
        return None
    if m == "andi":
        regs[instr.rd] = regs[instr.rs1] & wrap32(instr.imm)
        return None
    if m == "ori":
        regs[instr.rd] = regs[instr.rs1] | wrap32(instr.imm)
        return None
    if m == "xori":
        regs[instr.rd] = regs[instr.rs1] ^ wrap32(instr.imm)
        return None
    if m == "slti":
        regs[instr.rd] = int(to_signed(regs[instr.rs1]) < instr.imm)
        return None
    if m == "sltiu":
        regs[instr.rd] = int(regs[instr.rs1] < wrap32(instr.imm))
        return None
    if m == "slli":
        regs[instr.rd] = regs[instr.rs1] << (instr.imm & 0x1F)
        return None
    if m == "srli":
        regs[instr.rd] = regs[instr.rs1] >> (instr.imm & 0x1F)
        return None
    if m == "srai":
        regs[instr.rd] = to_signed(regs[instr.rs1]) >> (instr.imm & 0x1F)
        return None

    # ---- register-register ------------------------------------------------
    if m == "add":
        regs[instr.rd] = regs[instr.rs1] + regs[instr.rs2]
        return None
    if m == "sub":
        regs[instr.rd] = regs[instr.rs1] - regs[instr.rs2]
        return None
    if m == "and":
        regs[instr.rd] = regs[instr.rs1] & regs[instr.rs2]
        return None
    if m == "or":
        regs[instr.rd] = regs[instr.rs1] | regs[instr.rs2]
        return None
    if m == "xor":
        regs[instr.rd] = regs[instr.rs1] ^ regs[instr.rs2]
        return None
    if m == "sll":
        regs[instr.rd] = regs[instr.rs1] << (regs[instr.rs2] & 0x1F)
        return None
    if m == "srl":
        regs[instr.rd] = regs[instr.rs1] >> (regs[instr.rs2] & 0x1F)
        return None
    if m == "sra":
        regs[instr.rd] = to_signed(regs[instr.rs1]) >> (regs[instr.rs2] & 0x1F)
        return None
    if m == "slt":
        regs[instr.rd] = int(to_signed(regs[instr.rs1]) < to_signed(regs[instr.rs2]))
        return None
    if m == "sltu":
        regs[instr.rd] = int(regs[instr.rs1] < regs[instr.rs2])
        return None

    # ---- RV32M -------------------------------------------------------------
    if m == "mul":
        regs[instr.rd] = to_signed(regs[instr.rs1]) * to_signed(regs[instr.rs2])
        return None
    if m == "mulh":
        regs[instr.rd] = mulh_signed(regs[instr.rs1], regs[instr.rs2])
        return None
    if m == "mulhu":
        regs[instr.rd] = mulh_unsigned(regs[instr.rs1], regs[instr.rs2])
        return None
    if m == "mulhsu":
        regs[instr.rd] = mulh_signed_unsigned(regs[instr.rs1], regs[instr.rs2])
        return None
    if m == "div":
        regs[instr.rd] = div_signed(regs[instr.rs1], regs[instr.rs2])
        return None
    if m == "divu":
        regs[instr.rd] = div_unsigned(regs[instr.rs1], regs[instr.rs2])
        return None
    if m == "rem":
        regs[instr.rd] = rem_signed(regs[instr.rs1], regs[instr.rs2])
        return None
    if m == "remu":
        regs[instr.rd] = rem_unsigned(regs[instr.rs1], regs[instr.rs2])
        return None

    # ---- upper immediates / control flow ------------------------------------
    if m == "lui":
        regs[instr.rd] = instr.imm << 12
        return None
    if m == "auipc":
        regs[instr.rd] = pc + (instr.imm << 12)
        return None
    if m == "jal":
        regs[instr.rd] = pc + instr.length
        return wrap32(pc + instr.imm)
    if m == "jalr":
        target = wrap32(regs[instr.rs1] + instr.imm) & ~1
        regs[instr.rd] = pc + instr.length
        return target
    if m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        lhs, rhs = regs[instr.rs1], regs[instr.rs2]
        taken = {
            "beq": lhs == rhs,
            "bne": lhs != rhs,
            "blt": to_signed(lhs) < to_signed(rhs),
            "bge": to_signed(lhs) >= to_signed(rhs),
            "bltu": lhs < rhs,
            "bgeu": lhs >= rhs,
        }[m]
        return wrap32(pc + instr.imm) if taken else None

    # ---- memory ---------------------------------------------------------------
    if m == "lw":
        regs[instr.rd] = cpu.load(regs[instr.rs1] + instr.imm, 4, signed=False)
        return None
    if m == "lh":
        regs[instr.rd] = cpu.load(regs[instr.rs1] + instr.imm, 2, signed=True)
        return None
    if m == "lhu":
        regs[instr.rd] = cpu.load(regs[instr.rs1] + instr.imm, 2, signed=False)
        return None
    if m == "lb":
        regs[instr.rd] = cpu.load(regs[instr.rs1] + instr.imm, 1, signed=True)
        return None
    if m == "lbu":
        regs[instr.rd] = cpu.load(regs[instr.rs1] + instr.imm, 1, signed=False)
        return None
    if m == "sw":
        cpu.store(regs[instr.rs1] + instr.imm, regs[instr.rs2], 4)
        return None
    if m == "sh":
        cpu.store(regs[instr.rs1] + instr.imm, regs[instr.rs2], 2)
        return None
    if m == "sb":
        cpu.store(regs[instr.rs1] + instr.imm, regs[instr.rs2], 1)
        return None

    # ---- XCVPULP post-increment memory ------------------------------------
    if m in ("cv.lw", "cv.lh", "cv.lhu", "cv.lb", "cv.lbu"):
        width = {"cv.lw": 4, "cv.lh": 2, "cv.lhu": 2, "cv.lb": 1, "cv.lbu": 1}[m]
        signed = m in ("cv.lh", "cv.lb")
        address = regs[instr.rs1]
        regs[instr.rd] = cpu.load(address, width, signed=signed)
        regs[instr.rs1] = address + instr.imm
        return None
    if m in ("cv.sw", "cv.sh", "cv.sb"):
        width = {"cv.sw": 4, "cv.sh": 2, "cv.sb": 1}[m]
        address = regs[instr.rs1]
        cpu.store(address, regs[instr.rs2], width)
        regs[instr.rs1] = address + instr.imm
        return None

    # ---- XCVPULP hardware loops --------------------------------------------
    if m == "cv.starti":
        cpu.hwloop[instr.operand("loop")].start = wrap32(pc + 2 * instr.imm)
        return None
    if m == "cv.endi":
        cpu.hwloop[instr.operand("loop")].end = wrap32(pc + 2 * instr.imm)
        return None
    if m == "cv.counti":
        cpu.hwloop[instr.operand("loop")].count = wrap32(instr.imm)
        return None
    if m == "cv.count":
        cpu.hwloop[instr.operand("loop")].count = regs[instr.rs1]
        return None
    if m == "cv.setup":
        loop = cpu.hwloop[instr.operand("loop")]
        loop.count = regs[instr.rs1]
        loop.start = pc + instr.length
        loop.end = wrap32(pc + 2 * instr.imm)
        return None
    if m == "cv.setupi":
        loop = cpu.hwloop[instr.operand("loop")]
        loop.count = (instr.imm >> 5) & 0x7F
        loop.start = pc + instr.length
        loop.end = wrap32(pc + 2 * (instr.imm & 0x1F))
        return None

    # ---- XCVPULP scalar DSP --------------------------------------------------
    if m == "cv.mac":
        regs[instr.rd] = to_signed(regs[instr.rd]) + to_signed(regs[instr.rs1]) * to_signed(
            regs[instr.rs2]
        )
        return None
    if m == "cv.msu":
        regs[instr.rd] = to_signed(regs[instr.rd]) - to_signed(regs[instr.rs1]) * to_signed(
            regs[instr.rs2]
        )
        return None
    if m == "cv.min":
        regs[instr.rd] = min(to_signed(regs[instr.rs1]), to_signed(regs[instr.rs2]))
        return None
    if m == "cv.max":
        regs[instr.rd] = max(to_signed(regs[instr.rs1]), to_signed(regs[instr.rs2]))
        return None
    if m == "cv.minu":
        regs[instr.rd] = min(regs[instr.rs1], regs[instr.rs2])
        return None
    if m == "cv.maxu":
        regs[instr.rd] = max(regs[instr.rs1], regs[instr.rs2])
        return None
    if m == "cv.abs":
        regs[instr.rd] = abs(to_signed(regs[instr.rs1]))
        return None
    if m == "cv.clip":
        bound_bits = regs[instr.rs2] & 0x1F
        regs[instr.rd] = sat(to_signed(regs[instr.rs1]), bound_bits or 1, signed=True)
        return None

    # ---- XCVPULP packed SIMD -------------------------------------------------
    if m.startswith("pv."):
        return _execute_simd(cpu, instr)

    # ---- system ------------------------------------------------------------------
    if m == "ecall":
        raise EcallTrap()
    if m == "ebreak":
        raise EbreakHalt()
    if m in ("fence", "wfi"):
        return None
    if m == "mret":
        cpu.csrs.set_bits(csrdefs.MSTATUS, 1 << csrdefs.MSTATUS_MIE_BIT)
        return cpu.csrs.read(csrdefs.MEPC)
    if m.startswith("csr"):
        return _execute_csr(cpu, instr)

    # xmnmc instructions are offloaded, not executed locally.
    if instr.extension == "xmnmc":
        cpu.offload_matrix_instruction(instr)
        return None

    raise NotImplementedError(f"no semantics for {m}")


def _execute_simd(cpu: "Cpu", instr: "Instruction") -> None:
    m = instr.mnemonic
    base, _, suffix = m.rpartition(".")
    if base.endswith(".sc"):
        base, scalar_variant = base[:-3], True
    else:
        scalar_variant = False
    width = 8 if suffix == "b" else 16
    regs = cpu.regs
    a = _lanes(regs[instr.rs1], width)
    if scalar_variant:
        scalar = sign_extend(regs[instr.rs2] & ((1 << width) - 1), width)
        b = [scalar] * len(a)
    else:
        b = _lanes(regs[instr.rs2], width)

    if base == "pv.add":
        regs[instr.rd] = _pack_lanes([x + y for x, y in zip(a, b)], width)
    elif base == "pv.sub":
        regs[instr.rd] = _pack_lanes([x - y for x, y in zip(a, b)], width)
    elif base == "pv.avg":
        regs[instr.rd] = _pack_lanes([(x + y) >> 1 for x, y in zip(a, b)], width)
    elif base == "pv.min":
        regs[instr.rd] = _pack_lanes([min(x, y) for x, y in zip(a, b)], width)
    elif base == "pv.max":
        regs[instr.rd] = _pack_lanes([max(x, y) for x, y in zip(a, b)], width)
    elif base == "pv.and":
        regs[instr.rd] = regs[instr.rs1] & regs[instr.rs2]
    elif base == "pv.or":
        regs[instr.rd] = regs[instr.rs1] | regs[instr.rs2]
    elif base == "pv.xor":
        regs[instr.rd] = regs[instr.rs1] ^ regs[instr.rs2]
    elif base == "pv.dotsp":
        regs[instr.rd] = sum(x * y for x, y in zip(a, b))
    elif base == "pv.dotup":
        ua = _lanes_unsigned(regs[instr.rs1], width)
        ub = _lanes_unsigned(regs[instr.rs2], width)
        regs[instr.rd] = sum(x * y for x, y in zip(ua, ub))
    elif base == "pv.sdotsp":
        regs[instr.rd] = to_signed(regs[instr.rd]) + sum(x * y for x, y in zip(a, b))
    elif base == "pv.sdotup":
        ua = _lanes_unsigned(regs[instr.rs1], width)
        ub = _lanes_unsigned(regs[instr.rs2], width)
        regs[instr.rd] = regs[instr.rd] + sum(x * y for x, y in zip(ua, ub))
    elif base == "pv.extract":
        lane = regs[instr.rs2] % (32 // width)
        regs[instr.rd] = a[lane]
    elif base == "pv.insert":
        lane = regs[instr.rs2] % (32 // width)
        dest = _lanes(regs[instr.rd], width)
        dest[lane] = sign_extend(regs[instr.rs1] & ((1 << width) - 1), width)
        regs[instr.rd] = _pack_lanes(dest, width)
    elif base == "pv.shuffle2":
        sel = _lanes_unsigned(regs[instr.rs2], width)
        count = 32 // width
        regs[instr.rd] = _pack_lanes([a[s % count] for s in sel], width)
    else:  # pragma: no cover - decoder prevents this
        raise NotImplementedError(f"no semantics for {m}")
    return None


def _lanes_unsigned(value: int, width: int) -> list:
    count = 32 // width
    return [(value >> (i * width)) & ((1 << width) - 1) for i in range(count)]


def _execute_csr(cpu: "Cpu", instr: "Instruction") -> None:
    m = instr.mnemonic
    csr_addr = instr.operand("csr")
    source = instr.rs1  # register index, or zimm for immediate forms
    old = cpu.csrs.read(csr_addr)
    if m == "csrrw":
        cpu.csrs.write(csr_addr, cpu.regs[source])
    elif m == "csrrs":
        if source:
            cpu.csrs.set_bits(csr_addr, cpu.regs[source])
    elif m == "csrrc":
        if source:
            cpu.csrs.clear_bits(csr_addr, cpu.regs[source])
    elif m == "csrrwi":
        cpu.csrs.write(csr_addr, source)
    elif m == "csrrsi":
        if source:
            cpu.csrs.set_bits(csr_addr, source)
    elif m == "csrrci":
        if source:
            cpu.csrs.clear_bits(csr_addr, source)
    cpu.regs[instr.rd] = old
    return None
