#!/usr/bin/env python3
"""A tiny CNN running end-to-end on the ARCANE smart LLC.

The paper motivates ARCANE with edge-AI / tinyML CNN inference.  This
example chains the software-defined instructions into a 2-block
ConvNet on an int8 input image:

    block 1: xmk4 conv layer (3-ch conv 3x3 + ReLU + 2x2 pool)
    block 2: xmk3 single-channel conv 3x3, then xmk1 LeakyReLU,
             then xmk2 2x2 max pooling
    head:    xmk0 GeMM as a fully-connected layer over the flattened
             feature map

Every intermediate stays in the cache/memory system and is verified
against a numpy golden model at the end.

Usage:  python examples/cnn_inference.py
"""

import numpy as np

from repro import ArcaneConfig, ArcaneSystem
from repro.baselines.reference import (
    ref_conv2d,
    ref_conv_layer,
    ref_gemm,
    ref_leaky_relu,
    ref_maxpool,
)

IMAGE = 32  # 3x32x32 input
N_CLASSES = 10


def main() -> None:
    rng = np.random.default_rng(7)
    image = rng.integers(-8, 8, (3 * IMAGE, IMAGE), dtype=np.int8)
    filters1 = rng.integers(-2, 3, (9, 3), dtype=np.int8)  # 3-ch 3x3
    filters2 = rng.integers(-2, 3, (3, 3), dtype=np.int8)  # 1-ch 3x3

    system = ArcaneSystem(ArcaneConfig(lanes=8))
    print(system.config.describe())

    # ---- golden model --------------------------------------------------
    g_block1 = ref_conv_layer(image, filters1)                       # 15x15
    g_conv2 = ref_conv2d(g_block1, filters2)                         # 13x13
    g_act2 = ref_leaky_relu(g_conv2, 3)
    g_pool2 = ref_maxpool(g_act2, 2, 2)                              # 6x6
    g_flat = g_pool2.reshape(1, -1)                                  # 1x36
    weights = rng.integers(-3, 4, (g_flat.shape[1], N_CLASSES), dtype=np.int8)
    bias = rng.integers(-5, 6, (1, N_CLASSES), dtype=np.int8)
    g_logits = ref_gemm(g_flat, weights, bias, alpha=1, beta=1)

    # ---- the same network as xmnmc instructions ------------------------
    a = system.place_matrix(image, "image")
    f1 = system.place_matrix(filters1, "filters1")
    f2 = system.place_matrix(filters2, "filters2")
    block1 = system.alloc_matrix(g_block1.shape, np.int8, "block1")
    conv2 = system.alloc_matrix(g_conv2.shape, np.int8, "conv2")
    act2 = system.alloc_matrix(g_act2.shape, np.int8, "act2")
    pool2 = system.alloc_matrix(g_pool2.shape, np.int8, "pool2")
    w = system.place_matrix(weights, "weights")
    b = system.place_matrix(bias, "bias")
    logits = system.alloc_matrix((1, N_CLASSES), np.int8, "logits")

    with system.program() as prog:
        # block 1 — one fused complex instruction
        prog.xmr(0, a).xmr(1, f1).xmr(2, block1)
        prog.conv_layer(dest=2, src=0, flt=1, suffix="b")
        # block 2 — conv / activation / pool as separate kernels
        prog.xmr(0, block1).xmr(1, f2).xmr(2, conv2)
        prog.conv2d(dest=2, src=0, flt=1, suffix="b")
        prog.xmr(0, conv2).xmr(1, act2)
        prog.leaky_relu(dest=1, src=0, alpha=3, suffix="b")
        prog.xmr(0, act2).xmr(1, pool2)
        prog.maxpool(dest=1, src=0, window=2, stride=2, suffix="b")

    # classifier head: flatten and GeMM (a fresh reservation of the same
    # memory with a 1-row shape — xmr binds shape to address, so the
    # flattened view costs nothing)
    flat = system.alloc_matrix(g_flat.shape, np.int8, "flat")
    system.memory.write_matrix(flat.address, system.read_matrix(pool2).reshape(1, -1))
    with system.program() as prog:
        prog.xmr(0, flat).xmr(1, w).xmr(2, b).xmr(3, logits)
        prog.gemm(dest=3, a=0, b=1, c=2, alpha=1, beta=1, suffix="b")

    # ---- verification ----------------------------------------------------
    for name, handle, golden in [
        ("block1", block1, g_block1),
        ("conv2", conv2, g_conv2),
        ("act2", act2, g_act2),
        ("pool2", pool2, g_pool2),
        ("logits", logits, g_logits),
    ]:
        out = system.read_matrix(handle)
        assert np.array_equal(out, golden), f"{name} mismatch"
        print(f"  {name:<7} {out.shape!s:<10} verified")

    prediction = int(np.argmax(system.read_matrix(logits)))
    print(f"\npredicted class: {prediction}  logits: {system.read_matrix(logits)[0].tolist()}")
    stats = system.stats.counters()
    print(f"kernels executed: {stats['scheduler.kernels']}, "
          f"DMA rows moved: {stats.get('alloc.rows_loaded', 0)} in / "
          f"{stats.get('alloc.rows_stored', 0)} out")


if __name__ == "__main__":
    main()
