#!/usr/bin/env python3
"""Quickstart — the paper's Listing 1, in Python.

Runs a 3-channel convolutional layer (the ``xmk4`` software-defined
instruction: conv + ReLU + 2x2 max pooling) on the ARCANE smart LLC and
verifies the result against a numpy golden model.

    // Convolutional Layer              (paper Listing 1)
    _xmr_w(m0, A, 1, rowsA, colsA);     -> prog.xmr(0, a)
    _xmr_w(m1, F, 1, rowsF, colsF);     -> prog.xmr(1, f)
    _xmr_w(m2, R, 1, rowsR, colsR);     -> prog.xmr(2, r)
    _conv_layer_w(m2, m0, m1);          -> prog.conv_layer(dest=2, src=0, flt=1)

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro import ArcaneConfig, ArcaneSystem
from repro.baselines.reference import ref_conv_layer
from repro.runtime.kernels.conv_layer import conv_layer_shapes

HEIGHT = WIDTH = 32
K = 3


def main() -> None:
    rng = np.random.default_rng(2025)

    # A 3-channel 32x32 int8 image (channel planes stacked row-wise) and a
    # 3-channel 3x3 filter — the tinyML-style workload of the paper's intro.
    image = rng.integers(-8, 8, (3 * HEIGHT, WIDTH), dtype=np.int8)
    filters = rng.integers(-2, 3, (3 * K, K), dtype=np.int8)
    _, _, conv_shape, pooled_shape = conv_layer_shapes(
        image.shape[0], image.shape[1], filters.shape[0], filters.shape[1]
    )

    # Build an X-HEEP MCU whose data LLC is replaced by ARCANE (4 VPUs,
    # 4 lanes each — the paper's intermediate configuration).
    system = ArcaneSystem(ArcaneConfig(lanes=4))
    print(system.config.describe())

    # Place operands in system memory and reserve the pooled output.
    a = system.place_matrix(image, "A")
    f = system.place_matrix(filters, "F")
    r = system.alloc_matrix(pooled_shape, np.int8, "R")

    # Listing 1: three matrix reservations, one complex kernel instruction.
    with system.program() as prog:
        prog.xmr(0, a)
        prog.xmr(1, f)
        prog.xmr(2, r)
        prog.conv_layer(dest=2, src=0, flt=1, suffix="b")

    result = system.read_matrix(r)
    expected = ref_conv_layer(image, filters)
    assert np.array_equal(result, expected), "ARCANE result mismatch!"

    report = system.last_report
    b = report.breakdown
    print(f"\nconv {conv_shape} -> pooled {pooled_shape}: result verified")
    print(f"host was stalled only {report.host_cycles:,} of {report.total_cycles:,} "
          "total cycles (offload handshake) - the kernel ran in-cache")
    print("\nphase breakdown (paper Figure 3 quantities):")
    for phase in ("preamble", "allocation", "compute", "writeback"):
        cycles = b.cycles[phase]
        print(f"  {phase:<10} {cycles:>8,} cycles  ({100 * b.fraction(phase):5.1f}%)")
    print(f"  {'total':<10} {b.total:>8,} cycles")


if __name__ == "__main__":
    main()
