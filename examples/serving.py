#!/usr/bin/env python3
"""Serving demo — many inference requests over a pool of ARCANE systems.

Builds a :class:`~repro.serve.engine.ServingEngine` with two reusable
ARCANE instances, submits a mixed batch (Listing-1 conv layers, GeMMs,
a compiled fully-connected kernel and a three-node kernel graph), and
prints the aggregate throughput/latency report plus a per-request trace.

The same batch is then replayed *online*: a seeded Poisson process
stamps each request with an arrival cycle, and the dispatcher admits
them through a FIFO queue in simulated time, routing each to the worker
with the smallest actual cycle backlog.  The online report splits
end-to-end latency into queue delay + service and shows per-worker
utilization — the queueing view the offline batch report cannot give.

Finally the batch is replayed once more under a seeded *fault plan*
(kernel kills, latency spikes and a worker crash): failed attempts back
off in simulated cycles, re-enter the admission queue and fail over to
another worker, the crashed instance is rebuilt, and the availability
section of the report accounts for every retry — while every request
that completes still verifies bit-exactly against the golden model.

Every output is verified against the numpy golden models, and every
request runs on a long-lived system whose heap is recycled between
requests — the lifecycle that used to exhaust the bump allocator after
a handful of programs.

A final drill arms the ABFT integrity policy and flips single bits in
LLC-resident operand bytes mid-kernel: the checksum trips, the request
escalates (fast-path-bypassed retry, then failover) and recovers, and
the report's integrity section shows detection recall.

The faulted replay runs observed (``observe=True``): the script prints
the recorded span tree for one retried request, renders the rolling
fleet-metrics timeline as a text strip chart, and exports the full run
as a Chrome trace-event JSON you can open in Perfetto
(https://ui.perfetto.dev).

Usage:  python examples/serving.py
"""

import os
import tempfile

import numpy as np

from repro.obs import render_timeline, write_chrome_trace

from repro.compiler import FUNC5_CGEMM, FUNC5_EWISE_ADD, FUNC5_FC, FUNC5_ROWSUM
from repro.core.config import ArcaneConfig
from repro.serve import (
    GraphNode,
    ServingEngine,
    conv_layer_request,
    gemm_request,
    graph_request,
    kernel_request,
)


def build_requests(rng) -> list:
    requests = []
    rid = 0
    for _ in range(4):
        # the paper's Listing-1 workload: 3-channel conv + ReLU + max pool
        image = rng.integers(-8, 8, (3 * 16, 16)).astype(np.int8)
        filters = rng.integers(-2, 3, (9, 3)).astype(np.int8)
        requests.append(conv_layer_request(rid, image, filters))
        rid += 1

        # a GeMM on the handwritten xmk0 kernel
        a = rng.integers(-6, 6, (8, 12)).astype(np.int16)
        b = rng.integers(-6, 6, (12, 10)).astype(np.int16)
        requests.append(gemm_request(rid, a, b, alpha=2, beta=0))
        rid += 1

        # a compiled fully-connected layer (kernel slot 18)
        x = rng.integers(-8, 8, (1, 48)).astype(np.int16)
        w = rng.integers(-8, 8, (48, 16)).astype(np.int16)
        bias = rng.integers(-8, 8, (1, 16)).astype(np.int16)
        requests.append(kernel_request(rid, FUNC5_FC, [x, w, bias], (1, 16)))
        rid += 1

    # one kernel graph: cgemm -> ewise_add -> rowsum, chained through memory
    ga = rng.integers(-4, 4, (6, 6)).astype(np.int16)
    gb = rng.integers(-4, 4, (6, 6)).astype(np.int16)
    gc = np.zeros((6, 6), dtype=np.int16)
    gd = rng.integers(-4, 4, (6, 6)).astype(np.int16)
    nodes = [
        GraphNode("prod", FUNC5_CGEMM, ("a", "b", "c"), (6, 6), params=(1, 0)),
        GraphNode("sum", FUNC5_EWISE_ADD, ("prod", "d"), (6, 6)),
        GraphNode("row", FUNC5_ROWSUM, ("sum",), (6, 1)),
    ]
    requests.append(graph_request(rid, {"a": ga, "b": gb, "c": gc, "d": gd}, nodes))
    return requests


def main() -> None:
    rng = np.random.default_rng(42)
    config = ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=8,
                          main_memory_kib=512)
    engine = ServingEngine(pool_size=2, config=config)
    print(f"pool: 2 x [{config.describe()}]\n")

    requests = build_requests(rng)
    report = engine.serve(requests, verify=True)

    print("== offline: whole batch at cycle 0 ==")
    print(report.summary())
    print("\nper-request trace (simulated cycles):")
    for result in report.results:
        print(f"  request {result.request_id:>2} {result.kind:<10} "
              f"-> worker {result.worker}  {result.sim_cycles:>7,} cycles  "
              f"out {result.output.shape[0]}x{result.output.shape[1]}")

    online = engine.serve_online(requests, traffic="poisson:120", seed=7,
                                 verify=True)
    print("\n== online: Poisson arrivals, FIFO admission, "
          "least-backlog dispatch ==")
    print(online.summary())
    print("\nper-request timeline (simulated cycles):")
    for result in online.results:
        print(f"  request {result.request_id:>2} {result.kind:<10} "
              f"-> worker {result.worker}  "
              f"arrive {result.arrival_cycle:>9,}  "
              f"wait {result.queue_delay_cycles:>7,}  "
              f"serve {result.sim_cycles:>7,}  "
              f"done {result.completion_cycle:>9,}")

    faults = "kill:0.2,slow:0.1:4x,crash_worker:0@3"
    faulty = engine.serve_online(requests, traffic="poisson:120", seed=7,
                                 faults=faults, fault_seed=11, verify=True,
                                 observe=True)
    print(f"\n== online under injected faults ({faults}) ==")
    print(faulty.summary())
    avail = faulty.availability
    print("\navailability:")
    print(f"  success rate : {avail['success_rate']:.1%} "
          f"(statuses: {avail['statuses']})")
    print(f"  retries      : {avail['retries']} "
          f"({avail['failovers']} failed over to another worker)")
    print(f"  injected     : {avail['injected_faults']}")
    for event in avail["worker_events"]:
        print(f"  worker {event['worker']} {event['event']} "
              f"at cycle {event['cycle']:,}")
    for result in faulty.results:
        if result.attempts > 1 or result.status != "ok":
            print(f"  request {result.request_id:>2} [{result.status}] "
                  f"{result.attempts} attempt(s): {result.error}")

    # the run was observed: show one retried request's span tree ...
    recorder = faulty.spans
    retried = [r for r in faulty.results if r.attempts > 1 and r.status == "ok"]
    if retried:
        root = recorder.find(category="request",
                             request=retried[0].request_id)[0]
        print(f"\nspan tree for retried request {retried[0].request_id}:")
        depth = {root.span_id: 0}
        for span in recorder.tree(root.span_id):
            if span.span_id not in depth:
                depth[span.span_id] = depth[span.parent_id] + 1
            notes = {k: v for k, v in span.attrs.items()
                     if k not in ("request", "kind")}
            print(f"  {'  ' * depth[span.span_id]}{span.name:<24} "
                  f"[{span.start_cycle:,}..{span.end_cycle:,}] {notes}")

    # ... the rolling fleet-metrics timeline as a strip chart ...
    print("\nfleet timeline (faulted run):")
    print(render_timeline(faulty))

    # ... and the whole run as a Perfetto-loadable Chrome trace
    trace_path = os.path.join(tempfile.gettempdir(),
                              "arcane_serving.trace.json")
    write_chrome_trace(faulty, trace_path)
    print(f"\nPerfetto trace written to {trace_path} "
          f"(open at https://ui.perfetto.dev)")

    # -- data integrity: flipped bits, ABFT detection, recovery ---------------
    # A fresh pool with the ABFT policy armed: every gemm-family output is
    # checked against Huang-Abraham row/column checksums.  The fault plan
    # flips one bit in an operand's LLC-resident bytes mid-kernel on ~40%
    # of attempts; a flip that manifests trips the checksum, the request
    # escalates (retry with the replay fast path bypassed, then failover),
    # and the recovered answer still verifies against the golden model.
    gemms = [r for r in requests if r.kind == "gemm"]
    guarded = ServingEngine(pool_size=2, config=config, integrity="abft")
    flipped = guarded.serve(gemms, verify="report", faults="flip:0.4",
                            fault_seed=5)
    print("\n== silent-data-corruption drill (flip:0.4, policy=abft) ==")
    print(flipped.summary())
    integ = flipped.integrity
    print("\nintegrity:")
    print(f"  injected     : {integ['injected']}")
    print(f"  detected     : {integ['detected']} "
          f"(corrected in place: {integ['corrected']})")
    print(f"  recovered    : {integ['recovered']} of {integ['detected']} "
          f"escalated back to status=ok")
    print(f"  undetected   : {integ['undetected']} "
          f"-> detection recall {integ['recall']:.2f} "
          f"(ABFT-covered recall {integ['covered']['recall']:.2f})")
    print(f"  escalations  : {integ['escalations']}")
    for result in flipped.results:
        if result.attempts > 1 or result.status != "ok":
            print(f"  request {result.request_id:>2} [{result.status}] "
                  f"{result.attempts} attempt(s): {result.error}")


if __name__ == "__main__":
    main()
