#!/usr/bin/env python3
"""Software-defined ISA extensibility, compiler edition.

``examples/custom_kernel.py`` registers a *handwritten* micro-program.
This example authors the same class of instruction through the kernel
compiler instead: write the algorithm once as a loop nest over matrix
elements, schedule it, and let ``compile_kernel`` generate the preamble
(operand resolution + shape inference) and the micro-program body.

The kernel is ``xmk9`` = scaled residual accumulate,
``D = alpha * X + beta * Y`` — then the example also installs the whole
compiled library (GeMM, depthwise conv, fully-connected, element-wise,
row-sum) and runs a compiled fully-connected layer end to end.

Usage:  python examples/compiled_kernel.py
"""

import numpy as np

from repro import ArcaneConfig, ArcaneSystem
from repro.compiler import (
    Accum,
    Assign,
    FUNC5_FC,
    KernelProgram,
    Loop,
    Operand,
    Schedule,
    Sym,
    compile_kernel,
    install_compiled,
    offload_compiled,
)

FUNC5_AXPBY = 9


def build_axpby_spec():
    """IR -> schedule -> KernelSpec for D = alpha * X + beta * Y."""
    # 1. Declare operands with symbolic shapes.  The generated preamble
    #    infers M and N from the bound matrices and validates every
    #    operand against them at decode time.
    M, N = Sym("M"), Sym("N")
    d = Operand("d", (M, N), out=True)
    x = Operand("x", (M, N))
    y = Operand("y", (M, N))
    alpha, beta = Sym("alpha"), Sym("beta")

    # 2. The algorithm, as a plain loop nest over matrix elements.
    i, j = Sym("i"), Sym("j")
    program = KernelProgram(
        "axpby",
        [d, x, y],
        [
            Loop(i, M, [
                Loop(j, N, [Assign(d[i, j], alpha * x[i, j])]),
                Loop(j, N, [Accum(d[i, j], beta * y[i, j])]),
            ], parallel=True),
        ],
        params=["alpha", "beta"],
    )

    # 3. Schedule: shard output rows across VPUs, map the column loops
    #    onto vector instructions (vmul.vs + vmacc.vs per row).
    schedule = Schedule(program).shard("i").vectorize("j")

    # 4. Lower to the same KernelSpec contract handwritten kernels use.
    return compile_kernel(schedule, FUNC5_AXPBY, "compiled alpha*X + beta*Y")


def main() -> None:
    rng = np.random.default_rng(11)
    system = ArcaneSystem(ArcaneConfig(lanes=4))
    library = system.llc.runtime.library

    # --- one compiled instruction, registered like any other kernel ---
    library.register(build_axpby_spec())
    x = rng.integers(-100, 100, (12, 20)).astype(np.int16)
    y = rng.integers(-100, 100, (12, 20)).astype(np.int16)
    mx, my = system.place_matrix(x, "x"), system.place_matrix(y, "y")
    out = system.alloc_matrix(x.shape, np.int16, "out")
    alpha, beta = 3, -5
    with system.program() as prog:
        prog.xmr(0, mx).xmr(1, my).xmr(2, out)
        offload_compiled(prog, FUNC5_AXPBY, "h", dest=2, sources=[0, 1],
                         params=[alpha, beta])
    expected = (x.astype(np.int64) * alpha + y.astype(np.int64) * beta).astype(np.int16)
    assert np.array_equal(system.read_matrix(out), expected), "axpby mismatch"
    print(f"xmk{FUNC5_AXPBY} (compiled axpby) verified on {x.shape} int16 "
          f"in {system.last_report.total_cycles:,} cycles")

    # --- the whole compiled library in one call ---
    install_compiled(library)
    print("installed kernels:", library.names())

    # run a compiled fully-connected layer end to end
    k, n = 64, 24
    xv = rng.integers(-8, 8, (1, k)).astype(np.int16)
    w = rng.integers(-8, 8, (k, n)).astype(np.int16)
    bias = rng.integers(-8, 8, (1, n)).astype(np.int16)
    hx, hw, hb = (system.place_matrix(m) for m in (xv, w, bias))
    fc_out = system.alloc_matrix((1, n), np.int16, "fc_out")
    with system.program() as prog:
        prog.xmr(0, hx).xmr(1, hw).xmr(2, hb).xmr(3, fc_out)
        offload_compiled(prog, FUNC5_FC, "h", dest=3, sources=[0, 1, 2])
    expected = (
        xv.astype(np.int64) @ w.astype(np.int64) + bias.astype(np.int64)
    ).astype(np.int16)
    assert np.array_equal(system.read_matrix(fc_out), expected), "fc mismatch"
    print(f"xmk{FUNC5_FC} (compiled fully-connected, {k}->{n}) verified "
          f"in {system.last_report.total_cycles:,} cycles")


if __name__ == "__main__":
    main()
