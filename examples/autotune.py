#!/usr/bin/env python3
"""Autotuning — search the legal-recipe space for the cheapest schedule.

Schedules are data: every library kernel is a pure loop-nest algorithm
plus a serializable :class:`~repro.compiler.Recipe` of transform steps
(``shard`` / ``strip_mine`` / ``unroll`` / ``vectorize``).  The
:class:`~repro.compiler.Tuner` walks ``Schedule.legal_moves()`` with a
budgeted beam search, measuring each candidate's *simulated* cycles on
the target machine, and memoizes the winner per
``(kernel, geometry, machine-config)`` in a JSON-persistable
:class:`~repro.compiler.ScheduleCache`.

This example tunes the compiled GeMM for one strip-mined shape, shows
the winning recipe and its cycle cost next to the default recipe and
the handwritten Table I ``xmk0`` GEMM, verifies all three outputs are
bit-exact, and demonstrates the cache hit on a repeat call.

Usage:  python examples/autotune.py
"""

import numpy as np

from repro import ArcaneConfig, ArcaneSystem
from repro.baselines.reference import ref_gemm
from repro.compiler import Tuner, recompile, offload_compiled

M, K, N = 8, 48, 24  # K=48 exceeds the VRF: the schedule must strip-mine
ALPHA, BETA = 2, -1
TUNE_SLOT = 15


def run_handwritten_gemm(config, a, b, c):
    system = ArcaneSystem(config)
    ma, mb, mc = (system.place_matrix(x) for x in (a, b, c))
    md = system.alloc_matrix((a.shape[0], b.shape[1]), a.dtype)
    with system.program() as prog:
        prog.xmr(0, ma).xmr(1, mb).xmr(2, mc).xmr(3, md)
        prog.gemm(dest=3, a=0, b=1, c=2, alpha=ALPHA, beta=BETA,
                  suffix=ma.etype.suffix)
    return system.read_matrix(md), system.last_report.total_cycles


def run_recipe(config, recipe, a, b, c):
    system = ArcaneSystem(config)
    spec = recompile("cgemm", recipe, func5=TUNE_SLOT)
    system.llc.runtime.library.register(spec, replace=True)
    handles = [system.place_matrix(x) for x in (a, b, c)]
    out = system.alloc_matrix((a.shape[0], b.shape[1]), a.dtype)
    with system.program() as prog:
        for register, handle in enumerate(handles):
            prog.xmr(register, handle)
        prog.xmr(3, out)
        offload_compiled(prog, TUNE_SLOT, out.etype.suffix, dest=3,
                         sources=[0, 1, 2], params=[ALPHA, BETA])
    return system.read_matrix(out), system.last_report.total_cycles


def main() -> None:
    rng = np.random.default_rng(7)
    a = rng.integers(-8, 8, (M, K)).astype(np.int16)
    b = rng.integers(-8, 8, (K, N)).astype(np.int16)
    c = rng.integers(-8, 8, (M, N)).astype(np.int16)
    config = ArcaneConfig(n_vpus=4, lanes=4, line_bytes=256, vpu_kib=8,
                          main_memory_kib=2048)

    # Search the recipe space for this (kernel, shape, machine).
    tuner = Tuner(config, budget=16, beam_width=3)
    result = tuner.tune("cgemm", [a, b, c], params=(ALPHA, BETA))
    print(f"tuned cgemm {M}x{K}x{N} on {result.geometry}")
    print(f"  candidates measured : {result.evaluated} (budget {result.budget})")
    print(f"  default recipe      : {result.default_recipe.describe()}"
          f" -> {result.default_cycles:,} cycles")
    print(f"  best recipe         : {result.best_recipe.describe()}"
          f" -> {result.best_cycles:,} cycles")

    # The winner is never worse than the default recipe, and the search
    # result is bit-exact: same integer output as the unscheduled
    # algorithm, the default schedule, and the handwritten Table I GEMM.
    expected = ref_gemm(a, b, c, ALPHA, BETA)
    tuned_out, tuned_cycles = run_recipe(config, result.best_recipe, a, b, c)
    hand_out, hand_cycles = run_handwritten_gemm(config, a, b, c)
    assert np.array_equal(tuned_out, expected)
    assert np.array_equal(hand_out, expected)
    assert tuned_cycles <= result.default_cycles
    print(f"  handwritten xmk0    : {hand_cycles:,} cycles "
          f"(tuned is {hand_cycles / tuned_cycles:.2f}x)")
    print("  outputs bit-exact vs numpy golden model: yes")

    # The winner is memoized: a second tune() for the same geometry and
    # machine fingerprint is a cache hit (zero candidates measured), and
    # the cache itself round-trips through JSON for reuse across runs.
    again = tuner.tune("cgemm", [a, b, c], params=(ALPHA, BETA))
    assert again.from_cache and again.best_cycles == result.best_cycles
    restored = type(tuner.cache).from_json(tuner.cache.to_json())
    assert len(restored) == len(tuner.cache)
    print(f"  repeat tune()       : cache hit "
          f"({tuner.cache.stats()['hits']} hit(s), JSON round-trip ok)")


if __name__ == "__main__":
    main()
