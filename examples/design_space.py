#!/usr/bin/env python3
"""Design-space exploration: lanes, VPUs and the area/performance trade.

Sweeps the ARCANE configuration space of paper Table II (plus a few
points beyond it), measuring conv-layer latency on each configuration and
pricing it with the area model — the kind of exploration the original
RTL flow needed a synthesis run per point for.

Usage:  python examples/design_space.py [size]
"""

import sys

import numpy as np

from repro import ArcaneConfig, ArcaneSystem
from repro.baselines.models import scalar_conv_layer_cycles
from repro.baselines.scalar_kernels import ConvLayerShape
from repro.eval.area import AreaModel
from repro.eval.tables import render_table
from repro.eval.throughput import ThroughputModel


def measure(config: ArcaneConfig, image: np.ndarray, filters: np.ndarray) -> int:
    system = ArcaneSystem(config)
    _, report = system.run_conv_layer(image, filters)
    return report.total_cycles


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    rng = np.random.default_rng(3)
    image = rng.integers(-8, 8, (3 * size, size), dtype=np.int8)
    filters = rng.integers(-2, 3, (9, 3), dtype=np.int8)
    scalar = scalar_conv_layer_cycles(ConvLayerShape(size, size, 3), 1)
    area_model = AreaModel()
    throughput = ThroughputModel(area_model)

    print(f"workload: 3-channel conv layer, {size}x{size} int8, 3x3 filters")
    print(f"scalar CV32E40X baseline: {scalar:,} cycles\n")

    rows = []
    for lanes in (2, 4, 8):
        for multi in (False, True):
            config = ArcaneConfig(lanes=lanes, multi_vpu=multi)
            cycles = measure(config, image, filters)
            overhead = area_model.overhead_percent(config)
            rows.append([
                f"{config.n_vpus} VPUs x {lanes} lanes" + (" (multi)" if multi else ""),
                f"{cycles:,}",
                f"{scalar / cycles:.1f}x",
                f"{throughput.peak_gops(config):.1f}",
                f"{overhead:.1f}%",
                f"{(scalar / cycles) / (1 + overhead / 100):.1f}",
            ])
    print(render_table(
        ["configuration", "cycles", "speedup", "peak GOPS",
         "area overhead", "speedup per area"],
        rows,
        title="ARCANE design space (Table II configurations, measured)",
    ))
    print("\nThe per-area column shows the paper's trade-off: more lanes buy "
          "throughput,\nbut the LLC splitting and datapath area grow "
          "(21.7% -> 41.3% overhead).")


if __name__ == "__main__":
    main()
