#!/usr/bin/env python3
"""Software-defined ISA extensibility: registering a custom kernel.

The paper's key usability claim (section IV): because complex in-cache
instructions are *decoded in software* by the C-RT, new instructions can
be added by registering a kernel in the library — no hardware change, no
simulator change.  "A user-configurable kernel library allows custom
kernels to be added before C-RT compilation."

This example installs ``xmk9`` = fused element-wise *axpby*
(D = (alpha * X + beta * Y) >> shift, a residual-add with rescale, a
common quantised-CNN epilogue), runs it from the host through the normal
CV-X-IF offload path, and verifies the result.

Usage:  python examples/custom_kernel.py
"""

import numpy as np

from repro import ArcaneConfig, ArcaneSystem
from repro.isa.xmnmc import OffloadRequest, pack_pair
from repro.runtime.context import KernelContext
from repro.runtime.kernel_lib import KernelSpec
from repro.runtime.kernels.common import check_shape, resolve, signed16
from repro.runtime.matrix import MatrixMap
from repro.runtime.queue import QueuedKernel
from repro.vpu.visa import VectorOpcode

FUNC5_AXPBY = 9
SHIFT = 4


def axpby_preamble(request: OffloadRequest, matrix_map: MatrixMap):
    """Operand packing: rs1 = (alpha, beta), rs2 = (-, md), rs3 = (ms1, ms2)."""
    (alpha, beta), (_, md), (ms1, ms2) = request.pairs()
    x = resolve(matrix_map, ms1)
    y = resolve(matrix_map, ms2)
    d = resolve(matrix_map, md)
    check_shape(y, x.rows, x.cols, "second operand")
    check_shape(d, x.rows, x.cols, "destination")
    return d, [x, y], {"alpha": signed16(alpha), "beta": signed16(beta)}


def axpby_body(kc: KernelContext, kernel: QueuedKernel, shard=None):
    """Micro-program: one row at a time, four vector instructions each."""
    x, y = kernel.sources
    d = kernel.dest
    alpha, beta = kernel.scalars["alpha"], kernel.scalars["beta"]
    x_win, y_win, acc_win = kc.claim(1), kc.claim(1), kc.claim(1)
    for row in range(x.rows):
        yield from kc.load_rows(x_win, x, row, 1)
        yield from kc.load_rows(y_win, y, row, 1)
        yield from kc.vop(VectorOpcode.VMUL_VS, vd=acc_win[0], vs1=x_win[0],
                          scalar=alpha, vl=x.cols)
        yield from kc.vop(VectorOpcode.VMACC_VS, vd=acc_win[0], vs1=y_win[0],
                          scalar=beta, vl=x.cols)
        yield from kc.vop(VectorOpcode.VSRA_VS, vd=acc_win[0], vs1=acc_win[0],
                          scalar=SHIFT, vl=x.cols)
        yield from kc.store_rows(acc_win, d, row, 1)


def golden_axpby(x: np.ndarray, y: np.ndarray, alpha: int, beta: int) -> np.ndarray:
    acc = (x.astype(np.int64) * alpha + y.astype(np.int64) * beta).astype(x.dtype)
    return (acc >> SHIFT).astype(x.dtype)


def main() -> None:
    rng = np.random.default_rng(11)
    system = ArcaneSystem(ArcaneConfig(lanes=4))

    # --- the one-line ISA extension: install xmk9 in the kernel library ---
    system.llc.runtime.library.register(KernelSpec(
        func5=FUNC5_AXPBY,
        name="axpby",
        preamble=axpby_preamble,
        body=axpby_body,
        description="D = (alpha*X + beta*Y) >> 4 (residual add with rescale)",
    ))
    print("installed kernels:", system.llc.runtime.library.names())

    x = rng.integers(-100, 100, (12, 20)).astype(np.int16)
    y = rng.integers(-100, 100, (12, 20)).astype(np.int16)
    mx, my = system.place_matrix(x, "x"), system.place_matrix(y, "y")
    out = system.alloc_matrix(x.shape, np.int16, "out")

    alpha, beta = 3, 5
    with system.program() as prog:
        prog.xmr(0, mx).xmr(1, my).xmr(2, out)
        # the new complex instruction, offloaded exactly like the built-ins
        prog.xmk(FUNC5_AXPBY, "h",
                 rs1=pack_pair(alpha, beta),
                 rs2=pack_pair(0, 2),
                 rs3=pack_pair(0, 1))

    result = system.read_matrix(out)
    expected = golden_axpby(x, y, alpha, beta)
    assert np.array_equal(result, expected), "custom kernel mismatch"
    print(f"xmk{FUNC5_AXPBY} (axpby) verified on {x.shape} int16 "
          f"in {system.last_report.total_cycles:,} cycles")

    # an *unregistered* slot is killed by the software decoder (the host
    # receives the CV-X-IF kill response) — graceful, not fatal:
    with system.program() as prog:
        prog.xmk(23, "h")
    print("offload to empty slot 23 ->", system.last_report.outcomes[-1].value)


if __name__ == "__main__":
    main()
