#!/usr/bin/env python3
"""The eCPU side at instruction level: interrupt-driven decode firmware.

The system model in ``repro.core`` treats the C-RT as Python code with
cycle costs.  This example demonstrates the *mechanism* underneath at
instruction granularity (paper section III-B): a CV32E40X-class eCPU
running real RISC-V machine code that

1. installs a machine-mode trap handler (``mtvec``),
2. sleeps in a ``wfi`` loop,
3. is interrupted by the bridge when the host offloads an instruction,
4. reads the memory-mapped bridge registers (func5, element size and the
   three sampled operand registers),
5. decodes ``xmr`` in software — unpacking Table I's 16-bit operand
   pairs and writing a matrix-map entry to eMEM,
6. writes the accept/kill outcome register the bridge forwards back to
   the host, and returns via ``mret``.

Everything — the trap entry, the CSR dance, the table update — is
executed by the ISS, not modelled.

Usage:  python examples/ecpu_firmware.py
"""

import numpy as np

from repro.cpu.core import Cpu
from repro.isa.asm import assemble
from repro.isa.xmnmc import FUNC5_XMR, pack_pair
from repro.mem.memory import MainMemory

# Memory map of the eCPU's world (eMEM + bridge registers).
BRIDGE_BASE = 0x0001_0000
REG_FUNC5 = BRIDGE_BASE + 0x00
REG_SIZE = BRIDGE_BASE + 0x04
REG_RS1 = BRIDGE_BASE + 0x08
REG_RS2 = BRIDGE_BASE + 0x0C
REG_RS3 = BRIDGE_BASE + 0x10
REG_OUTCOME = BRIDGE_BASE + 0x14  # 1 = accepted, 2 = killed
MATRIX_MAP = 0x0002_0000  # 8 entries x 16 bytes: addr, rows, cols, etype
DONE_FLAG = 0x0003_0000

FIRMWARE = f"""
# ---- C-RT boot: install the trap vector, enable MEIE, sleep -----------
    la   t0, trap_handler
    csrrw zero, 0x305, t0          # mtvec
    li   t0, 0x800
    csrrs zero, 0x304, t0          # mie.MEIE
    csrrsi zero, 0x300, 8          # mstatus.MIE
main_loop:
    wfi
    li   t1, {DONE_FLAG}
    lw   t0, 0(t1)
    beqz t0, main_loop
    ebreak                         # firmware exits once one decode is done

# ---- the kernel decoder, interrupt context ----------------------------
trap_handler:
    li   s0, {BRIDGE_BASE}
    lw   s1, 0(s0)                 # func5
    li   t0, {FUNC5_XMR}
    bne  s1, t0, reject            # only xmr implemented in this demo

    # unpack Table I operand pairs from the sampled registers
    lw   t1, 8(s0)                 # rs1 = &A (full 32-bit address)
    lw   t2, 12(s0)                # rs2 = (stride << 16) | md
    lw   t3, 16(s0)                # rs3 = (cols << 16) | rows
    li   t4, 0xffff
    and  s2, t2, t4                # md
    srli s3, t3, 16                # cols
    and  t3, t3, t4                # rows
    lw   s4, 4(s0)                 # element size code

    # matrix_map[md] = {{addr, rows, cols, etype}}
    slli t5, s2, 4                 # md * 16 bytes
    li   t6, {MATRIX_MAP}
    add  t5, t5, t6
    sw   t1, 0(t5)
    sw   t3, 4(t5)
    sw   s3, 8(t5)
    sw   s4, 12(t5)

    li   t0, 1                     # outcome: accepted
    sw   t0, {REG_OUTCOME - BRIDGE_BASE}(s0)
    j    trap_exit
reject:
    li   t0, 2                     # outcome: killed
    sw   t0, {REG_OUTCOME - BRIDGE_BASE}(s0)
trap_exit:
    li   t0, 1
    li   t1, {DONE_FLAG}
    sw   t0, 0(t1)
    mret
"""


def main() -> None:
    program = assemble(FIRMWARE, base=0)
    memory = MainMemory(256 * 1024)
    memory.write_block(0, bytes(program.data))
    ecpu = Cpu(memory)

    # Boot the firmware until it parks in the wfi loop.
    for _ in range(40):
        ecpu.step()
    print(f"firmware booted: mtvec={ecpu.csrs.read(0x305):#x}, "
          f"interrupts {'enabled' if ecpu.csrs.interrupts_enabled else 'off'}")

    # The host offloads `xmr.w m3, A(rows=24, cols=32)`; the bridge samples
    # the instruction fields into its registers and raises the interrupt.
    matrix_address = 0x0004_0000
    memory.write_u32(REG_FUNC5, FUNC5_XMR)
    memory.write_u32(REG_SIZE, 2)  # .w
    memory.write_u32(REG_RS1, matrix_address)
    memory.write_u32(REG_RS2, pack_pair(32, 3))     # stride=32, md=3
    memory.write_u32(REG_RS3, pack_pair(32, 24))    # cols=32, rows=24
    ecpu.csrs.raise_external_interrupt()
    print("bridge: sampled xmr.w (md=3, 24x32) and raised the eCPU interrupt")

    cycles_before = ecpu.cycles
    ecpu.step()  # the trap is taken here (pipeline redirect to mtvec)
    ecpu.csrs.clear_external_interrupt()  # bridge de-asserts once serviced
    ecpu.run(max_instructions=10_000)
    decode_cycles = ecpu.cycles - cycles_before

    entry = MATRIX_MAP + 3 * 16
    decoded = dict(
        addr=memory.read_u32(entry),
        rows=memory.read_u32(entry + 4),
        cols=memory.read_u32(entry + 8),
        etype=memory.read_u32(entry + 12),
    )
    outcome = memory.read_u32(REG_OUTCOME)
    print(f"eCPU decoded in software ({decode_cycles} cycles, "
          f"{ecpu.instret} instructions retired):")
    print(f"  matrix map entry m3 -> addr={decoded['addr']:#x}, "
          f"rows={decoded['rows']}, cols={decoded['cols']}, etype={decoded['etype']}")
    print(f"  outcome register -> {'accepted' if outcome == 1 else 'killed'} "
          "(forwarded to the host over CV-X-IF)")
    assert decoded == {"addr": matrix_address, "rows": 24, "cols": 32, "etype": 2}
    assert outcome == 1
    print("software decode verified at instruction level")


if __name__ == "__main__":
    main()
