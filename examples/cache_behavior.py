#!/usr/bin/env python3
"""ARCANE as a plain cache + the hazard protocol, made visible.

Demonstrates paper section III-A:

1. normal cache mode — hits resolve in one cycle, misses fill from
   external memory, dirty lines write back on replacement (approximate
   LRU chooses victims);
2. hazard management — a host load of a kernel's destination (RAW) and a
   host store to a kernel's source (WAR) stall exactly until the C-RT
   releases the operand regions, and the values prove the ordering.

Usage:  python examples/cache_behavior.py
"""

import numpy as np

from repro import ArcaneConfig, ArcaneSystem
from repro.baselines.reference import ref_leaky_relu


def cache_mode_demo() -> None:
    print("=== 1. normal cache functioning mode ===")
    system = ArcaneSystem(ArcaneConfig(lanes=2), trace=True)
    data = np.arange(64 * 64, dtype=np.int32).reshape(64, 64)
    matrix = system.place_matrix(data, "data")

    with system.program() as prog:
        prog.load(matrix, 0, 0)   # cold miss
        prog.load(matrix, 0, 1)   # same line: hit
        prog.load(matrix, 0, 2)   # hit
        prog.store(matrix, 0, 3, -5)  # hit, marks line dirty
    stats = system.last_report.stats
    print(f"  accesses: 4  hits: {stats['llc.hits']}  misses: {stats['llc.misses']}")
    occupancy = system.llc.cache_table.occupancy()
    print(f"  lines valid: {occupancy['valid']}, dirty: {occupancy['dirty']} "
          "(write-back policy: the store has not reached memory yet)")
    in_memory = system.memory.read_u32(matrix.element_address(0, 3))
    print(f"  memory still holds the old value: {in_memory}")
    system.llc.controller.flush()
    flushed = np.frombuffer(
        system.memory.read_block(matrix.element_address(0, 3), 4), np.int32
    )[0]
    print(f"  after flush it holds: {flushed}")


def hazard_demo() -> None:
    print("\n=== 2. cache locking and hazards management ===")
    system = ArcaneSystem(ArcaneConfig(lanes=2), trace=True)
    x = np.full((8, 16), -7, dtype=np.int32)
    mx = system.place_matrix(x, "x")
    out = system.alloc_matrix(x.shape, np.int32, "out")

    with system.program() as prog:
        prog.xmr(0, mx).xmr(1, out)
        prog.leaky_relu(dest=1, src=0, alpha=0)
        # RAW: issued by the host immediately after the offload handshake,
        # long before the kernel finishes — must return the computed value.
        prog.load(out, 7, 15)
        # WAR: a store to the kernel's *source* — must not corrupt the
        # input the kernel is still reading.
        prog.store(mx, 0, 0, 12345)

    report = system.last_report
    raw_value = report.load_values[0]
    expected = int(ref_leaky_relu(x, 0)[7, 15])
    print(f"  RAW-guarded load returned {raw_value} (expected {expected}) "
          f"{'OK' if raw_value == expected else 'WRONG'}")
    print(f"  RAW stalls observed: {report.stats.get('llc.hazard_raw_stalls', 0)}, "
          f"WAR stalls observed: {report.stats.get('llc.hazard_war_stalls', 0)}")
    assert np.array_equal(system.read_matrix(out), ref_leaky_relu(x, 0))
    assert system.read_matrix(mx)[0, 0] == 12345  # the store did land, after release
    print("  kernel output unaffected by the racing store: verified")

    print("\n  hazard timeline (from the trace):")
    for event in system.llc.tracer.events:
        if event.kind in ("stall_hazard", "lock_acquired", "kernel_done"):
            print(f"    {event}")
            if event.kind == "kernel_done":
                break


def main() -> None:
    cache_mode_demo()
    hazard_demo()


if __name__ == "__main__":
    main()
