"""Figure 3 — non-compute phase overhead vs input size and lane count.

Workload: the 3-channel 2D convolution layer with 3x3 filters on int32
(the paper's worst case), swept over input sizes and the three lane
configurations.  The paper's trends, asserted here:

* preamble share falls monotonically from ~60% at small inputs to a few
  percent at large inputs;
* allocation share grows with lane count (compute shrinks, DMA does not);
* writeback share falls with input size;
* total overhead saturates around the 15-25% band at large inputs.
"""

import pytest

from conftest import publish
from repro.eval.figures import fig3_overhead_series
from repro.eval.tables import render_table

SIZES = (16, 32, 64, 128, 256)
LANES = (2, 4, 8)


@pytest.fixture(scope="module")
def series():
    return fig3_overhead_series(sizes=SIZES, lane_configs=LANES)


def test_fig3_overhead_analysis(benchmark, series):
    from repro.eval.figures import measure_conv_layer

    benchmark.pedantic(
        lambda: measure_conv_layer(32, 3, dtype="int32", lanes=4),
        rounds=3, iterations=1,
    )

    rows = [
        [
            row["lanes"], row["size"],
            f"{row['preamble_pct']:.1f}%", f"{row['allocation_pct']:.1f}%",
            f"{row['compute_pct']:.1f}%", f"{row['writeback_pct']:.1f}%",
            f"{row['overhead_pct']:.1f}%", row["total_cycles"],
        ]
        for row in series
    ]
    text = render_table(
        ["lanes", "size", "preamble", "alloc", "compute", "writeback",
         "overhead", "cycles"],
        rows,
        title="Figure 3 - non-compute phase overhead (3-ch conv layer, 3x3, int32)",
    )
    text += (
        "\npaper anchors: preamble 60% (small) -> 2.89% (large); alloc saturates"
        "\n~15%; writeback falls to ~2%; overall overhead saturates ~20%."
    )
    publish("fig3_overhead", text)


def test_fig3_preamble_trend(series):
    for lanes in LANES:
        shares = [r["preamble_pct"] for r in series if r["lanes"] == lanes]
        assert shares == sorted(shares, reverse=True)  # monotone decreasing
        assert shares[0] > 10.0  # dominates small inputs
        assert shares[-1] < 5.0  # negligible at 256x256 (paper: 2.89%)


def test_fig3_allocation_grows_with_lanes(series):
    at_largest = {r["lanes"]: r["allocation_pct"] for r in series if r["size"] == 256}
    assert at_largest[2] < at_largest[4] < at_largest[8]


def test_fig3_writeback_stays_marginal(series):
    """Paper: writeback reaches ~2% at the largest matrices.  Measured:
    2-6% at 256x256 (our small-input shares are preamble-dominated, so the
    *falling* trend of the paper appears here as 'always marginal')."""
    for row in series:
        assert row["writeback_pct"] < 8.0
    at_largest = [r["writeback_pct"] for r in series if r["size"] == 256]
    assert all(share < 7.0 for share in at_largest)


def test_fig3_compute_dominates_large_inputs(series):
    for row in series:
        if row["size"] == 256:
            assert row["compute_pct"] > 60.0
            assert row["overhead_pct"] < 40.0
