#!/usr/bin/env python3
"""Serving throughput benchmark: many requests over a pool of ARCANE systems.

Drives the :class:`~repro.serve.engine.ServingEngine` with a seeded mixed
workload (gemm / conv_layer / compiled fc / kernel graphs), verifies every
output against the numpy golden models, and emits one JSON perf record —
the repo's serving-performance trajectory, tracked per commit by CI.

The record carries two sections: **offline** (the whole batch present at
cycle 0, assignment precomputed by the engine's policy) and **online**
(the same workload replayed as arrival-driven traffic through the FIFO
admission queue + least-backlog dispatcher, reporting the
``queue_delay + service`` latency split, per-worker utilization and the
sustained req/Mcycle under load).

With ``--faults`` the record gains a third section, **online_faults**:
the same traffic replayed under a seeded fault plan
(:meth:`repro.serve.faults.FaultPlan.parse` — e.g. ``kill:0.1`` or
``kill:0.05,slow:0.02:4x``), whose availability metrics (success rate,
retries, failovers, sheds, worker health events) land in the JSON
alongside the clean-run throughput numbers.

With ``--integrity`` the record gains an **integrity** section: the
offline workload is replayed under the fault plan (which should include
a data-corruption clause, e.g. ``flip:0.005``) on an engine with the
chosen detection policy (``abft`` / ``digest`` / ``dmr``) and
report-mode golden checks, measuring detection recall — overall and
restricted to the ABFT-covered gemm family — plus how many detected
corruptions recovered to ``status=ok`` through the escalation ladder.
The same workload is also run clean under the policy and under ``off``
to bound the detection overhead (simulated cycles and wall clock).
``check_serving_regression.py`` gates covered recall at 1.0 and the
overhead ratios when the section is present.

Online runs are observed (``observe=True``): each online section carries
a rolling-metrics ``timeline`` (windowed queue depth / in-flight /
rates / per-worker busy fractions), and the run's request-span tree is
exported as a Perfetto-loadable Chrome trace-event file next to the
record (``BENCH_serving.trace.json``); CI uploads both as artifacts.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
    PYTHONPATH=src python benchmarks/bench_serving.py --requests 500 --pool 4 \
        --processes 2 --output my_record.json
    PYTHONPATH=src python benchmarks/bench_serving.py --trace poisson:50
    PYTHONPATH=src python benchmarks/bench_serving.py --trace bursty:8:200000
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --faults kill:0.1
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke \
        --faults flip:0.005 --integrity abft
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --scale

``--trace`` takes any :meth:`repro.serve.traffic.TrafficSpec.parse` spec
(``poisson:<rate>``, ``uniform:<low>:<high>``, ``bursty:<burst>:<gap>``,
``trace:<c0,c1,...>``); arrivals are seeded by ``--traffic-seed`` and
fault draws by ``--fault-seed``, so every section is reproducible.
``--smoke`` is the CI configuration: 100 small requests over a pool of
2, single process — exercising the long-lived-pool lifecycle (the run
would MemoryError within a handful of requests without heap recycling)
in a few seconds.  The JSON lands at
``benchmarks/results/BENCH_serving.json`` by default.

``--scale`` adds a **scale** section: ``--scale-requests`` (default
10000) template-cycling requests over a ``--scale-pool`` (default 32)
worker pool with the shared fleet replay cache, replayed as sustained
poisson traffic (``--scale-rate`` req/Mcycle) and as deep bursts.  Each
scale run records sustained req/Mcycle, p99 queue-delay/latency cycles
and the per-worker fleet-cache hit counts; CI runs a bounded variant
(``--scale-requests 300 --scale-pool 8``) and gates the committed
full-scale record with ``check_serving_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

import numpy as np

from repro.compiler import FUNC5_CGEMM, FUNC5_EWISE_ADD, FUNC5_FC, FUNC5_ROWSUM
from repro.core.config import ArcaneConfig
from repro.obs import write_chrome_trace
from repro.serve import (
    CORRUPTION_KINDS,
    FaultPlan,
    GraphNode,
    ServingEngine,
    conv_layer_request,
    gemm_request,
    graph_request,
    kernel_request,
)

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "results" / "BENCH_serving.json"


def make_workload(n_requests: int, size: int, seed: int) -> list:
    """A seeded request mix: 40% conv layers, 30% gemm, 20% fc, 10% graphs."""
    rng = np.random.default_rng(seed)
    requests = []
    for rid in range(n_requests):
        slot = rid % 10
        if slot < 4:
            x = rng.integers(-8, 8, (3 * size, size)).astype(np.int8)
            f = rng.integers(-2, 3, (9, 3)).astype(np.int8)
            requests.append(conv_layer_request(rid, x, f))
        elif slot < 7:
            m, k, n = size, size + 4, size - 2
            a = rng.integers(-6, 6, (m, k)).astype(np.int16)
            b = rng.integers(-6, 6, (k, n)).astype(np.int16)
            c = rng.integers(-6, 6, (m, n)).astype(np.int16)
            requests.append(gemm_request(rid, a, b, c, alpha=2, beta=-1))
        elif slot < 9:
            xv = rng.integers(-8, 8, (1, 4 * size)).astype(np.int16)
            w = rng.integers(-8, 8, (4 * size, size)).astype(np.int16)
            bias = rng.integers(-8, 8, (1, size)).astype(np.int16)
            requests.append(kernel_request(rid, FUNC5_FC, [xv, w, bias], (1, size)))
        else:
            m = max(4, size // 2)
            a = rng.integers(-4, 4, (m, m)).astype(np.int16)
            b = rng.integers(-4, 4, (m, m)).astype(np.int16)
            c = np.zeros((m, m), dtype=np.int16)
            d = rng.integers(-4, 4, (m, m)).astype(np.int16)
            nodes = [
                GraphNode("prod", FUNC5_CGEMM, ("a", "b", "c"), (m, m), params=(1, 0)),
                GraphNode("sum", FUNC5_EWISE_ADD, ("prod", "d"), (m, m)),
                GraphNode("row", FUNC5_ROWSUM, ("sum",), (m, 1)),
            ]
            requests.append(
                graph_request(rid, {"a": a, "b": b, "c": c, "d": d}, nodes)
            )
    return requests


#: Distinct payload templates cycled by the scale workload.  A serving
#: pool's steady state is recurring model shapes, so the kernel replay
#: cache — and the shared fleet cache across workers — carry the load.
SCALE_TEMPLATES = 12


def make_scale_workload(n_requests: int, seed: int) -> list:
    """Template-cycling workload for ``--scale`` runs.

    ``SCALE_TEMPLATES`` distinct payloads (conv / gemm / fc, varying
    shapes) are built once and cycled across ``n_requests`` requests:
    every worker sees every template, so with ``share_replay`` each
    kernel is simulated cold exactly once fleet-wide and replayed
    everywhere else.
    """
    rng = np.random.default_rng(seed)
    templates = []
    for t in range(SCALE_TEMPLATES):
        slot = t % 3
        if slot == 0:
            size = 8 + 2 * (t % 4)
            x = rng.integers(-8, 8, (3 * size, size)).astype(np.int8)
            f = rng.integers(-2, 3, (9, 3)).astype(np.int8)
            templates.append(("conv", (x, f)))
        elif slot == 1:
            m, k, n = 6 + 2 * (t % 4), 8, 6
            a = rng.integers(-6, 6, (m, k)).astype(np.int16)
            b = rng.integers(-6, 6, (k, n)).astype(np.int16)
            templates.append(("gemm", (a, b)))
        else:
            size = 8 + 4 * (t % 3)
            xv = rng.integers(-8, 8, (1, 2 * size)).astype(np.int16)
            w = rng.integers(-8, 8, (2 * size, size)).astype(np.int16)
            bias = rng.integers(-8, 8, (1, size)).astype(np.int16)
            templates.append(("fc", (xv, w, bias)))
    requests = []
    for rid in range(n_requests):
        kind, data = templates[rid % len(templates)]
        if kind == "conv":
            requests.append(conv_layer_request(rid, *data))
        elif kind == "gemm":
            requests.append(gemm_request(rid, *data))
        else:
            xv, w, bias = data
            requests.append(
                kernel_request(rid, FUNC5_FC, [xv, w, bias], (1, w.shape[1]))
            )
    return requests


def plan_corrupts(spec) -> bool:
    """True when the fault plan contains a data-corruption clause."""
    plan = FaultPlan.coerce(spec)
    return plan is not None and any(
        clause.kind in CORRUPTION_KINDS for clause in plan.clauses
    )


def run_integrity(args, config, requests) -> dict:
    """The ``--integrity`` section: detection recall + overhead vs ``off``.

    Three offline runs of the same workload:

    1. clean, policy ``off``  — the overhead baseline;
    2. clean, chosen policy   — its cost with nothing to detect
       (``dmr`` re-executes every kernel, ``abft``/``digest`` only add
       host-side checks);
    3. corrupted (the fault plan), chosen policy, ``verify="report"`` —
       report-mode golden checks mark what slipped past detection as
       ``status="corrupted"`` instead of aborting, so the report's
       integrity section can state recall honestly.

    Recall is reported overall and restricted to the ABFT-covered gemm
    family (gemm / cgemm / fc) — the subset the regression gate pins at
    1.0 for the ``abft`` policy.

    When ``--faults`` has no data-corruption clause (CI's main plan is
    ``kill:0.1``, kept stable so the availability sections stay
    comparable against the committed baseline) the drill falls back to
    ``flip:0.02`` — a rate at which the smoke workload deterministically
    draws flips, so the regression gate can insist the drill actually
    detected something rather than passing on an empty sample.
    """
    plan = args.faults if plan_corrupts(args.faults) else "flip:0.02"
    base = ServingEngine(
        pool_size=args.pool, config=config, policy=args.policy,
        processes=args.processes, integrity="off",
    )
    guarded = ServingEngine(
        pool_size=args.pool, config=config, policy=args.policy,
        processes=args.processes, integrity=args.integrity,
    )

    start = time.perf_counter()
    off_clean = base.serve(requests, verify=not args.no_verify)
    off_wall = time.perf_counter() - start

    start = time.perf_counter()
    on_clean = guarded.serve(requests, verify=not args.no_verify)
    on_wall = time.perf_counter() - start

    start = time.perf_counter()
    drill = guarded.serve(
        requests, verify="report", faults=plan, fault_seed=args.fault_seed,
    )
    drill_wall = time.perf_counter() - start

    assert np.array_equal(off_clean.results[0].output, on_clean.results[0].output)
    section = dict(drill.integrity or {})
    section.update({
        "policy": args.integrity,
        "faults": plan,
        "fault_seed": args.fault_seed,
        "n_requests": len(requests),
        "success_rate": drill.success_rate,
        "statuses": drill.availability["statuses"],
        "overhead": {
            # clean-run cost of the detection policy, nothing to detect
            "clean_cycles_ratio": round(
                on_clean.total_sim_cycles / off_clean.total_sim_cycles, 4
            ) if off_clean.total_sim_cycles else None,
            "clean_wall_ratio": round(on_wall / off_wall, 3) if off_wall else None,
            "clean_wall_seconds_off": round(off_wall, 3),
            "clean_wall_seconds_on": round(on_wall, 3),
            "drill_wall_seconds": round(drill_wall, 3),
        },
    })

    print(f"== integrity drill ({plan}, policy={args.integrity}) ==")
    print(drill.summary())
    overhead = section["overhead"]
    print(f"  clean overhead  : {overhead['clean_cycles_ratio']}x sim cycles, "
          f"{overhead['clean_wall_ratio']}x wall vs policy=off")
    print()
    return section


def run_scale(args, config) -> dict:
    """The ``--scale`` section: sustained load over a large shared-cache pool.

    Replays the template-cycling workload as poisson and bursty traffic
    through one engine with the shared fleet replay cache, and distills
    each run to the metrics the regression gate tracks: sustained
    req/Mcycle and the p99 queue-delay / latency cycles.  Verification
    and observability are off — this section measures the dispatch loop
    and the fleet cache, not the golden models.
    """
    requests = make_scale_workload(args.scale_requests, args.seed)
    engine = ServingEngine(
        pool_size=args.scale_pool, config=config, policy=args.policy,
        share_replay=True,
    )
    sections = {}
    for name, trace in (
        ("poisson", f"poisson:{args.scale_rate}"),
        ("bursty", f"bursty:{max(8, args.scale_pool * 2)}:400000"),
    ):
        start = time.perf_counter()
        report = engine.serve_online(
            requests, traffic=trace, seed=args.traffic_seed,
        )
        elapsed = time.perf_counter() - start
        payload = report.as_dict()
        fleet_hits = sum(
            stats.get("fleet_hits", 0)
            for stats in (payload.get("replay") or {}).get("per_worker", {}).values()
        )
        sections[name] = {
            "trace": trace,
            "requests_per_megacycle": payload["requests_per_megacycle"],
            "makespan_cycles": payload["makespan_cycles"],
            "cycles_per_request": payload["cycles_per_request"],
            "queue_delay_p99_cycles": payload["queue_delay_cycles"]["p99"],
            "queue_delay_p50_cycles": payload["queue_delay_cycles"]["p50"],
            "latency_p99_cycles": payload["latency_cycles"]["p99"],
            "service_p50_cycles": payload["service_cycles"]["p50"],
            "success_rate": report.success_rate,
            "fleet_hits": fleet_hits,
            "replay": payload.get("replay"),
            "wall_seconds": round(elapsed, 3),
        }
        print(f"== scale/{name} ({trace}, pool {args.scale_pool}, "
              f"{args.scale_requests} requests) ==")
        print(report.summary())
        print()
    return {
        "pool_size": args.scale_pool,
        "requests": args.scale_requests,
        "templates": SCALE_TEMPLATES,
        "share_replay": True,
        "seed": args.seed,
        "traffic_seed": args.traffic_seed,
        "sections": sections,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--pool", type=int, default=2, help="ARCANE instances")
    parser.add_argument("--processes", type=int, default=1, help="OS processes")
    parser.add_argument("--size", type=int, default=16, help="base operand size")
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--policy", default="least_loaded",
                        choices=("least_loaded", "round_robin"))
    parser.add_argument("--trace", default="poisson:25",
                        help="online arrival process, e.g. poisson:25, "
                             "uniform:10000:50000, bursty:8:200000, "
                             "trace:0,500,9000 (rate in req/Mcycle)")
    parser.add_argument("--traffic-seed", type=int, default=7,
                        help="seed for the online arrival process")
    parser.add_argument("--faults", default=None,
                        help="fault plan for an extra online_faults section, "
                             "e.g. kill:0.1 or kill:0.05,slow:0.02:4x")
    parser.add_argument("--fault-seed", type=int, default=2025,
                        help="seed for the fault injector draws")
    parser.add_argument("--integrity", default="off",
                        choices=("off", "digest", "abft", "dmr"),
                        help="add an integrity section: replay the offline "
                             "workload under the (corrupting) fault plan with "
                             "this detection policy and record recall + "
                             "overhead vs off")
    parser.add_argument("--lanes", type=int, default=4)
    parser.add_argument("--no-verify", action="store_true",
                        help="skip golden-model output checks")
    parser.add_argument("--smoke", action="store_true",
                        help="CI configuration: 100 small requests, pool of 2")
    parser.add_argument("--scale", action="store_true",
                        help="add a scale section: sustained traffic over a "
                             "large pool with the shared fleet replay cache")
    parser.add_argument("--scale-requests", type=int, default=10000,
                        help="requests per scale traffic run")
    parser.add_argument("--scale-pool", type=int, default=32,
                        help="worker pool size for the scale section")
    parser.add_argument("--scale-rate", type=int, default=2000,
                        help="poisson arrival rate (req/Mcycle) for the "
                             "scale section's sustained-load run")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()

    if args.smoke:
        args.requests, args.pool, args.processes, args.size = 100, 2, 1, 12

    config = ArcaneConfig(
        n_vpus=2, lanes=args.lanes, line_bytes=256, vpu_kib=8, main_memory_kib=1024
    )
    requests = make_workload(args.requests, args.size, args.seed)
    engine = ServingEngine(
        pool_size=args.pool, config=config, policy=args.policy,
        processes=args.processes,
    )
    offline = engine.serve(requests, verify=not args.no_verify)

    # the dispatch core runs online serving in one simulated-time domain
    # for any ``processes`` setting, so the same engine serves both modes
    online_engine = engine
    online = online_engine.serve_online(
        requests, traffic=args.trace, seed=args.traffic_seed,
        verify=not args.no_verify, observe=True,
    )

    faulty = None
    if args.faults:
        # same traffic under a seeded fault plan: the availability section
        # (success rate, retries, failovers, worker health) joins the record.
        # A corrupting plan downgrades strict verification to report mode —
        # this engine has no detection policy, so an undetected flip must
        # mark the request corrupted, not abort the benchmark.
        fault_verify = False if args.no_verify else (
            "report" if plan_corrupts(args.faults) else "strict"
        )
        faulty = online_engine.serve_online(
            requests, traffic=args.trace, seed=args.traffic_seed,
            faults=args.faults, fault_seed=args.fault_seed,
            verify=fault_verify, observe=True,
        )

    # Perfetto-loadable trace of the most interesting observed run (the
    # faulted one when present); CI uploads it as an artifact
    trace_path = args.output.with_suffix(".trace.json")
    args.output.parent.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(faulty if faulty is not None else online, trace_path)

    record = {
        "benchmark": "serving",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "workload": {
            "requests": args.requests,
            "base_size": args.size,
            "seed": args.seed,
            "mix": "40% conv_layer / 30% gemm / 20% fc / 10% 3-node graph",
            "trace": args.trace,
            "traffic_seed": args.traffic_seed,
            "faults": args.faults,
            "fault_seed": args.fault_seed if args.faults else None,
        },
        "system": {
            "pool_size": args.pool,
            "processes": engine.processes,
            "config": config.describe(),
        },
        "offline": offline.as_dict(),
        "online": online.as_dict(),
    }
    if faulty is not None:
        record["online_faults"] = faulty.as_dict()
    if args.integrity != "off":
        record["integrity"] = run_integrity(args, config, requests)
    if args.scale:
        record["scale"] = run_scale(args, config)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(record, indent=2) + "\n")

    print("== offline (batch at cycle 0) ==")
    print(offline.summary())
    print("\n== online (arrival-driven) ==")
    print(online.summary())
    if faulty is not None:
        print(f"\n== online under faults ({args.faults}) ==")
        print(faulty.summary())
    print(f"\nJSON perf record written to {args.output}")
    print(f"Perfetto trace written to {trace_path}")


if __name__ == "__main__":
    main()
