#!/usr/bin/env python3
"""Gate serving-performance regressions against the committed baseline.

Compares a freshly generated ``BENCH_serving.json`` against the committed
one and fails (exit 1) when a *simulated* throughput metric regresses by
more than the threshold (default 20%).  Only simulated-time metrics are
gated — ``requests_per_megacycle``, ``cycles_per_request``, p99 queue
delay — because they are seeded-deterministic: a regression means the
dispatch core, the scheduler, or the replay cache actually got worse,
not that CI drew a slow machine.  Wall-clock metrics are never compared.

Sections are compared only when their workload/system configuration
matches between the two records (request count, pool size, traffic spec,
seeds).  A mismatched section — e.g. CI's bounded ``--scale`` run vs the
committed full-scale record — is skipped with a note, not failed.

The committed baseline itself is validated: its ``scale`` section must
report ``pool_size >= 32`` and ``requests >= 10000`` (the scale
acceptance bar), so the full-scale record cannot silently rot into a
bounded one.

When the fresh record carries an ``integrity`` section (the bench ran
with ``--integrity``), it is gated on its own terms, no baseline
needed: the drill must actually have drawn and manifested corruption
(a recall over an empty sample proves nothing), the ``abft`` policy
must report detection recall 1.0 over the ABFT-covered gemm-family
kernels, and the clean-run overhead of the policy must stay bounded
(ABFT adds host-side checks only, so its simulated-cycle ratio is
pinned at ~1.0).

Usage::

    PYTHONPATH=src python benchmarks/check_serving_regression.py \
        --baseline benchmarks/baselines/BENCH_serving.json \
        --current benchmarks/results/BENCH_serving.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: (metric path, direction) gated per serving section; "higher" means a
#: drop is a regression, "lower" means a rise is.
SECTION_METRICS = (
    (("requests_per_megacycle",), "higher"),
    (("cycles_per_request",), "lower"),
    (("queue_delay_cycles", "p99"), "lower"),
)
SCALE_METRICS = (
    (("requests_per_megacycle",), "higher"),
    (("cycles_per_request",), "lower"),
    (("queue_delay_p99_cycles",), "lower"),
)
#: Queue-delay p99 below this many cycles is noise-level queueing; a
#: relative gate on it would flag 0 -> 500 as infinite regression.
ABS_FLOOR_CYCLES = 2000.0

MIN_SCALE_POOL = 32
MIN_SCALE_REQUESTS = 10000

#: Integrity-drill bounds.  ABFT checksums run host-side, so the clean
#: run must cost no extra simulated cycles; the wall-clock bound is
#: generous because CI smoke runs are sub-second and noisy.
ABFT_MAX_CLEAN_CYCLES_RATIO = 1.01
MAX_CLEAN_WALL_RATIO = 3.0


def dig(record: dict, path: tuple) -> float | None:
    value = record
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return float(value) if isinstance(value, (int, float)) else None


def section_config(record: dict, section: dict) -> tuple:
    """What must match for two records' sections to be comparable."""
    workload = record.get("workload", {})
    return (
        workload.get("requests"), workload.get("base_size"),
        workload.get("seed"), workload.get("trace"),
        workload.get("traffic_seed"), workload.get("faults"),
        workload.get("fault_seed"),
        section.get("n_requests"), section.get("pool_size"),
        section.get("policy"), section.get("admission"),
    )


def scale_config(scale: dict, section: dict) -> tuple:
    return (
        scale.get("pool_size"), scale.get("requests"), scale.get("seed"),
        scale.get("traffic_seed"), section.get("trace"),
    )


def compare(name: str, base: dict, curr: dict, metrics, threshold: float):
    """Yield (metric, base, curr, failed) rows for one comparable section."""
    for path, direction in metrics:
        label = ".".join(path)
        base_value = dig(base, path)
        curr_value = dig(curr, path)
        if base_value is None or curr_value is None:
            print(f"  {name}.{label}: missing on one side, skipped")
            continue
        if "queue_delay" in label and base_value < ABS_FLOOR_CYCLES \
                and curr_value < ABS_FLOOR_CYCLES:
            print(f"  {name}.{label}: {base_value:g} -> {curr_value:g} "
                  f"(below {ABS_FLOOR_CYCLES:g}-cycle floor, not gated)")
            continue
        if base_value == 0:
            print(f"  {name}.{label}: baseline is 0, skipped")
            continue
        change = (curr_value - base_value) / base_value
        regressed = change < -threshold if direction == "higher" \
            else change > threshold
        status = "FAIL" if regressed else "ok"
        print(f"  {name}.{label}: {base_value:g} -> {curr_value:g} "
              f"({change:+.1%}) [{status}]")
        yield regressed


def check_integrity(section: dict) -> int:
    """Gate the fresh record's integrity drill; returns failure count.

    Self-contained (no baseline comparison): the drill's fault plan and
    seeds live in the section itself, so its claims — recall over
    manifested corruption, detection overhead — are checked absolutely.
    """
    failures = 0
    policy = section.get("policy")
    injected = sum((section.get("injected") or {}).values())
    caught = section.get("detected", 0) + section.get("corrected", 0)
    undetected = section.get("undetected", 0)
    covered = section.get("covered") or {}
    print(f"integrity (policy={policy}, faults={section.get('faults')}):")

    if injected <= 0 or caught + undetected <= 0:
        print(f"  sample: injected={injected} caught={caught} "
              f"undetected={undetected} [FAIL] — no manifested corruption, "
              f"recall is vacuous; raise the drill's corruption rate")
        failures += 1
    else:
        print(f"  sample: injected={injected} caught={caught} "
              f"undetected={undetected} [ok]")

    if policy == "abft":
        recall = covered.get("recall")
        if recall is None or recall < 1.0:
            print(f"  covered.recall: {recall} [FAIL] — ABFT must catch every "
                  f"manifested corruption on gemm-family kernels")
            failures += 1
        else:
            print(f"  covered.recall: {recall:.2f} over "
                  f"{covered.get('requests')} covered request(s) [ok]")
        for path, bound in (
            (("overhead", "clean_cycles_ratio"), ABFT_MAX_CLEAN_CYCLES_RATIO),
            (("overhead", "clean_wall_ratio"), MAX_CLEAN_WALL_RATIO),
        ):
            label = ".".join(path)
            value = dig(section, path)
            if value is None:
                print(f"  {label}: missing, skipped")
                continue
            status = "FAIL" if value > bound else "ok"
            print(f"  {label}: {value:g} (bound {bound:g}) [{status}]")
            failures += value > bound
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        help="committed BENCH_serving.json")
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="freshly generated BENCH_serving.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max tolerated relative regression (0.20 = 20%%)")
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    failures = 0

    base_scale = baseline.get("scale") or {}
    if base_scale.get("pool_size", 0) < MIN_SCALE_POOL \
            or base_scale.get("requests", 0) < MIN_SCALE_REQUESTS:
        print(f"FAIL: committed baseline scale section must report "
              f"pool_size >= {MIN_SCALE_POOL} and requests >= "
              f"{MIN_SCALE_REQUESTS}, got pool_size="
              f"{base_scale.get('pool_size')} "
              f"requests={base_scale.get('requests')}")
        failures += 1

    for name in ("offline", "online", "online_faults"):
        base = baseline.get(name)
        curr = current.get(name)
        if base is None or curr is None:
            print(f"{name}: absent on one side, skipped")
            continue
        if section_config(baseline, base) != section_config(current, curr):
            print(f"{name}: configuration differs from baseline, skipped")
            continue
        print(f"{name}:")
        failures += sum(
            compare(name, base, curr, SECTION_METRICS, args.threshold)
        )

    integrity = current.get("integrity")
    if integrity is None:
        print("integrity: absent in current record, skipped")
    else:
        failures += check_integrity(integrity)

    curr_scale = current.get("scale") or {}
    for name, base in (base_scale.get("sections") or {}).items():
        curr = (curr_scale.get("sections") or {}).get(name)
        if curr is None:
            print(f"scale.{name}: absent in current record, skipped")
            continue
        if scale_config(base_scale, base) != scale_config(curr_scale, curr):
            print(f"scale.{name}: configuration differs from baseline "
                  f"(bounded CI run?), skipped")
            continue
        print(f"scale.{name}:")
        failures += sum(
            compare(f"scale.{name}", base, curr, SCALE_METRICS, args.threshold)
        )

    if failures:
        print(f"\n{failures} serving regression check(s) failed "
              f"(threshold {args.threshold:.0%})")
        return 1
    print("\nserving regression checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
