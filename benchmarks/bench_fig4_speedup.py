"""Figure 4 — speedup of ARCANE vs CV32E40X and CV32E40PX.

Workload: the 3-channel conv layer across input sizes, filter sizes,
data types and ARCANE lane configurations.  ARCANE cycles come from full
system simulations; the CPU baselines from ISS-fitted cycle models.

Shape assertions (the paper's qualitative claims):

* speedup grows with input size and saturates;
* more lanes help, and help more at larger inputs / smaller dtypes;
* int8 > int16 > int32 speedups at large inputs;
* CV32E40PX sits in the single-digit range (peaking well below ARCANE);
* at large inputs ARCANE beats CV32E40PX by a wide margin.
"""

import pytest

from conftest import publish
from repro.eval.figures import fig4_speedup_series, measure_conv_layer
from repro.eval.tables import render_table

SIZES = (16, 32, 64, 128, 256)
FILTERS = (3, 7)
DTYPES = ("int8", "int32")
LANES = (2, 4, 8)


@pytest.fixture(scope="module")
def grid():
    return fig4_speedup_series(
        sizes=SIZES, filter_sizes=FILTERS, dtypes=DTYPES, lane_configs=LANES
    )


def test_fig4_speedup_grid(benchmark, grid):
    benchmark.pedantic(
        lambda: measure_conv_layer(32, 3, dtype="int8", lanes=8),
        rounds=3, iterations=1,
    )
    rows = []
    for p in grid:
        rows.append([
            p.dtype, p.k, p.size, p.lanes,
            f"{p.speedup_vs_scalar:.1f}x",
            f"{p.pulp_speedup_vs_scalar:.1f}x",
            f"{p.speedup_vs_pulp:.1f}x",
            f"{100 * p.breakdown.overhead_fraction():.0f}%",
        ])
    text = render_table(
        ["dtype", "filter", "size", "lanes", "ARCANE vs scalar",
         "CV32E40PX vs scalar", "ARCANE vs CV32E40PX", "overhead"],
        rows,
        title="Figure 4 - conv-layer speedups over CV32E40X (single instance)",
    )
    text += (
        "\npaper anchors at 256x256 int8: ARCANE 8-lane 30x (3x3) / 84x (7x7);"
        "\nCV32E40PX 5x (3x3), peak 8.6x."
    )
    publish("fig4_speedup", text)


def _points(grid, **conds):
    return [p for p in grid
            if all(getattr(p, key) == value for key, value in conds.items())]


def test_fig4_speedup_grows_then_saturates(grid):
    for lanes in LANES:
        series = sorted(_points(grid, dtype="int8", k=3, lanes=lanes),
                        key=lambda p: p.size)
        speedups = [p.speedup_vs_scalar for p in series]
        assert speedups[-1] > speedups[0]  # large inputs win
        # saturation: the last doubling gains less than the first
        gain_first = speedups[1] / speedups[0]
        gain_last = speedups[-1] / speedups[-2]
        assert gain_last < gain_first


def test_fig4_lanes_ordering_at_large_inputs(grid):
    at256 = {p.lanes: p.speedup_vs_scalar
             for p in _points(grid, dtype="int8", k=3, size=256)}
    assert at256[2] < at256[4] <= at256[8]


def test_fig4_dtype_ordering(grid):
    for lanes in LANES:
        i8 = _points(grid, dtype="int8", k=3, size=256, lanes=lanes)[0]
        i32 = _points(grid, dtype="int32", k=3, size=256, lanes=lanes)[0]
        assert i8.arcane_cycles < i32.arcane_cycles


def test_fig4_filter_sizes_same_decade(grid):
    """Known deviation: the paper reports 84x (7x7) > 30x (3x3); in this
    reproduction both filter sizes land in the same decade but the 7x7
    speedup is somewhat *lower* (compute scales with K^2 on both sides;
    the paper's 2.8x jump is not explained by its cost structure and is
    recorded as not reproduced in EXPERIMENTS.md).  This test pins the
    measured relation so regressions are visible."""
    k3 = _points(grid, dtype="int8", k=3, size=256, lanes=8)[0]
    k7 = _points(grid, dtype="int8", k=7, size=256, lanes=8)[0]
    assert k7.speedup_vs_scalar > k3.speedup_vs_scalar / 3
    assert k7.speedup_vs_scalar > 30.0  # both an order of magnitude over CPU


def test_fig4_pulp_single_digit_range(grid):
    for p in grid:
        assert p.pulp_speedup_vs_scalar < 10.0  # paper peak: 8.6x


def test_fig4_arcane_beats_pulp_at_scale(grid):
    for p in _points(grid, size=256, lanes=8):
        assert p.speedup_vs_pulp > 3.0
