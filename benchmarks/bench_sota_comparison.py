"""Section V-C — comparison with the state of the art (BLADE, Intel CNC)
plus the theoretical multi-core CV32E40PX ceiling.

Peak throughputs and scaled areas follow the paper's own comparison
method: frequency-scaled GOPS, LLC-subsystem area efficiency.
"""

import pytest

from conftest import publish
from repro.baselines.multicore import MulticoreModel
from repro.core.config import ArcaneConfig
from repro.eval.tables import render_table
from repro.eval.throughput import ThroughputModel


def test_sota_comparison(benchmark):
    model = ThroughputModel()
    config = ArcaneConfig(lanes=8)

    def build():
        return model.versus(config, clock_mhz=265.0)

    rows_by_name = benchmark(build)

    rows = []
    for name, values in rows_by_name.items():
        rows.append([
            name,
            f"{values['peak_gops']:.1f}",
            f"{values['area_mm2']:.2f}",
            f"{values['gops_per_mm2']:.1f}",
            f"{values['ratio_vs_arcane']:.2f}",
        ])
    text = render_table(
        ["system", "peak GOPS", "area mm2", "GOPS/mm2", "ratio vs ARCANE"],
        rows,
        title="Section V-C - peak throughput comparison (scaled to 65 nm / 330 MHz)",
    )

    multicore = MulticoreModel()
    text += "\n\ntheoretical multi-core CV32E40PX scaling (paper: peaks at 75x):\n"
    text += render_table(
        ["cores", "efficiency", "speedup vs scalar"],
        [[n, f"{multicore.efficiency(n):.2f}", f"{multicore.speedup(n):.1f}x"]
         for n in (1, 2, 4, 8, 15, 32)],
    )
    publish("sota_comparison", text)

    arcane = rows_by_name["ARCANE"]
    blade = rows_by_name["BLADE"]
    cnc = rows_by_name["Intel CNC"]
    assert arcane["peak_gops"] == pytest.approx(17.0, abs=0.2)  # paper: 17.0 GOPS
    assert arcane["peak_gops"] / blade["peak_gops"] == pytest.approx(3.2, abs=0.1)
    assert cnc["peak_gops"] / arcane["peak_gops"] == pytest.approx(1.47, abs=0.03)
    assert arcane["gops_per_mm2"] == pytest.approx(9.2, abs=0.4)
    assert blade["gops_per_mm2"] == pytest.approx(9.1, abs=0.2)


def test_multicore_ceiling(benchmark):
    model = MulticoreModel()
    peak = benchmark(lambda: model.peak())  # area-parity budget (15 cores)
    assert peak == pytest.approx(75.0, rel=0.05)
    assert model.speedup(15) == pytest.approx(75.0, rel=0.02)
