#!/usr/bin/env python3
"""Autotuning benchmark: default vs tuned recipes for every library kernel.

Runs the :class:`~repro.compiler.Tuner` beam search over the
legal-recipe space of each compiled library kernel at a fixed benchmark
geometry, then re-measures both the default and the winning recipe on a
fresh system and emits one JSON perf record
(``benchmarks/results/BENCH_autotune.json``) — the repo's autotuning
trajectory, tracked per commit by CI.

Asserted relations (the record is only written if they hold):

* the tuned recipe is never worse than the default recipe, for every
  kernel (the search keeps the default as the incumbent);
* tuned compiled GeMM beats the handwritten Table I ``xmk0`` GEMM at
  the strip-mined shape, with bit-exact outputs;
* every tuned output matches the unscheduled reference interpretation
  of the algorithm, bit-exactly.

Usage::

    PYTHONPATH=src python benchmarks/bench_autotune.py
    PYTHONPATH=src python benchmarks/bench_autotune.py --smoke
    PYTHONPATH=src python benchmarks/bench_autotune.py --budget 32 \
        --output my_record.json

``--smoke`` is the bounded CI configuration (budget 8, beam width 2) —
same shapes, same assertions, smaller search.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

import numpy as np

from repro.compiler import (
    ALGORITHMS,
    Tuner,
    algorithm,
    config_fingerprint,
    infer_out_shape,
    recompile,
    reference_output,
    offload_compiled,
)
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem

CONFIG = ArcaneConfig(n_vpus=4, lanes=4, line_bytes=256, vpu_kib=8,
                      main_memory_kib=2048)
TUNE_SLOT = 15

#: Benchmark geometry per kernel.  The GeMM shape is the strip-mined one
#: (K=48 exceeds the VRF) — the shape at which the compiled kernel beats
#: the handwritten ``xmk0``.
GEMM_SHAPE = (8, 48, 24)
GEMM_PARAMS = (2, -1)


def workloads(rng):
    m, k, n = GEMM_SHAPE
    yield "cgemm", [
        rng.integers(-8, 8, (m, k)).astype(np.int16),
        rng.integers(-8, 8, (k, n)).astype(np.int16),
        rng.integers(-8, 8, (m, n)).astype(np.int16),
    ], GEMM_PARAMS
    yield "dwconv2d", [
        rng.integers(-6, 6, (3 * 12, 16)).astype(np.int16),
        rng.integers(-3, 3, (3 * 3, 3)).astype(np.int16),
    ], ()
    yield "fc", [
        rng.integers(-8, 8, (1, 64)).astype(np.int16),
        rng.integers(-8, 8, (64, 24)).astype(np.int16),
        rng.integers(-8, 8, (1, 24)).astype(np.int16),
    ], ()
    ewise = [
        rng.integers(-100, 100, (16, 32)).astype(np.int16),
        rng.integers(-100, 100, (16, 32)).astype(np.int16),
    ]
    yield "ewise_add", ewise, ()
    yield "ewise_mul", ewise, ()
    yield "rowsum", ewise[:1], ()


def run_recipe(name, recipe, sources, params):
    """Measure one recipe on a fresh system; returns (output, cycles)."""
    system = ArcaneSystem(CONFIG)
    spec = recompile(name, recipe, func5=TUNE_SLOT)
    system.llc.runtime.library.register(spec, replace=True)
    handles = [system.place_matrix(s) for s in sources]
    out_shape = infer_out_shape(algorithm(name), [s.shape for s in sources])
    out = system.alloc_matrix(out_shape, sources[0].dtype)
    with system.program() as prog:
        for register, handle in enumerate(handles):
            prog.xmr(register, handle)
        prog.xmr(len(handles), out)
        offload_compiled(prog, TUNE_SLOT, out.etype.suffix, dest=len(handles),
                         sources=list(range(len(handles))), params=list(params))
    return system.read_matrix(out), system.last_report.total_cycles


def run_handwritten_gemm(a, b, c, alpha, beta):
    system = ArcaneSystem(CONFIG)
    ma, mb, mc = (system.place_matrix(x) for x in (a, b, c))
    md = system.alloc_matrix((a.shape[0], b.shape[1]), a.dtype)
    with system.program() as prog:
        prog.xmr(0, ma).xmr(1, mb).xmr(2, mc).xmr(3, md)
        prog.gemm(dest=3, a=0, b=1, c=2, alpha=alpha, beta=beta,
                  suffix=ma.etype.suffix)
    return system.read_matrix(md), system.last_report.total_cycles


def reference(name, sources, params):
    program = algorithm(name)
    out_shape = infer_out_shape(program, [s.shape for s in sources])
    operands = {program.dest.name: np.zeros(out_shape, dtype=sources[0].dtype)}
    for op, src in zip(program.sources, sources):
        operands[op.name] = src
    env = dict(zip(program.params, (int(p) for p in params)))
    return reference_output(program, operands, params=env)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--budget", type=int, default=24,
                        help="max schedule candidates measured per kernel")
    parser.add_argument("--beam-width", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="bounded CI run: budget 8, beam width 2")
    parser.add_argument("--output", type=pathlib.Path,
                        default=pathlib.Path(__file__).parent
                        / "results" / "BENCH_autotune.json")
    args = parser.parse_args()
    if args.smoke:
        args.budget, args.beam_width = 8, 2

    rng = np.random.default_rng(7)
    tuner = Tuner(CONFIG, budget=args.budget, beam_width=args.beam_width)
    kernels = {}
    t0 = time.perf_counter()

    for name, sources, params in workloads(rng):
        result = tuner.tune(name, sources, params=params)
        expected = reference(name, sources, params)
        default_out, default_cycles = run_recipe(
            name, result.default_recipe, sources, params
        )
        tuned_out, tuned_cycles = run_recipe(
            name, result.best_recipe, sources, params
        )
        assert np.array_equal(default_out, expected), name
        assert np.array_equal(tuned_out, expected), name
        assert tuned_cycles <= default_cycles, (
            f"{name}: tuned recipe {result.best_recipe.describe()} "
            f"({tuned_cycles}) regressed below the default "
            f"({default_cycles})"
        )
        kernels[name] = {
            "geometry": result.geometry,
            "default_recipe": result.default_recipe.as_steps(),
            "default_cycles": default_cycles,
            "tuned_recipe": result.best_recipe.as_steps(),
            "tuned_cycles": tuned_cycles,
            "speedup": round(default_cycles / tuned_cycles, 4),
            "evaluated": result.evaluated,
            "bit_exact": True,
        }
        print(f"{name:<10} default {default_cycles:>8,}  tuned "
              f"{tuned_cycles:>8,}  ({result.evaluated} candidates)  "
              f"[{result.best_recipe.describe()}]")

    # -- tuned compiled GeMM vs the handwritten Table I xmk0 ----------------
    m, k, n = GEMM_SHAPE
    a = rng.integers(-8, 8, (m, k)).astype(np.int16)
    b = rng.integers(-8, 8, (k, n)).astype(np.int16)
    c = rng.integers(-8, 8, (m, n)).astype(np.int16)
    gemm_result = tuner.tune("cgemm", [a, b, c], params=GEMM_PARAMS)
    tuned_out, tuned_cycles = run_recipe(
        "cgemm", gemm_result.best_recipe, [a, b, c], GEMM_PARAMS
    )
    hand_out, hand_cycles = run_handwritten_gemm(a, b, c, *GEMM_PARAMS)
    assert np.array_equal(tuned_out, hand_out)
    assert tuned_cycles < hand_cycles, (
        f"tuned cgemm ({tuned_cycles}) must beat handwritten xmk0 "
        f"({hand_cycles}) at the strip-mined shape {GEMM_SHAPE}"
    )
    versus = {
        "shape": list(GEMM_SHAPE),
        "handwritten_cycles": hand_cycles,
        "tuned_cycles": tuned_cycles,
        "speedup": round(hand_cycles / tuned_cycles, 4),
        "tuned_recipe": gemm_result.best_recipe.as_steps(),
        "bit_exact": True,
    }
    print(f"cgemm vs handwritten xmk0 @ {m}x{k}x{n}: "
          f"{hand_cycles:,} -> {tuned_cycles:,} "
          f"({versus['speedup']}x, bit-exact)")

    record = {
        "benchmark": "autotune",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "search": {
            "budget": args.budget,
            "beam_width": args.beam_width,
            "smoke": args.smoke,
            "config_fingerprint": config_fingerprint(CONFIG),
        },
        "cache": tuner.cache.stats(),
        "kernels": kernels,
        "gemm_vs_handwritten": versus,
        "wall_seconds": round(time.perf_counter() - t0, 3),
    }
    args.output.parent.mkdir(exist_ok=True)
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output} "
          f"({len(kernels)}/{len(ALGORITHMS)} kernels tuned, "
          f"{record['wall_seconds']}s)")


if __name__ == "__main__":
    main()
