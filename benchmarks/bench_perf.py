#!/usr/bin/env python3
"""Wall-clock simulation-throughput benchmark: the fast path vs. the slow path.

Measures what the hot-path overhaul actually buys in *host seconds* (not
simulated cycles — those are bit-exact between modes by contract):

* **repeated-kernel serving** — one long-lived worker replays the *same*
  request content N >= 50 times (the canonical serving pattern the kernel
  replay cache exists for), once with the fast path disabled
  (``fastpath=False``, the pre-replay slow interpreter) and once enabled;
* **online serving** — a pool of workers serves the same repeated
  workload through the arrival-driven dispatcher.

For every workload the two modes are cross-checked to be bit-exact
(outputs, per-request simulated cycles, stats counters, phase
breakdowns) — a speedup that changed results would be a bug, and the
benchmark fails hard on any mismatch.  Reported metrics: wall seconds,
simulated cycles/second, kernel launches/second and (online) requests/
second, plus the replay-cache hit counters.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py --smoke
    PYTHONPATH=src python benchmarks/bench_perf.py --repeats 120 --size 32

``--smoke`` is the CI configuration (a few seconds).  The JSON perf
record lands at ``benchmarks/results/BENCH_perf.json``; this file starts
the repo's wall-clock performance trajectory, tracked per commit next to
``BENCH_serving.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

import numpy as np

from repro.core.config import ArcaneConfig
from repro.serve import (
    ServingEngine,
    SystemWorker,
    conv_layer_request,
    gemm_request,
)

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "results" / "BENCH_perf.json"


def assert_bit_exact(slow_results, fast_results, label: str) -> None:
    for slow, fast in zip(slow_results, fast_results):
        if not np.array_equal(slow.output, fast.output):
            raise AssertionError(f"{label}: outputs diverge between modes")
        if slow.sim_cycles != fast.sim_cycles:
            raise AssertionError(
                f"{label}: simulated cycles diverge "
                f"({slow.sim_cycles} vs {fast.sim_cycles})"
            )
        for slow_report, fast_report in zip(slow.reports, fast.reports):
            if slow_report.stats != fast_report.stats:
                raise AssertionError(f"{label}: stats counters diverge")
            if slow_report.breakdown.cycles != fast_report.breakdown.cycles:
                raise AssertionError(f"{label}: phase breakdowns diverge")


def run_repeated(config: ArcaneConfig, make_request, repeats: int, label: str) -> dict:
    """Serve the same request content ``repeats`` times in both modes."""
    measurements = {}
    for fastpath in (False, True):
        worker = SystemWorker(0, config.with_fastpath(fastpath))
        requests = [make_request(rid) for rid in range(repeats)]
        start = time.perf_counter()
        results = [worker.run(request) for request in requests]
        wall = time.perf_counter() - start
        measurements[fastpath] = (wall, results)

    slow_wall, slow_results = measurements[False]
    fast_wall, fast_results = measurements[True]
    assert_bit_exact(slow_results, fast_results, label)

    sim_cycles = sum(result.sim_cycles for result in slow_results)
    launches = sum(
        report.stats.get("scheduler.kernels", 0)
        for result in slow_results
        for report in result.reports
    )
    replay = {}
    for result in fast_results:
        for report in result.reports:
            for key, value in report.replay.items():
                replay[key] = replay.get(key, 0) + value
    return {
        "label": label,
        "repeats": repeats,
        "kernel_launches": launches,
        "sim_cycles": sim_cycles,
        "slow_seconds": round(slow_wall, 4),
        "fast_seconds": round(fast_wall, 4),
        "speedup": round(slow_wall / fast_wall, 2),
        "slow_sim_cycles_per_sec": round(sim_cycles / slow_wall),
        "fast_sim_cycles_per_sec": round(sim_cycles / fast_wall),
        "slow_launches_per_sec": round(launches / slow_wall, 1),
        "fast_launches_per_sec": round(launches / fast_wall, 1),
        "replay": replay,
        "bit_exact": True,
    }


def run_online(config: ArcaneConfig, requests_factory, n_requests: int,
               trace: str, seed: int) -> dict:
    """Arrival-driven serving of a repeated workload over a pool of 2."""
    measurements = {}
    for fastpath in (False, True):
        engine = ServingEngine(pool_size=2, config=config.with_fastpath(fastpath))
        requests = [requests_factory(rid) for rid in range(n_requests)]
        start = time.perf_counter()
        report = engine.serve_online(requests, traffic=trace, seed=seed)
        wall = time.perf_counter() - start
        measurements[fastpath] = (wall, report)

    slow_wall, slow_report = measurements[False]
    fast_wall, fast_report = measurements[True]
    assert_bit_exact(slow_report.results, fast_report.results, "online")
    for slow, fast in zip(slow_report.results, fast_report.results):
        if (slow.arrival_cycle, slow.start_cycle, slow.completion_cycle) != (
            fast.arrival_cycle, fast.start_cycle, fast.completion_cycle
        ):
            raise AssertionError("online: event timeline diverges between modes")
    return {
        "label": "online_poisson",
        "requests": n_requests,
        "trace": trace,
        "slow_seconds": round(slow_wall, 4),
        "fast_seconds": round(fast_wall, 4),
        "speedup": round(slow_wall / fast_wall, 2),
        "slow_requests_per_sec": round(n_requests / slow_wall, 1),
        "fast_requests_per_sec": round(n_requests / fast_wall, 1),
        "bit_exact": True,
    }


def summary_line(section: dict) -> str:
    return (
        f"{section['label']:<14} fastpath off {section['slow_seconds']:.2f}s"
        f" -> on {section['fast_seconds']:.2f}s  ({section['speedup']:.2f}x)"
        "  bit-exact"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--repeats", type=int, default=100,
                        help="times the identical request is replayed (>= 50)")
    parser.add_argument("--size", type=int, default=32, help="base operand size")
    parser.add_argument("--online-requests", type=int, default=60)
    parser.add_argument("--trace", default="poisson:25")
    parser.add_argument("--traffic-seed", type=int, default=7)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--lanes", type=int, default=4)
    parser.add_argument("--smoke", action="store_true",
                        help="CI configuration: small sizes, a few seconds")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()

    if args.smoke:
        args.repeats, args.size, args.online_requests = 60, 24, 40
    if args.repeats < 50:
        parser.error("--repeats must be >= 50 (repeated-kernel workload contract)")

    config = ArcaneConfig(
        n_vpus=2, lanes=args.lanes, line_bytes=256, vpu_kib=8,
        main_memory_kib=1024,
    )
    rng = np.random.default_rng(args.seed)
    size = args.size

    a = rng.integers(-6, 6, (size, size)).astype(np.int16)
    b = rng.integers(-6, 6, (size, size)).astype(np.int16)
    c = rng.integers(-6, 6, (size, size)).astype(np.int16)
    gemm = lambda rid: gemm_request(rid, a, b, c, alpha=2, beta=-1)  # noqa: E731

    image = rng.integers(-8, 8, (3 * size, size)).astype(np.int8)
    filters = rng.integers(-2, 3, (9, 3)).astype(np.int8)
    conv = lambda rid: conv_layer_request(rid, image, filters)  # noqa: E731

    sections = [
        run_repeated(config, gemm, args.repeats, f"gemm_{size}x{size}"),
        run_repeated(config, conv, args.repeats, f"conv_layer_{size}"),
        run_online(config, gemm, args.online_requests, args.trace,
                   args.traffic_seed),
    ]

    record = {
        "benchmark": "perf",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "system": {"config": config.describe()},
        "workload": {
            "repeats": args.repeats,
            "base_size": size,
            "seed": args.seed,
            "trace": args.trace,
            "traffic_seed": args.traffic_seed,
        },
        "sections": sections,
        # headline: the repeated-kernel serving speedup the replay cache targets
        "headline_speedup": sections[0]["speedup"],
        "bit_exact": all(section["bit_exact"] for section in sections),
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(record, indent=2) + "\n")

    print("== wall-clock fast-path benchmark (before/after) ==")
    for section in sections:
        print(summary_line(section))
    print(
        f"headline: {record['headline_speedup']:.2f}x on "
        f"{sections[0]['repeats']}x repeated {sections[0]['label']}"
        f" ({sections[0]['kernel_launches']} kernel launches,"
        f" {sections[0]['sim_cycles']} simulated cycles)"
    )
    print(f"JSON perf record written to {args.output}")


if __name__ == "__main__":
    main()
