"""Figure 2 — area split: X-HEEP + ARCANE (4 lanes) vs X-HEEP baseline.

Prints the per-component percentage decomposition of both systems and
checks the shares the paper calls out (pad ring, IMem, LLC subsystem,
CPU core, vector subsystem ~22% per-VPU aggregate, control < 4%).
"""

import pytest

from conftest import publish
from repro.core.config import ArcaneConfig
from repro.eval.area import AreaModel
from repro.eval.tables import render_table

PAPER_SHARES_ARCANE = {
    "pad_ring": 12.0,
    "imem": 28.0,
    "cv32e40px": 3.0,
}


def test_fig2_area_split(benchmark):
    model = AreaModel()
    config = ArcaneConfig(lanes=4)

    def shares():
        return model.arcane(config).shares(), model.baseline().shares()

    arcane_shares, baseline_shares = benchmark(shares)

    rows = []
    for component in sorted(set(arcane_shares) | set(baseline_shares)):
        rows.append([
            component,
            f"{100 * baseline_shares.get(component, 0.0):.1f}%",
            f"{100 * arcane_shares.get(component, 0.0):.1f}%",
        ])
    arcane = model.arcane(config)
    llc_share = model.llc_subsystem_kge(config) / arcane.total_kge
    rows.append(["llc_subsystem (aggregate)", "43.0% (paper)", f"{100 * llc_share:.1f}%"])

    for component, paper_pct in PAPER_SHARES_ARCANE.items():
        assert 100 * arcane_shares[component] == pytest.approx(paper_pct, abs=2.0)
    assert 100 * llc_share == pytest.approx(52.0, abs=3.0)  # paper: LLC subsys 52%
    # control logic (cache ctl additions) stays under 4% of the system
    control_share = (arcane.components["dcache_ctl"] - 55.0) / arcane.total_kge
    assert control_share < 0.04

    text = render_table(
        ["component", "X-HEEP baseline", "X-HEEP + ARCANE (4 lanes)"],
        rows,
        title="Figure 2 - area split (128 KiB LLC, percentages of total)",
    )
    publish("fig2_area_split", text)
