"""Table I — the xmnmc instruction set: encodings and kernel registry.

Reproduces the paper's Table I as the installed kernel library (slots,
mnemonics, operand packing) and benchmarks the software decode path the
bridge exercises for every offloaded instruction.
"""

import numpy as np

from conftest import publish
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem
from repro.eval.tables import render_table
from repro.isa.decode import decode
from repro.isa.xmnmc import encode_xmk, encode_xmr

#: Table I rows: mnemonic and the documented operand-pair layout.
TABLE1_LAYOUT = [
    ("xmr.[w,h,b]", "hi(&A)", "lo(&A)", "A.stride", "md", "A.cols", "A.rows", "Matrix reserve"),
    ("xmk0.[w,h,b]", "alpha", "beta", "ms3", "md", "ms1", "ms2", "GeMM"),
    ("xmk1.[w,h,b]", "alpha", "-", "-", "md", "ms1", "-", "LeakyReLU"),
    ("xmk2.[w,h,b]", "stride", "win_size", "-", "md", "ms1", "-", "Maxpooling"),
    ("xmk3.[w,h,b]", "-", "-", "-", "md", "ms1", "ms2", "2D Conv."),
    ("xmk4.[w,h,b]", "-", "-", "-", "md", "ms1", "ms2", "3-ch. 2D Conv. Layer"),
]


def test_table1_kernel_registry(benchmark):
    system = ArcaneSystem(ArcaneConfig())
    names = system.llc.runtime.library.names()
    assert names == {0: "gemm", 1: "leaky_relu", 2: "maxpool", 3: "conv2d", 4: "conv_layer"}

    words = [encode_xmr("w", 1, 2, 3)] + [
        encode_xmk(n, suffix, 10, 11, 12) for n in range(5) for suffix in "whb"
    ]

    def decode_all():
        return [decode(word) for word in words]

    decoded = benchmark(decode_all)
    assert all(instr.extension == "xmnmc" for instr in decoded)

    header = ["Mnemonic", "hi(rs1)", "lo(rs1)", "hi(rs2)", "lo(rs2)",
              "hi(rs3)", "lo(rs3)", "Description"]
    text = render_table(header, TABLE1_LAYOUT, title="Table I - ARCANE custom kernels")
    text += "\n\ninstalled kernel library: " + ", ".join(
        f"xmk{f5}={name}" for f5, name in sorted(names.items())
    )
    publish("table1_isa", text)
