"""Shared helpers for the benchmark harness.

Every bench renders the rows/series of one paper artifact (table or
figure), writes the text to ``benchmarks/results/<name>.txt`` and prints
it (visible with ``pytest -s``).  The pytest-benchmark fixture times a
representative unit of each experiment so ``--benchmark-only`` produces
a timing table per artifact.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a rendered artifact and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
