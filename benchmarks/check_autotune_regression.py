#!/usr/bin/env python3
"""Gate autotuning regressions: tuned must never lose to the default.

Validates a freshly generated ``BENCH_autotune.json`` and fails (exit 1)
when the invariant the search is built around breaks: for every library
kernel, the tuned recipe's simulated cycles must be **at most** the
default recipe's (the default is the incumbent the beam search starts
from, so a tuned result that is worse means the tuner stopped honouring
its own oracle).  The record's ``gemm_vs_handwritten`` section is gated
the same way: tuned compiled GeMM must still beat the handwritten
``xmk0`` at the strip-mined shape, bit-exactly.

With ``--baseline`` (the committed record) the gate additionally
compares tuned cycles per kernel and fails when a kernel got slower by
more than ``--threshold`` (default 10%).  Sections are compared only
when geometry and machine-config fingerprint match — a record produced
on a different simulated machine is skipped with a note, not failed.
Simulated cycles are seeded-deterministic, so a regression means the
compiler, the scheduler or the search actually got worse, not that CI
drew a slow machine.  Wall-clock is never compared.

Usage::

    PYTHONPATH=src python benchmarks/check_autotune_regression.py \
        --current benchmarks/results/BENCH_autotune.json \
        --baseline benchmarks/baselines/BENCH_autotune.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def check_invariants(record: dict) -> int:
    """The in-record invariants; returns the number of failures."""
    failures = 0
    kernels = record.get("kernels") or {}
    if not kernels:
        print("FAIL: record has no kernels section")
        failures += 1
    for name, row in sorted(kernels.items()):
        default = row.get("default_cycles")
        tuned = row.get("tuned_cycles")
        if not isinstance(default, int) or not isinstance(tuned, int):
            print(f"FAIL: {name}: missing cycle counts")
            failures += 1
            continue
        if tuned > default:
            print(f"FAIL: {name}: tuned {tuned:,} > default {default:,} "
                  f"(tuned recipe {row.get('tuned_recipe')})")
            failures += 1
        elif not row.get("bit_exact"):
            print(f"FAIL: {name}: record does not attest bit-exactness")
            failures += 1
        else:
            print(f"  {name}: tuned {tuned:,} <= default {default:,} [ok]")

    versus = record.get("gemm_vs_handwritten") or {}
    hand = versus.get("handwritten_cycles")
    tuned = versus.get("tuned_cycles")
    if not isinstance(hand, int) or not isinstance(tuned, int):
        print("FAIL: gemm_vs_handwritten section missing or incomplete")
        failures += 1
    elif tuned >= hand:
        print(f"FAIL: tuned cgemm {tuned:,} no longer beats handwritten "
              f"xmk0 {hand:,} at shape {versus.get('shape')}")
        failures += 1
    elif not versus.get("bit_exact"):
        print("FAIL: gemm_vs_handwritten does not attest bit-exactness")
        failures += 1
    else:
        print(f"  cgemm vs xmk0: tuned {tuned:,} < handwritten {hand:,} [ok]")
    return failures


def check_against_baseline(baseline: dict, current: dict,
                           threshold: float) -> int:
    """Per-kernel tuned-cycle comparison; returns number of failures."""
    failures = 0
    base_fp = (baseline.get("search") or {}).get("config_fingerprint")
    curr_fp = (current.get("search") or {}).get("config_fingerprint")
    if base_fp != curr_fp:
        print("baseline: machine-config fingerprint differs, skipped")
        return 0
    for name, base in sorted((baseline.get("kernels") or {}).items()):
        curr = (current.get("kernels") or {}).get(name)
        if curr is None:
            print(f"FAIL: kernel {name} present in baseline but missing "
                  f"from current record")
            failures += 1
            continue
        if base.get("geometry") != curr.get("geometry"):
            print(f"baseline.{name}: geometry differs, skipped")
            continue
        base_cycles, curr_cycles = base["tuned_cycles"], curr["tuned_cycles"]
        change = (curr_cycles - base_cycles) / base_cycles
        regressed = change > threshold
        status = "FAIL" if regressed else "ok"
        print(f"  baseline.{name}: tuned {base_cycles:,} -> {curr_cycles:,} "
              f"({change:+.1%}) [{status}]")
        failures += int(regressed)
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="freshly generated BENCH_autotune.json")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="committed BENCH_autotune.json (optional)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max tolerated tuned-cycle rise vs baseline "
                             "(0.10 = 10%%)")
    args = parser.parse_args()

    current = json.loads(args.current.read_text())
    failures = check_invariants(current)
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        failures += check_against_baseline(baseline, current, args.threshold)

    if failures:
        print(f"\n{failures} autotune regression check(s) failed")
        return 1
    print("\nautotune regression checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
