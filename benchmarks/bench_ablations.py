"""Ablations — the design choices DESIGN.md calls out.

A1.1  VPU selection policy (fewest-dirty vs round-robin vs first-free):
      the paper motivates fewest-dirty as minimising eviction write-backs.
A1.2  eCPU issue overhead: the software-decoded dispatch loop is the
      price of ISA flexibility; sweeping it shows when kernels become
      issue-bound vs lane-bound.
A1.3  Off-chip latency: how external-memory speed moves the allocation
      overhead (the 'optimized DMA transfers' remark of section V-C).
A1.4  Multi-instance (multi-VPU sharding) scaling.
"""

import dataclasses

import pytest

from conftest import publish
from repro.core.config import ArcaneConfig
from repro.eval.figures import measure_conv_layer
from repro.eval.tables import render_table

SIZE = 64


def _run(config: ArcaneConfig, **kwargs):
    return measure_conv_layer(SIZE, 3, config=config, **kwargs)


def test_ablation_vpu_policy(benchmark):
    results = {}
    for policy in ("fewest_dirty", "round_robin", "first_free"):
        config = ArcaneConfig(vpu_policy=policy)
        point = _run(config, dtype="int8", lanes=4)
        results[policy] = point
    benchmark.pedantic(
        lambda: _run(ArcaneConfig(vpu_policy="fewest_dirty"), dtype="int8", lanes=4),
        rounds=2, iterations=1,
    )
    rows = [[policy, p.arcane_cycles, f"{p.speedup_vs_scalar:.1f}x"]
            for policy, p in results.items()]
    publish("ablation_vpu_policy", render_table(
        ["policy", "cycles", "speedup"], rows,
        title="A1.1 - VPU selection policy (single kernel: identical by design)"))
    # with a single kernel stream all policies must be functionally identical
    cycles = {p.arcane_cycles for p in results.values()}
    assert len(cycles) == 1


def test_ablation_issue_overhead(benchmark):
    rows = []
    points = {}
    for issue in (4, 12, 24, 48, 96):
        config = dataclasses.replace(ArcaneConfig(), issue_cycles=issue)
        point = _run(config, dtype="int8", lanes=8)
        points[issue] = point
        rows.append([issue, point.arcane_cycles, f"{point.speedup_vs_scalar:.1f}x",
                     f"{100 * point.breakdown.overhead_fraction():.0f}%"])
    benchmark.pedantic(
        lambda: _run(ArcaneConfig(), dtype="int8", lanes=8), rounds=2, iterations=1)
    publish("ablation_issue_overhead", render_table(
        ["issue cycles", "total cycles", "speedup", "overhead"], rows,
        title="A1.2 - eCPU dispatch overhead sweep (int8, 8 lanes, 64x64)"))
    # monotone: softer dispatch loops always help
    cycles = [points[i].arcane_cycles for i in (4, 12, 24, 48, 96)]
    assert cycles == sorted(cycles)
    # int8 @ 8 lanes is issue-bound: doubling issue cost ~doubles compute
    assert points[96].breakdown.cycles["compute"] > 1.7 * points[48].breakdown.cycles["compute"]


def test_ablation_offchip_latency(benchmark):
    rows = []
    points = {}
    for latency in (10, 40, 80, 160):
        config = dataclasses.replace(ArcaneConfig(), offchip_latency=latency)
        point = _run(config, dtype="int8", lanes=8)
        points[latency] = point
        rows.append([latency, point.arcane_cycles,
                     f"{point.breakdown.fraction('allocation') * 100:.0f}%"])
    benchmark.pedantic(
        lambda: _run(ArcaneConfig(), dtype="int8", lanes=8), rounds=2, iterations=1)
    publish("ablation_offchip_latency", render_table(
        ["off-chip latency", "total cycles", "allocation share"], rows,
        title="A1.3 - external memory latency sweep (int8, 8 lanes, 64x64)"))
    assert points[160].breakdown.fraction("allocation") > \
        points[10].breakdown.fraction("allocation")


def test_ablation_multi_instance_scaling(benchmark):
    single = _run(ArcaneConfig(lanes=8), dtype="int8", lanes=8)
    multi = _run(ArcaneConfig(lanes=8, multi_vpu=True), dtype="int8",
                 lanes=8, multi_vpu=True)
    benchmark.pedantic(
        lambda: _run(ArcaneConfig(lanes=8, multi_vpu=True), dtype="int8",
                     lanes=8, multi_vpu=True),
        rounds=2, iterations=1)
    gain = single.arcane_cycles / multi.arcane_cycles
    publish("ablation_multi_instance", render_table(
        ["mode", "cycles", "speedup vs scalar"],
        [["single VPU", single.arcane_cycles, f"{single.speedup_vs_scalar:.1f}x"],
         ["multi-instance (4 VPUs)", multi.arcane_cycles,
          f"{multi.speedup_vs_scalar:.1f}x"],
         ["gain", "-", f"{gain:.2f}x"]],
        title="A1.4 - multi-instance sharding (int8, 8 lanes, 64x64)"))
    assert 1.2 < gain < 4.0  # sub-linear: the bus and decode are shared
