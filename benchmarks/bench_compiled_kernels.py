"""Compiled vs handwritten kernels: simulated-cycle comparison.

Renders one artifact: the compiled GeMM/conv twins against their
handwritten Table I counterparts (same shapes, same system config), and
the simulated cycle cost of the four new compiled-only workloads
(fully-connected, depthwise conv, element-wise add/mul, row-sum).

Asserted relations:

* compiled GeMM is bit-exact vs ``xmk0`` and within 10% of its cycles
  (better once strip-mined: the row cache keeps partial strips resident);
* compiled single-channel conv matches ``xmk3`` bit-exactly;
* every compiled-only kernel matches its NumPy golden model.
"""

import numpy as np
import pytest

from conftest import publish
from repro.baselines.reference import ref_conv2d, ref_gemm
from repro.compiler import (
    FUNC5_CGEMM,
    FUNC5_DWCONV2D,
    FUNC5_EWISE_ADD,
    FUNC5_EWISE_MUL,
    FUNC5_FC,
    FUNC5_ROWSUM,
    install_compiled,
    offload_compiled,
)
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem

CONFIG = ArcaneConfig(n_vpus=4, lanes=4, line_bytes=256, vpu_kib=8,
                      main_memory_kib=2048)


def make_system() -> ArcaneSystem:
    system = ArcaneSystem(CONFIG)
    install_compiled(system.llc.runtime.library)
    return system


def run_compiled(func5, sources, dest_shape, dtype, params=()):
    system = make_system()
    handles = [system.place_matrix(s) for s in sources]
    out = system.alloc_matrix(dest_shape, dtype)
    with system.program() as prog:
        for register, handle in enumerate(handles):
            prog.xmr(register, handle)
        prog.xmr(len(handles), out)
        offload_compiled(prog, func5, out.etype.suffix, dest=len(handles),
                         sources=list(range(len(handles))), params=params)
    return system.read_matrix(out), system.last_report.total_cycles


def run_handwritten_gemm(a, b, c, alpha, beta):
    system = make_system()
    ma, mb, mc = (system.place_matrix(x) for x in (a, b, c))
    md = system.alloc_matrix((a.shape[0], b.shape[1]), a.dtype)
    with system.program() as prog:
        prog.xmr(0, ma).xmr(1, mb).xmr(2, mc).xmr(3, md)
        prog.gemm(dest=3, a=0, b=1, c=2, alpha=alpha, beta=beta,
                  suffix=ma.etype.suffix)
    return system.read_matrix(md), system.last_report.total_cycles


def run_handwritten_conv(x, f):
    system = make_system()
    mx, mf = system.place_matrix(x), system.place_matrix(f)
    out_shape = (x.shape[0] - f.shape[0] + 1, x.shape[1] - f.shape[0] + 1)
    md = system.alloc_matrix(out_shape, x.dtype)
    with system.program() as prog:
        prog.xmr(0, mx).xmr(1, mf).xmr(2, md)
        prog.conv2d(dest=2, src=0, flt=1, suffix=mx.etype.suffix)
    return system.read_matrix(md), system.last_report.total_cycles


@pytest.fixture(scope="module")
def results():
    rng = np.random.default_rng(7)
    rows = []

    # -- twins: compiled vs handwritten ------------------------------------
    for label, (m, k, n) in (("fits VRF", (8, 16, 24)), ("strip-mined", (8, 48, 24))):
        a = rng.integers(-8, 8, (m, k)).astype(np.int16)
        b = rng.integers(-8, 8, (k, n)).astype(np.int16)
        c = rng.integers(-8, 8, (m, n)).astype(np.int16)
        hand, hand_cycles = run_handwritten_gemm(a, b, c, 2, -1)
        comp, comp_cycles = run_compiled(
            FUNC5_CGEMM, [a, b, c], (m, n), np.int16, params=[2, -1]
        )
        assert np.array_equal(hand, ref_gemm(a, b, c, 2, -1))
        assert np.array_equal(comp, hand)
        rows.append((f"gemm {m}x{k}x{n} ({label})", hand_cycles, comp_cycles))

    x = rng.integers(-6, 6, (30, 32)).astype(np.int16)
    f = rng.integers(-3, 3, (3, 3)).astype(np.int16)
    hand, hand_cycles = run_handwritten_conv(x, f)
    comp, comp_cycles = run_compiled(FUNC5_DWCONV2D, [x, f], hand.shape, np.int16)
    assert np.array_equal(comp, hand) and np.array_equal(hand, ref_conv2d(x, f))
    rows.append(("conv2d 30x32 3x3 (1 ch)", hand_cycles, comp_cycles))

    # -- compiled-only workloads -------------------------------------------
    extra = []
    xv = rng.integers(-8, 8, (1, 64)).astype(np.int16)
    w = rng.integers(-8, 8, (64, 24)).astype(np.int16)
    bias = rng.integers(-8, 8, (1, 24)).astype(np.int16)
    got, cycles = run_compiled(FUNC5_FC, [xv, w, bias], (1, 24), np.int16)
    assert np.array_equal(
        got, (xv.astype(np.int64) @ w.astype(np.int64) + bias).astype(np.int16)
    )
    extra.append(("fc 64->24 (GEMV+bias)", cycles))

    x3 = rng.integers(-6, 6, (3 * 12, 16)).astype(np.int16)
    f3 = rng.integers(-3, 3, (3 * 3, 3)).astype(np.int16)
    got, cycles = run_compiled(FUNC5_DWCONV2D, [x3, f3], (3 * 10, 14), np.int16)
    expected = np.vstack(
        [ref_conv2d(x3[ch * 12 : (ch + 1) * 12], f3[ch * 3 : (ch + 1) * 3])
         for ch in range(3)]
    )
    assert np.array_equal(got, expected)
    extra.append(("dwconv2d 3ch 12x16 3x3", cycles))

    ea = rng.integers(-100, 100, (16, 32)).astype(np.int16)
    eb = rng.integers(-100, 100, (16, 32)).astype(np.int16)
    got, cycles = run_compiled(FUNC5_EWISE_ADD, [ea, eb], ea.shape, np.int16)
    assert np.array_equal(got, (ea.astype(np.int64) + eb).astype(np.int16))
    extra.append(("ewise_add 16x32", cycles))
    got, cycles = run_compiled(FUNC5_EWISE_MUL, [ea, eb], ea.shape, np.int16)
    assert np.array_equal(got, (ea.astype(np.int64) * eb).astype(np.int16))
    extra.append(("ewise_mul 16x32", cycles))

    got, cycles = run_compiled(FUNC5_ROWSUM, [ea], (16, 1), np.int16)
    assert np.array_equal(
        got, ea.astype(np.int64).sum(axis=1).astype(np.int16).reshape(-1, 1)
    )
    extra.append(("rowsum 16x32", cycles))

    return {"twins": rows, "extra": extra}


def test_compiled_vs_handwritten(benchmark, results):
    benchmark.pedantic(
        lambda: run_compiled(
            FUNC5_EWISE_ADD,
            [np.ones((8, 16), dtype=np.int16)] * 2, (8, 16), np.int16,
        ),
        rounds=3, iterations=1,
    )
    lines = ["Compiled vs handwritten kernels (simulated cycles)", ""]
    lines.append(f"{'workload':<28} {'handwritten':>12} {'compiled':>10} {'ratio':>7}")
    for label, hand, comp in results["twins"]:
        lines.append(f"{label:<28} {hand:>12,} {comp:>10,} {comp / hand:>6.2f}x")
    lines.append("")
    lines.append(f"{'compiled-only workload':<28} {'cycles':>12}")
    for label, cycles in results["extra"]:
        lines.append(f"{label:<28} {cycles:>12,}")
    publish("compiled_kernels", "\n".join(lines))


def test_compiled_gemm_within_10pct(results):
    for label, hand, comp in results["twins"]:
        if label.startswith("gemm"):
            assert comp <= hand * 1.10, (label, hand, comp)


def test_strip_mined_gemm_beats_handwritten(results):
    """The row cache's partial-strip reuse should win once strip-mined."""
    strip = next(r for r in results["twins"] if "strip-mined" in r[0])
    assert strip[2] < strip[1]
