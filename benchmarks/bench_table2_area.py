"""Table II — synthesis results: area of the three ARCANE configurations.

The analytical component model reproduces the paper's totals and
overheads; the bench prints paper-vs-measured for each row.
"""

import pytest

from conftest import publish
from repro.core.config import ArcaneConfig
from repro.eval.area import AreaModel
from repro.eval.tables import render_table

PAPER_ROWS = {
    2: (2.88, 1996, 21.7),
    4: (3.03, 2105, 28.3),
    8: (3.34, 2318, 41.3),
}


def test_table2_synthesis_area(benchmark):
    model = AreaModel()

    def build_table():
        return model.table2()

    table = benchmark(build_table)

    rows = []
    for lanes, (paper_mm2, paper_kge, paper_overhead) in PAPER_ROWS.items():
        breakdown = model.arcane(ArcaneConfig(lanes=lanes))
        overhead = model.overhead_percent(ArcaneConfig(lanes=lanes))
        rows.append([
            f"ARCANE (4 VPUs, {lanes} lanes)",
            f"{paper_mm2:.2f} / {paper_kge}",
            f"{breakdown.total_mm2:.2f} / {breakdown.total_kge:.0f}",
            f"{paper_overhead:.1f}%",
            f"{overhead:.1f}%",
        ])
        assert breakdown.total_kge == pytest.approx(paper_kge, rel=0.005)
        assert overhead == pytest.approx(paper_overhead, abs=0.5)
    base = model.baseline()
    rows.append([
        "X-HEEP (4 DMem banks)",
        "2.36 / 1640",
        f"{base.total_mm2:.2f} / {base.total_kge:.0f}",
        "-", "-",
    ])
    text = render_table(
        ["configuration", "paper mm2/kGE", "measured mm2/kGE",
         "paper overhead", "measured overhead"],
        rows,
        title="Table II - synthesis results (65 nm LP, 250 MHz, 16 KiB eMEM)",
    )
    publish("table2_area", text)
