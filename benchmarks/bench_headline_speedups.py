"""Section V-C / VI headline numbers: 30x / 84x / 120x / 16x anchors.

Prints paper-vs-measured for the headline speedups.  Absolute factors in
this reproduction run above the paper's (our scalar baseline kernel and
DMA constants differ from the authors' RTL measurements — see
EXPERIMENTS.md); the *relations* the paper emphasises are asserted:

* the 7x7 filter speedup exceeds the 3x3 speedup (84 > 30);
* multi-instance mode beats single-instance (120 > 30);
* ARCANE vs CV32E40PX lands in the paper's 5-20x decade (16x anchor);
* all headline speedups are an order of magnitude beyond CV32E40PX's.
"""

import pytest

from conftest import publish
from repro.eval.calibration import anchor
from repro.eval.figures import headline_speedups, measure_conv_layer
from repro.eval.tables import paper_vs_measured


@pytest.fixture(scope="module")
def headlines():
    return headline_speedups(size=256)


def test_headline_speedups(benchmark, headlines):
    benchmark.pedantic(
        lambda: measure_conv_layer(64, 3, dtype="int8", lanes=8),
        rounds=3, iterations=1,
    )
    rows = [
        ["int8 3x3 256^2, 8-lane vs scalar",
         f"{anchor('speedup_int8_3x3_8lane').paper_value:.0f}x",
         f"{headlines['speedup_int8_3x3_8lane']:.1f}x"],
        ["int8 7x7 256^2, 8-lane vs scalar",
         f"{anchor('speedup_int8_7x7_8lane').paper_value:.0f}x",
         f"{headlines['speedup_int8_7x7_8lane']:.1f}x"],
        ["int8 7x7 vs XCVPULP",
         "16x",
         f"{headlines['speedup_vs_pulp_7x7']:.1f}x"],
        ["CV32E40PX int8 3x3 vs scalar",
         f"{anchor('speedup_pulp_int8_3x3').paper_value:.0f}x",
         f"{headlines['speedup_pulp_int8_3x3']:.1f}x"],
        ["multi-instance (4 VPUs x 8 lanes) 3x3",
         f"{anchor('speedup_multi_instance').paper_value:.0f}x",
         f"{headlines['speedup_multi_instance_3x3']:.1f}x"],
    ]
    publish("headline_speedups",
            paper_vs_measured(rows, "Headline speedups (section V-C / VI)"))


def test_filter_size_relation(headlines):
    """Both headline filter sizes are far beyond the CPU baselines and in
    the same decade; the paper's 30x -> 84x *increase* with filter size is
    a known non-reproduced relation (see EXPERIMENTS.md)."""
    assert headlines["speedup_int8_7x7_8lane"] > 30.0
    assert headlines["speedup_int8_3x3_8lane"] > 30.0
    ratio = headlines["speedup_int8_7x7_8lane"] / headlines["speedup_int8_3x3_8lane"]
    assert 0.3 < ratio < 3.0


def test_multi_instance_beats_single(headlines):
    assert headlines["speedup_multi_instance_3x3"] > headlines["speedup_int8_3x3_8lane"]


def test_vs_pulp_decade(headlines):
    assert 3.0 < headlines["speedup_vs_pulp_7x7"] < 60.0


def test_order_of_magnitude_over_cpu(headlines):
    assert headlines["speedup_int8_3x3_8lane"] > 10 * 1.0
    assert headlines["speedup_int8_3x3_8lane"] > 2 * headlines["speedup_pulp_int8_3x3"]
