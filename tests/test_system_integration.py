"""End-to-end system tests: program builder, hazards, OoO behaviour.

These exercise the paper's headline *behavioural* claims: the host can
keep running while kernels execute in the cache; accesses that would
corrupt or prematurely observe kernel operands stall exactly until the
hazard clears; logical matrix registers can be re-bound while old
kernels are still pending (renaming).
"""

import numpy as np
import pytest

from repro.baselines.reference import ref_conv2d, ref_gemm, ref_leaky_relu
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem
from repro.xbridge.bridge import OffloadOutcome

CFG = ArcaneConfig(n_vpus=4, lanes=4, line_bytes=256, vpu_kib=8, main_memory_kib=512)


class TestProgramBuilder:
    def test_place_and_read_matrix(self, rng):
        system = ArcaneSystem(CFG)
        data = rng.integers(-9, 9, (5, 7)).astype(np.int16)
        handle = system.place_matrix(data, "a")
        assert np.array_equal(system.read_matrix(handle), data)

    def test_matrices_line_aligned(self, rng):
        system = ArcaneSystem(CFG)
        a = system.place_matrix(rng.integers(0, 5, (3, 3)).astype(np.int8))
        b = system.place_matrix(rng.integers(0, 5, (3, 3)).astype(np.int8))
        assert a.address % CFG.line_bytes == 0
        assert b.address % CFG.line_bytes == 0
        assert b.address >= a.address + CFG.line_bytes

    def test_unsupported_dtype_rejected(self):
        system = ArcaneSystem(CFG)
        with pytest.raises(TypeError):
            system.place_matrix(np.zeros((2, 2), dtype=np.float32))

    def test_non_2d_rejected(self):
        system = ArcaneSystem(CFG)
        with pytest.raises(ValueError):
            system.place_matrix(np.zeros(4, dtype=np.int8))

    def test_report_populated(self, rng):
        system = ArcaneSystem(CFG)
        x = rng.integers(-8, 8, (3 * 12, 12)).astype(np.int8)
        f = rng.integers(-2, 3, (9, 3)).astype(np.int8)
        _, report = system.run_conv_layer(x, f)
        assert report.offload_count == 4  # 3 xmr + 1 xmk4
        assert all(o is OffloadOutcome.ACCEPTED for o in report.outcomes)
        assert report.total_cycles >= report.host_cycles
        assert report.breakdown.cycles["compute"] > 0
        assert report.stats["scheduler.kernels"] == 1

    def test_sequential_programs_accumulate(self, rng):
        system = ArcaneSystem(CFG)
        x = rng.integers(-50, 50, (4, 8)).astype(np.int32)
        mx = system.place_matrix(x)
        out1 = system.alloc_matrix(x.shape, np.int32)
        out2 = system.alloc_matrix(x.shape, np.int32)
        with system.program() as prog:
            prog.xmr(0, mx).xmr(1, out1)
            prog.leaky_relu(dest=1, src=0, alpha=2)
        with system.program() as prog:
            prog.xmr(2, out1).xmr(3, out2)
            prog.leaky_relu(dest=3, src=2, alpha=1)
        expected = ref_leaky_relu(ref_leaky_relu(x, 2), 1)
        assert np.array_equal(system.read_matrix(out2), expected)


class TestOutOfOrderExecution:
    def test_host_continues_while_kernel_runs(self, rng):
        """The offload handshake returns long before the kernel finishes."""
        system = ArcaneSystem(CFG)
        x = rng.integers(-8, 8, (3 * 24, 24)).astype(np.int8)
        f = rng.integers(-2, 3, (9, 3)).astype(np.int8)
        _, report = system.run_conv_layer(x, f)
        assert report.host_cycles < report.total_cycles / 2

    def test_host_load_of_unrelated_data_overlaps_kernel(self, rng):
        system = ArcaneSystem(CFG)
        x = rng.integers(-8, 8, (12, 16)).astype(np.int32)
        f = rng.integers(-2, 3, (3, 3)).astype(np.int32)
        unrelated = system.place_matrix(
            rng.integers(0, 100, (4, 4)).astype(np.int32), "unrelated"
        )
        mx, mf = system.place_matrix(x), system.place_matrix(f)
        out = system.alloc_matrix((10, 14), np.int32)
        with system.program() as prog:
            prog.xmr(0, mx).xmr(1, mf).xmr(2, out)
            prog.conv2d(dest=2, src=0, flt=1)
            prog.load(unrelated, 0, 0)
        report = system.last_report
        assert report.load_values  # the load completed
        assert np.array_equal(system.read_matrix(out), ref_conv2d(x, f))


class TestHazardsEndToEnd:
    def test_raw_host_load_waits_for_result(self, rng):
        """A host load of the kernel destination returns the *computed* value."""
        system = ArcaneSystem(CFG, trace=True)
        x = rng.integers(-50, 50, (6, 8)).astype(np.int32)
        mx = system.place_matrix(x)
        out = system.alloc_matrix(x.shape, np.int32)
        with system.program() as prog:
            prog.xmr(0, mx).xmr(1, out)
            prog.leaky_relu(dest=1, src=0, alpha=0)
            prog.load(out, 0, 0)  # issued right after offload -> RAW hazard
        report = system.last_report
        expected = int(ref_leaky_relu(x, 0)[0, 0])
        assert report.load_values[-1] == expected
        assert report.stats.get("llc.hazard_raw_stalls", 0) >= 1

    def test_war_host_store_does_not_corrupt_kernel_input(self, rng):
        """A store to the source right after offload lands *after* allocation."""
        system = ArcaneSystem(CFG)
        x = rng.integers(-50, 50, (6, 8)).astype(np.int32)
        mx = system.place_matrix(x)
        out = system.alloc_matrix(x.shape, np.int32)
        with system.program() as prog:
            prog.xmr(0, mx).xmr(1, out)
            prog.leaky_relu(dest=1, src=0, alpha=0)
            prog.store(mx, 0, 0, -9999)  # WAR: blocked until source released
        report = system.last_report
        assert np.array_equal(system.read_matrix(out), ref_leaky_relu(x, 0))
        assert report.stats.get("llc.hazard_war_stalls", 0) >= 1
        # the store itself did land eventually
        assert system.read_matrix(mx)[0, 0] == np.int32(-9999)

    def test_waw_host_store_to_dest_lands_after_kernel(self, rng):
        system = ArcaneSystem(CFG)
        x = rng.integers(-50, 50, (4, 8)).astype(np.int32)
        mx = system.place_matrix(x)
        out = system.alloc_matrix(x.shape, np.int32)
        with system.program() as prog:
            prog.xmr(0, mx).xmr(1, out)
            prog.leaky_relu(dest=1, src=0, alpha=0)
            prog.store(out, 0, 0, 4242)  # WAW: must not be overwritten by kernel
        report = system.last_report
        result = system.read_matrix(out)
        assert result[0, 0] == 4242  # program order preserved
        expected = ref_leaky_relu(x, 0)
        assert np.array_equal(result[1:], expected[1:])
        assert report.stats.get("llc.hazard_waw_stalls", 0) >= 1


class TestRenaming:
    def test_rebind_while_kernel_pending(self, rng):
        """xmr overwriting a live reservation renames instead of corrupting."""
        system = ArcaneSystem(CFG)
        x1 = rng.integers(-9, 9, (4, 8)).astype(np.int32)
        x2 = rng.integers(-9, 9, (4, 8)).astype(np.int32)
        m1, m2 = system.place_matrix(x1), system.place_matrix(x2)
        out1 = system.alloc_matrix((4, 8), np.int32)
        out2 = system.alloc_matrix((4, 8), np.int32)
        with system.program() as prog:
            prog.xmr(0, m1).xmr(1, out1)
            prog.leaky_relu(dest=1, src=0, alpha=0)
            # immediately re-bind m0/m1 while kernel 0 may still be queued
            prog.xmr(0, m2).xmr(1, out2)
            prog.leaky_relu(dest=1, src=0, alpha=0)
        assert np.array_equal(system.read_matrix(out1), ref_leaky_relu(x1, 0))
        assert np.array_equal(system.read_matrix(out2), ref_leaky_relu(x2, 0))


class TestChainedKernels:
    def test_gemm_then_relu_pipeline(self, rng):
        system = ArcaneSystem(CFG)
        a = rng.integers(-5, 5, (4, 6)).astype(np.int32)
        b = rng.integers(-5, 5, (6, 4)).astype(np.int32)
        c = np.zeros((4, 4), dtype=np.int32)
        ma, mb, mc = (system.place_matrix(m) for m in (a, b, c))
        product = system.alloc_matrix((4, 4), np.int32)
        activated = system.alloc_matrix((4, 4), np.int32)
        with system.program() as prog:
            prog.xmr(0, ma).xmr(1, mb).xmr(2, mc).xmr(3, product)
            prog.gemm(dest=3, a=0, b=1, c=2, alpha=1, beta=0)
            prog.xmr(4, product).xmr(5, activated)
            prog.leaky_relu(dest=5, src=4, alpha=2)
        expected = ref_leaky_relu(ref_gemm(a, b, c, 1, 0), 2)
        assert np.array_equal(system.read_matrix(activated), expected)

    def test_queue_backpressure_with_many_kernels(self, rng):
        """More kernels than queue slots: decode back-pressure, all complete."""
        config = ArcaneConfig(
            n_vpus=4, lanes=4, line_bytes=256, vpu_kib=8,
            main_memory_kib=512, kernel_queue_capacity=2,
        )
        system = ArcaneSystem(config)
        x = rng.integers(-9, 9, (4, 8)).astype(np.int32)
        mx = system.place_matrix(x)
        outs = [system.alloc_matrix((4, 8), np.int32) for _ in range(6)]
        with system.program() as prog:
            prog.xmr(0, mx)
            for i, out in enumerate(outs):
                prog.xmr(1, out)
                prog.leaky_relu(dest=1, src=0, alpha=0)
        expected = ref_leaky_relu(x, 0)
        for out in outs:
            assert np.array_equal(system.read_matrix(out), expected)
        assert system.last_report.stats["scheduler.kernels"] == 6


class TestSchedulerPolicies:
    @pytest.mark.parametrize("policy", ["fewest_dirty", "round_robin", "first_free"])
    def test_policies_all_correct(self, rng, policy):
        config = ArcaneConfig(
            n_vpus=4, lanes=4, line_bytes=256, vpu_kib=8,
            main_memory_kib=512, vpu_policy=policy,
        )
        system = ArcaneSystem(config)
        x = rng.integers(-8, 8, (3 * 12, 12)).astype(np.int8)
        f = rng.integers(-2, 3, (9, 3)).astype(np.int8)
        out, _ = system.run_conv_layer(x, f)
        from repro.baselines.reference import ref_conv_layer

        assert np.array_equal(out, ref_conv_layer(x, f))

    def test_fewest_dirty_picks_clean_vpu(self):
        system = ArcaneSystem(CFG)
        scheduler = system.llc.runtime.scheduler
        ct = system.llc.cache_table
        # dirty up VPU 0's lines; VPU selection must avoid it
        for line in ct.vpu_lines(0)[:3]:
            ct.bind(line, 0x1000 + line.index * CFG.line_bytes)
            line.dirty = True
        assert scheduler.select_vpu() != 0


class TestMatrixDtypeNormalization:
    """Matrix is frozen and hashed; dtype must be canonical at construction."""

    def test_dtype_class_and_instance_compare_equal(self):
        from repro.core.api import Matrix

        by_class = Matrix(address=0, rows=4, cols=4, dtype=np.int32)
        by_instance = Matrix(address=0, rows=4, cols=4, dtype=np.dtype(np.int32))
        assert by_class == by_instance
        assert hash(by_class) == hash(by_instance)
        assert isinstance(by_class.dtype, np.dtype)

    def test_string_dtype_normalized(self):
        from repro.core.api import Matrix

        matrix = Matrix(address=0, rows=2, cols=3, dtype="int16")
        assert matrix.dtype == np.dtype(np.int16)
        assert matrix.itemsize == 2
        assert matrix.row_bytes == 6

    def test_system_handles_hash_consistently(self):
        from repro.core.api import Matrix

        system = ArcaneSystem(CFG)
        handle = system.alloc_matrix((4, 4), np.int16)
        # a lookup key built with the dtype *class* must find the handle
        key = Matrix(handle.address, 4, 4, np.int16, name=handle.name)
        assert key == handle
        assert {handle: "x"}[key] == "x"
