"""Unit and property tests for repro.utils.bitops."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitops import (
    align_down,
    align_up,
    bit,
    bits,
    is_aligned,
    mask,
    set_bits,
    sign_extend,
    to_signed,
    to_unsigned,
)


class TestMask:
    def test_small_masks(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(12) == 0xFFF
        assert mask(32) == 0xFFFFFFFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitExtraction:
    def test_bit(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0
        assert bit(1 << 31, 31) == 1

    def test_bits_funct3(self):
        word = 0x0000A003  # funct3 = bits[14:12]
        assert bits(word, 14, 12) == 0b010

    def test_bits_full_word(self):
        assert bits(0xDEADBEEF, 31, 0) == 0xDEADBEEF

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            bits(0, 3, 5)


class TestSetBits:
    def test_set_field(self):
        assert set_bits(0, 14, 12, 0b101) == 0b101 << 12

    def test_replaces_existing(self):
        word = set_bits(0xFFFFFFFF, 7, 4, 0)
        assert bits(word, 7, 4) == 0
        assert bits(word, 3, 0) == 0xF

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            set_bits(0, 3, 0, 16)


class TestSignExtend:
    @pytest.mark.parametrize(
        "value,width,expected",
        [
            (0xFFF, 12, -1),
            (0x7FF, 12, 2047),
            (0x800, 12, -2048),
            (0xFF, 8, -1),
            (0, 32, 0),
            (0xFFFFFFFF, 32, -1),
        ],
    )
    def test_known_values(self, value, width, expected):
        assert sign_extend(value, width) == expected

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip_32(self, value):
        assert to_unsigned(to_signed(value)) == value

    @given(st.integers(min_value=1, max_value=31), st.integers(min_value=0))
    def test_range(self, width, raw):
        result = sign_extend(raw, width)
        assert -(1 << (width - 1)) <= result < (1 << (width - 1))

    @given(st.integers(min_value=1, max_value=32), st.integers())
    def test_congruent_mod_2n(self, width, raw):
        assert (sign_extend(raw, width) - raw) % (1 << width) == 0


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1234, 0x100) == 0x1200
        assert align_down(0x1200, 0x100) == 0x1200

    def test_align_up(self):
        assert align_up(0x1234, 0x100) == 0x1300
        assert align_up(0x1200, 0x100) == 0x1200

    def test_is_aligned(self):
        assert is_aligned(1024, 1024)
        assert not is_aligned(1025, 1024)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            align_down(5, 3)

    @given(
        st.integers(min_value=0, max_value=1 << 40),
        st.sampled_from([1, 2, 4, 64, 1024]),
    )
    def test_align_bounds(self, value, alignment):
        down, up = align_down(value, alignment), align_up(value, alignment)
        assert down <= value <= up
        assert up - down in (0, alignment)
