"""Baseline tests: ISS kernels vs golden models, fitted cycle models, multicore."""

import numpy as np
import pytest

from repro.baselines.models import (
    fit_conv_model,
    pulp_conv_layer_cycles,
    scalar_conv_layer_cycles,
)
from repro.baselines.multicore import (
    DEFAULT_ALPHA,
    PAPER_MULTICORE_PEAK,
    MulticoreModel,
)
from repro.baselines.pulp_kernels import pad_filters, padded_k, run_pulp_conv_layer, simd_width
from repro.baselines.reference import ref_conv_layer
from repro.baselines.scalar_kernels import ConvLayerShape, run_scalar_conv_layer


def workload(rng, size, k, dtype):
    x = rng.integers(-8, 8, (3 * size, size)).astype(dtype)
    f = rng.integers(-2, 3, (3 * k, k)).astype(dtype)
    return x, f


class TestConvLayerShape:
    def test_derived_shapes(self):
        shape = ConvLayerShape(height=16, width=20, k=3)
        assert shape.conv_rows == 14 and shape.conv_cols == 18
        assert shape.out_shape == (7, 9)
        assert shape.macs == 14 * 18 * 3 * 9


class TestScalarBaseline:
    @pytest.mark.parametrize("dtype", [np.int8, np.int16, np.int32])
    def test_matches_golden(self, rng, dtype):
        x, f = workload(rng, 10, 3, dtype)
        out, cycles = run_scalar_conv_layer(x, f)
        assert np.array_equal(out, ref_conv_layer(x, f))
        assert cycles > 0

    def test_k5_matches_golden(self, rng):
        x, f = workload(rng, 14, 5, np.int8)
        out, _ = run_scalar_conv_layer(x, f)
        assert np.array_equal(out, ref_conv_layer(x, f))

    def test_cycles_scale_with_macs(self, rng):
        x1, f1 = workload(rng, 10, 3, np.int32)
        x2, f2 = workload(rng, 14, 3, np.int32)
        _, c1 = run_scalar_conv_layer(x1, f1)
        _, c2 = run_scalar_conv_layer(x2, f2)
        macs1 = ConvLayerShape(10, 10, 3).macs
        macs2 = ConvLayerShape(14, 14, 3).macs
        assert c2 > c1
        # per-MAC cost roughly constant (within 25%)
        assert abs(c1 / macs1 - c2 / macs2) / (c1 / macs1) < 0.25


class TestPulpBaseline:
    @pytest.mark.parametrize("dtype", [np.int8, np.int16, np.int32])
    def test_matches_golden(self, rng, dtype):
        x, f = workload(rng, 12, 3, dtype)
        out, _ = run_pulp_conv_layer(x, f)
        assert np.array_equal(out, ref_conv_layer(x, f))

    def test_k7_matches_golden(self, rng):
        x, f = workload(rng, 18, 7, np.int8)
        out, _ = run_pulp_conv_layer(x, f)
        assert np.array_equal(out, ref_conv_layer(x, f))

    def test_pulp_beats_scalar(self, rng):
        x, f = workload(rng, 16, 5, np.int8)
        _, scalar = run_scalar_conv_layer(x, f)
        _, pulp = run_pulp_conv_layer(x, f)
        assert pulp < scalar

    def test_int8_beats_int32(self, rng):
        """Packed SIMD: 4x int8 MACs per op must beat the cv.mac fallback."""
        x8, f8 = workload(rng, 16, 3, np.int8)
        x32, f32 = workload(rng, 16, 3, np.int32)
        _, c8 = run_pulp_conv_layer(x8, f8)
        _, c32 = run_pulp_conv_layer(x32, f32)
        assert c8 < c32

    def test_padding_helpers(self):
        assert simd_width(1) == 4 and simd_width(2) == 2 and simd_width(4) == 1
        assert padded_k(3, 1) == 4 and padded_k(5, 1) == 8
        assert padded_k(3, 2) == 4 and padded_k(4, 2) == 4
        filters = np.arange(9, dtype=np.int8).reshape(3, 3)
        padded = pad_filters(filters, 1)
        assert padded.shape == (3, 4)
        assert np.all(padded[:, 3] == 0)


class TestFittedModels:
    @pytest.mark.parametrize("arch", ["scalar", "pulp"])
    def test_calibration_residual_small(self, arch):
        model = fit_conv_model(arch, 1)
        assert model.residual_rel < 0.01  # linear structure => near-exact fit

    def test_heldout_prediction_accurate(self, rng):
        shape = ConvLayerShape(22, 18, 3)
        x, f = workload(rng, 0, 0, np.int8) if False else (None, None)
        image = rng.integers(-8, 8, (3 * 22, 18)).astype(np.int8)
        filters = rng.integers(-2, 3, (9, 3)).astype(np.int8)
        _, actual = run_scalar_conv_layer(image, filters)
        predicted = scalar_conv_layer_cycles(
            ConvLayerShape(height=22, width=18, k=3), 1
        )
        assert abs(predicted - actual) / actual < 0.02

    def test_models_cached(self):
        assert fit_conv_model("scalar", 1) is fit_conv_model("scalar", 1)

    def test_paper_scale_extrapolation_ordering(self):
        big = ConvLayerShape(256, 256, 3)
        scalar = scalar_conv_layer_cycles(big, 1)
        pulp = pulp_conv_layer_cycles(big, 1)
        assert scalar > pulp > 0
        # the paper's CV32E40PX advantage grows with filter size
        big7 = ConvLayerShape(256, 256, 7)
        ratio3 = scalar / pulp
        ratio7 = scalar_conv_layer_cycles(big7, 1) / pulp_conv_layer_cycles(big7, 1)
        assert ratio7 > ratio3

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            fit_conv_model("vliw", 1)


class TestMulticoreModel:
    def test_calibrated_to_paper_ceiling(self):
        model = MulticoreModel()
        assert model.speedup(15) == pytest.approx(PAPER_MULTICORE_PEAK, rel=0.01)

    def test_efficiency_decreases(self):
        model = MulticoreModel()
        assert model.efficiency(1) == 1.0
        assert model.efficiency(8) > model.efficiency(16)

    def test_peak_below_linear_scaling(self):
        model = MulticoreModel()
        assert model.peak(32) < 32 * model.single_core_speedup

    def test_alpha_positive(self):
        assert DEFAULT_ALPHA > 0

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            MulticoreModel().efficiency(0)
