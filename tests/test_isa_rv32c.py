"""RV32C expansion tests: each compressed encoding maps to its 32-bit twin."""

import pytest

from repro.isa.decode import DecodeError, decode
from repro.isa.rv32c import decode_compressed


def test_c_addi():
    # c.addi x8, 1 -> 000 0 01000 00001 01
    halfword = 0b000_0_01000_00001_01
    instr = decode_compressed(halfword)
    assert instr.mnemonic == "addi"
    assert instr.rd == 8 and instr.rs1 == 8 and instr.imm == 1
    assert instr.length == 2


def test_c_li():
    halfword = 0b010_0_01010_00101_01  # c.li x10, 5
    instr = decode_compressed(halfword)
    assert instr.mnemonic == "addi"
    assert instr.rd == 10 and instr.rs1 == 0 and instr.imm == 5


def test_c_li_negative():
    halfword = 0b010_1_01010_11111_01  # c.li x10, -1
    instr = decode_compressed(halfword)
    assert instr.imm == -1


def test_c_mv_and_c_add():
    mv = 0b100_0_00101_00110_10  # c.mv x5, x6
    instr = decode_compressed(mv)
    assert instr.mnemonic == "add" and instr.rs1 == 0 and instr.rs2 == 6

    add = 0b100_1_00101_00110_10  # c.add x5, x6
    instr = decode_compressed(add)
    assert instr.mnemonic == "add" and instr.rs1 == 5 and instr.rs2 == 6


def test_c_jr_and_c_jalr():
    jr = 0b100_0_00101_00000_10  # c.jr x5
    instr = decode_compressed(jr)
    assert instr.mnemonic == "jalr" and instr.rd == 0 and instr.rs1 == 5

    jalr = 0b100_1_00101_00000_10  # c.jalr x5
    instr = decode_compressed(jalr)
    assert instr.mnemonic == "jalr" and instr.rd == 1


def test_c_ebreak():
    assert decode_compressed(0b100_1_00000_00000_10).mnemonic == "ebreak"


def test_c_lwsp_swsp():
    lwsp = 0b010_0_00101_00100_10  # c.lwsp x5, 4(sp) ... uimm[4:2]=001
    instr = decode_compressed(lwsp)
    assert instr.mnemonic == "lw" and instr.rs1 == 2 and instr.imm == 4

    swsp = 0b110_000100_00101_10  # c.swsp x5, 4(sp)
    instr = decode_compressed(swsp)
    assert instr.mnemonic == "sw" and instr.rs1 == 2 and instr.rs2 == 5
    assert instr.imm == 4


def test_c_lw_sw():
    # uimm[5:3]=001 (8) plus uimm[2]=1 (4) -> offset 12
    lw = 0b010_001_000_10_001_00  # c.lw x9, 12(x8)
    instr = decode_compressed(lw)
    assert instr.mnemonic == "lw" and instr.rs1 == 8 and instr.rd == 9
    assert instr.imm == 12

    sw = 0b110_001_000_10_001_00  # c.sw x9, 12(x8)
    instr = decode_compressed(sw)
    assert instr.mnemonic == "sw" and instr.rs2 == 9 and instr.imm == 12


def test_c_alu_ops():
    # c.sub x8, x9: 100 0 11 000 00 001 01
    sub = 0b100_0_11_000_00_001_01
    instr = decode_compressed(sub)
    assert instr.mnemonic == "sub" and instr.rd == 8 and instr.rs2 == 9

    and_ = 0b100_0_11_000_11_001_01
    assert decode_compressed(and_).mnemonic == "and"


def test_c_andi():
    halfword = 0b100_0_10_001_00111_01  # c.andi x9, 7
    instr = decode_compressed(halfword)
    assert instr.mnemonic == "andi" and instr.imm == 7


def test_c_slli():
    halfword = 0b000_0_00101_00011_10  # c.slli x5, 3
    instr = decode_compressed(halfword)
    assert instr.mnemonic == "slli" and instr.imm == 3


def test_c_j_roundtrip_offset():
    # c.j with offset -2 loops to the previous halfword.
    instr = decode_compressed(0b101_1_1_1_1_0_1_11111_01)
    assert instr.mnemonic == "jal" and instr.rd == 0
    assert instr.imm % 2 == 0


def test_c_beqz():
    halfword = 0b110_0_00_001_00000_01  # c.beqz x9, 0... offset 0
    instr = decode_compressed(halfword)
    assert instr.mnemonic == "beq" and instr.rs2 == 0 and instr.rs1 == 9


def test_zero_halfword_is_illegal():
    assert decode_compressed(0) is None
    with pytest.raises(DecodeError):
        decode(0x00000000)


def test_decode_dispatches_compressed():
    instr = decode(0b010_0_01010_00101_01)  # c.li buried in a 32-bit fetch
    assert instr.length == 2
    assert instr.extension == "c"


def test_c_addi4spn_zero_imm_illegal():
    assert decode_compressed(0b000_00000000_001_00) is None
