"""ISS execution tests: instruction semantics via small assembled programs."""

import pytest

from repro.cpu.core import Cpu, IllegalInstruction
from repro.isa.asm import assemble
from repro.mem.memory import MainMemory
from repro.utils.bitops import to_signed


def run(source: str, memory_bytes: int = 64 * 1024) -> Cpu:
    program = assemble(source)
    memory = MainMemory(memory_bytes)
    memory.write_block(0, bytes(program.data))
    cpu = Cpu(memory)
    cpu.run()
    return cpu


class TestArithmetic:
    def test_add_sub(self):
        cpu = run("li a0, 7\nli a1, 5\nadd a2, a0, a1\nsub a3, a0, a1\nebreak")
        assert cpu.regs[12] == 12 and cpu.regs[13] == 2

    def test_overflow_wraps(self):
        cpu = run("li a0, 0x7fffffff\naddi a0, a0, 1\nebreak")
        assert cpu.regs[10] == 0x80000000

    def test_logic_ops(self):
        cpu = run(
            "li a0, 0xf0f0\nli a1, 0x0ff0\n"
            "and a2, a0, a1\nor a3, a0, a1\nxor a4, a0, a1\nebreak"
        )
        assert cpu.regs[12] == 0x0F0
        assert cpu.regs[13] == 0xFFF0
        assert cpu.regs[14] == 0xFF00

    def test_shifts(self):
        cpu = run(
            "li a0, -8\nsrai a1, a0, 1\nsrli a2, a0, 28\nslli a3, a0, 1\nebreak"
        )
        assert to_signed(cpu.regs[11]) == -4
        assert cpu.regs[12] == 0xF
        assert to_signed(cpu.regs[13]) == -16

    def test_slt_family(self):
        cpu = run(
            "li a0, -1\nli a1, 1\n"
            "slt a2, a0, a1\nsltu a3, a0, a1\nslti a4, a0, 0\nsltiu a5, a1, 2\nebreak"
        )
        assert cpu.regs[12] == 1  # -1 < 1 signed
        assert cpu.regs[13] == 0  # 0xffffffff > 1 unsigned
        assert cpu.regs[14] == 1
        assert cpu.regs[15] == 1

    def test_x0_is_hardwired(self):
        cpu = run("li t0, 5\nadd zero, t0, t0\nmv a0, zero\nebreak")
        assert cpu.regs[10] == 0


class TestMulDiv:
    def test_mul(self):
        cpu = run("li a0, -3\nli a1, 7\nmul a2, a0, a1\nebreak")
        assert to_signed(cpu.regs[12]) == -21

    def test_mulh(self):
        cpu = run("li a0, 0x40000000\nli a1, 4\nmulh a2, a0, a1\nmulhu a3, a0, a1\nebreak")
        assert cpu.regs[12] == 1
        assert cpu.regs[13] == 1

    def test_div_rem(self):
        cpu = run("li a0, -7\nli a1, 2\ndiv a2, a0, a1\nrem a3, a0, a1\nebreak")
        assert to_signed(cpu.regs[12]) == -3
        assert to_signed(cpu.regs[13]) == -1

    def test_div_by_zero(self):
        cpu = run("li a0, 9\nli a1, 0\ndivu a2, a0, a1\nremu a3, a0, a1\nebreak")
        assert cpu.regs[12] == 0xFFFFFFFF
        assert cpu.regs[13] == 9


class TestMemoryAccess:
    def test_store_load_roundtrip(self):
        cpu = run(
            "li a0, 0x1000\nli a1, 0xdeadbeef\nsw a1, 0(a0)\n"
            "lw a2, 0(a0)\nlhu a3, 0(a0)\nlbu a4, 3(a0)\nebreak"
        )
        assert cpu.regs[12] == 0xDEADBEEF
        assert cpu.regs[13] == 0xBEEF
        assert cpu.regs[14] == 0xDE

    def test_signed_loads(self):
        cpu = run("li a0, 0x1000\nli a1, -1\nsb a1, 0(a0)\nlb a2, 0(a0)\nlbu a3, 0(a0)\nebreak")
        assert to_signed(cpu.regs[12]) == -1
        assert cpu.regs[13] == 0xFF

    def test_data_section(self):
        cpu = run(
            "la a0, datum\nlw a1, 0(a0)\nebreak\n.align 2\ndatum:\n.word 0x12345678"
        )
        assert cpu.regs[11] == 0x12345678


class TestControlFlow:
    def test_loop_sum(self):
        cpu = run(
            "li a0, 0\nli a1, 10\nloop:\nadd a0, a0, a1\naddi a1, a1, -1\nbnez a1, loop\nebreak"
        )
        assert cpu.regs[10] == 55

    def test_call_ret(self):
        cpu = run(
            """
                li a0, 5
                call double
                ebreak
            double:
                add a0, a0, a0
                ret
            """
        )
        assert cpu.regs[10] == 10

    def test_branch_variants(self):
        cpu = run(
            """
                li a0, 0
                li a1, -1
                li a2, 1
                bltu a1, a2, not_taken    # 0xffffffff > 1 unsigned
                addi a0, a0, 1
            not_taken:
                blt a1, a2, taken         # -1 < 1 signed
                addi a0, a0, 100
            taken:
                ebreak
            """
        )
        assert cpu.regs[10] == 1

    def test_jalr_indirect(self):
        cpu = run(
            """
                la t0, target
                jalr ra, 0(t0)
                ebreak
            target:
                li a0, 99
                ebreak
            """
        )
        assert cpu.regs[10] == 99


class TestRuntimeGuards:
    def test_illegal_instruction_raises(self):
        memory = MainMemory(4096)
        memory.write_u32(0, 0x00000000)
        cpu = Cpu(memory)
        with pytest.raises(IllegalInstruction):
            cpu.run()

    def test_runaway_guard(self):
        program = assemble("loop:\n j loop")
        memory = MainMemory(4096)
        memory.write_block(0, bytes(program.data))
        cpu = Cpu(memory)
        with pytest.raises(RuntimeError, match="did not halt"):
            cpu.run(max_instructions=100)

    def test_reset_clears_state(self):
        cpu = run("li a0, 7\nebreak")
        assert cpu.instret > 0
        cpu.reset()
        assert cpu.instret == 0 and cpu.cycles == 0 and cpu.regs[10] == 0

    def test_offload_without_coprocessor(self):
        program = assemble("xmk0.w a0, a1, a2")
        memory = MainMemory(4096)
        memory.write_block(0, bytes(program.data))
        cpu = Cpu(memory)
        with pytest.raises(IllegalInstruction, match="no coprocessor"):
            cpu.step()


class TestDecodeCacheBound:
    """The decoded-instruction cache must stay bounded on long-lived
    cores (a pooled serving worker's host executes unbounded request
    streams through one Cpu instance)."""

    def _straight_line_cpu(self, n_instructions):
        source = "\n".join(["addi x1, x1, 1"] * n_instructions + ["ebreak"])
        program = assemble(source)
        memory = MainMemory(4 * 1024 * 1024)
        memory.write_block(0, bytes(program.data))
        return Cpu(memory)

    def test_cache_never_exceeds_limit(self, monkeypatch):
        monkeypatch.setattr(Cpu, "DECODE_CACHE_LIMIT", 64)
        cpu = self._straight_line_cpu(300)
        cpu.run()
        assert len(cpu._decode_cache) <= 64
        assert cpu.instret == 300  # ebreak halts before retiring

    def test_reset_clears_decode_cache(self):
        cpu = self._straight_line_cpu(10)
        cpu.run()
        assert cpu._decode_cache
        cpu.reset()
        assert not cpu._decode_cache

    def test_eviction_keeps_execution_correct(self, monkeypatch):
        # a stream longer than the cache bound re-decodes evicted entries
        # transparently; the architectural result must not change
        monkeypatch.setattr(Cpu, "DECODE_CACHE_LIMIT", 8)
        cpu = self._straight_line_cpu(50)
        cpu.run()
        assert cpu.regs[1] == 50
